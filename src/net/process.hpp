// Child-process plumbing for multi-process runs: spawn a fides_serverd with
// its stderr captured to a log file (the CI artifact on failure), wait for
// or kill it, and locate the serverd binary next to the running executable.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace fides::net {

/// fork+execv. argv[0] is the binary path; stderr (and stdout) are
/// redirected to `stderr_path` (appended, so a respawn keeps the earlier
/// incarnation's log). Throws std::runtime_error if the fork fails; an exec
/// failure surfaces as the child exiting 127.
pid_t spawn(const std::vector<std::string>& argv, const std::string& stderr_path);

/// Blocks until the child exits. Returns its exit code, or -signal if it
/// died on one.
int wait_exit(pid_t pid);

/// Non-blocking reap. True (and *code as in wait_exit) if the child has
/// exited.
bool try_wait(pid_t pid, int* code);

/// SIGKILL + reap. Safe to call on an already-dead child.
void kill_process(pid_t pid);

/// Path to the fides_serverd binary: $FIDES_SERVERD if set, else
/// "fides_serverd" in the directory of the running executable (so tests and
/// benches work from any CWD).
std::string serverd_binary_path();

}  // namespace fides::net
