// Figure 14 — varying the number of servers/shards (§6.3).
//
// Sweep: 3..9 servers, 10000 items/shard, 100 transactions per block.
// Paper result: +47% throughput and -33% latency from 3 to 9 servers; the
// per-block Merkle (MHT) update time shrinks as the 500 operations per block
// spread across more shards.
#include "bench_common.hpp"

int main() {
  using namespace fides;
  bench::print_header(
      "Figure 14: number of servers, 100 txns/block",
      "throughput +~47%, latency -~33%, MHT update time falls, 3 -> 9 servers");

  std::printf("%-8s %-14s %-16s %-14s %-10s\n", "servers", "latency_ms", "throughput_tps",
              "mht_update_ms", "aborted");

  for (std::uint32_t servers = 3; servers <= 9; ++servers) {
    workload::ExperimentConfig cfg;
    cfg.cluster.num_servers = servers;
    cfg.cluster.items_per_shard = 10000;
    cfg.cluster.max_batch_size = 100;
    cfg.txns_per_block = 100;
    const auto r = bench::run_point(cfg);
    std::printf("%-8u %-14.2f %-16.0f %-14.4f %-10zu\n", servers, r.avg_latency_ms,
                r.throughput_tps, r.avg_mht_ms, r.aborted_txns);
  }
  return 0;
}
