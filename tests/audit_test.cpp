// Auditor tests: every lemma and §5 scenario, end-to-end through the real
// cluster — honest runs audit clean; each injected fault is detected and
// attributed to the right server at the right block/version.
#include <gtest/gtest.h>

#include "audit/auditor.hpp"
#include "workload/ycsb.hpp"

namespace fides::audit {
namespace {

ClusterConfig config(store::VersioningMode mode = store::VersioningMode::kMulti) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 32;
  cfg.versioning = mode;
  return cfg;
}

commit::SignedEndTxn rw_txn(Cluster& cluster, Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

/// Runs `blocks` honest single-txn blocks over distinct items.
void run_honest_history(Cluster& cluster, Client& client, int blocks) {
  for (int i = 0; i < blocks; ++i) {
    const auto metrics = cluster.run_block(
        {rw_txn(cluster, client, {static_cast<ItemId>(i), static_cast<ItemId>(i + 10)},
                "b" + std::to_string(i))});
    ASSERT_EQ(metrics.decision, ledger::Decision::kCommit);
  }
}

TEST(Auditor, HonestRunAuditsClean) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  run_honest_history(cluster, client, 5);
  Auditor auditor(cluster);
  const AuditReport report = auditor.run();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.blocks_audited, 5u);
  EXPECT_GT(report.items_authenticated, 0u);
}

TEST(Auditor, HonestSingleVersionedRunAuditsClean) {
  Cluster cluster(config(store::VersioningMode::kSingle));
  Client& client = cluster.make_client();
  run_honest_history(cluster, client, 5);
  Auditor auditor(cluster);
  EXPECT_TRUE(auditor.run().clean());
}

TEST(Auditor, HonestWorkloadManySeedsClean) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ClusterConfig cfg = config();
    cfg.seed = seed;
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    workload::YcsbWorkload wl({}, cfg.num_servers * cfg.items_per_shard, seed);
    for (int block = 0; block < 4; ++block) {
      std::vector<commit::SignedEndTxn> batch;
      for (int i = 0; i < 3; ++i) batch.push_back(wl.run_transaction(client));
      cluster.run_block(std::move(batch));
    }
    Auditor auditor(cluster);
    const auto report = auditor.run();
    EXPECT_TRUE(report.clean()) << "seed " << seed << "\n" << report.to_string();
  }
}

// --- Lemma 1 / Scenario 1: incorrect reads ---------------------------------------

TEST(Auditor, IncorrectReadDetectedAndAttributed) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  // Block 0 writes item 0 honestly; then the owner starts lying on reads.
  cluster.run_block({rw_txn(cluster, client, {0}, "honest")});
  Server& liar = cluster.server(cluster.owner_of(0));
  liar.faults().read_fault = ReadFault::kGarbageValue;
  liar.faults().read_fault_item = 0;
  // The lied-to transaction commits (the value content is not what OCC
  // checks — timestamps still match), embedding the wrong value in block 1.
  const auto metrics = cluster.run_block({rw_txn(cluster, client, {0}, "next")});
  ASSERT_EQ(metrics.decision, ledger::Decision::kCommit);

  Auditor auditor(cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  ASSERT_TRUE(report.has(ViolationKind::kIncorrectRead)) << report.to_string();
  const auto v = report.of_kind(ViolationKind::kIncorrectRead);
  EXPECT_EQ(v[0].server, cluster.owner_of(0));
  EXPECT_EQ(v[0].block, 1u);  // precise point in history
}

// --- Lemma 2 / Scenario 3: datastore corruption ----------------------------------

TEST(Auditor, SkippedWriteDetectedAtPreciseVersion) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Server& faulty = cluster.server(cluster.owner_of(0));
  faulty.faults().skip_write_item = 0;

  cluster.run_block({rw_txn(cluster, client, {0}, "expected")});
  cluster.run_block({rw_txn(cluster, client, {10}, "unrelated")});

  Auditor auditor(cluster);
  const AuditReport report = auditor.run();
  ASSERT_TRUE(report.has(ViolationKind::kDatastoreCorruption)) << report.to_string();
  const auto v = report.of_kind(ViolationKind::kDatastoreCorruption);
  EXPECT_EQ(v[0].server, cluster.owner_of(0));
  EXPECT_EQ(v[0].block, 0u);  // corruption entered at block 0's version
}

TEST(Auditor, PostCommitCorruptionDetectedMultiVersioned) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  cluster.run_block({rw_txn(cluster, client, {0}, "v1")});
  Server& faulty = cluster.server(cluster.owner_of(0));
  const Timestamp version = faulty.log().at(0).txns[0].commit_ts;
  faulty.shard().corrupt_value(0, to_bytes("evil"));
  faulty.shard().corrupt_version(0, version, to_bytes("evil"));

  Auditor auditor(cluster);
  const AuditReport report = auditor.run();
  EXPECT_TRUE(report.has(ViolationKind::kDatastoreCorruption)) << report.to_string();
}

TEST(Auditor, PostCommitCorruptionDetectedSingleVersioned) {
  Cluster cluster(config(store::VersioningMode::kSingle));
  Client& client = cluster.make_client();
  cluster.run_block({rw_txn(cluster, client, {0}, "v1")});
  cluster.server(cluster.owner_of(0)).shard().corrupt_value(0, to_bytes("evil"));

  Auditor auditor(cluster, {DatastorePolicy::kLatestOnly});
  const AuditReport report = auditor.run();
  ASSERT_TRUE(report.has(ViolationKind::kDatastoreCorruption)) << report.to_string();
  EXPECT_EQ(report.of_kind(ViolationKind::kDatastoreCorruption)[0].server,
            cluster.owner_of(0));
}

TEST(Auditor, Scenario3Walkthrough) {
  // The paper's §5 example: server claims to have updated x at ts-100 but
  // did not; the auditor folds the claimed value through the VO and the
  // computed root mismatches the co-signed one.
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Server& sm = cluster.server(cluster.owner_of(0));
  sm.faults().skip_write_item = 0;
  cluster.run_block({rw_txn(cluster, client, {0}, "900")});

  const ledger::Block& block10 = sm.log().at(0);
  AuditReport report;
  Auditor auditor(cluster);
  const bool clean = auditor.authenticate_item(
      sm.id(), 0, Auditor::block_version(block10), block10,
      &block10.txns[0].rw.writes[0].new_value, report);
  EXPECT_FALSE(clean);
  EXPECT_TRUE(report.has(ViolationKind::kDatastoreCorruption));
}

// --- Lemma 3: serializability ------------------------------------------------------

TEST(Auditor, SerializabilityViolationDetected) {
  // Craft a log where a later block's transaction carries a commit
  // timestamp below the previous writer's (the colluding-servers case: OCC
  // was "skipped"). All servers sign it, so only the audit catches it.
  // Single-versioned store: a multi-versioned one would refuse the
  // out-of-order append outright.
  Cluster cluster(config(store::VersioningMode::kSingle));
  Client& client = cluster.make_client();
  cluster.run_block({rw_txn(cluster, client, {0}, "first")});

  // Second transaction: reads item 0's *current* state but claims an older
  // commit timestamp, violating RW timestamp order.
  ClientTxn txn = client.begin();
  client.read(txn, 0);
  client.write(txn, 0, to_bytes("second"));
  commit::SignedEndTxn req = client.end(std::move(txn));
  req.request.txn.commit_ts = Timestamp{1, 0};  // in the past
  req.signature = client.keypair().sign(req.request.serialize());

  // Servers would abort this; make them all colluding-permissive by
  // injecting the block through a coordinator that ignores votes.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(ServerId{i}).faults().cohort.skip_root_check = true;
  }
  cluster.server(ServerId{0}).faults().coordinator.force_commit = true;
  cluster.run_block({req});

  Auditor auditor(cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  EXPECT_TRUE(report.has(ViolationKind::kSerializabilityViolation))
      << report.to_string();
}

// --- Lemmas 6 & 7: log integrity ----------------------------------------------------

class LogFaultAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster = std::make_unique<Cluster>(config());
    client = &cluster->make_client();
    for (int i = 0; i < 4; ++i) {
      cluster->run_block({rw_txn(*cluster, *client, {static_cast<ItemId>(i)},
                                 "b" + std::to_string(i))});
    }
  }
  std::unique_ptr<Cluster> cluster;
  Client* client{};
};

TEST_F(LogFaultAuditTest, TamperedBlockAttributed) {
  Server& faulty = cluster->server(ServerId{1});
  ledger::Block bad = faulty.log().at(2);
  bad.txns[0].rw.writes[0].new_value = to_bytes("rewritten-history");
  faulty.log().tamper_block(2, bad);

  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  const auto tampered = report.of_kind(ViolationKind::kInvalidCosign);
  ASSERT_FALSE(tampered.empty()) << report.to_string();
  EXPECT_EQ(tampered[0].server, ServerId{1});
  EXPECT_EQ(tampered[0].block, 2u);
  // The audit still proceeds on the correct log from another server.
  EXPECT_NE(report.adopted_log_source, ServerId{1});
  EXPECT_EQ(report.blocks_audited, 4u);
}

TEST_F(LogFaultAuditTest, ReorderedLogDetected) {
  cluster->server(ServerId{2}).log().reorder(1, 3);
  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  bool attributed = false;
  for (const auto& v : report.violations) {
    attributed |= (v.kind == ViolationKind::kTamperedLog ||
                   v.kind == ViolationKind::kInvalidCosign) &&
                  v.server == ServerId{2};
  }
  EXPECT_TRUE(attributed) << report.to_string();
}

TEST_F(LogFaultAuditTest, TruncatedTailDetected) {
  cluster->server(ServerId{0}).log().truncate_tail(2);
  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  const auto v = report.of_kind(ViolationKind::kIncompleteLog);
  ASSERT_EQ(v.size(), 1u) << report.to_string();
  EXPECT_EQ(v[0].server, ServerId{0});
  EXPECT_EQ(report.blocks_audited, 4u);  // adopted a complete log elsewhere
}

TEST_F(LogFaultAuditTest, MultipleFaultyLogsStillAudited) {
  // n-1 = 2 of 3 servers corrupt their logs; one correct server suffices.
  cluster->server(ServerId{0}).log().truncate_tail(1);
  ledger::Block bad = cluster->server(ServerId{1}).log().at(0);
  bad.decision = ledger::Decision::kAbort;
  cluster->server(ServerId{1}).log().tamper_block(0, bad);

  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  EXPECT_EQ(report.adopted_log_source, ServerId{2});
  EXPECT_TRUE(report.has(ViolationKind::kIncompleteLog));
  EXPECT_TRUE(report.has(ViolationKind::kInvalidCosign) ||
              report.has(ViolationKind::kTamperedLog));
  EXPECT_EQ(report.blocks_audited, 4u);
}

TEST_F(LogFaultAuditTest, AllLogsInvalidReported) {
  for (std::uint32_t i = 0; i < cluster->num_servers(); ++i) {
    ledger::Block bad = cluster->server(ServerId{i}).log().at(0);
    bad.height = 42;
    cluster->server(ServerId{i}).log().tamper_block(0, bad);
  }
  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  EXPECT_TRUE(report.has(ViolationKind::kNoValidLog));
  EXPECT_EQ(report.blocks_audited, 0u);
}

// --- Lemma 5: atomicity / divergent logs ---------------------------------------------

TEST_F(LogFaultAuditTest, DivergentBlockAppendedByColluderDetected) {
  // Lemma 5 Case 1 epilogue: a colluding victim appends the abort variant
  // b_a whose co-sign corresponds to b_c. Its log fails validation at
  // exactly that block.
  Server& colluder = cluster->server(ServerId{1});
  ledger::Block ba = colluder.log().at(3);
  ba.decision = ledger::Decision::kAbort;
  ba.roots.clear();  // abort variant: roots missing
  colluder.log().tamper_block(3, ba);

  Auditor auditor(*cluster, {DatastorePolicy::kNone});
  const AuditReport report = auditor.run();
  const auto bad = report.of_kind(ViolationKind::kInvalidCosign);
  ASSERT_FALSE(bad.empty()) << report.to_string();
  EXPECT_EQ(bad[0].server, ServerId{1});
  EXPECT_EQ(bad[0].block, 3u);
}

// --- Serialization-graph unit coverage ----------------------------------------------

TEST(SerializationGraph, BuildsConflictEdges) {
  std::vector<ledger::Block> log(2);
  for (auto& b : log) b.decision = ledger::Decision::kCommit;
  txn::Transaction t1;
  t1.commit_ts = Timestamp{1, 0};
  t1.rw.writes.push_back(txn::WriteEntry{7, to_bytes("a"), std::nullopt, {}, {}});
  txn::Transaction t2;
  t2.commit_ts = Timestamp{2, 0};
  t2.rw.reads.push_back(txn::ReadEntry{7, to_bytes("a"), {}, Timestamp{1, 0}});
  t2.rw.writes.push_back(txn::WriteEntry{7, to_bytes("b"), std::nullopt, {}, {}});
  log[0].txns.push_back(t1);
  log[1].height = 1;
  log[1].txns.push_back(t2);

  const auto g = SerializationGraph::build(log);
  EXPECT_EQ(g.nodes().size(), 2u);
  EXPECT_FALSE(g.edges().empty());
  EXPECT_FALSE(g.has_cycle());
  EXPECT_TRUE(g.timestamp_order_violations(log).empty());
}

TEST(SerializationGraph, TimestampOrderViolationFlagged) {
  std::vector<ledger::Block> log(2);
  for (auto& b : log) b.decision = ledger::Decision::kCommit;
  txn::Transaction t1;
  t1.commit_ts = Timestamp{5, 0};
  t1.rw.writes.push_back(txn::WriteEntry{7, to_bytes("a"), std::nullopt, {}, {}});
  txn::Transaction t2;
  t2.commit_ts = Timestamp{2, 0};  // commits "later" in the log, earlier in ts
  t2.rw.writes.push_back(txn::WriteEntry{7, to_bytes("b"), std::nullopt, {}, {}});
  log[0].txns.push_back(t1);
  log[1].height = 1;
  log[1].txns.push_back(t2);

  const auto g = SerializationGraph::build(log);
  EXPECT_FALSE(g.timestamp_order_violations(log).empty());
}

TEST(SerializationGraph, AbortedBlocksExcluded) {
  std::vector<ledger::Block> log(1);
  log[0].decision = ledger::Decision::kAbort;
  txn::Transaction t;
  t.rw.writes.push_back(txn::WriteEntry{1, to_bytes("x"), std::nullopt, {}, {}});
  log[0].txns.push_back(t);
  EXPECT_TRUE(SerializationGraph::build(log).nodes().empty());
}

TEST(Report, PrintingAndQueries) {
  AuditReport report;
  EXPECT_TRUE(report.clean());
  report.violations.push_back(Violation{ViolationKind::kIncorrectRead, ServerId{2},
                                        std::size_t{4}, Timestamp{9, 0}, "detail"});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has(ViolationKind::kIncorrectRead));
  EXPECT_FALSE(report.has(ViolationKind::kTamperedLog));
  const std::string s = report.to_string();
  EXPECT_NE(s.find("incorrect-read"), std::string::npos);
  EXPECT_NE(s.find("S2"), std::string::npos);
}

}  // namespace
}  // namespace fides::audit
