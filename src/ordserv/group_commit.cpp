#include "ordserv/group_commit.hpp"

#include <algorithm>

#include "txn/occ.hpp"

namespace fides::ordserv {

namespace {

/// The bytes the group actually co-signed: the block before OrdServ chained
/// it (height and prev-hash zeroed).
Bytes unchained_signing_bytes(const ledger::Block& block) {
  ledger::Block copy = block;
  copy.height = 0;
  copy.prev_hash = crypto::Digest::zero();
  return copy.signing_bytes();
}

}  // namespace

std::optional<std::size_t> validate_stream(
    std::span<const SequencedBlock> stream,
    std::span<const crypto::PublicKey> all_server_keys) {
  crypto::Digest expected_prev = crypto::Digest::zero();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const SequencedBlock& entry = stream[i];
    const ledger::Block& b = entry.block;

    if (b.height != i) return i;
    if (!(b.prev_hash == expected_prev)) return i;

    if (!b.cosign || b.signers.empty()) return i;
    std::vector<crypto::PublicKey> keys;
    keys.reserve(b.signers.size());
    for (const ServerId s : b.signers) {
      if (s.value >= all_server_keys.size()) return i;
      keys.push_back(all_server_keys[s.value]);
    }
    if (!crypto::cosi_verify(unchained_signing_bytes(b), *b.cosign, keys)) return i;

    for (const std::uint64_t dep : entry.depends_on) {
      if (dep >= b.height) return i;  // dependency order broken
    }
    expected_prev = b.digest();
  }
  return std::nullopt;
}

GroupRoundResult GroupCommitRunner::run_group_block(
    std::vector<commit::SignedEndTxn> batch) {
  GroupRoundResult result;

  std::sort(batch.begin(), batch.end(),
            [](const commit::SignedEndTxn& a, const commit::SignedEndTxn& b) {
              return a.request.txn.commit_ts < b.request.txn.commit_ts;
            });
  std::vector<txn::Transaction> txns;
  txns.reserve(batch.size());
  for (const auto& s : batch) txns.push_back(s.request.txn);

  const ServerGroup group = group_for(txns, cluster_->num_servers());
  result.group = group;
  result.group_size = group.members.size();

  // TFCommit among the group members only.
  std::vector<crypto::PublicKey> group_keys;
  group_keys.reserve(group.members.size());
  for (const ServerId s : group.members) {
    group_keys.push_back(cluster_->server_keys()[s.value]);
  }
  commit::TfCommitCoordinator coordinator(group.members, group_keys);

  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      /*height=*/0, crypto::Digest::zero(), std::move(txns), group.members);
  commit::GetVoteMsg get_vote = coordinator.start(std::move(partial), std::move(batch));
  // OrdServ hands out the epoch: a unique CoSi nonce domain per round, even
  // when multiple group coordinators terminate batches concurrently.
  get_vote.round = sequencer_->epochs().reserve();

  std::vector<commit::VoteMsg> votes;
  votes.reserve(group.members.size());
  for (const ServerId s : group.members) {
    Server& server = cluster_->server(s);
    votes.push_back(
        server.tf_cohort().handle_get_vote(get_vote, server.faults().cohort));
  }

  Server& coord_server = cluster_->server(group.coordinator);
  const std::vector<commit::ChallengeMsg> challenges =
      coordinator.on_votes(votes, coord_server.faults().coordinator);

  std::vector<commit::ResponseMsg> responses;
  responses.reserve(group.members.size());
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    Server& server = cluster_->server(group.members[i]);
    const std::size_t slot = challenges.size() == 1 ? 0 : i;
    responses.push_back(server.tf_cohort().handle_challenge(challenges[slot],
                                                            server.faults().cohort));
  }

  const commit::TfCommitOutcome outcome = coordinator.on_responses(responses);
  result.decision = outcome.decision;
  result.cosign_valid = outcome.cosign_valid;
  if (!outcome.cosign_valid) {
    // An unsignable block never reaches OrdServ; the group retries or aborts
    // out-of-band (and the refusals identify the culprit).
    return result;
  }

  result.global_height = sequencer_->submit(outcome.block, group);
  deliver_all();
  return result;
}

void GroupCommitRunner::deliver_all() {
  for (std::uint32_t s = 0; s < cluster_->num_servers(); ++s) {
    Server& server = cluster_->server(ServerId{s});
    for (const SequencedBlock* entry : sequencer_->fetch_new(ServerId{s})) {
      delivered_[s].push_back(*entry);
      if (entry->block.committed()) {
        for (const auto& t : entry->block.txns) {
          txn::apply_committed(server.shard(), t);
        }
      }
    }
  }
}

}  // namespace fides::ordserv
