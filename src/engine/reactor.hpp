// Protocol round reactors — the one definition of the commit/checkpoint
// choreography.
//
// Each reactor drives one round of its protocol as a message-consuming state
// machine: start() emits the opening broadcast, on_deliver() handles one
// arrived envelope (already authenticated by the dispatcher) and emits the
// follow-up sends. The same reactors run under the in-process scheduler
// (replacing the old lock-step driver in fides/cluster.cpp) and over SimNet
// (replacing the hand-written drivers in sim/sim_round.cpp) — there is no
// second copy of the phase logic anywhere.
//
// Thread-safety contract (what makes the concurrent in-process scheduler
// deterministic): all state a handler touches is either (a) owned by the
// destination node — server objects, coordinator inboxes — and the
// scheduler serializes deliveries per destination, or (b) a per-slot array
// indexed by the authenticated sender, written by exactly one handler.
// Aggregation fires when the last expected message arrives, regardless of
// arrival order, so outcomes do not depend on the interleaving.
#pragma once

#include <map>
#include <optional>

#include "engine/scheduler.hpp"
#include "fides/cluster.hpp"

namespace fides::engine {

/// Progress callbacks from a round reactor to its pipeline.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  /// `server` fully processed the round's decision message (log append +
  /// datastore apply attempted). This is the pipelining watermark: it gates
  /// delivery of the *next* round's opening message at that server, and —
  /// at the coordinator — admission of the next round.
  virtual void on_decision_processed(std::uint64_t epoch, std::uint32_t server) = 0;

  /// The round's final block exists (coordinator aggregation finished, or
  /// the surviving cohorts co-signed a termination abort). `appended` says
  /// whether the block extends the chain (its co-sign verified); fired at
  /// most once per round, in round order. The speculative pipeline feeds
  /// its decided-chain registry — projected opening positions, vote-tag
  /// validation, authoritative shard roots — from exactly this event.
  virtual void on_outcome(std::uint64_t epoch, const ledger::Block& block,
                          bool appended, Outbox& out) {
    (void)epoch;
    (void)block;
    (void)appended;
    (void)out;
  }
};

/// What a speculating TfCommitRound may ask the pipeline about the rest of
/// the in-flight window. Every call happens on the coordinator's serialized
/// context (vote/response handlers and outcome notifications), which is the
/// only writer of the underlying decided-chain state.
class SpecContext {
 public:
  virtual ~SpecContext() = default;

  struct ChainPos {
    std::uint64_t height{0};
    crypto::Digest prev_hash;
  };

  /// Projected chain position for this round's opening: the decided head
  /// plus one height per undecided round below it. prev_hash is the zero
  /// digest while any lower round is still deciding (unknowable until
  /// then); cohorts defer the chain check to apply time.
  virtual ChainPos opening_base(std::uint64_t epoch) = 0;

  /// True once every round below `epoch` has an outcome — the point where
  /// this round's speculative votes become checkable and its true chain
  /// position is pinned.
  virtual bool base_resolved(std::uint64_t epoch) const = 0;

  /// Whether round `epoch`'s block changed shard state (committed with a
  /// valid co-sign); nullopt while it is still deciding.
  virtual std::optional<bool> applied(std::uint64_t epoch) const = 0;

  /// Authoritative Merkle root of `server`'s shard after the decided
  /// prefix, or nullptr when no decided block has pinned it yet.
  virtual const crypto::Digest* shard_root(std::uint32_t server) const = 0;

  /// The decided chain head — the true (height, prev_hash) a resolved
  /// round's completed block must carry.
  virtual ChainPos decided_base() const = 0;
};

/// Shared wiring of the coordinator/cohort reactors.
class RoundReactor {
 public:
  RoundReactor(Cluster& cluster, std::uint64_t epoch, RoundObserver* observer);
  virtual ~RoundReactor() = default;

  std::uint64_t epoch() const { return epoch_; }

  /// Emits the round's opening broadcast. Must run in the coordinator's
  /// serialized context (it reads the coordinator's log head).
  virtual void start(Outbox& out) = 0;

  /// Handles one delivered envelope. `authentic` is the transport.open()
  /// verdict, computed by the dispatcher — handlers must not re-open.
  virtual void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                          Outbox& out) = 0;

  /// Re-synchronizes a just-restored server with this round (simulated
  /// schedules; the dispatcher already restored the server from its round
  /// log and cleared its dedup state). Implementations re-send, over the
  /// ideal replay stream and in causal order, exactly the messages the
  /// server needs: the opening (to rebuild volatile cohort state — votes
  /// re-emitted from the durable log, never recomputed differently), the
  /// challenge if one is pending, or the decision if the round already
  /// decided. A recovered *coordinator* instead restarts the round's
  /// aggregation from the top; surviving cohorts answer every re-ask with
  /// their recorded bytes, so the restarted round finishes bit-identical.
  virtual void on_recover(std::uint32_t server, Outbox& out) = 0;

  /// Coordinator-death termination (TFCommit only): the lowest-id surviving
  /// cohort drives the in-flight round to a co-signed abort instead of
  /// blocking until the coordinator returns. Default: no termination — the
  /// 2PC baseline blocks, which is the paper's headline contrast.
  virtual void begin_termination(Outbox& out) { (void)out; }

  /// Every round below this one has decided (speculative pipelining): the
  /// round's true chain position is pinned and buffered speculative votes
  /// can be validated. Invoked on the coordinator's serialized context.
  virtual void on_base_resolved(Outbox& out) { (void)out; }

  /// Folds the per-slot timing state into metrics_ once the round is over
  /// (no handler may still be running). Subclasses add outcome fields.
  virtual void finalize();

  RoundMetrics& metrics() { return metrics_; }

 protected:
  Envelope seal_framed(const Server& sender, const char* type, BytesView payload) const;
  /// Seal-once / count-every-copy broadcast to servers [0, n).
  void broadcast(Outbox& out, const Envelope& env);

  /// Records the first authentic vote bytes per (sender, speculated base)
  /// and flags any later authentic copy that differs — the cross-restart
  /// no-equivocation oracle (RoundMetrics::vote_equivocators). A re-vote on
  /// a *different* base is a distinct logical vote, never an equivocation.
  void note_vote_bytes(std::uint32_t src, std::uint64_t base, BytesView payload);

  /// Decision bookkeeping shared by every decision-shaped handler: durably
  /// records applied blocks and advances the pipeline watermark exactly
  /// when the server processed this round's decision (applied or refused —
  /// not stale/future recovery stragglers). `on_resolved` (when non-null)
  /// runs between the durable record and the watermark callback — the slot
  /// where speculative re-votes must leave the node, after this decision's
  /// effects but before the pipeline can push the next decision through.
  void decision_processed(Server& server, const char* msg_type,
                          const ledger::Block& block, Server::ApplyResult result,
                          const std::function<void()>& on_resolved = {});

  Cluster* cluster_;
  Transport* transport_;
  std::uint32_t n_;
  ServerId coord_id_;
  NodeId coord_node_;
  std::uint64_t epoch_;
  RoundObserver* observer_;

  RoundMetrics metrics_;
  double coord_us_{0};                 ///< coordinator-side handler time (wall)
  std::vector<double> cohort_us_;      ///< per-cohort handler CPU time
  std::vector<double> cohort_mht_us_;  ///< per-cohort max single Merkle stint
  /// First authentic vote bytes per (sender, speculated base).
  std::vector<std::map<std::uint64_t, Bytes>> vote_bytes_seen_;
};

/// One TFCommit round (Figure 7): get_vote -> votes -> challenge ->
/// responses -> decision -> log append + datastore update.
///
/// Crash-tolerant: every vote leaves through Server::vote_once, the
/// decision is re-derivable bit-for-bit from re-collected votes
/// (deterministic CoSi nonces), and a coordinator that stays dead past the
/// termination timeout is routed around by the surviving cohorts
/// (begin_termination) — they finish the round as a co-signed abort among
/// themselves, which the 2PC baseline cannot do.
class TfCommitRound final : public RoundReactor {
 public:
  /// `spec` non-null runs the round speculatively (see ClusterConfig::
  /// speculate): the opening goes out on a projected chain position, votes
  /// carry base tags the coordinator validates against `spec`'s decided
  /// chain, and mis-speculated votes are discarded to await the cohort's
  /// deterministic re-vote. Null reproduces the gated protocol exactly.
  TfCommitRound(Cluster& cluster, std::uint64_t epoch,
                std::vector<commit::SignedEndTxn> batch, RoundObserver* observer,
                SpecContext* spec = nullptr);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void on_recover(std::uint32_t server, Outbox& out) override;
  void begin_termination(Outbox& out) override;
  void on_base_resolved(Outbox& out) override;
  void finalize() override;

 private:
  /// Rebuilds the coordinator's aggregation state from scratch and re-runs
  /// the round (recovered coordinator; cohorts answer from their logs).
  void restart(Outbox& out);
  void handle_get_vote(NodeId dst, BytesView body, bool authentic, Outbox& out);
  void ingest_vote(std::uint32_t src, commit::VoteMsg vote, Outbox& out);
  /// Validates buffered speculative votes against the decided chain, fills
  /// slots with the survivors, and fires the challenge once all n are in.
  void try_accept_votes(Outbox& out);
  /// All of `vote`'s base assumptions hold against the decided chain.
  bool spec_base_valid(const commit::VoteMsg& vote) const;
  void maybe_fire_challenge(Outbox& out);
  void send_term_vote(Server& server, Outbox& out);
  std::size_t live_expected() const;

  std::vector<commit::SignedEndTxn> batch_;
  std::vector<commit::SignedEndTxn> pristine_batch_;  ///< for coordinator restart
  std::vector<ServerId> cohort_ids_;
  commit::TfCommitCoordinator coordinator_;
  SpecContext* spec_{nullptr};
  /// This round's block height, set by start() (projected for speculative
  /// rounds until the base resolves). Not the CoSi round id (that is
  /// epoch_ — heights recur when aborted rounds retry); used for the
  /// "already decided this height" guard on termination co-signing.
  std::uint64_t height_{0};
  /// The opening's partial block, cached so a coordinator restart
  /// re-broadcasts the identical opening (a speculative projection must not
  /// be recomputed against a chain that has moved on since).
  std::optional<commit::Block> first_partial_;

  std::vector<commit::VoteMsg> votes_;
  std::vector<unsigned char> vote_in_;
  std::size_t votes_seen_{0};
  /// Speculative rounds: votes parked per (sender, base) until the base
  /// resolves and their assumptions can be checked.
  std::vector<std::map<std::uint64_t, commit::VoteMsg>> buffered_votes_;
  std::vector<commit::ChallengeMsg> challenges_;
  std::vector<commit::ResponseMsg> responses_;
  std::vector<unsigned char> resp_in_;
  std::size_t resps_seen_{0};
  std::optional<commit::TfCommitOutcome> outcome_;

  // Stored wire copies for the recovery replay stream.
  Envelope opening_env_;
  bool opening_sent_{false};
  std::vector<Envelope> challenge_envs_;
  Envelope decision_env_;

  // Cooperative termination state (backup-side slots are per-sender; the
  // deferred-reply flags are per-destination cohort state).
  bool term_started_{false};
  std::uint32_t term_backup_{0};
  std::vector<unsigned char> term_live_;     ///< live set frozen at term start
  std::vector<commit::VoteMsg> term_votes_;
  std::vector<crypto::AffinePoint> term_commitments_;
  std::vector<unsigned char> term_vote_in_;
  std::size_t term_votes_seen_{0};
  std::vector<unsigned char> term_waiting_;  ///< cohort owes a term_vote
  bool term_block_built_{false};
  ledger::Block term_block_;
  crypto::AffinePoint term_agg_;
  crypto::U256 term_challenge_;
  std::vector<crypto::U256> term_responses_;
  std::vector<unsigned char> term_resp_in_;
  std::size_t term_resps_seen_{0};
  bool term_decided_{false};
  Envelope term_decision_env_;
};

/// One 2PC round (baseline, §6.1): prepare -> votes -> decision -> apply.
/// Crash-tolerant for cohort failures (vote-once + replay stream), but a
/// dead coordinator blocks the round until it recovers — 2PC has no
/// cohort-driven termination, which is exactly the paper's argument.
class TwoPhaseRound final : public RoundReactor {
 public:
  TwoPhaseRound(Cluster& cluster, std::uint64_t epoch,
                std::vector<commit::SignedEndTxn> batch, RoundObserver* observer);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void on_recover(std::uint32_t server, Outbox& out) override;
  void finalize() override;

 private:
  void restart(Outbox& out);

  std::vector<commit::SignedEndTxn> batch_;
  std::vector<commit::SignedEndTxn> pristine_batch_;
  std::vector<ServerId> cohort_ids_;
  commit::TwoPhaseCommitCoordinator coordinator_;

  std::vector<commit::PrepareVoteMsg> votes_;
  std::vector<unsigned char> vote_in_;
  std::size_t votes_seen_{0};
  std::optional<commit::TwoPhaseCommitOutcome> outcome_;

  Envelope opening_env_;
  bool opening_sent_{false};
  Envelope decision_env_;
};

/// The checkpoint CoSi round (§3.3): propose -> commit -> challenge ->
/// response. Every server contributes only after verifying the proposal
/// against its own log; one refusal sinks the checkpoint.
class CheckpointRound final : public RoundReactor {
 public:
  CheckpointRound(Cluster& cluster, std::uint64_t epoch);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void on_recover(std::uint32_t server, Outbox& out) override;
  void finalize() override;

  /// The formed-and-validated checkpoint, or nullopt (a server's log
  /// disagreed, or the aggregate co-sign failed validation).
  std::optional<ledger::Checkpoint> result() const;

 private:
  void restart(Outbox& out);

  ledger::Checkpoint cp_;
  Bytes record_;
  // secrets_[i] is witness i's round state. It survives a crash of server i
  // here in the reactor, but that is observationally equivalent to the
  // strict model: cosi_commit nonces are deterministic, so a rebuilt server
  // reprocessing the proposal regenerates the identical secret.
  std::vector<crypto::CosiCommitment> secrets_;
  std::vector<crypto::AffinePoint> commitments_;
  std::vector<unsigned char> agrees_;
  std::vector<unsigned char> commit_in_;
  std::size_t commits_seen_{0};
  std::vector<crypto::U256> responses_;
  std::vector<unsigned char> resp_in_;
  std::size_t resps_seen_{0};
  crypto::U256 challenge_;
  bool refused_{false};
  bool finalized_{false};

  Envelope propose_env_;
  bool propose_sent_{false};
  Envelope challenge_env_;
  bool challenge_sent_{false};
};

}  // namespace fides::engine
