// Log-bucketed latency histogram (HDR-histogram-style).
//
// Fixed relative precision instead of fixed absolute precision: values are
// bucketed by binary exponent with kSubBuckets linear sub-buckets per
// octave, so a microsecond-scale and a second-scale latency are both
// resolved to ~2% without choosing a range up front. Recording is O(1),
// memory is one counter per occupied bucket range, and merging two
// histograms is elementwise addition — exact and associative, which is what
// lets the experiment driver merge per-seed histograms in any order and
// report identical percentiles.
//
// Percentiles are deterministic: percentile(p) returns the upper bound of
// the bucket containing the p-th ranked sample (clamped to the exact
// maximum), so the same multiset of samples always yields byte-identical
// results — the property the bench JSON artifacts' exact-comparison gate
// relies on.
#pragma once

#include <cstdint>
#include <vector>

namespace fides::common {

class LogHistogram {
 public:
  /// Sub-buckets per power of two: 1/32 ≈ 3.1% worst-case relative error.
  static constexpr std::size_t kSubBuckets = 32;
  /// Smallest distinguishable positive value is 2^kMinExp; anything at or
  /// below it (including zero and negatives) lands in bucket 0.
  static constexpr int kMinExp = -16;
  /// Largest representable exponent; larger values clamp into the top
  /// bucket. 2^48 µs ≈ 8.9 years — far beyond any latency this records.
  static constexpr int kMaxExp = 48;

  /// Bucket index for a value. Monotone non-decreasing in `v`. A bucket
  /// covers [bucket_lower, bucket_upper): a value on an exact sub-bucket
  /// edge lands in the bucket it opens.
  static std::size_t bucket_index(double v);
  /// Upper bound of bucket `idx` (the percentile representative; >= every
  /// value indexed into the bucket).
  static double bucket_upper(std::size_t idx);
  /// Lower bound of bucket `idx` (== bucket_upper(idx - 1)).
  static double bucket_lower(std::size_t idx);
  static constexpr std::size_t num_buckets() {
    return 1 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;
  }

  /// Records one sample. Non-finite values (NaN, ±inf) are rejected — they
  /// would poison sum/min/max irreversibly — and tallied in rejected()
  /// instead so callers can notice a broken timing source.
  void record(double v);

  /// Elementwise sum of bucket counts; min/max/count fold exactly, so the
  /// merged *distribution* (and every percentile) is associative and
  /// commutative. sum/mean accumulate in floating point and may differ by
  /// ulps across merge orders; operator== ignores them for that reason.
  void merge(const LogHistogram& other);

  /// Upper bound of the bucket holding the sample of rank ceil(p/100 * n),
  /// clamped to the recorded maximum. p in [0, 100]; 0 on an empty
  /// histogram. Monotone non-decreasing in p.
  double percentile(double p) const;

  std::uint64_t count() const { return count_; }
  /// Non-finite samples dropped by record(). Folded by merge(); ignored by
  /// operator== (it compares the recorded distribution only).
  std::uint64_t rejected() const { return rejected_; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  const std::vector<std::uint64_t>& buckets() const { return counts_; }

  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  std::vector<std::uint64_t> counts_;  ///< grown on demand, indexed by bucket
  std::uint64_t count_{0};
  std::uint64_t rejected_{0};
  double sum_{0};
  double max_{0};
  double min_{0};
};

}  // namespace fides::common
