// Cluster wiring and the commit-round entry points.
//
// The cluster owns all servers and the transport, executes the client data
// path, and hands commit rounds to the engine (src/engine/): one set of
// event-driven protocol reactors runs under two interchangeable schedulers —
// the in-process scheduler (per-server FIFO queues drained concurrently on
// the cluster's thread pool) and the seeded discrete-event SimNet
// (ClusterConfig::network.mode == kSimulated).
//
// Timing model: all nodes run in one process. Every round reports two
// latencies:
//
//   * modeled_latency_us — the analytical critical path: coordinator work
//     plus the slowest cohort's compute, plus a network term (one modeled
//     leg per protocol hop in direct mode; the schedule's virtual time in
//     simulated mode). This is what lets the Figure 14 shape (more servers
//     => more parallel Merkle work => higher throughput) emerge even on a
//     single core.
//   * measured_latency_us — the wall clock the round actually took in this
//     process. With ClusterConfig::num_threads > 1 the engine executes
//     per-server work concurrently, so on multi-core hardware the measured
//     number exhibits the parallelism the model assumes.
//
// Execution is deterministic: protocol state is per-server (serialized by
// the scheduler) or per-slot (one writer), and aggregation fires on message
// counts, not arrival order — so a 1-thread and an N-thread run, and a
// depth-1 and a depth-K pipelined run, of the same batches produce
// identical decisions, blocks, ledger state, and co-signs.
#pragma once

#include <memory>
#include <optional>

#include "commit/batch.hpp"
#include "common/thread_pool.hpp"
#include "fides/client.hpp"
#include "fides/server.hpp"
#include "ledger/checkpoint.hpp"
#include "ordserv/sequencer.hpp"

namespace fides {

namespace sim {
class SimNet;
}
namespace engine {
class Scheduler;
}
namespace ordserv {
struct GroupRunResult;
}

/// Everything a commit round reports to the harness.
struct RoundMetrics {
  ledger::Decision decision{ledger::Decision::kAbort};
  std::size_t txns_in_block{0};

  double coordinator_us{0};      ///< total coordinator compute
  double cohort_critical_us{0};  ///< slowest cohort's total compute
  double mht_us{0};              ///< max per-server Merkle time in this round
  std::size_t network_legs{0};   ///< protocol message hops on the latency path

  /// critical-path compute + the network term (legs x one-way latency in
  /// direct mode; the schedule's virtual time in simulated mode).
  double modeled_latency_us{0};

  /// Wall clock this process actually spent on the round (thread-pool
  /// fan-out included, modeled network legs excluded). At pipeline depth
  /// > 1 rounds overlap, so per-round measured latencies do not sum to the
  /// run's wall time — use PipelineResult::wall_us for throughput.
  double measured_latency_us{0};

  /// Threads the round executed on (1 = sequential or simulated driver).
  std::size_t threads_used{1};

  /// Cosign health (TFCommit and checkpoint rounds).
  bool cosign_valid{false};
  std::vector<ServerId> faulty_cosigners;
  std::vector<std::pair<ServerId, std::string>> refusals;

  /// Servers observed sending two *different* authentic votes for this
  /// round — must stay empty for honest servers across any schedule,
  /// including crash/restore cycles (the vote-once safety oracle).
  std::vector<ServerId> vote_equivocators;

  /// The round was finished by the surviving cohorts after a coordinator
  /// crash (TFCommit cooperative termination) rather than by its
  /// coordinator.
  bool terminated_by_cohorts{false};

  /// Speculative pipelining: vote variants the coordinator discarded
  /// because their speculated base did not match the decided chain (each
  /// one was superseded by a deterministic re-vote). Always 0 when
  /// ClusterConfig::speculate is off.
  std::size_t spec_revotes{0};
};

/// A batched run of commit rounds: per-round metrics (in round order) plus
/// the whole call's wall time.
struct PipelineResult {
  std::vector<RoundMetrics> rounds;
  double wall_us{0};
};

/// One open-loop transaction's client-side schedule (simulated-network
/// runs): which client submits it, when on the virtual clock, and which
/// block it was packed into.
struct OpenLoopTxn {
  std::uint32_t client{0};  ///< ClientId value; also fixes session affinity
  double arrival_us{0};     ///< submit time on the SimNet virtual clock
  std::size_t round{0};     ///< index of the batch the txn was packed into
};

/// Cluster::run_open_loop outcome: the per-round engine metrics plus the
/// client-side view — per-transaction latency is the virtual time from the
/// client's submit timer to the commit response arriving back at it, so it
/// includes queueing at the coordinator, which closed-loop runs never see.
struct OpenLoopOutcome {
  PipelineResult pipeline;
  /// Submit→response virtual µs, indexed like the txn list; -1 for a txn
  /// whose response never reached its client.
  std::vector<double> latency_us;
  std::uint64_t client_sends{0};    ///< submit copies clients put on the wire
  std::uint64_t client_retries{0};  ///< re-sends after a retry timeout
  std::uint64_t dup_responses{0};   ///< response copies discarded at clients
  double span_us{0};                ///< virtual time of the last client response
};

/// A checkpoint CoSi round's outcome, with metrics populated uniformly with
/// the commit paths (modeled + measured latency, legs, threads).
struct CheckpointOutcome {
  std::optional<ledger::Checkpoint> checkpoint;
  RoundMetrics metrics;
};

/// "Every cohort verifies ... the encapsulated client request": Schnorr
/// check of every request touching `server`'s shard, counting one
/// verification per checked request and failing fast on the first bad
/// signature. One definition for every scheduler — outcomes and stats
/// accounting must stay bit-identical across them.
bool verify_touching_requests(Transport& transport, const Server& server,
                              std::span<const commit::SignedEndTxn> requests);

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();  // out of line: sim::SimNet is incomplete here

  const ClusterConfig& config() const { return config_; }
  std::uint32_t num_servers() const { return config_.num_servers; }

  Server& server(ServerId id) { return *servers_.at(id.value); }
  const Server& server(ServerId id) const { return *servers_.at(id.value); }
  ServerId coordinator_id() const { return ServerId{0}; }

  /// All servers' public keys, indexed by server id.
  const std::vector<crypto::PublicKey>& server_keys() const { return server_keys_; }

  Transport& transport() { return transport_; }

  /// The cluster's worker pool (sized by ClusterConfig::num_threads; runs
  /// everything inline when num_threads == 1).
  common::ThreadPool& pool() { return *pool_; }

  /// Threads commit rounds run on (1 when sequential).
  std::size_t round_threads() const;

  /// This cluster's per-block epoch source (an ordserv::EpochCounter, the
  /// same mechanism OrdServ uses for group-commit round ids — but its own
  /// domain): every engine round — commit or checkpoint — reserves one
  /// epoch, which tags its messages on the wire so pipelined rounds route
  /// and deduplicate correctly within this cluster's transport.
  ordserv::EpochCounter& epochs() { return epochs_; }

  /// The simulated network carrying commit-round and checkpoint traffic, or
  /// nullptr in direct-delivery mode. One instance persists across rounds:
  /// the virtual clock, RNG stream, and trace hash cover the whole run, so
  /// a multi-round schedule reproduces from ClusterConfig::network.sim.seed.
  sim::SimNet* simnet() { return simnet_.get(); }
  const sim::SimNet* simnet() const { return simnet_.get(); }

  /// Creates a client registered with the transport.
  Client& make_client();

  /// Client `id` (created by make_client; ids are dense from 0).
  Client& client(ClientId id) { return *clients_.at(id.value); }
  std::size_t client_count() const { return clients_.size(); }

  /// Which server owns an item.
  ServerId owner_of(ItemId item) const;

  // --- Crash / recovery -------------------------------------------------------

  /// Crashes a server: the Server object — shard, ledger, cohort round
  /// state, write buffer, client-message log — is destroyed outright. Only
  /// the durable round log (owned here, not by the Server) survives. In
  /// simulated mode the engine invokes this from CrashFault schedules; the
  /// public API exists so direct-mode tests drive the same path between
  /// rounds. Accessing server(id) while it is down is a programming error.
  void crash_server(ServerId id);

  /// Rebuilds the server from scratch and replays its durable round log
  /// (ledger blocks re-appended, committed writes re-applied, recorded
  /// votes reloaded for vote-once). Returns false — and leaves the server
  /// down — if the log fails its chained integrity check. Byzantine fault
  /// flags installed before the crash survive it (they model the server's
  /// code, not its memory).
  bool recover_server(ServerId id);

  bool is_crashed(ServerId id) const { return crashed_[id.value] != 0; }

  /// Lowest-id live server other than `dead` — the cohort that drives
  /// TFCommit termination when the coordinator dies. Nullopt if none.
  std::optional<ServerId> backup_for(ServerId dead) const;

  /// Transition-triggered crash points: called by the engine after `server`
  /// finishes processing a delivery of `type`; returns the matching
  /// CrashFault exactly once when its occurrence count is reached.
  std::optional<CrashFault> poll_crash_point(std::uint32_t server,
                                             const std::string& type);

  // --- Data path (called by Client) -----------------------------------------

  store::ReadResult client_read(Client& client, TxnId txn, ItemId item);
  WriteAck client_write(Client& client, TxnId txn, ItemId item, Bytes value);
  void client_begin(Client& client, TxnId txn, std::span<const ItemId> items);

  // --- Commit rounds ---------------------------------------------------------

  /// Runs one round per batch through the engine, with up to
  /// config().pipeline_depth blocks in flight (Figure 7 phases per block;
  /// ledger append order stays sequential at every depth).
  PipelineResult run_blocks(std::vector<std::vector<commit::SignedEndTxn>> batches);

  /// Open-loop run over the simulated network: clients are first-class
  /// SimNet nodes; txns[i] submits at its arrival time (client → affinity
  /// server → coordinator hops all traverse SimNet), round k is admitted
  /// once every transaction of batch k reached the coordinator, and the
  /// decision travels back to each submitting client as a signed response.
  /// Throws std::logic_error unless network.mode == kSimulated.
  OpenLoopOutcome run_open_loop(std::vector<std::vector<commit::SignedEndTxn>> batches,
                                std::vector<OpenLoopTxn> txns,
                                const sim::ClientModel& model);

  /// Runs one full TFCommit round over `batch` (Figure 7): get_vote, votes,
  /// challenge, responses, decision, log append + datastore update.
  RoundMetrics run_tfcommit_block(std::vector<commit::SignedEndTxn> batch);

  /// Runs one 2PC round over `batch` (baseline, §6.1).
  RoundMetrics run_2pc_block(std::vector<commit::SignedEndTxn> batch);

  /// Dispatches on config().protocol.
  RoundMetrics run_block(std::vector<commit::SignedEndTxn> batch);

  /// Runs batches from `builder` until it drains — pipelined when
  /// config().pipeline_depth > 1; returns per-round metrics.
  std::vector<RoundMetrics> drain(commit::BatchBuilder& builder);

  /// Group commit (§4.6) through the engine: each batch's ServerGroup runs
  /// its own TFCommit round on the message reactors under the configured
  /// scheduler, with pipeline_depth and speculate composing per group;
  /// outcomes are serialized by `sequencer` and the hash-chained stream is
  /// delivered (validated, durably logged) to every server. Bit-identical to
  /// ordserv::GroupCommitRunner's sequential lock-step run.
  ordserv::GroupRunResult run_group_blocks(
      ordserv::Sequencer& sequencer,
      std::vector<std::vector<commit::SignedEndTxn>> batches);

  /// Runs a collective-signing round over a checkpoint summarizing the
  /// current log (§3.3's checkpointing optimization): every server verifies
  /// the summary against its own log before contributing its share. The
  /// checkpoint is nullopt if any server's log disagrees (the co-sign would
  /// not form).
  CheckpointOutcome run_checkpoint_round();

  /// run_checkpoint_round() without the metrics.
  std::optional<ledger::Checkpoint> create_checkpoint();

 private:
  /// Runs fn(i) for every server index, on the pool when parallel.
  void for_each_server(const std::function<void(std::size_t)>& fn);

  /// Runs `body` with the scheduler matching config().network.mode. Direct
  /// mode requires every server to be live (mid-round crash/recovery is a
  /// simulated-schedule feature).
  template <typename Fn>
  auto with_scheduler(Fn&& body);

  ClusterConfig config_;
  Transport transport_;
  std::unique_ptr<sim::SimNet> simnet_;  ///< non-null iff network.mode == kSimulated
  // Declared before servers_: shards keep a pointer to the pool for Merkle
  // rebuilds, so the pool must outlive them.
  std::unique_ptr<common::ThreadPool> pool_;
  // Declared before servers_: servers keep a pointer into their round log,
  // which must outlive them (it IS the state that survives a crash).
  std::vector<std::unique_ptr<ledger::RoundLog>> round_logs_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<crypto::PublicKey> server_keys_;
  ordserv::EpochCounter epochs_;

  std::vector<unsigned char> crashed_;
  std::vector<FaultConfig> saved_faults_;  ///< reinstalled on recovery
  struct CrashWatch {
    CrashFault fault;
    std::uint32_t seen{0};
    bool fired{false};
  };
  std::vector<CrashWatch> crash_watch_;  ///< transition-triggered crash points
};

}  // namespace fides
