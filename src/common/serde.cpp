#include "common/serde.hpp"

namespace fides {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(BytesView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Writer::timestamp(const Timestamp& ts) {
  u64(ts.logical);
  u32(ts.client);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw DecodeError("invalid boolean");
  return v == 1;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Timestamp Reader::timestamp() {
  Timestamp ts;
  ts.logical = u64();
  ts.client = u32();
  return ts;
}

void Reader::expect_done() const {
  if (!done()) throw DecodeError("trailing bytes after decode");
}

}  // namespace fides
