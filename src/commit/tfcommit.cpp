#include "commit/tfcommit.hpp"

#include "commit/batch.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include <unordered_set>

namespace fides::commit {

namespace {

/// A deliberately wrong curve point: a valid group element that is not the
/// one the protocol expects (garbage-but-on-curve, so it passes syntactic
/// checks and is only caught by the algebra — the interesting case).
crypto::AffinePoint bogus_point() {
  const auto& curve = crypto::Curve::instance();
  return curve.to_affine(curve.mul_g(crypto::U256(0xBAD)));
}

}  // namespace

Bytes EndTxnRequest::serialize() const {
  Writer w;
  txn.encode(w);
  return std::move(w).take();
}

std::optional<EndTxnRequest> EndTxnRequest::deserialize(BytesView b) {
  try {
    Reader r(b);
    EndTxnRequest req;
    req.txn = txn::Transaction::decode(r);
    r.expect_done();
    return req;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

bool SignedEndTxn::verify(const crypto::PublicKey& client_key) const {
  return crypto::verify(client_key, request.serialize(), signature);
}

// --- Cohort -----------------------------------------------------------------

bool TfCommitCohort::involved_in(const Block& block) const {
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      if (shard_->contains(item)) return true;
    }
  }
  return false;
}

VoteMsg TfCommitCohort::handle_get_vote(const GetVoteMsg& msg, const CohortFaults& faults) {
  round_ = msg.round;
  involved_ = involved_in(msg.partial_block);
  sent_root_.reset();

  // CoSi commitment over the partial block — every cohort participates in
  // co-signing even when its shard is untouched (§4.1 simplification).
  commitment_ = crypto::cosi_commit(*keypair_, msg.partial_block.signing_bytes(), round_);

  VoteMsg vote;
  vote.cohort = id_;
  vote.sch_commitment =
      faults.corrupt_sch_commitment ? bogus_point() : commitment_->v;
  vote.involved = involved_;
  if (!involved_) {
    last_vote_ = txn::Vote::kCommit;  // uninvolved cohorts never veto
    return vote;
  }

  // Local 2PC vote: the batch must be internally non-conflicting (§4.6) and
  // every transaction touching this shard must pass OCC validation.
  txn::ValidationResult result{txn::Vote::kCommit, {}};
  if (!batch_non_conflicting(msg.partial_block.txns)) {
    result = {txn::Vote::kAbort, "block packs conflicting transactions"};
  }
  for (const auto& t : msg.partial_block.txns) {
    if (!result.ok()) break;
    result = txn::validate_occ(*shard_, t);
  }
  if (faults.always_vote_abort) result = {txn::Vote::kAbort, "byzantine veto"};

  last_vote_ = result.vote;
  vote.vote = result.vote;
  vote.abort_reason = result.reason;
  last_root_compute_us_ = 0;
  if (result.ok()) {
    // Hypothetical root: the shard state as if the block committed. The
    // datastore itself is untouched until the decision arrives.
    std::vector<std::pair<ItemId, Bytes>> writes;
    for (const auto& t : msg.partial_block.txns) {
      for (const auto& w : t.rw.writes) {
        if (shard_->contains(w.id)) writes.emplace_back(w.id, w.new_value);
      }
    }
    // Thread CPU time: the Figure 14 "MHT update time" series must not be
    // inflated by time slices when cohorts run concurrently on the pool.
    const double start = common::thread_cpu_time_us();
    sent_root_ = shard_->root_after(writes);
    last_root_compute_us_ = common::thread_cpu_time_us() - start;
    vote.root = sent_root_;
  }
  return vote;
}

ResponseMsg TfCommitCohort::handle_challenge(const ChallengeMsg& msg,
                                             const CohortFaults& faults) {
  ResponseMsg resp;
  resp.cohort = id_;

  if (!commitment_) {
    resp.refused = true;
    resp.refusal_reason = "challenge received without a pending round";
    return resp;
  }

  const Block& block = msg.block;

  // Decision/roots consistency (§4.3.1 phase 4): a commit block must carry
  // a root from every involved server; an abort block must be missing at
  // least one.
  if (block.decision == Decision::kCommit) {
    if (involved_) {
      const crypto::Digest* mine = block.root_of(id_);
      if (!faults.skip_root_check) {
        if (mine == nullptr) {
          resp.refused = true;
          resp.refusal_reason = "commit block missing my root";
          return resp;
        }
        if (!sent_root_ || !(*mine == *sent_root_)) {
          resp.refused = true;
          resp.refusal_reason = "root in block does not match the root I sent";
          return resp;
        }
        if (last_vote_ == txn::Vote::kAbort) {
          resp.refused = true;
          resp.refusal_reason = "commit decision despite my abort vote";
          return resp;
        }
      }
    }
  }
  // For abort blocks there is nothing shard-specific to check: missing
  // roots are expected ("if the decision is abort, b_i should have some
  // missing roots"), and the challenge check below still binds the cohort
  // to the abort variant it actually received.

  // Challenge correctness: ch must equal H(X_sch ‖ block) for the block *I*
  // received (Lemma 5 detection).
  if (!faults.skip_challenge_check) {
    const crypto::U256 expected =
        crypto::cosi_challenge(msg.aggregate_commitment, block.signing_bytes());
    if (!(expected == msg.challenge)) {
      resp.refused = true;
      resp.refusal_reason = "challenge does not correspond to the block I received";
      return resp;
    }
  }

  crypto::U256 r = crypto::cosi_respond(*keypair_, commitment_->secret, msg.challenge);
  if (faults.corrupt_sch_response) {
    r = crypto::U256(0xBADBAD);
  }
  resp.sch_response = r;
  return resp;
}

// --- Coordinator ------------------------------------------------------------

TfCommitCoordinator::TfCommitCoordinator(std::vector<ServerId> cohorts,
                                         std::vector<crypto::PublicKey> keys)
    : cohorts_(std::move(cohorts)), keys_(std::move(keys)) {}

Block TfCommitCoordinator::make_partial_block(std::uint64_t height,
                                              const crypto::Digest& prev_hash,
                                              std::vector<txn::Transaction> txns,
                                              std::vector<ServerId> signers) {
  Block b;
  b.height = height;
  b.prev_hash = prev_hash;
  b.txns = std::move(txns);
  b.signers = std::move(signers);
  b.decision = Decision::kAbort;  // filled in phase 3
  return b;
}

GetVoteMsg TfCommitCoordinator::start(Block partial_block,
                                      std::vector<SignedEndTxn> requests) {
  block_ = std::move(partial_block);
  commitments_.clear();
  GetVoteMsg msg;
  msg.partial_block = block_;
  msg.requests = std::move(requests);
  msg.round = block_.height;
  return msg;
}

std::vector<ChallengeMsg> TfCommitCoordinator::on_votes(std::span<const VoteMsg> votes,
                                                        const CoordinatorFaults& faults) {
  // 2PC decision rule: commit iff no involved cohort voted abort.
  bool all_commit = true;
  for (const auto& v : votes) {
    if (v.involved && v.vote == txn::Vote::kAbort) all_commit = false;
  }
  if (faults.force_commit) all_commit = true;

  block_.decision = all_commit ? Decision::kCommit : Decision::kAbort;
  block_.roots.clear();
  for (const auto& v : votes) {
    // Roots from cohorts that voted commit; on abort "the respective roots
    // will be missing in the block" (§4.3.1 phase 3).
    if (v.involved && v.root) block_.set_root(v.cohort, *v.root);
  }
  if (faults.fake_root_victim) {
    block_.set_root(*faults.fake_root_victim,
                    crypto::sha256(to_bytes("forged-root")));  // Scenario 2
  }

  commitments_.clear();
  commitments_.reserve(votes.size());
  for (const auto& v : votes) commitments_.push_back(v.sch_commitment);
  aggregate_v_ = crypto::cosi_aggregate_commitments(commitments_);
  challenge_ = crypto::cosi_challenge(aggregate_v_, block_.signing_bytes());

  ChallengeMsg honest;
  honest.challenge = challenge_;
  honest.aggregate_commitment = aggregate_v_;
  honest.block = block_;

  if (faults.equivocate == CoordinatorFaults::Equivocation::kNone) {
    // Broadcast: one message, every cohort receives the same bytes.
    std::vector<ChallengeMsg> out;
    out.push_back(std::move(honest));
    return out;
  }

  std::vector<ChallengeMsg> out(cohorts_.size(), honest);
  {
    // Build the conflicting abort variant b_a of the block (Lemma 5).
    Block abort_variant = block_;
    abort_variant.decision = Decision::kAbort;
    abort_variant.roots.clear();

    ChallengeMsg lie;
    lie.aggregate_commitment = aggregate_v_;
    lie.block = abort_variant;
    lie.challenge =
        faults.equivocate == CoordinatorFaults::Equivocation::kSameChallenge
            ? challenge_  // Case 1: challenge matches only the commit block
            : crypto::cosi_challenge(aggregate_v_, abort_variant.signing_bytes());  // Case 2

    for (const std::size_t victim : faults.equivocation_victims) {
      if (victim < out.size()) out[victim] = lie;
    }
  }
  return out;
}

TfCommitOutcome TfCommitCoordinator::on_responses(std::span<const ResponseMsg> responses) {
  TfCommitOutcome outcome;

  std::vector<crypto::U256> shares;
  shares.reserve(responses.size());
  bool any_refused = false;
  for (const auto& r : responses) {
    if (r.refused) {
      any_refused = true;
      outcome.refusals.emplace_back(r.cohort, r.refusal_reason);
    }
    shares.push_back(r.sch_response);
  }

  block_.cosign = crypto::CosiSignature{
      aggregate_v_, crypto::cosi_aggregate_responses(shares)};

  outcome.cosign_valid =
      !any_refused &&
      crypto::cosi_verify(block_.signing_bytes(), *block_.cosign, keys_);

  if (!outcome.cosign_valid) {
    // Lemma 4: binary-search-free attribution — check each share against its
    // commitment; the server(s) with invalid shares are the culprits. The
    // coordinator is incentivised to do this: an unverifiable block makes
    // the auditor suspect the coordinator itself.
    const auto faulty =
        crypto::cosi_find_faulty(commitments_, shares, challenge_, keys_);
    for (const std::size_t idx : faulty) outcome.faulty_cosigners.push_back(cohorts_[idx]);
  }

  outcome.decision = block_.decision;
  outcome.block = block_;
  return outcome;
}

std::vector<ServerId> involved_servers(const Block& block, std::uint32_t num_servers) {
  std::unordered_set<std::uint32_t> set;
  if (num_servers == 0) return {};
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      set.insert(store::shard_for_item(item, num_servers).value);
    }
  }
  std::vector<ServerId> out;
  out.reserve(set.size());
  for (const std::uint32_t s : set) out.push_back(ServerId{s});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fides::commit
