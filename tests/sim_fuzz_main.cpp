// fides_simfuzz — the standalone schedule-fuzz runner.
//
// Executes N seeded schedules (network faults × Byzantine deviations over
// SimNet) and checks every safety invariant after each one. On the first
// violation it prints the seed, the scenario, and the event-trace hash, then
// exits non-zero — the seed alone reproduces the failure:
//
//   FIDES_SIM_SEED=<seed> ctest -R sim_fuzz_test        # or
//   ./fides_simfuzz --base-seed <seed> --seeds 1
//
// Usage: fides_simfuzz [--seeds N] [--base-seed B] [--keep-going] [--pipeline]
//                      [--crash] [--spec]
// Env:   FIDES_SIM_SEEDS / FIDES_SIM_SEED override the defaults;
//        FIDES_CRASH=1 is equivalent to --crash, FIDES_SPEC=1 to --spec.
// --pipeline forces every scenario to run with pipeline_depth in 2..4 (the
// pipelined smoke sweep; oracles unchanged).
// --crash adds a seeded crash/recover cycle to every scenario (composable
// with --pipeline): a server loses all volatile state mid-schedule and
// restores from its durable round log; coordinator crashes sometimes arm
// TFCommit's cohort-driven termination. Adds the recovery oracles
// (bit-identical rejoin, no lost committed writes, vote-once).
// --spec forces speculative voting on for every TFCommit scenario (depth
// 2..8). Without it speculation is still drawn organically by ~half the
// TFCommit seeds (depth 1..8, plus an abort-heavy scripted stream that
// forces mis-speculated bases); composable with --crash and --pipeline.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/schedule_fuzz.hpp"

int main(int argc, char** argv) {
  std::uint64_t seeds = 1000;
  std::uint64_t base = 1;
  bool keep_going = false;
  fides::sim::FuzzOptions options;

  if (const char* env = std::getenv("FIDES_SIM_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("FIDES_SIM_SEED")) {
    base = std::strtoull(env, nullptr, 10);
    seeds = 1;
  }
  if (const char* env = std::getenv("FIDES_CRASH")) {
    options.with_crash = std::strcmp(env, "0") != 0;
  }
  if (const char* env = std::getenv("FIDES_SPEC")) {
    options.force_speculation = std::strcmp(env, "0") != 0;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--base-seed") == 0 && i + 1 < argc) {
      base = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--keep-going") == 0) {
      keep_going = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      options.force_pipeline = true;
    } else if (std::strcmp(argv[i], "--crash") == 0) {
      options.with_crash = true;
    } else if (std::strcmp(argv[i], "--spec") == 0) {
      options.force_speculation = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--base-seed B] [--keep-going] [--pipeline] "
                   "[--crash] [--spec]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("fides_simfuzz: %" PRIu64 " schedules, seeds [%" PRIu64 ", %" PRIu64
              ")\n",
              seeds, base, base + seeds);

  std::uint64_t failures = 0;
  std::uint64_t byzantine = 0;
  std::uint64_t detected = 0;
  std::uint64_t crashed = 0;
  std::uint64_t terminated = 0;
  std::uint64_t speculative = 0;
  std::uint64_t revotes = 0;
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    const fides::sim::FuzzOutcome out = fides::sim::run_schedule(seed, options);
    byzantine += out.byzantine ? 1 : 0;
    detected += out.detected ? 1 : 0;
    crashed += out.crashed ? 1 : 0;
    terminated += out.terminated ? 1 : 0;
    speculative += out.speculative ? 1 : 0;
    revotes += out.spec_revotes;
    if (!out.ok) {
      ++failures;
      std::printf("FAIL seed=%" PRIu64 "\n  scenario: %s\n  invariant: %s\n"
                  "  trace-hash: %s\n  reproduce: FIDES_SIM_SEED=%" PRIu64
                  " ctest -R sim_fuzz_test   (or --base-seed %" PRIu64
                  " --seeds 1)\n",
                  seed, out.scenario.c_str(), out.failure.c_str(),
                  out.trace_hash.hex().c_str(), seed, seed);
      if (!keep_going) return 1;
    }
    if ((seed - base + 1) % 100 == 0) {
      std::printf("  ... %" PRIu64 "/%" PRIu64 " schedules, %" PRIu64
                  " byzantine, %" PRIu64 " detected, %" PRIu64 " failures\n",
                  seed - base + 1, seeds, byzantine, detected, failures);
    }
  }

  std::printf("done: %" PRIu64 " schedules, %" PRIu64 " byzantine (%" PRIu64
              " detected), %" PRIu64 " crash cycles (%" PRIu64
              " cohort-terminated), %" PRIu64 " speculative (%" PRIu64
              " re-votes), %" PRIu64 " failures\n",
              seeds, byzantine, detected, crashed, terminated, speculative, revotes,
              failures);
  return failures == 0 ? 0 : 1;
}
