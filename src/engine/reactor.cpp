#include "engine/reactor.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include "crypto/cosi.hpp"

namespace fides::engine {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

NodeId server_node(std::uint32_t i) { return NodeId::server(ServerId{i}); }

/// ServerIds [0, n) — the cohort list of the global protocol (§4.1: every
/// server, including the coordinator, participates in termination).
std::vector<ServerId> all_server_ids(std::uint32_t n) {
  std::vector<ServerId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(ServerId{i});
  return ids;
}

/// Wire type of a TFCommit vote. Speculative re-votes are distinct logical
/// messages: the base key lands in the type tag so the engine's at-most-once
/// filter (keyed on sender/receiver/type/epoch) admits one copy of *each*
/// vote variant instead of swallowing the corrected vote as a duplicate.
std::string tf_vote_type(std::uint64_t base) {
  if (base == 0) return "tf_vote";
  char buf[32];
  std::snprintf(buf, sizeof buf, "tf_vote~%016llx",
                static_cast<unsigned long long>(base));
  return buf;
}

bool is_tf_vote_type(const std::string& type) {
  return type == "tf_vote" || type.compare(0, 8, "tf_vote~") == 0;
}

}  // namespace

RoundReactor::RoundReactor(Cluster& cluster, std::uint64_t epoch, RoundObserver* observer)
    : cluster_(&cluster),
      transport_(&cluster.transport()),
      n_(cluster.num_servers()),
      coord_id_(cluster.coordinator_id()),
      coord_node_(NodeId::server(cluster.coordinator_id())),
      epoch_(epoch),
      observer_(observer),
      cohort_us_(n_, 0),
      cohort_mht_us_(n_, 0),
      vote_bytes_seen_(n_) {}

Envelope RoundReactor::seal_framed(const Server& sender, const char* type,
                                   BytesView payload) const {
  return transport_->seal(sender.keypair(), NodeId::server(sender.id()), type,
                          frame_payload(epoch_, payload));
}

void RoundReactor::broadcast(Outbox& out, const Envelope& env) {
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (i > 0) transport_->count_copy(env);
    out.send(env.sender, server_node(i), env);
  }
}

void RoundReactor::note_vote_bytes(std::uint32_t src, std::uint64_t base,
                                   BytesView payload) {
  if (src >= n_) return;
  const auto [it, fresh] = vote_bytes_seen_[src].emplace(
      base, Bytes(payload.begin(), payload.end()));
  if (fresh) return;
  const Bytes& first = it->second;
  const bool same = first.size() == payload.size() &&
                    std::equal(first.begin(), first.end(), payload.begin());
  if (!same) {
    const ServerId id{src};
    auto& eq = metrics_.vote_equivocators;
    if (std::find(eq.begin(), eq.end(), id) == eq.end()) eq.push_back(id);
  }
}

void RoundReactor::decision_processed(Server& server, const char* msg_type,
                                      const ledger::Block& block,
                                      Server::ApplyResult result,
                                      const std::function<void()>& on_resolved) {
  if (result == Server::ApplyResult::kApplied) {
    server.record_decision(epoch_, msg_type, block);
  }
  // kApplied and kRejected are this round's decision being *processed* (an
  // invalid co-sign is refused, but the round is over at this server).
  // kStale was counted when the block was first applied; kFuture is an
  // out-of-order straggler the recovery replay will re-supply in order —
  // counting either would advance the watermark for work not done.
  if (result != Server::ApplyResult::kApplied &&
      result != Server::ApplyResult::kRejected) {
    return;
  }
  // Speculation re-votes (when any) must leave before the observer runs:
  // advancing the watermark can flush the *next* held decision into this
  // server inline, and the re-votes must reflect this round's state, not a
  // later one's.
  if (on_resolved) on_resolved();
  if (observer_ != nullptr) {
    observer_->on_decision_processed(epoch_, server.id().value);
  }
}

void RoundReactor::finalize() {
  metrics_.coordinator_us = coord_us_;
  metrics_.cohort_critical_us =
      *std::max_element(cohort_us_.begin(), cohort_us_.end());
  metrics_.mht_us = *std::max_element(cohort_mht_us_.begin(), cohort_mht_us_.end());
}

// --- TFCommit -----------------------------------------------------------------

TfCommitRound::TfCommitRound(Cluster& cluster, std::uint64_t epoch,
                             std::vector<commit::SignedEndTxn> batch,
                             RoundObserver* observer, SpecContext* spec)
    : RoundReactor(cluster, epoch, observer),
      batch_(std::move(batch)),
      pristine_batch_(batch_),
      cohort_ids_(all_server_ids(cluster.num_servers())),
      coordinator_(cohort_ids_, cluster.server_keys()),
      spec_(spec),
      votes_(n_),
      vote_in_(n_, 0),
      buffered_votes_(n_),
      responses_(n_),
      resp_in_(n_, 0),
      term_live_(n_, 0),
      term_votes_(n_),
      term_commitments_(n_),
      term_vote_in_(n_, 0),
      term_waiting_(n_, 0),
      term_responses_(n_),
      term_resp_in_(n_, 0) {
  metrics_.txns_in_block = batch_.size();
  metrics_.network_legs = 6;  // end_txn + get_vote + vote + challenge + response + decision
}

void TfCommitRound::start(Outbox& out) {
  commit::order_batch(batch_);
  Server& coord = cluster_->server(coord_id_);

  // Phase 1 <GetVote, SchAnnouncement> — assembled against the
  // coordinator's current log head (or, speculating, the projected chain
  // position); everything after reacts to deliveries. The partial is cached
  // so a restart after a coordinator crash re-broadcasts the identical
  // opening even though the chain may have moved on since.
  const auto t0 = Clock::now();
  if (!first_partial_.has_value()) {
    if (spec_ != nullptr) {
      const SpecContext::ChainPos base = spec_->opening_base(epoch_);
      first_partial_ = commit::TfCommitCoordinator::make_partial_block(
          base.height, base.prev_hash, commit::batch_txns(batch_), cohort_ids_);
    } else {
      first_partial_ = commit::TfCommitCoordinator::make_partial_block(
          coord.log().size(), coord.log().head_hash(), commit::batch_txns(batch_),
          cohort_ids_);
    }
  }
  commit::Block partial = *first_partial_;
  height_ = partial.height;
  commit::GetVoteMsg get_vote = coordinator_.start(std::move(partial), std::move(batch_));
  // The engine's CoSi round id is the epoch, not the height: aborted rounds
  // reuse heights, and nonce domains (and cohort round state) must never
  // collide across rounds.
  get_vote.round = epoch_;
  get_vote.spec = spec_ != nullptr;
  opening_env_ = seal_framed(coord, "tf_get_vote", get_vote.serialize());
  opening_sent_ = true;
  coord_us_ += since_us(t0);

  broadcast(out, opening_env_);
}

void TfCommitRound::handle_get_vote(NodeId dst, BytesView body, bool authentic,
                                    Outbox& out) {
  // Phase 2 <Vote, SchCommitment> at cohort dst.
  Server& server = cluster_->server(ServerId{dst.id});
  const double tc = common::thread_cpu_time_us();
  commit::VoteMsg empty_vote;
  Bytes vote_bytes = empty_vote.serialize();
  std::uint64_t base = 0;
  bool respond = true;
  if (authentic) {
    if (const auto msg = commit::GetVoteMsg::deserialize(body)) {
      const bool already_decided = server.log().size() > msg->partial_block.height;
      const Bytes* logged = server.logged_vote(epoch_);
      if (already_decided && logged == nullptr) {
        // The round closed without this server's vote (cohort termination
        // while it was down); nobody needs one now.
        respond = false;
      } else {
        if (!already_decided &&
            !server.tf_cohort().has_pending(msg->round, msg->partial_block)) {
          // First sight — or a rebuild after a crash wiped the volatile
          // round state. Recomputation is deterministic, and the bytes that
          // leave the node below come from the durable log when one exists.
          commit::CohortFaults faults = server.faults().cohort;
          if (!verify_touching_requests(*transport_, server, msg->requests)) {
            faults.always_vote_abort = true;  // refuse forged requests
          }
          commit::VoteMsg vote = server.tf_cohort().handle_get_vote(*msg, faults);
          server.add_mht_time_us(server.tf_cohort().last_root_compute_us());
          cohort_mht_us_[dst.id] =
              std::max(cohort_mht_us_[dst.id], server.tf_cohort().last_root_compute_us());
          vote_bytes = vote.serialize();
          base = vote.base_key();
        }
        if (logged != nullptr) {
          // The durable log wins over any recomputation, and the wire
          // identity must match the recorded vote's base.
          vote_bytes = *logged;
          if (const auto prev = commit::VoteMsg::deserialize(*logged)) {
            base = prev->base_key();
          }
        } else {
          vote_bytes = server.vote_once(epoch_, base, "tf_vote", std::move(vote_bytes));
        }
      }
    }
  }
  if (respond) {
    Envelope vote_env = seal_framed(server, tf_vote_type(base).c_str(), vote_bytes);
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(vote_env));
  } else {
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
  }
  // A termination query arrived before this cohort had voted: settle the
  // deferred reply now that it has.
  if (term_started_ && term_waiting_[dst.id] && server.logged_vote(epoch_) != nullptr) {
    term_waiting_[dst.id] = 0;
    send_term_vote(server, out);
  }
}

void TfCommitRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                               bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "tf_get_vote") {
    handle_get_vote(dst, body, authentic, out);

  } else if (is_tf_vote_type(env.type)) {
    // Phase 3 <null, SchChallenge> at the coordinator, once the last vote is
    // in. Votes land in cohort order regardless of arrival order. Under
    // speculation a vote is first parked per (sender, base) and only counts
    // once its base assumptions survive the decided chain.
    const auto t = Clock::now();
    if (src.id < n_) {
      // An unauthenticated or malformed vote is never ingested; the slot is
      // conservatively filled with an involved abort so the round still
      // terminates — with a deny.
      commit::VoteMsg vote;
      vote.cohort = ServerId{src.id};
      vote.involved = true;
      vote.abort_reason = "vote envelope failed authentication";
      bool parsed = false;
      if (authentic) {
        if (const auto msg = commit::VoteMsg::deserialize(body)) {
          vote = *msg;
          parsed = true;
        }
        note_vote_bytes(src.id, parsed ? vote.base_key() : 0, body);
      }
      ingest_vote(src.id, std::move(vote), out);
    }
    coord_us_ += since_us(t);

  } else if (env.type == "tf_challenge") {
    // Phase 4 <null, SchResponse> at cohort dst.
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    commit::ResponseMsg resp;
    resp.cohort = server.id();
    if (authentic) {
      if (const auto msg = commit::ChallengeMsg::deserialize(body)) {
        if (server.tf_cohort().partial_of(epoch_) == nullptr &&
            server.logged_vote(epoch_) != nullptr) {
          // Recovering cohort: a stray duplicate challenge outran the
          // replayed opening that rebuilds its round state. Stay silent —
          // the replay stream re-sends the challenge in causal order.
          cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
          return;
        }
        // The engine knows the round id from the wire frame; content-based
        // lookup cannot identify a speculative round (its stored partial
        // carries a projected chain position).
        resp = server.tf_cohort().handle_challenge(epoch_, *msg, server.faults().cohort);
        if (!resp.refused) {
          // Durable respond-once: the cohort's in-memory guard dies with a
          // crash, but the deterministic nonce does not — without this
          // record a coordinator could harvest a second response to a
          // different challenge after a restore and extract the key.
          const auto cb = msg->challenge.to_bytes_be();
          if (!server.respond_once(epoch_, Bytes(cb.begin(), cb.end()))) {
            resp = commit::ResponseMsg{};
            resp.cohort = server.id();
            resp.refused = true;
            resp.refusal_reason = "already responded to a different challenge this round";
          }
        }
      } else {
        resp.refused = true;
        resp.refusal_reason = "malformed challenge payload";
      }
    } else {
      resp.refused = true;
      resp.refusal_reason = "challenge envelope failed authentication";
    }
    Envelope resp_env = seal_framed(server, "tf_response", resp.serialize());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(resp_env));

  } else if (env.type == "tf_response") {
    // Phase 5 <Decision, null> at the coordinator, once all responses are
    // in: aggregate the co-sign and broadcast the finalized block.
    const auto t = Clock::now();
    if (src.id < n_ && !resp_in_[src.id]) {
      commit::ResponseMsg resp;
      resp.cohort = ServerId{src.id};
      resp.refused = true;
      resp.refusal_reason = "response envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::ResponseMsg::deserialize(body)) resp = *msg;
      }
      responses_[src.id] = std::move(resp);
      resp_in_[src.id] = 1;
      ++resps_seen_;
    }
    if (resps_seen_ == n_ && !outcome_.has_value()) {
      outcome_ = coordinator_.on_responses(responses_);
      const commit::DecisionMsg decision{outcome_->block};
      decision_env_ =
          seal_framed(cluster_->server(coord_id_), "tf_decision", decision.serialize());
      broadcast(out, decision_env_);
      if (observer_ != nullptr) {
        observer_->on_outcome(epoch_, outcome_->block, outcome_->cosign_valid, out);
      }
    }
    coord_us_ += since_us(t);

  } else if (env.type == "tf_decision" || env.type == "tf_term_decision") {
    // Log append + datastore update at server dst (steps 6-7). The apply
    // step rebuilds Merkle leaves — folded into mht_us.
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    const double mht_before = server.mht_time_us();
    bool processed = false;
    ledger::Block block;
    Server::ApplyResult result = Server::ApplyResult::kRejected;
    if (authentic) {
      if (const auto msg = commit::DecisionMsg::deserialize(body)) {
        result = server.apply_decision(*msg, cluster_->server_keys());
        block = msg->final_block;
        processed = true;
      }
    }
    cohort_mht_us_[dst.id] =
        std::max(cohort_mht_us_[dst.id], server.mht_time_us() - mht_before);
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    if (processed) {
      // Speculation truth feed: this decision may contradict the base of
      // later in-flight votes at this cohort — those are recomputed on the
      // corrected state and re-sent as new logical votes.
      const auto resolve_speculation = [&] {
        if (spec_ == nullptr) return;
        const bool applied_to_shard =
            result == Server::ApplyResult::kApplied && block.committed();
        auto revotes = server.tf_cohort().resolve_decision(epoch_, applied_to_shard);
        for (auto& rv : revotes) {
          const std::uint64_t base = rv.vote.base_key();
          const Bytes vb =
              server.vote_once(rv.round, base, "tf_vote", rv.vote.serialize());
          Envelope env_out = transport_->seal(server.keypair(), NodeId::server(server.id()),
                                              tf_vote_type(base).c_str(),
                                              frame_payload(rv.round, vb));
          out.send(NodeId::server(server.id()), coord_node_, std::move(env_out));
        }
      };
      decision_processed(server, env.type.c_str(), block, result, resolve_speculation);
    }

  } else if (env.type == "tf_term_query") {
    // Termination step 1: the backup asks every surviving cohort for its
    // recorded vote plus a fresh CoSi commitment.
    if (!authentic || !term_started_) return;
    Server& server = cluster_->server(ServerId{dst.id});
    if (server.logged_vote(epoch_) == nullptr) {
      term_waiting_[dst.id] = 1;  // reply once the opening reaches us
      return;
    }
    send_term_vote(server, out);

  } else if (env.type == "tf_term_vote") {
    // Termination step 2, at the backup: collect votes from the live set.
    if (!authentic || !term_started_ || dst.id != term_backup_) return;
    if (src.id >= n_ || !term_live_[src.id] || term_vote_in_[src.id]) return;
    try {
      Reader r(body);
      const Bytes vote_bytes = r.bytes();
      const Bytes commit_bytes = r.bytes();
      r.expect_done();
      const auto vote = commit::VoteMsg::deserialize(vote_bytes);
      const auto point = crypto::AffinePoint::deserialize(commit_bytes);
      if (!vote || !point) return;
      note_vote_bytes(src.id, vote->base_key(), vote_bytes);
      term_votes_[src.id] = *vote;
      term_commitments_[src.id] = *point;
      term_vote_in_[src.id] = 1;
      ++term_votes_seen_;
    } catch (const DecodeError&) {
      return;
    }
    if (term_votes_seen_ == live_expected() && !term_block_built_ && !term_decided_) {
      // All survivors reported. The coordinator's vote is unknowable, so the
      // only safe decision is abort — and no commit block can exist, because
      // a TFCommit decision needs every signer's co-sign response.
      Server& backup = cluster_->server(ServerId{term_backup_});
      const ledger::Block* partial = backup.tf_cohort().partial_of(epoch_);
      if (partial == nullptr) return;  // backup never saw the opening: wait for recovery
      ledger::Block block = *partial;
      if (spec_ != nullptr) {
        // A speculative opening carried a projected chain position; the
        // termination abort must extend the decided chain for real (the
        // pipeline sequences terminations in round order, so the decided
        // head already covers every round below this one).
        const SpecContext::ChainPos base = spec_->decided_base();
        block.height = base.height;
        block.prev_hash = base.prev_hash;
        height_ = base.height;
      }
      block.decision = ledger::Decision::kAbort;
      block.roots.clear();
      std::vector<ServerId> signers;
      std::vector<crypto::AffinePoint> commitments;
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!term_live_[i]) continue;
        signers.push_back(ServerId{i});
        commitments.push_back(term_commitments_[i]);
        const commit::VoteMsg& v = term_votes_[i];
        if (v.involved && v.root) block.set_root(v.cohort, *v.root);
      }
      block.signers = std::move(signers);
      term_agg_ = crypto::cosi_aggregate_commitments(commitments);
      term_challenge_ = crypto::cosi_challenge(term_agg_, block.signing_bytes());
      term_block_ = block;
      term_block_built_ = true;

      commit::ChallengeMsg challenge;
      challenge.challenge = term_challenge_;
      challenge.aggregate_commitment = term_agg_;
      challenge.block = term_block_;
      const Envelope env_out =
          seal_framed(backup, "tf_term_challenge", challenge.serialize());
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!term_live_[i]) continue;
        if (i != term_backup_) transport_->count_copy(env_out);
        out.send(server_node(term_backup_), server_node(i), env_out);
      }
    }

  } else if (env.type == "tf_term_challenge") {
    // Termination step 3: survivors verify the abort block and co-sign it
    // with their fresh termination nonces.
    if (!authentic) return;
    Server& server = cluster_->server(ServerId{dst.id});
    const auto msg = commit::ChallengeMsg::deserialize(body);
    if (!msg) return;
    commit::ResponseMsg resp;
    resp.cohort = server.id();
    if (server.log().size() > height_) {
      // This server already holds a decided block at this height — it must
      // never co-sign a second variant.
      resp.refused = true;
      resp.refusal_reason = "already decided this height";
    } else {
      resp = server.tf_cohort().handle_term_challenge(epoch_, *msg);
      if (!resp.refused) {
        // Respond-once for the termination nonce domain (epoch | top bit,
        // mirroring the cohort's term_round id) — same crash-window leak as
        // the commit challenge above.
        const auto cb = msg->challenge.to_bytes_be();
        if (!server.respond_once(epoch_ | (1ULL << 63), Bytes(cb.begin(), cb.end()))) {
          resp = commit::ResponseMsg{};
          resp.cohort = server.id();
          resp.refused = true;
          resp.refusal_reason = "already responded to a different challenge this round";
        }
      }
    }
    Envelope resp_env = seal_framed(server, "tf_term_response", resp.serialize());
    out.send(NodeId::server(server.id()), server_node(term_backup_),
             std::move(resp_env));

  } else if (env.type == "tf_term_response") {
    // Termination step 4, at the backup: aggregate, validate, broadcast.
    if (!authentic || !term_started_ || dst.id != term_backup_) return;
    if (src.id >= n_ || !term_live_[src.id] || term_resp_in_[src.id]) return;
    const auto msg = commit::ResponseMsg::deserialize(body);
    if (!msg) return;
    if (msg->refused) return;  // a survivor holds a decided block: stand down
    term_responses_[src.id] = msg->sch_response;
    term_resp_in_[src.id] = 1;
    ++term_resps_seen_;
    if (term_resps_seen_ == live_expected() && !term_decided_) {
      std::vector<crypto::U256> shares;
      std::vector<crypto::PublicKey> keys;
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!term_live_[i]) continue;
        shares.push_back(term_responses_[i]);
        keys.push_back(cluster_->server_keys()[i]);
      }
      ledger::Block block = term_block_;
      block.cosign =
          crypto::CosiSignature{term_agg_, crypto::cosi_aggregate_responses(shares)};
      if (!crypto::cosi_verify(block.signing_bytes(), *block.cosign, keys)) return;
      term_decided_ = true;
      metrics_.terminated_by_cohorts = true;
      term_block_ = block;
      const commit::DecisionMsg decision{block};
      term_decision_env_ = seal_framed(cluster_->server(ServerId{term_backup_}),
                                       "tf_term_decision", decision.serialize());
      broadcast(out, term_decision_env_);
      if (observer_ != nullptr) {
        observer_->on_outcome(epoch_, block, /*appended=*/true, out);
      }
    }
  }
}

void TfCommitRound::ingest_vote(std::uint32_t src, commit::VoteMsg vote, Outbox& out) {
  if (vote_in_[src]) return;  // a validated vote already holds the slot
  if (spec_ == nullptr) {
    votes_[src] = std::move(vote);
    vote_in_[src] = 1;
    ++votes_seen_;
    maybe_fire_challenge(out);
    return;
  }
  buffered_votes_[src][vote.base_key()] = std::move(vote);
  try_accept_votes(out);
}

bool TfCommitRound::spec_base_valid(const commit::VoteMsg& vote) const {
  for (const commit::SpecAssumption& a : vote.spec_assumed) {
    const std::optional<bool> actual = spec_->applied(a.epoch);
    if (!actual.has_value() || *actual != a.applied) return false;
  }
  if (vote.spec_base_root.has_value()) {
    // The "(epoch, root)" base identity: the decided chain must actually
    // have produced the shard root the cohort voted on top of.
    const crypto::Digest* root = spec_->shard_root(vote.cohort.value);
    if (root != nullptr && !(*root == *vote.spec_base_root)) return false;
  }
  return true;
}

void TfCommitRound::try_accept_votes(Outbox& out) {
  if (spec_ == nullptr || !spec_->base_resolved(epoch_)) return;
  for (std::uint32_t i = 0; i < n_; ++i) {
    auto& candidates = buffered_votes_[i];
    if (vote_in_[i]) {
      candidates.clear();
      continue;
    }
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (spec_base_valid(it->second)) {
        votes_[i] = std::move(it->second);
        vote_in_[i] = 1;
        ++votes_seen_;
        candidates.clear();
        break;
      }
      // Mis-speculated base: the decided chain contradicts what this vote
      // was computed on. Discard it — the cohort's decision handler will
      // have produced (or will produce) the corrected re-vote.
      ++metrics_.spec_revotes;
      it = candidates.erase(it);
    }
  }
  maybe_fire_challenge(out);
}

void TfCommitRound::maybe_fire_challenge(Outbox& out) {
  if (votes_seen_ != n_ || !challenges_.empty()) return;
  if (spec_ != nullptr) {
    // Pin the true chain position before the challenge block is hashed —
    // every round below has decided (base_resolved gated the acceptance).
    const SpecContext::ChainPos base = spec_->decided_base();
    coordinator_.rebase(base.height, base.prev_hash);
    height_ = base.height;
  }
  Server& coord = cluster_->server(coord_id_);
  challenges_ = coordinator_.on_votes(votes_, coord.faults().coordinator);
  // Honest coordinators broadcast one challenge; an equivocating one
  // signs a divergent envelope per cohort.
  challenge_envs_.clear();
  challenge_envs_.reserve(challenges_.size());
  for (const auto& ch : challenges_) {
    challenge_envs_.push_back(seal_framed(coord, "tf_challenge", ch.serialize()));
  }
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::size_t slot = challenges_.size() == 1 ? 0 : i;
    if (challenges_.size() == 1 && i > 0) transport_->count_copy(challenge_envs_[0]);
    out.send(coord_node_, server_node(i), challenge_envs_[slot]);
  }
}

void TfCommitRound::on_base_resolved(Outbox& out) {
  if (outcome_.has_value() || term_decided_) return;
  if (cluster_->is_crashed(coord_id_)) return;  // the round is the survivors' now
  const auto t = Clock::now();
  try_accept_votes(out);
  coord_us_ += since_us(t);
}

void TfCommitRound::send_term_vote(Server& server, Outbox& out) {
  const Bytes* vote = server.logged_vote(epoch_);
  const auto commitment = server.tf_cohort().term_commitment(epoch_);
  if (vote == nullptr || !commitment.has_value()) return;
  Writer w;
  w.bytes(*vote);
  w.bytes(commitment->serialize());
  Envelope env = seal_framed(server, "tf_term_vote", std::move(w).take());
  out.send(NodeId::server(server.id()), server_node(term_backup_), std::move(env));
}

std::size_t TfCommitRound::live_expected() const {
  std::size_t live = 0;
  for (std::uint32_t i = 0; i < n_; ++i) live += term_live_[i] ? 1 : 0;
  return live;
}

void TfCommitRound::begin_termination(Outbox& out) {
  // Already decided (the decision is on the wire and will land everywhere),
  // already terminating, or never opened: nothing for the cohorts to do.
  if (outcome_.has_value() || term_started_ || term_decided_ || !opening_sent_) return;
  const auto backup = cluster_->backup_for(coord_id_);
  if (!backup.has_value()) return;
  Server& b = cluster_->server(*backup);
  if (b.tf_cohort().partial_of(epoch_) == nullptr) return;  // backup lacks the opening
  term_started_ = true;
  term_backup_ = backup->value;
  for (std::uint32_t i = 0; i < n_; ++i) {
    term_live_[i] = cluster_->is_crashed(ServerId{i}) ? 0 : 1;
  }
  const Envelope query = seal_framed(b, "tf_term_query", Bytes{});
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!term_live_[i]) continue;
    if (i != term_backup_) transport_->count_copy(query);
    out.send(server_node(term_backup_), server_node(i), query);
  }
}

void TfCommitRound::restart(Outbox& out) {
  coordinator_ = commit::TfCommitCoordinator(cohort_ids_, cluster_->server_keys());
  votes_.assign(n_, {});
  vote_in_.assign(n_, 0);
  for (auto& b : buffered_votes_) b.clear();
  votes_seen_ = 0;
  challenges_.clear();
  challenge_envs_.clear();
  responses_.assign(n_, {});
  resp_in_.assign(n_, 0);
  resps_seen_ = 0;
  outcome_.reset();
  batch_ = pristine_batch_;
  // Deterministic re-run: the same log head, batch, recorded votes, and
  // nonces reproduce the identical block — survivors answer every re-ask
  // from their round logs, so nothing can diverge from the uncrashed run.
  start(out);
}

void TfCommitRound::on_recover(std::uint32_t server, Outbox& out) {
  const NodeId node = server_node(server);
  if (term_decided_) {
    out.send_replay(server_node(term_backup_), node, term_decision_env_);
    return;
  }
  if (server == coord_id_.value) {
    if (outcome_.has_value()) {
      // Decision already broadcast; the coordinator only missed its own copy.
      out.send_replay(coord_node_, node, decision_env_);
    } else if (term_started_) {
      // The survivors own this round now: restarting it here would race
      // their in-flight termination co-sign and fork the chain. Their
      // tf_term_decision broadcast reaches this (now live) node normally.
    } else if (opening_sent_) {
      restart(out);
    }
    return;
  }
  // Cohort catch-up, in causal order over the FIFO replay stream.
  if (outcome_.has_value()) {
    out.send_replay(coord_node_, node, decision_env_);
    return;
  }
  if (!opening_sent_) return;
  out.send_replay(coord_node_, node, opening_env_);
  if (!challenge_envs_.empty() && !resp_in_[server]) {
    const std::size_t slot = challenge_envs_.size() == 1 ? 0 : server;
    out.send_replay(coord_node_, node, challenge_envs_[slot]);
  }
}

void TfCommitRound::finalize() {
  RoundReactor::finalize();
  if (outcome_.has_value()) {
    metrics_.decision = outcome_->decision;
    metrics_.cosign_valid = outcome_->cosign_valid;
    metrics_.faulty_cosigners = outcome_->faulty_cosigners;
    metrics_.refusals = outcome_->refusals;
  } else if (term_decided_) {
    metrics_.decision = term_block_.decision;
    metrics_.cosign_valid = true;
  }
}

// --- 2PC ----------------------------------------------------------------------

TwoPhaseRound::TwoPhaseRound(Cluster& cluster, std::uint64_t epoch,
                             std::vector<commit::SignedEndTxn> batch,
                             RoundObserver* observer)
    : RoundReactor(cluster, epoch, observer),
      batch_(std::move(batch)),
      pristine_batch_(batch_),
      cohort_ids_(all_server_ids(cluster.num_servers())),
      coordinator_(cohort_ids_),
      votes_(n_),
      vote_in_(n_, 0) {
  metrics_.txns_in_block = batch_.size();
  metrics_.network_legs = 4;  // end_txn + prepare + vote + decision
}

void TwoPhaseRound::start(Outbox& out) {
  commit::order_batch(batch_);
  Server& coord = cluster_->server(coord_id_);

  const auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord.log().size(), coord.log().head_hash(), commit::batch_txns(batch_),
      cohort_ids_);
  commit::PrepareMsg prepare = coordinator_.start(std::move(partial), std::move(batch_));
  opening_env_ = seal_framed(coord, "2pc_prepare", prepare.serialize());
  opening_sent_ = true;
  coord_us_ += since_us(t0);

  broadcast(out, opening_env_);
}

void TwoPhaseRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                               bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "2pc_prepare") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    commit::PrepareVoteMsg vote;
    Bytes vote_bytes = vote.serialize();
    bool respond = true;
    if (authentic) {
      if (const auto msg = commit::PrepareMsg::deserialize(body)) {
        const bool already_decided = server.log().size() > msg->partial_block.height;
        const Bytes* logged = server.logged_vote(epoch_);
        if (already_decided && logged == nullptr) {
          respond = false;
        } else if (logged != nullptr) {
          vote_bytes = *logged;  // vote-once across restarts
        } else {
          const bool requests_ok =
              verify_touching_requests(*transport_, server, msg->requests);
          vote = server.tpc_cohort().handle_prepare(*msg);
          if (!requests_ok) {
            vote.vote = txn::Vote::kAbort;
            vote.abort_reason = "client request signature invalid";
          }
          vote_bytes = server.vote_once(epoch_, "2pc_vote", vote.serialize());
        }
      }
    }
    if (respond) {
      Envelope vote_env = seal_framed(server, "2pc_vote", vote_bytes);
      cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
      out.send(NodeId::server(server.id()), coord_node_, std::move(vote_env));
    } else {
      cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    }

  } else if (env.type == "2pc_vote") {
    const auto t = Clock::now();
    if (authentic && src.id < n_) note_vote_bytes(src.id, 0, body);
    if (src.id < n_ && !vote_in_[src.id]) {
      commit::PrepareVoteMsg vote;
      vote.cohort = ServerId{src.id};
      vote.involved = true;
      vote.abort_reason = "vote envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::PrepareVoteMsg::deserialize(body)) vote = *msg;
      }
      votes_[src.id] = std::move(vote);
      vote_in_[src.id] = 1;
      ++votes_seen_;
    }
    if (votes_seen_ == n_ && !outcome_.has_value()) {
      outcome_ = coordinator_.on_votes(votes_);
      const commit::CommitDecisionMsg decision{outcome_->block};
      decision_env_ =
          seal_framed(cluster_->server(coord_id_), "2pc_decision", decision.serialize());
      broadcast(out, decision_env_);
    }
    coord_us_ += since_us(t);

  } else if (env.type == "2pc_decision") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    bool processed = false;
    ledger::Block block;
    Server::ApplyResult result = Server::ApplyResult::kStale;
    if (authentic) {
      if (const auto msg = commit::CommitDecisionMsg::deserialize(body)) {
        result = server.apply_decision_2pc(*msg);
        block = msg->final_block;
        processed = true;
      }
    }
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    if (processed) {
      decision_processed(server, "2pc_decision", block, result);
    }
  }
}

void TwoPhaseRound::restart(Outbox& out) {
  coordinator_ = commit::TwoPhaseCommitCoordinator(cohort_ids_);
  votes_.assign(n_, {});
  vote_in_.assign(n_, 0);
  votes_seen_ = 0;
  outcome_.reset();
  batch_ = pristine_batch_;
  start(out);
}

void TwoPhaseRound::on_recover(std::uint32_t server, Outbox& out) {
  const NodeId node = server_node(server);
  if (server == coord_id_.value) {
    // 2PC has no cohort-driven termination: the whole round waited for this
    // moment (the paper's blocking argument). Resume it.
    if (outcome_.has_value()) {
      out.send_replay(coord_node_, node, decision_env_);
    } else if (opening_sent_) {
      restart(out);
    }
    return;
  }
  if (outcome_.has_value()) {
    out.send_replay(coord_node_, node, decision_env_);
    return;
  }
  if (opening_sent_ && !vote_in_[server]) {
    out.send_replay(coord_node_, node, opening_env_);
  }
}

void TwoPhaseRound::finalize() {
  RoundReactor::finalize();
  if (outcome_.has_value()) metrics_.decision = outcome_->decision;
}

// --- Checkpoint ---------------------------------------------------------------

CheckpointRound::CheckpointRound(Cluster& cluster, std::uint64_t epoch)
    : RoundReactor(cluster, epoch, nullptr),
      secrets_(n_),
      commitments_(n_),
      agrees_(n_, 0),
      commit_in_(n_, 0),
      responses_(n_),
      resp_in_(n_, 0) {
  metrics_.network_legs = 4;  // propose + commit + challenge + response
}

void CheckpointRound::start(Outbox& out) {
  Server& coord = cluster_->server(coord_id_);
  const auto t0 = Clock::now();
  cp_ = ledger::make_checkpoint(coord.log().blocks(), all_server_ids(n_));
  record_ = cp_.signing_bytes();
  propose_env_ = seal_framed(coord, "cp_propose", cp_.serialize());
  propose_sent_ = true;
  coord_us_ += since_us(t0);

  broadcast(out, propose_env_);
}

void CheckpointRound::on_deliver(NodeId src, NodeId dst, const Envelope& env,
                                 bool authentic, Outbox& out) {
  const BytesView body = unframe_payload(env.payload);

  if (env.type == "cp_propose") {
    // A server contributes its CoSi commitment only after verifying that the
    // proposal matches its own log (same height, same head hash).
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    Writer w;
    w.u32(dst.id);
    bool agree = false;
    if (authentic) {
      if (const auto prop = ledger::Checkpoint::deserialize(body)) {
        agree = server.log().size() == prop->height &&
                server.log().head_hash() == prop->head_hash;
        if (agree) {
          secrets_[dst.id] =
              crypto::cosi_commit(server.keypair(), prop->signing_bytes(),
                                  ledger::checkpoint_cosi_round(prop->height));
        }
      }
    }
    w.boolean(agree);
    if (agree) w.bytes(secrets_[dst.id].v.serialize());
    Envelope commit_env = seal_framed(server, "cp_commit", std::move(w).take());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(commit_env));

  } else if (env.type == "cp_commit") {
    // The authenticated sender — not the payload — names the slot; an
    // unauthenticated or mislabelled commit counts as a refusal.
    const auto t = Clock::now();
    if (src.id < n_ && !commit_in_[src.id]) {
      commit_in_[src.id] = 1;
      ++commits_seen_;
      if (authentic) {
        Reader r(body);
        const std::uint32_t i = r.u32();
        const bool agree = r.boolean();
        if (i == src.id && agree) {
          if (const auto pt = crypto::AffinePoint::deserialize(r.bytes())) {
            agrees_[src.id] = 1;
            commitments_[src.id] = *pt;
          }
        }
      }
    }
    if (commits_seen_ == n_ && !challenge_sent_) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        if (!agrees_[j]) refused_ = true;
      }
      if (!refused_) {
        const crypto::AffinePoint v = crypto::cosi_aggregate_commitments(commitments_);
        challenge_ = crypto::cosi_challenge(v, record_);
        cp_.cosign = crypto::CosiSignature{v, crypto::U256{}};  // r filled later
        Writer w;
        const auto cb = challenge_.to_bytes_be();
        w.raw(BytesView(cb.data(), cb.size()));
        challenge_env_ =
            seal_framed(cluster_->server(coord_id_), "cp_challenge", std::move(w).take());
        challenge_sent_ = true;
        broadcast(out, challenge_env_);
      }
    }
    coord_us_ += since_us(t);

  } else if (env.type == "cp_challenge") {
    Server& server = cluster_->server(ServerId{dst.id});
    const double tc = common::thread_cpu_time_us();
    if (!authentic) return;
    Reader r(body);
    const crypto::U256 c = crypto::U256::from_bytes_be(r.raw(32));
    Writer w;
    w.u32(dst.id);
    const auto rb =
        crypto::cosi_respond(server.keypair(), secrets_[dst.id].secret, c).to_bytes_be();
    w.raw(BytesView(rb.data(), rb.size()));
    Envelope resp_env = seal_framed(server, "cp_response", std::move(w).take());
    cohort_us_[dst.id] += common::thread_cpu_time_us() - tc;
    out.send(NodeId::server(server.id()), coord_node_, std::move(resp_env));

  } else if (env.type == "cp_response") {
    const auto t = Clock::now();
    if (src.id < n_ && !resp_in_[src.id]) {
      resp_in_[src.id] = 1;
      ++resps_seen_;
      if (authentic) {
        Reader r(body);
        const std::uint32_t i = r.u32();
        const crypto::U256 ri = crypto::U256::from_bytes_be(r.raw(32));
        // Unauthenticated => the share stays zero and the aggregate co-sign
        // fails validation, sinking the checkpoint.
        if (i == src.id) responses_[src.id] = ri;
      }
    }
    if (resps_seen_ == n_ && !finalized_) {
      finalized_ = true;
      cp_.cosign->r = crypto::cosi_aggregate_responses(responses_);
    }
    coord_us_ += since_us(t);
  }
}

void CheckpointRound::restart(Outbox& out) {
  commitments_.assign(n_, {});
  agrees_.assign(n_, 0);
  commit_in_.assign(n_, 0);
  commits_seen_ = 0;
  responses_.assign(n_, {});
  resp_in_.assign(n_, 0);
  resps_seen_ = 0;
  refused_ = false;
  finalized_ = false;
  challenge_sent_ = false;
  // Deterministic nonces make the rebuilt checkpoint — including the
  // aggregate signature bits — identical to an uncrashed run's.
  start(out);
}

void CheckpointRound::on_recover(std::uint32_t server, Outbox& out) {
  const NodeId node = server_node(server);
  if (server == coord_id_.value) {
    if (!finalized_ && propose_sent_) restart(out);
    return;
  }
  if (finalized_) return;  // the round no longer needs this witness
  if (!propose_sent_) return;
  if (!commit_in_[server]) {
    out.send_replay(coord_node_, node, propose_env_);
  }
  if (challenge_sent_ && !resp_in_[server]) {
    out.send_replay(coord_node_, node, challenge_env_);
  }
}

void CheckpointRound::finalize() { RoundReactor::finalize(); }

std::optional<ledger::Checkpoint> CheckpointRound::result() const {
  if (refused_ || !finalized_ || !cp_.cosign.has_value()) return std::nullopt;
  if (!ledger::validate_checkpoint(cp_, cluster_->server_keys())) return std::nullopt;
  return cp_;
}

}  // namespace fides::engine
