// Unit + property tests for the Merkle hash tree and Verification Objects.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "merkle/proof.hpp"

namespace fides::merkle {
namespace {

using crypto::Digest;
using crypto::sha256;

Digest leaf(std::uint64_t i) {
  return sha256(to_bytes("leaf-" + std::to_string(i)));
}

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(leaf(i));
  return leaves;
}

TEST(MerkleTree, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), leaves[0]);
}

TEST(MerkleTree, TwoLeavesMatchManualHash) {
  const auto leaves = make_leaves(2);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), crypto::sha256_pair(leaves[0], leaves[1]));
}

TEST(MerkleTree, FourLeavesMatchFigure2) {
  // The §2.3 example shape: h_{a,b,c,d} = h(h(h(a)|h(b)) | h(h(c)|h(d))).
  const auto leaves = make_leaves(4);
  MerkleTree t(leaves);
  const Digest left = crypto::sha256_pair(leaves[0], leaves[1]);
  const Digest right = crypto::sha256_pair(leaves[2], leaves[3]);
  EXPECT_EQ(t.root(), crypto::sha256_pair(left, right));
}

TEST(MerkleTree, NonPowerOfTwoPadsWithZero) {
  const auto leaves = make_leaves(3);
  MerkleTree t(leaves);
  const Digest left = crypto::sha256_pair(leaves[0], leaves[1]);
  const Digest right = crypto::sha256_pair(leaves[2], Digest::zero());
  EXPECT_EQ(t.root(), crypto::sha256_pair(left, right));
}

TEST(MerkleTree, SetLeafMatchesFullRebuild) {
  auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  leaves[7] = leaf(99);
  t.set_leaf(7, leaf(99));
  EXPECT_EQ(t.root(), MerkleTree(leaves).root());
}

TEST(MerkleTree, SetLeafRehashCountIsDepth) {
  MerkleTree t(make_leaves(16));
  EXPECT_EQ(t.set_leaf(3, leaf(50)), 4u);  // 16 leaves -> depth 4
}

TEST(MerkleTree, RootAfterDoesNotMutate) {
  MerkleTree t(make_leaves(8));
  const Digest before = t.root();
  const std::vector<std::pair<std::size_t, Digest>> updates = {{2, leaf(77)}};
  const Digest hypothetical = t.root_after(updates);
  EXPECT_EQ(t.root(), before);
  EXPECT_NE(hypothetical, before);
}

TEST(MerkleTree, RootAfterMatchesApplying) {
  MerkleTree t(make_leaves(8));
  const std::vector<std::pair<std::size_t, Digest>> updates = {
      {1, leaf(70)}, {5, leaf(71)}, {6, leaf(72)}};
  const Digest hypothetical = t.root_after(updates);
  for (const auto& [i, d] : updates) t.set_leaf(i, d);
  EXPECT_EQ(t.root(), hypothetical);
}

TEST(MerkleTree, RootAfterEmptyUpdatesIsRoot) {
  MerkleTree t(make_leaves(8));
  EXPECT_EQ(t.root_after({}), t.root());
}

TEST(MerkleTree, RootAfterLastWriteWins) {
  MerkleTree t(make_leaves(4));
  const std::vector<std::pair<std::size_t, Digest>> updates = {{2, leaf(70)},
                                                               {2, leaf(71)}};
  MerkleTree expect(make_leaves(4));
  expect.set_leaf(2, leaf(71));
  EXPECT_EQ(t.root_after(updates), expect.root());
}

TEST(MerkleTree, SiblingUpdatesInOneOverlay) {
  // Adjacent leaves share a parent; the overlay must combine them.
  MerkleTree t(make_leaves(8));
  const std::vector<std::pair<std::size_t, Digest>> updates = {{4, leaf(80)},
                                                               {5, leaf(81)}};
  const Digest hypothetical = t.root_after(updates);
  t.set_leaf(4, leaf(80));
  t.set_leaf(5, leaf(81));
  EXPECT_EQ(t.root(), hypothetical);
}

TEST(MerkleTree, EmptyTreeRootIsDomainSeparated) {
  // Regression: build_interior never runs at cap == 1, so an empty tree
  // used to expose the raw zero digest as its root — indistinguishable from
  // a one-leaf tree whose leaf happens to be Digest::zero().
  MerkleTree empty(0);
  MerkleTree one_zero_leaf(std::vector<Digest>{Digest::zero()});
  EXPECT_NE(empty.root(), one_zero_leaf.root());
  EXPECT_NE(empty.root(), Digest::zero());
  EXPECT_EQ(empty.root(), sha256(to_bytes("fides-merkle-empty-tree")));
  // The span constructor over zero leaves is the same empty tree.
  EXPECT_EQ(MerkleTree(std::vector<Digest>{}).root(), empty.root());
  // And root_after with no updates (the only legal batch) echoes it.
  EXPECT_EQ(empty.root_after({}), empty.root());
}

TEST(MerkleTree, OverflowingLeafCountThrowsLengthError) {
  // Regression: next_pow2 doubled forever once the capacity wrapped to 0.
  constexpr std::size_t kTooBig = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW(MerkleTree t(kTooBig), std::length_error);
  EXPECT_THROW(MerkleTree t(kTooBig / 2 + 2), std::length_error);
  // The guard's own boundary: a capacity of SIZE_MAX/2 + 1 would not loop,
  // but the 2*capacity node array would wrap to zero elements — counts in
  // (SIZE_MAX/4 + 1, SIZE_MAX/2 + 1] must throw too, not write out of
  // bounds into an empty vector.
  EXPECT_THROW(MerkleTree t(kTooBig / 2 + 1), std::length_error);
  EXPECT_THROW(MerkleTree t(kTooBig / 4 + 2), std::length_error);
}

TEST(MerkleTree, RootAfterChainMatchesSequentialApply) {
  MerkleTree t(make_leaves(8));
  const std::vector<std::pair<std::size_t, Digest>> b1 = {{1, leaf(70)}, {5, leaf(71)}};
  const std::vector<std::pair<std::size_t, Digest>> b2 = {{5, leaf(72)}, {6, leaf(73)}};
  const std::vector<std::pair<std::size_t, Digest>> b3 = {{1, leaf(74)}};
  const std::vector<std::span<const std::pair<std::size_t, Digest>>> batches = {b1, b2, b3};
  const Digest chained = t.root_after_chain(batches);

  MerkleTree applied(make_leaves(8));
  for (const auto& batch : {b1, b2, b3}) {
    for (const auto& [i, d] : batch) applied.set_leaf(i, d);
  }
  EXPECT_EQ(chained, applied.root());
  // Later batches must win over earlier ones per leaf.
  MerkleTree wrong_order(make_leaves(8));
  wrong_order.set_leaf(1, leaf(70));
  wrong_order.set_leaf(5, leaf(72));
  wrong_order.set_leaf(6, leaf(73));
  wrong_order.set_leaf(1, leaf(74));
  EXPECT_EQ(chained, wrong_order.root());
}

TEST(MerkleTree, RootAfterChainEmptyBatches) {
  MerkleTree t(make_leaves(8));
  EXPECT_EQ(t.root_after_chain({}), t.root());
  const std::vector<std::pair<std::size_t, Digest>> none;
  const std::vector<std::span<const std::pair<std::size_t, Digest>>> batches = {none, none};
  EXPECT_EQ(t.root_after_chain(batches), t.root());
}

TEST(MerkleTree, OutOfRangeThrows) {
  MerkleTree t(make_leaves(4));
  EXPECT_THROW(t.set_leaf(4, leaf(1)), std::out_of_range);
  EXPECT_THROW(t.leaf(4), std::out_of_range);
  EXPECT_THROW(t.sibling_path(4), std::out_of_range);
  const std::vector<std::pair<std::size_t, Digest>> bad = {{9, leaf(1)}};
  EXPECT_THROW(t.root_after(bad), std::out_of_range);
}

TEST(VerificationObject, ProvesMembership) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const VerificationObject vo = make_vo(t, i);
    EXPECT_TRUE(verify_vo(leaves[i], vo, t.root())) << "leaf " << i;
  }
}

TEST(VerificationObject, RejectsWrongValue) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  const VerificationObject vo = make_vo(t, 3);
  EXPECT_FALSE(verify_vo(leaf(999), vo, t.root()));
}

TEST(VerificationObject, RejectsWrongPosition) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  VerificationObject vo = make_vo(t, 3);
  vo.leaf_index = 2;  // right value, wrong claimed position
  EXPECT_FALSE(verify_vo(leaves[3], vo, t.root()));
}

TEST(VerificationObject, SizeIsLogN) {
  MerkleTree t(make_leaves(1024));
  EXPECT_EQ(make_vo(t, 0).siblings.size(), 10u);  // log2(1024)
}

TEST(VerificationObject, SerializationRoundTrip) {
  MerkleTree t(make_leaves(10));
  const VerificationObject vo = make_vo(t, 6);
  const auto back = VerificationObject::deserialize(vo.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, vo);
}

TEST(VerificationObject, DeserializeRejectsGarbage) {
  EXPECT_FALSE(VerificationObject::deserialize(to_bytes("junk")).has_value());
}

// Property sweep: over a range of tree sizes, random incremental updates
// stay consistent with full rebuilds and all VOs keep verifying.
class MerklePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerklePropertyTest, IncrementalUpdatesMatchRebuildAndProofsHold) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 7);
  auto leaves = make_leaves(n);
  MerkleTree t(leaves);

  for (int step = 0; step < 20; ++step) {
    const std::size_t idx = rng.uniform(n);
    const Digest d = leaf(1000 + rng.uniform(100000));
    leaves[idx] = d;
    t.set_leaf(idx, d);
  }
  EXPECT_EQ(t.root(), MerkleTree(leaves).root());

  for (int probe = 0; probe < 5; ++probe) {
    const std::size_t idx = rng.uniform(n);
    EXPECT_TRUE(verify_vo(leaves[idx], make_vo(t, idx), t.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerklePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 64, 100, 1000));

// Property sweep for the overlay paths: random update batches — duplicate
// leaves, empty batches, full-tree updates — fed through root_after and the
// chained (speculative) overlay must always agree with a tree rebuilt from
// the final leaf values. Covers single-leaf trees, where the root IS the
// sole leaf and the overlay fold degenerates.
class OverlayPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OverlayPropertyTest, OverlayAndChainMatchFreshRebuild) {
  const std::size_t n = GetParam();
  Rng rng(n * 131 + 3);

  for (int trial = 0; trial < 10; ++trial) {
    const auto original = make_leaves(n);
    MerkleTree t(original);
    auto expected = original;

    std::vector<std::vector<std::pair<std::size_t, Digest>>> batches;
    const std::size_t num_batches = rng.uniform(4);  // 0..3 (0 = empty chain)
    for (std::size_t b = 0; b < num_batches; ++b) {
      std::vector<std::pair<std::size_t, Digest>> batch;
      std::size_t updates = rng.uniform(2 * n + 1);  // up to a full double pass
      if (rng.uniform(5) == 0) updates = 0;          // empty batch
      for (std::size_t u = 0; u < updates; ++u) {
        // uniform(n) repeats indices freely => duplicate leaves in a batch.
        const std::size_t idx = rng.uniform(n);
        const Digest d = leaf(5000 + rng.uniform(1000000));
        batch.emplace_back(idx, d);
        expected[idx] = d;
      }
      batches.push_back(std::move(batch));
    }

    std::vector<std::span<const std::pair<std::size_t, Digest>>> spans;
    for (const auto& b : batches) spans.emplace_back(b);
    const Digest chained = t.root_after_chain(spans);
    EXPECT_EQ(chained, MerkleTree(expected).root()) << "n=" << n;
    EXPECT_EQ(t.root(), MerkleTree(original).root()) << "overlay must not mutate";

    // The single-batch overlay agrees with the chain of one batch.
    std::vector<std::pair<std::size_t, Digest>> flat;
    for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
    EXPECT_EQ(t.root_after(flat), chained) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlayPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 128));

}  // namespace
}  // namespace fides::merkle
