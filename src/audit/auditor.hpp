// The external auditor (§3.3, §4.5 Theorem 1: verifiable ACID).
//
// Audit procedure:
//   1. Gather the tamper-proof logs from all servers.
//   2. Identify the correct & complete log (co-sign + hash chain validation,
//      longest valid chain; Lemmas 6 & 7).
//   3. Replay the adopted log: every read must return the latest committed
//      value (Lemma 1); every conflict must respect commit-timestamp order
//      and the serialization graph must be acyclic (Lemma 3).
//   4. Authenticate datastores: for written items, ask the owning server for
//      (value, verification object) at the written version; the value must
//      match the log and the VO must fold to the collectively signed Merkle
//      root (Lemma 2). The paper folds the block's value through the VO; we
//      additionally compare the server's *claimed* value against the log,
//      which is what makes single-leaf corruption with otherwise-honest
//      siblings detectable — see DESIGN.md.
//
// Atomicity (Lemma 5) and CoSi misbehaviour (Lemma 4) surface during step 2
// as invalid co-signs / divergent blocks, or earlier inside TFCommit itself
// (refusals, faulty-cosigner attribution).
#pragma once

#include "audit/report.hpp"
#include "audit/serialization_graph.hpp"
#include "fides/cluster.hpp"
#include "ledger/chain_validation.hpp"

namespace fides::audit {

/// Datastore-audit policy (§4.2.2): audit the latest version only, audit
/// every committed version exhaustively, or skip (history checks only).
enum class DatastorePolicy : std::uint8_t {
  kNone,
  kLatestOnly,
  kExhaustive,
};

struct AuditorOptions {
  DatastorePolicy datastore{DatastorePolicy::kExhaustive};
};

class Auditor {
 public:
  explicit Auditor(Cluster& cluster, AuditorOptions options = {})
      : cluster_(&cluster), options_(options) {}

  /// Full audit: steps 1-4 above. Never mutates server state.
  AuditReport run();

  // Individual phases, exposed for targeted tests and the examples.

  /// Steps 1-2. Populates tamper/incomplete/no-valid-log violations and
  /// returns the adopted log (empty when none is valid).
  std::vector<ledger::Block> collect_and_select(AuditReport& report);

  /// Step 3 over an adopted log.
  void check_history(std::span<const ledger::Block> log, AuditReport& report);

  /// Step 4 over an adopted log.
  void check_datastores(std::span<const ledger::Block> log, AuditReport& report);

  /// Authenticates one item on one server against the signed root in
  /// `block` (the §5 Scenario 3 walkthrough). `version` must be the state
  /// the block's root represents — i.e. the block's final commit timestamp
  /// (roots are per block: they reflect all of the block's writes).
  /// `expected_value`, when given, is compared against the server's claimed
  /// value. Returns true when clean.
  bool authenticate_item(ServerId server, ItemId item, const Timestamp& version,
                         const ledger::Block& block, const Bytes* expected_value,
                         AuditReport& report);

  /// The version a block's Σroots represent: the greatest commit timestamp
  /// among its transactions.
  static Timestamp block_version(const ledger::Block& block);

 private:
  /// Validates one already-fetched proof against a block's signed root.
  bool check_proof(ServerId server, const AuditItemProof& proof,
                   const Timestamp& version, const ledger::Block& block,
                   const Bytes* expected_value, AuditReport& report);

  Cluster* cluster_;
  AuditorOptions options_;
};

}  // namespace fides::audit
