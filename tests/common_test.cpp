// Unit tests for the common substrate: bytes, hex, serde, rng, timestamps.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/timestamp.hpp"

namespace fides {
namespace {

TEST(Bytes, RoundTripString) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
  EXPECT_EQ(b.size(), 5u);
}

TEST(Bytes, Concat) {
  const Bytes a = to_bytes("ab");
  const Bytes b = to_bytes("cd");
  const Bytes c = concat({a, b});
  EXPECT_EQ(to_string(c), "abcd");
}

TEST(Bytes, ConcatEmptyParts) {
  EXPECT_TRUE(concat({}).empty());
  const Bytes a = to_bytes("x");
  EXPECT_EQ(to_string(concat({a, Bytes{}, a})), "xx");
}

TEST(Bytes, EqualConstantTime) {
  EXPECT_TRUE(equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(equal(to_bytes("abc"), to_bytes("abcd")));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  const std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "0001abff");
  const auto decoded = hex_decode(hex);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeRejectsOddLength) { EXPECT_FALSE(hex_decode("abc").has_value()); }

TEST(Hex, DecodeRejectsNonHex) { EXPECT_FALSE(hex_decode("zz").has_value()); }

TEST(Hex, DecodeAcceptsUpperCase) {
  const auto d = hex_decode("AbFf");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)[0], 0xAB);
  EXPECT_EQ((*d)[1], 0xFF);
}

TEST(Serde, IntegerRoundTrip) {
  Writer w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.boolean(true);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, BytesAndStringsRoundTrip) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("name");
  w.raw(to_bytes("xy"));
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "name");
  EXPECT_EQ(to_string(r.raw(2)), "xy");
  r.expect_done();
}

TEST(Serde, TimestampRoundTrip) {
  Writer w;
  w.timestamp(Timestamp{42, 3});
  Reader r(w.data());
  EXPECT_EQ(r.timestamp(), (Timestamp{42, 3}));
}

TEST(Serde, TruncationThrows) {
  Writer w;
  w.u32(1);
  Reader r(w.data());
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Serde, InvalidBooleanRejected) {
  const Bytes b = {0x02};
  Reader r(b);
  EXPECT_THROW(r.boolean(), DecodeError);
}

TEST(Serde, OversizedLengthPrefixThrows) {
  Writer w;
  w.u32(0xFFFFFFFF);  // length prefix far beyond the buffer
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, Uniform01Range) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BytesLengthAndVariety) {
  Rng rng(1);
  const Bytes b = rng.bytes(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end(),
                                 [](auto x, auto y) { return x != y; }) != b.end());
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(5);
  Zipf zipf(1000, 0.99);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(Zipf, SkewPrefersSmallIds) {
  Rng rng(5);
  Zipf zipf(1000, 0.99);
  std::size_t low = 0;
  const int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample(rng) < 100) ++low;
  }
  // Top 10% of ids should absorb far more than 10% of samples.
  EXPECT_GT(low, static_cast<std::size_t>(kSamples) / 4);
}

TEST(Timestamp, TotalOrder) {
  EXPECT_LT((Timestamp{1, 5}), (Timestamp{2, 0}));
  EXPECT_LT((Timestamp{2, 0}), (Timestamp{2, 1}));
  EXPECT_EQ((Timestamp{3, 3}), (Timestamp{3, 3}));
  EXPECT_TRUE(kTimestampZero.is_zero());
}

TEST(TimestampOracle, MonotonicAndObservant) {
  TimestampOracle oracle(ClientId{2});
  const Timestamp a = oracle.next();
  const Timestamp b = oracle.next();
  EXPECT_LT(a, b);
  oracle.observe(Timestamp{100, 9});
  const Timestamp c = oracle.next();
  EXPECT_GT(c.logical, 100u);
  EXPECT_EQ(c.client, 2u);
}

TEST(Ids, TaggedIdsCompareAndHash) {
  EXPECT_EQ(ServerId{3}, ServerId{3});
  EXPECT_LT(ServerId{1}, ServerId{2});
  EXPECT_EQ(std::hash<ServerId>{}(ServerId{3}), std::hash<ServerId>{}(ServerId{3}));
  EXPECT_EQ(to_string(ServerId{4}), "S4");
  EXPECT_EQ(to_string(ClientId{4}), "C4");
}

TEST(Ids, TxnIdOrderAndPrint) {
  EXPECT_LT((TxnId{1, 5}), (TxnId{2, 0}));
  EXPECT_LT((TxnId{1, 5}), (TxnId{1, 6}));
  EXPECT_EQ(to_string(TxnId{2, 9}), "T2.9");
}

}  // namespace
}  // namespace fides
