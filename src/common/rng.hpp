// Deterministic pseudo-random generator (xoshiro256**).
//
// All randomness in Fides — Schnorr nonces, workload generation, fault
// injection choices — flows through this RNG so that tests and benchmarks
// are reproducible from a seed. (A production deployment would swap the
// nonce source for a CSPRNG; the protocol logic is agnostic.)
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace fides {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fills `n` random bytes.
  Bytes bytes(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Zipfian distribution over [0, n) with skew theta (YCSB-style).
/// theta = 0 degenerates to uniform-ish; YCSB default is 0.99.
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace fides
