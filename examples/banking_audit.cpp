// Banking scenario — the paper's Figure 10 walkthrough.
//
// Two transfer transactions deduct $100 from accounts x and y. The server
// storing x then turns malicious and serves a stale balance ($1000 instead
// of $900) with up-to-date timestamps — invisible to the client, caught by
// the auditor via Lemma 1, attributed to the exact server at the exact
// block.
#include <cstdio>

#include "audit/auditor.hpp"
#include "fides/cluster.hpp"

namespace {

using namespace fides;

constexpr ItemId kAccountX = 0;  // lives on server 0
constexpr ItemId kAccountY = 1;  // lives on server 1

Bytes balance(long amount) { return to_bytes(std::to_string(amount)); }

long parse(const Bytes& b) { return std::atol(to_string(b).c_str()); }

/// Transfer: deduct `amount` from both accounts (the paper's T1/T2 shape).
commit::SignedEndTxn deduct(Cluster& cluster, Client& client, long amount) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(),
                       std::vector<ItemId>{kAccountX, kAccountY});
  const long x = parse(client.read(txn, kAccountX));
  const long y = parse(client.read(txn, kAccountY));
  std::printf("  client sees x=$%ld y=$%ld, deducting $%ld each\n", x, y, amount);
  client.write(txn, kAccountX, balance(x - amount));
  client.write(txn, kAccountY, balance(y - amount));
  return client.end(std::move(txn));
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_servers = 3;
  config.items_per_shard = 100;
  config.versioning = store::VersioningMode::kMulti;
  config.initial_value = balance(1000);
  Cluster cluster(config);
  Client& client = cluster.make_client();

  std::printf("block 10 equivalent — T1 deducts $100:\n");
  cluster.run_block({deduct(cluster, client, 100)});

  // The owner of account x starts serving stale balances: the previous
  // version's value with *current* timestamps (Figure 10's T2 row).
  Server& malicious = cluster.server(cluster.owner_of(kAccountX));
  malicious.faults().read_fault = ReadFault::kStaleValue;
  malicious.faults().read_fault_item = kAccountX;
  std::printf("\n%s is now returning stale balances for account x\n",
              to_string(malicious.id()).c_str());

  std::printf("\nblock 11 equivalent — T2 deducts another $100:\n");
  const auto metrics = cluster.run_block({deduct(cluster, client, 100)});
  std::printf("  T2 committed: %s (the lie passes OCC — timestamps are honest)\n",
              metrics.decision == ledger::Decision::kCommit ? "yes" : "no");

  std::printf("\nauditor gathers all logs and replays the history:\n");
  audit::Auditor auditor(cluster, {audit::DatastorePolicy::kNone});
  const audit::AuditReport report = auditor.run();
  std::printf("%s", report.to_string().c_str());

  const auto findings = report.of_kind(audit::ViolationKind::kIncorrectRead);
  if (findings.empty()) {
    std::printf("FAILED: the incorrect read escaped the audit\n");
    return 1;
  }
  std::printf("\n=> detected: %s returned a stale value, at block %zu — exactly\n"
              "   the Figure 10 anomaly, detected and irrefutably attributed.\n",
              to_string(*findings[0].server).c_str(), *findings[0].block);
  return 0;
}
