#include "store/write_buffer.hpp"

#include <algorithm>

namespace fides::store {

void WriteBuffer::stage(TxnId txn, ItemId item, Bytes new_value) {
  auto& writes = buffers_[txn];
  const auto it = std::find_if(writes.begin(), writes.end(),
                               [&](const BufferedWrite& w) { return w.item == item; });
  if (it != writes.end()) {
    it->new_value = std::move(new_value);
  } else {
    writes.push_back(BufferedWrite{item, std::move(new_value)});
  }
}

std::vector<BufferedWrite> WriteBuffer::staged(TxnId txn) const {
  const auto it = buffers_.find(txn);
  return it != buffers_.end() ? it->second : std::vector<BufferedWrite>{};
}

std::vector<BufferedWrite> WriteBuffer::take(TxnId txn) {
  const auto it = buffers_.find(txn);
  if (it == buffers_.end()) return {};
  std::vector<BufferedWrite> out = std::move(it->second);
  buffers_.erase(it);
  return out;
}

void WriteBuffer::discard(TxnId txn) { buffers_.erase(txn); }

}  // namespace fides::store
