#include "audit/auditor.hpp"

#include <unordered_map>

namespace fides::audit {

namespace {

/// Replay state per item: the latest committed value and timestamps implied
/// by the log prefix processed so far.
struct ReplayItem {
  std::optional<Bytes> value;  ///< nullopt until first logged write
  Timestamp rts;
  Timestamp wts;
};

}  // namespace

AuditReport Auditor::run() {
  AuditReport report;
  const std::vector<ledger::Block> log = collect_and_select(report);
  if (log.empty()) return report;
  check_history(log, report);
  if (options_.datastore != DatastorePolicy::kNone) check_datastores(log, report);
  return report;
}

std::vector<ledger::Block> Auditor::collect_and_select(AuditReport& report) {
  // Step 1: gather every server's log.
  std::vector<std::vector<ledger::Block>> logs;
  logs.reserve(cluster_->num_servers());
  for (std::uint32_t i = 0; i < cluster_->num_servers(); ++i) {
    logs.push_back(cluster_->server(ServerId{i}).audit_log());
  }

  // Step 2: validate and adopt. Detailed per-block issues feed attribution.
  const ledger::LogSelection sel =
      ledger::select_correct_log(logs, cluster_->server_keys());

  for (const std::size_t bad : sel.invalid) {
    const auto check =
        ledger::validate_chain(logs[bad], cluster_->server_keys(), true);
    for (const auto& issue : check.issues) {
      const bool cosign_issue = issue.what.find("signature") != std::string::npos;
      report.violations.push_back(Violation{
          cosign_issue ? ViolationKind::kInvalidCosign : ViolationKind::kTamperedLog,
          ServerId{static_cast<std::uint32_t>(bad)}, issue.block_index, std::nullopt,
          issue.what});
    }
    if (check.issues.empty()) {
      report.violations.push_back(Violation{ViolationKind::kTamperedLog,
                                            ServerId{static_cast<std::uint32_t>(bad)},
                                            std::nullopt, std::nullopt,
                                            "log failed validation"});
    }
  }
  for (const std::size_t shorty : sel.incomplete) {
    report.violations.push_back(
        Violation{ViolationKind::kIncompleteLog,
                  ServerId{static_cast<std::uint32_t>(shorty)}, logs[shorty].size(),
                  std::nullopt,
                  "log omits the tail: " + std::to_string(logs[shorty].size()) +
                      " blocks vs " + std::to_string(logs[*sel.chosen].size()) +
                      " in the adopted log"});
  }

  if (!sel.chosen) {
    report.violations.push_back(
        Violation{ViolationKind::kNoValidLog, std::nullopt, std::nullopt, std::nullopt,
                  "every collected log fails validation; the >=1-correct-server "
                  "assumption does not hold"});
    return {};
  }

  // Cross-check: two *valid* logs must agree block-for-block on their common
  // prefix; a divergence would mean one co-sign covers two different blocks
  // (atomicity violation, Lemma 5) — cryptographically impossible unless all
  // servers collude, but we check rather than assume.
  const auto& adopted = logs[*sel.chosen];
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (i == *sel.chosen) continue;
    const bool valid = std::find(sel.invalid.begin(), sel.invalid.end(), i) ==
                       sel.invalid.end();
    if (!valid) continue;
    const std::size_t common = std::min(adopted.size(), logs[i].size());
    for (std::size_t b = 0; b < common; ++b) {
      if (!(adopted[b].digest() == logs[i][b].digest())) {
        report.violations.push_back(Violation{
            ViolationKind::kAtomicityViolation, ServerId{static_cast<std::uint32_t>(i)},
            b, std::nullopt, "valid logs diverge: different blocks at the same height"});
        break;
      }
    }
  }

  report.adopted_log_source = ServerId{static_cast<std::uint32_t>(*sel.chosen)};
  report.blocks_audited = adopted.size();
  return adopted;
}

void Auditor::check_history(std::span<const ledger::Block> log, AuditReport& report) {
  std::unordered_map<ItemId, ReplayItem> state;
  Timestamp last_commit_ts = kTimestampZero;

  for (std::size_t b = 0; b < log.size(); ++b) {
    const ledger::Block& block = log[b];
    if (!block.committed()) continue;

    for (const auto& txn : block.txns) {
      const Timestamp ts = txn.commit_ts;
      if (!(last_commit_ts < ts)) {
        report.violations.push_back(Violation{
            ViolationKind::kSerializabilityViolation, std::nullopt, b, ts,
            "commit timestamps are not monotonically increasing along the log"});
      }
      last_commit_ts = std::max(last_commit_ts, ts);

      // Lemma 1: reads must return the latest committed value. Items never
      // written in the log prefix are unknown to the auditor (their initial
      // values predate the log) and are skipped.
      for (const auto& r : txn.rw.reads) {
        auto& item = state[r.id];
        if (item.value && !(r.value == *item.value)) {
          report.violations.push_back(Violation{
              ViolationKind::kIncorrectRead, cluster_->owner_of(r.id), b, ts,
              "read of item " + std::to_string(r.id) +
                  " returned a value that does not match the last committed write"});
        }
        // Lemma 3 / RW rule: the version read must precede the reader.
        if (!(r.wts < ts)) {
          report.violations.push_back(
              Violation{ViolationKind::kSerializabilityViolation,
                        cluster_->owner_of(r.id), b, ts,
                        "RW-conflict: read version timestamp >= commit timestamp"});
        }
        if (item.value && !(item.wts == r.wts)) {
          report.violations.push_back(Violation{
              ViolationKind::kIncorrectRead, cluster_->owner_of(r.id), b, ts,
              "read of item " + std::to_string(r.id) +
                  " reports a version timestamp inconsistent with the log"});
        }
        item.rts = std::max(item.rts, ts);
      }

      // Lemma 3 / WW + WR rules over the replayed state.
      for (const auto& w : txn.rw.writes) {
        auto& item = state[w.id];
        if (!(item.wts < ts)) {
          report.violations.push_back(
              Violation{ViolationKind::kSerializabilityViolation,
                        cluster_->owner_of(w.id), b, ts,
                        "WW-conflict: item already written at a later-or-equal "
                        "timestamp"});
        }
        if (!(item.rts < ts) && !(item.rts == ts)) {
          report.violations.push_back(
              Violation{ViolationKind::kSerializabilityViolation,
                        cluster_->owner_of(w.id), b, ts,
                        "WR-conflict: item read at a later timestamp"});
        }
        item.value = w.new_value;
        item.wts = ts;
        item.rts = std::max(item.rts, ts);
      }
    }
  }

  // Graph view of the same property: the serialization graph must be acyclic
  // and every conflict edge must agree with timestamp order.
  const SerializationGraph graph = SerializationGraph::build(log);
  if (graph.has_cycle()) {
    report.violations.push_back(Violation{ViolationKind::kSerializabilityViolation,
                                          std::nullopt, std::nullopt, std::nullopt,
                                          "serialization graph contains a cycle"});
  }
  for (const auto& edge : graph.timestamp_order_violations(log)) {
    report.violations.push_back(Violation{
        ViolationKind::kSerializabilityViolation, cluster_->owner_of(edge.item),
        edge.to.block, log[edge.to.block].txns[edge.to.index].commit_ts,
        "conflict edge on item " + std::to_string(edge.item) +
            " contradicts commit-timestamp order"});
  }
}

Timestamp Auditor::block_version(const ledger::Block& block) {
  Timestamp version = kTimestampZero;
  for (const auto& t : block.txns) version = std::max(version, t.commit_ts);
  return version;
}

bool Auditor::check_proof(ServerId server, const AuditItemProof& proof,
                          const Timestamp& version, const ledger::Block& block,
                          const Bytes* expected_value, AuditReport& report) {
  const crypto::Digest* signed_root = block.root_of(server);
  if (signed_root == nullptr) {
    report.violations.push_back(Violation{
        ViolationKind::kDatastoreCorruption, server, block.height, version,
        "committed block carries no Merkle root for the item's owner"});
    return false;
  }
  ++report.items_authenticated;

  bool clean = true;
  if (expected_value != nullptr && !(proof.value == *expected_value)) {
    report.violations.push_back(
        Violation{ViolationKind::kDatastoreCorruption, server, block.height, version,
                  "stored value of item " + std::to_string(proof.id) +
                      " differs from the committed write"});
    clean = false;
  }
  const crypto::Digest leaf = store::item_leaf_digest(proof.id, proof.value);
  if (!merkle::verify_vo(leaf, proof.vo, *signed_root)) {
    report.violations.push_back(
        Violation{ViolationKind::kDatastoreCorruption, server, block.height, version,
                  "verification object for item " + std::to_string(proof.id) +
                      " does not fold to the collectively signed root"});
    clean = false;
  }
  return clean;
}

bool Auditor::authenticate_item(ServerId server, ItemId item, const Timestamp& version,
                                const ledger::Block& block, const Bytes* expected_value,
                                AuditReport& report) {
  if (block.root_of(server) == nullptr) {
    report.violations.push_back(Violation{
        ViolationKind::kDatastoreCorruption, server, block.height, version,
        "committed block carries no Merkle root for the item's owner"});
    return false;
  }
  const AuditItemProof proof = cluster_->server(server).audit_item(item, version);
  return check_proof(server, proof, version, block, expected_value, report);
}

void Auditor::check_datastores(std::span<const ledger::Block> log, AuditReport& report) {
  if (log.empty()) return;

  // Exhaustive (per-version) auditing needs version chains; single-versioned
  // datastores can only be authenticated at their latest state (§4.2.2).
  DatastorePolicy policy = options_.datastore;
  if (policy == DatastorePolicy::kExhaustive &&
      cluster_->config().versioning == store::VersioningMode::kSingle) {
    policy = DatastorePolicy::kLatestOnly;
  }

  if (policy == DatastorePolicy::kExhaustive) {
    // Audit every committed block at its version — the multi-versioned
    // exhaustive policy of §4.2.2; identifies the *precise* version at which
    // a datastore became inconsistent (Lemma 2). Writes are grouped per
    // owning server so each server reconstructs its version tree once per
    // block, not once per item.
    for (const auto& block : log) {
      if (!block.committed()) continue;
      const Timestamp version = block_version(block);
      std::unordered_map<std::uint32_t,
                         std::vector<std::pair<ItemId, const Bytes*>>>
          per_server;
      for (const auto& t : block.txns) {
        for (const auto& w : t.rw.writes) {
          per_server[cluster_->owner_of(w.id).value].emplace_back(w.id, &w.new_value);
        }
      }
      for (const auto& [server_raw, writes] : per_server) {
        const ServerId server{server_raw};
        std::vector<ItemId> items;
        items.reserve(writes.size());
        for (const auto& [item, value] : writes) items.push_back(item);
        const auto proofs = cluster_->server(server).audit_items(items, version);
        for (std::size_t i = 0; i < writes.size(); ++i) {
          check_proof(server, proofs[i], version, block, writes[i].second, report);
        }
      }
    }
    return;
  }

  // kLatestOnly: authenticate each server's final shard state against the
  // most recent block carrying that server's root (§4.2.2, the
  // single-versioned policy). Expected values come from the last logged
  // write of each item.
  std::unordered_map<ItemId, const Bytes*> last_write;
  for (const auto& block : log) {
    if (!block.committed()) continue;
    for (const auto& t : block.txns) {
      for (const auto& w : t.rw.writes) last_write[w.id] = &w.new_value;
    }
  }
  for (std::uint32_t s = 0; s < cluster_->num_servers(); ++s) {
    const ServerId server{s};
    const ledger::Block* latest = nullptr;
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      if (it->committed() && it->root_of(server) != nullptr) {
        latest = &*it;
        break;
      }
    }
    if (latest == nullptr) continue;
    const Timestamp version = block_version(*latest);
    for (const auto& [item, value] : last_write) {
      if (cluster_->owner_of(item) == server) {
        authenticate_item(server, item, version, *latest, value, report);
      }
    }
  }
}

}  // namespace fides::audit
