#include "engine/inproc_scheduler.hpp"

namespace fides::engine {

void InProcScheduler::send(NodeId src, NodeId dst, Envelope env) {
  Item item;
  item.src = src;
  item.env = std::move(env);
  enqueue(dst, std::move(item));
}

void InProcScheduler::post(NodeId dst, std::function<void()> fn) {
  Item item;
  item.task = std::move(fn);
  enqueue(dst, std::move(item));
}

void InProcScheduler::enqueue(NodeId dst, Item item) {
  {
    common::MutexLock lock(mutex_);
    queues_[dst].push_back(std::move(item));
    if (active_.insert(dst).second) runnable_.push_back(dst);
  }
  cv_.notify_one();
}

void InProcScheduler::run(Dispatcher& dispatcher) {
  // Every executor (pool workers + this thread) runs the same claim loop;
  // with num_threads == 1 the pool spawns no workers and this degrades to a
  // deterministic sequential drain on the caller.
  pool_->parallel_for(pool_->concurrency(), [&](std::size_t) { worker(dispatcher); });
  common::MutexLock lock(mutex_);
  if (failed_) failed_ = false;  // exception already rethrown by parallel_for
}

void InProcScheduler::worker(Dispatcher& dispatcher) {
  for (;;) {
    NodeId dst;
    std::deque<Item> items;
    {
      common::MutexLock lock(mutex_);
      while (runnable_.empty() && busy_ != 0 && !failed_) cv_.wait(lock);
      if (failed_) return;
      if (runnable_.empty()) {
        // busy_ == 0 and nothing runnable: no handler is in flight, so no
        // new sends can appear — global quiescence.
        cv_.notify_all();
        return;
      }
      dst = runnable_.front();
      runnable_.pop_front();
      ++busy_;
      items.swap(queues_[dst]);
    }

    for (;;) {
      try {
        // Contiguous envelope runs go through dispatch_batch so the
        // dispatcher can pre-verify a whole claimed inbox at once; tasks are
        // serialization points and flush the pending run first.
        std::vector<Dispatcher::Delivery> run;
        run.reserve(items.size());
        const auto flush = [&] {
          if (run.empty()) return;
          if (run.size() == 1) {
            dispatcher.dispatch(run[0].src, dst, *run[0].env, *this);
          } else {
            dispatcher.dispatch_batch(run, dst, *this);
          }
          run.clear();
        };
        for (Item& item : items) {
          if (item.task) {
            flush();
            item.task();
          } else {
            run.push_back(Dispatcher::Delivery{item.src, &item.env});
          }
        }
        flush();
      } catch (...) {
        {
          common::MutexLock lock(mutex_);
          failed_ = true;
        }
        cv_.notify_all();
        throw;  // parallel_for captures and rethrows on the caller
      }
      common::MutexLock lock(mutex_);
      std::deque<Item>& queue = queues_[dst];
      if (!queue.empty()) {
        // Handlers (possibly our own) sent more to this dst while we were
        // draining: keep the claim so per-dst FIFO order is preserved.
        items.clear();
        items.swap(queue);
        continue;
      }
      active_.erase(dst);
      if (--busy_ == 0 && runnable_.empty()) cv_.notify_all();
      break;
    }
  }
}

}  // namespace fides::engine
