#include "fides/transport.hpp"

#include "common/serde.hpp"

namespace fides {

std::string to_string(NodeId n) {
  return (n.kind == NodeId::Kind::kServer ? "S" : "C") + std::to_string(n.id);
}

void Transport::register_node(NodeId node, crypto::PublicKey key) {
  registry_[node] = std::move(key);
}

const crypto::PublicKey* Transport::key_of(NodeId node) const {
  const auto it = registry_.find(node);
  return it != registry_.end() ? &it->second : nullptr;
}

Bytes Transport::signing_preimage(const Envelope& env) {
  // Bind sender identity and type tag into the signature so an envelope
  // cannot be replayed as a different message kind or attributed elsewhere.
  Writer w;
  w.u8(static_cast<std::uint8_t>(env.sender.kind));
  w.u32(env.sender.id);
  w.str(env.type);
  w.bytes(env.payload);
  return std::move(w).take();
}

Envelope Transport::seal(const crypto::KeyPair& sender_key, NodeId sender,
                         std::string type, Bytes payload) {
  Envelope env;
  env.sender = sender;
  env.type = std::move(type);
  env.payload = std::move(payload);
  ++stats_.messages;
  stats_.bytes += env.payload.size();
  if (crypto_enabled()) {
    env.signature = sender_key.sign(signing_preimage(env));
    ++stats_.signatures_created;
  }
  return env;
}

void Transport::count_copy(const Envelope& env) {
  ++stats_.messages;
  stats_.bytes += env.payload.size();
}

bool Transport::open(const Envelope& env, std::string_view expected_type) {
  if (env.type != expected_type) {
    ++stats_.rejected;
    return false;
  }
  if (!crypto_enabled()) return true;
  const crypto::PublicKey* key = key_of(env.sender);
  if (key == nullptr) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.signatures_verified;
  if (!crypto::verify(*key, signing_preimage(env), env.signature)) {
    ++stats_.rejected;
    return false;
  }
  return true;
}

std::vector<unsigned char> Transport::open_all(std::span<const Envelope> envelopes,
                                               std::string_view expected_type,
                                               common::ThreadPool* pool) {
  std::vector<unsigned char> ok(envelopes.size(), 0);
  auto verify_one = [&](std::size_t i) {
    ok[i] = open(envelopes[i], expected_type) ? 1 : 0;
  };
  if (pool != nullptr && pool->parallel()) {
    pool->parallel_for(envelopes.size(), verify_one);
  } else {
    for (std::size_t i = 0; i < envelopes.size(); ++i) verify_one(i);
  }
  return ok;
}

}  // namespace fides
