#include "engine/pipeline.hpp"

#include <chrono>
#include <deque>
#include <set>
#include <stdexcept>
#include <tuple>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "engine/dispatch_util.hpp"
#include "engine/reactor.hpp"
#include "sim/simnet.hpp"

namespace fides::engine {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// Opening messages start a round at a cohort; they are the only messages
/// that can causally overtake the previous round's decision, so they are
/// the only ones the watermark gates.
bool opens_round(const std::string& type) {
  return type == "tf_get_vote" || type == "2pc_prepare";
}

/// Decision-shaped TFCommit messages. The speculative pipeline gates these
/// per server (decisions apply strictly in round order — with the opening
/// gate dropped, a later round's decision can otherwise overtake an earlier
/// one on a reordering network and be lost as kFuture).
bool is_tf_decision(const std::string& type) {
  return type == "tf_decision" || type == "tf_term_decision";
}

/// Phase traffic whose open() verdict may be hoisted out of dispatch_impl:
/// the coordinator's vote/response inbox. These types are never gated or
/// held (only openings and, under speculation, decisions are), so a
/// pre-verified envelope reaches deliver() exactly as the serial path would.
bool batchable_inbox(const std::string& type) {
  return type == "tf_response" || type == "2pc_vote" || type.rfind("tf_vote", 0) == 0;
}

class CommitPipeline final : public Dispatcher, public RoundObserver, public SpecContext {
 public:
  /// `external_admission`: rounds additionally wait for admit_batch(k) —
  /// the open-loop driver's "batch k fully arrived at the coordinator"
  /// signal. Off (the default) reproduces the classic pipeline: every batch
  /// is ready from the start.
  CommitPipeline(Cluster& cluster, Protocol protocol,
                 std::vector<std::vector<commit::SignedEndTxn>> batches,
                 Scheduler& sched, bool external_admission = false)
      : cluster_(&cluster),
        sched_(&sched),
        n_(cluster.num_servers()),
        coord_(cluster.coordinator_id().value),
        depth_(std::max<std::uint32_t>(1, cluster.config().pipeline_depth)),
        speculate_(cluster.config().speculate && protocol == Protocol::kTfCommit),
        base_height_(cluster.server(cluster.coordinator_id()).log().size()),
        watermark_(n_, 0),
        opened_(n_, 0),
        held_(n_),
        held_dec_(n_),
        dec_height_(base_height_),
        dec_head_(cluster.server(cluster.coordinator_id()).log().head_hash()),
        shard_roots_(n_),
        batch_ready_(batches.size(), external_admission ? 0 : 1) {
    // A server whose durable log is already past this pipeline's base (a
    // restarted serverd process rejoining a socket run mid-stream) has, by
    // construction, processed every decision up to its log head; its
    // watermarks start there so the coordinator's replay stream — which
    // resumes at that height — is not gated forever behind rounds this
    // process will never see again. Single-process runs start every live
    // server at base_height_, making this a no-op there.
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (cluster.is_crashed(ServerId{i})) continue;
      const std::size_t h = cluster.server(ServerId{i}).log().size();
      if (h > base_height_) watermark_[i] = opened_[i] = h - base_height_;
    }
    if (speculate_) {
      // Authoritative shard roots start from the live servers' trees; a
      // committed block's Σroots advance them as rounds decide.
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!cluster.is_crashed(ServerId{i})) {
          shard_roots_[i] = cluster.server(ServerId{i}).shard().merkle_root();
        }
      }
    }
    rounds_.reserve(batches.size());
    for (auto& batch : batches) {
      const std::uint64_t epoch = cluster.epochs().reserve();
      RoundState rs;
      rs.epoch = epoch;
      if (protocol == Protocol::kTfCommit) {
        rs.reactor = std::make_unique<TfCommitRound>(cluster, epoch, std::move(batch),
                                                     this, speculate_ ? this : nullptr);
      } else {
        rs.reactor = std::make_unique<TwoPhaseRound>(cluster, epoch, std::move(batch), this);
      }
      epoch_to_round_.emplace(epoch, rounds_.size());
      rounds_.push_back(std::move(rs));
    }
  }

  PipelineResult run() {
    // Event-loop schedulers that wait on remote processes (sockets) cannot
    // rely on quiescence; they poll this predicate to know when every round
    // completed. Quiescence-driven schedulers ignore it.
    sched_->set_completion([this] {
      common::MutexLock lock(mutex_);
      return completed_ == rounds_.size();
    });
    begin();
    sched_->run(*this);
    return collect();
  }

  /// Starts the clock and admits whatever is ready. The open-loop driver
  /// calls this itself because *its* dispatcher (the client session), not
  /// the pipeline, must be what the scheduler runs.
  void begin() {
    t0_ = Clock::now();
    launch_ready();
  }

  /// Open-loop admission signal: batch k is fully assembled at the
  /// coordinator. Idempotent.
  void admit_batch(std::size_t k) EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      if (k >= batch_ready_.size() || batch_ready_[k] != 0) return;
      batch_ready_[k] = 1;
    }
    launch_ready();
  }

  /// Fired (outside the pipeline lock) every time `server` finishes
  /// processing round k's decision — the open-loop session's cue to send
  /// client responses when `server` is the coordinator.
  void set_decision_hook(std::function<void(std::size_t, std::uint32_t)> hook) {
    decision_hook_ = std::move(hook);
  }

  PipelineResult collect() EXCLUDES(mutex_) {
    PipelineResult result;
    // Called at quiescence (nothing concurrent remains), but holding the
    // lock for the whole harvest keeps the analysis exact and costs nothing;
    // finalize() is pure metric folding and never re-enters the pipeline.
    common::MutexLock lock(mutex_);
    if (completed_ != rounds_.size()) {
      throw std::logic_error("commit pipeline stalled: " +
                             std::to_string(rounds_.size() - completed_) +
                             " round(s) incomplete at quiescence");
    }
    const double one_way = cluster_->config().network.one_way_latency_us;
    for (auto& rs : rounds_) {
      rs.reactor->finalize();
      RoundMetrics& m = rs.reactor->metrics();
      m.threads_used = sched_->concurrency();
      m.measured_latency_us =
          std::chrono::duration<double, std::micro>(rs.wall_end - rs.wall_start).count();
      // Direct mode: analytic network term (legs x one-way latency). Sim
      // mode: the virtual time the round's schedule actually took.
      const double net_term =
          rs.has_virtual_time ? rs.virtual_end_us - rs.virtual_start_us
                              : static_cast<double>(m.network_legs) * one_way;
      m.modeled_latency_us = m.coordinator_us + m.cohort_critical_us + net_term;
      result.rounds.push_back(std::move(m));
    }
    result.wall_us = since_us(t0_);
    return result;
  }

  // --- Dispatcher -------------------------------------------------------------

  void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/false);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/true);
  }

  /// A scheduler drained one destination's queue: verify the batchable
  /// envelopes (the coordinator's accumulated vote/response inbox) as one
  /// RLC aggregate fanned over the cluster pool, then run the normal serial
  /// dispatch loop with the cached verdicts. Delivery order, gating, and
  /// dedup are untouched — only the signature checks are hoisted off the
  /// destination actor.
  void dispatch_batch(std::span<const Delivery> batch, NodeId dst, Outbox& out) override {
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    std::vector<unsigned char> verdicts;
    std::vector<std::size_t> slot;
    const bool dst_crashed =
        dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id});
    if (cluster_->transport().batch_verify() && cluster_->transport().crypto_enabled() &&
        !dst_crashed) {
      std::vector<const Envelope*> envs;
      slot.assign(batch.size(), kNoSlot);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batchable_inbox(batch[i].env->type)) {
          slot[i] = envs.size();
          envs.push_back(batch[i].env);
        }
      }
      if (envs.size() >= 2) {
        verdicts = cluster_->transport().open_batch(envs, &cluster_->pool());
      } else {
        slot.clear();
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const unsigned char* v =
          (!slot.empty() && slot[i] != kNoSlot) ? &verdicts[slot[i]] : nullptr;
      dispatch_impl(batch[i].src, dst, *batch[i].env, out, /*replay=*/false, v);
    }
  }

  void on_control(const ControlEvent& ev, Outbox& out) override {
    switch (ev.kind) {
      case ControlEvent::Kind::kCrash:
        handle_crash(ev.node);
        break;
      case ControlEvent::Kind::kRecover:
        handle_recover(ev.node, out);
        break;
      case ControlEvent::Kind::kCoordinatorTimeout: {
        // The probe raced recovery; only a still-dead coordinator triggers
        // cohort-driven termination.
        if (!cluster_->is_crashed(ServerId{ev.node.id})) break;
        std::vector<RoundReactor*> term;
        {
          common::MutexLock lock(mutex_);
          if (!speculate_) {
            for (RoundState& rs : rounds_) {
              if (rs.started && rs.processed < n_) term.push_back(rs.reactor.get());
            }
          } else {
            // Speculative windows can hold several undecided rounds; their
            // co-signed aborts must chain, so terminations run one at a time
            // in round order (on_outcome starts the next).
            term_mode_ = true;
            if (RoundReactor* r = next_termination_locked()) term.push_back(r);
          }
        }
        // Reactors run outside the lock, like every delivery path: their
        // handlers call back into the observer/SpecContext, which locks.
        for (RoundReactor* r : term) r->begin_termination(out);
        break;
      }
      case ControlEvent::Kind::kPeerApplied: {
        // A remote process reported that the server it hosts processed a
        // round's decision. Control-plane input from the wire is untrusted:
        // validate both coordinates before touching any table.
        if (ev.node.kind != NodeId::Kind::kServer || ev.node.id >= n_) break;
        bool known = false;
        {
          common::MutexLock lock(mutex_);
          known = epoch_to_round_.find(ev.tag) != epoch_to_round_.end();
        }
        if (known) on_decision_processed(ev.tag, ev.node.id);
        break;
      }
      case ControlEvent::Kind::kTimer:
        break;  // client-session clocks; never routed to the pipeline
    }
  }

  // --- RoundObserver ----------------------------------------------------------

  void on_decision_processed(std::uint64_t epoch, std::uint32_t server) override {
    std::vector<Held> flush;
    std::size_t new_watermark = 0;
    std::size_t round_index = 0;
    bool fresh = false;
    {
      common::MutexLock lock(mutex_);
      const auto it_ep = epoch_to_round_.find(epoch);
      if (it_ep == epoch_to_round_.end() || server >= n_) return;
      const std::size_t k = it_ep->second;
      round_index = k;
      // Decisions are processed in round order at every server (gated —
      // round k+1's opening in lock-step mode, round k+1's decision under
      // speculation), so the watermark is a count.
      watermark_[server] = std::max<std::size_t>(watermark_[server], k + 1);
      new_watermark = watermark_[server];
      // Flush everything now admissible. The queue is scanned, not just its
      // head: a reordering network can enqueue round k+2 ahead of k+1.
      auto& hq = speculate_ ? held_dec_[server] : held_[server];
      for (auto it = hq.begin(); it != hq.end();) {
        if (it->round <= watermark_[server]) {
          flush.push_back(std::move(*it));
          it = hq.erase(it);
        } else {
          ++it;
        }
      }
      fresh = mark_processed_locked(k, server);
    }
    launch_ready();
    // Flushed messages run here, on `server`'s serialized context (this
    // callback sits inside that server's decision handler), preserving the
    // in-order processing the gate exists for.
    for (Held& h : flush) {
      RoundReactor* reactor = nullptr;
      {
        common::MutexLock lock(mutex_);
        reactor = rounds_[h.round].reactor.get();
      }
      deliver(*reactor, h.src, h.dst, h.env, sched_->outbox());
    }
    if (speculate_) {
      // Processing a decision implies the round's opening phase is behind
      // this server (decided rounds never replay their openings, so the
      // opening watermark must ride on the apply watermark or recovery
      // would gate held openings forever).
      note_opened(server, new_watermark - 1, sched_->outbox());
    }
    if (fresh) {
      // First time this (round, server) pair completed: tell the substrate
      // (the socket scheduler forwards it to the coordinator process as a
      // kPeerApplied frame) and the open-loop session.
      sched_->notify_applied(server, epoch);
      if (decision_hook_) decision_hook_(round_index, server);
    }
  }

  void on_outcome(std::uint64_t epoch, const ledger::Block& block, bool appended,
                  Outbox& out) override {
    if (!speculate_) return;
    RoundReactor* next = nullptr;
    bool terminate = false;
    {
      common::MutexLock lock(mutex_);
      const std::size_t k = epoch_to_round_.at(epoch);
      RoundState& rs = rounds_[k];
      if (rs.decided) return;  // a restarted round re-decides deterministically
      rs.decided = true;
      rs.applied = appended && block.committed();
      if (appended) {
        dec_height_ = block.height + 1;
        dec_head_ = block.digest();
      }
      if (rs.applied) {
        for (const auto& r : block.roots) {
          if (r.server.value < n_) shard_roots_[r.server.value] = r.root;
        }
      }
      ++decided_rounds_;
      if (decided_rounds_ < rounds_.size()) {
        RoundState& nrs = rounds_[decided_rounds_];
        if (nrs.started && nrs.processed < n_) next = nrs.reactor.get();
      }
      terminate = term_mode_ && cluster_->is_crashed(ServerId{coord_});
    }
    // Outside the lock: the next round validates its buffered votes (and
    // may fire its challenge) — or, mid-termination, the survivors take it
    // over now that its chain position is pinned.
    if (next != nullptr) {
      if (terminate) {
        next->begin_termination(out);
      } else {
        next->on_base_resolved(out);
      }
    }
  }

  // --- SpecContext ------------------------------------------------------------

  SpecContext::ChainPos opening_base(std::uint64_t epoch) override {
    common::MutexLock lock(mutex_);
    const std::size_t k = epoch_to_round_.at(epoch);
    const std::size_t undecided = k - std::min(decided_rounds_, k);
    ChainPos pos;
    // Projection: every undecided round below appends one block. A rejected
    // block (invalid co-sign) makes later projected heights overshoot —
    // harmless, cohorts treat speculative heights as advisory and the
    // challenge carries the real position.
    pos.height = dec_height_ + undecided;
    pos.prev_hash = undecided == 0 ? dec_head_ : crypto::Digest::zero();
    return pos;
  }

  bool base_resolved(std::uint64_t epoch) const override {
    common::MutexLock lock(mutex_);
    return decided_rounds_ >= epoch_to_round_.at(epoch);
  }

  std::optional<bool> applied(std::uint64_t epoch) const override {
    common::MutexLock lock(mutex_);
    const auto it = epoch_to_round_.find(epoch);
    if (it == epoch_to_round_.end()) return std::nullopt;
    const RoundState& rs = rounds_[it->second];
    if (!rs.decided) return std::nullopt;
    return rs.applied;
  }

  const crypto::Digest* shard_root(std::uint32_t server) const override {
    // Called on the coordinator's serialized context, but on_outcome writes
    // the roots from whichever worker decides the round — take the lock.
    // The returned pointer stays valid: the vector is sized in the ctor and
    // an engaged optional's payload address never changes on assignment.
    common::MutexLock lock(mutex_);
    if (server >= n_ || !shard_roots_[server].has_value()) return nullptr;
    return &*shard_roots_[server];
  }

  SpecContext::ChainPos decided_base() const override {
    common::MutexLock lock(mutex_);
    return ChainPos{dec_height_, dec_head_};
  }

 private:
  struct RoundState {
    std::unique_ptr<RoundReactor> reactor;
    std::uint64_t epoch{0};
    bool started{false};
    std::uint32_t processed{0};               ///< servers that handled the decision
    std::vector<unsigned char> processed_by;  ///< which ones (lazily sized to n)
    bool decided{false};         ///< outcome exists (speculative bookkeeping)
    bool applied{false};         ///< block committed with a valid co-sign
    Clock::time_point wall_start;
    Clock::time_point wall_end;
    bool has_virtual_time{false};
    double virtual_start_us{0};
    double virtual_end_us{0};
  };
  struct Held {
    NodeId src;
    NodeId dst;
    Envelope env;
    std::size_t round{0};
  };

  /// Records that `server` processed round k's decision; true on the first
  /// call for this (round, server). Duplicates — a re-delivered kPeerApplied
  /// frame, or recovery reconciliation racing the ACK it reconciles — are
  /// absorbed instead of double-counting toward completion.
  bool mark_processed_locked(std::size_t k, std::uint32_t server) REQUIRES(mutex_) {
    RoundState& rs = rounds_[k];
    if (rs.processed_by.empty()) rs.processed_by.assign(n_, 0);
    if (rs.processed_by[server] != 0) return false;
    rs.processed_by[server] = 1;
    if (++rs.processed == n_) {
      rs.wall_end = Clock::now();
      if (const auto v = sched_->virtual_now_us()) rs.virtual_end_us = *v;
      ++completed_;
    }
    return true;
  }

  /// `verdict`, when non-null, is the pre-computed open() result for this
  /// envelope (from dispatch_batch's aggregate verification); deliver() then
  /// skips its own signature check.
  void dispatch_impl(NodeId src, NodeId dst, const Envelope& env, Outbox& out,
                     bool replay, const unsigned char* verdict = nullptr)
      EXCLUDES(mutex_) {
    const auto epoch = peek_epoch(env.payload);
    if (!epoch.has_value()) return;  // not an engine frame; unreachable for sealed traffic
    RoundReactor* reactor = nullptr;
    std::size_t round_index = 0;
    {
      common::MutexLock lock(mutex_);
      // Replay deliveries are the recovery catch-up stream: deliberate
      // re-sends of tuples the filter has usually seen. Record them (so any
      // further normal copy is still deduplicated) but never drop them.
      const bool fresh = dedup_.first(src, dst, env.type, *epoch);
      if (!fresh && !replay) return;
      const auto it = epoch_to_round_.find(*epoch);
      if (it == epoch_to_round_.end()) return;  // stale epoch from another run
      const std::size_t k = it->second;
      round_index = k;
      // Engine traffic for round k proves its coordinator — possibly in
      // another process — started it; a serverd's recovery scan needs the
      // flag to know which rounds are live. No-op in single-process runs,
      // where launch_ready set it before the first send.
      rounds_[k].started = true;
      if (dst.kind == NodeId::Kind::kServer) {
        if (opens_round(env.type)) {
          // Lock-step: hold round k's opening until k-1's decision applied
          // (votes build on applied state). Speculating: hold only until
          // the previous *opening* was processed — votes build on the
          // pending overlay, but the stack must grow in round order.
          if (speculate_ && watermark_[dst.id] > k) {
            // The round is already over at this server (it processed the
            // decision — a terminated round, or recovery replay): a late
            // opening must not enter the pending stack.
            return;
          }
          const std::size_t gate = speculate_ ? opened_[dst.id] : watermark_[dst.id];
          if (gate < k) {
            held_[dst.id].push_back(Held{src, dst, env, k});
            return;
          }
        } else if (speculate_ && is_tf_decision(env.type) && watermark_[dst.id] < k) {
          // With the opening gate dropped, decisions can overtake each
          // other; they must still apply strictly in round order.
          held_dec_[dst.id].push_back(Held{src, dst, env, k});
          return;
        }
      }
      reactor = rounds_[k].reactor.get();
    }
    deliver(*reactor, src, dst, env, out, verdict);
    if (speculate_ && opens_round(env.type) && dst.kind == NodeId::Kind::kServer) {
      note_opened(dst.id, round_index, out);
    }
  }

  /// The cohort processed round k's opening: advance its opening watermark
  /// and release the next held opening (recursing until the queue is in
  /// step again — held entries can sit out of round order after reordering).
  void note_opened(std::uint32_t server, std::size_t k, Outbox& out)
      EXCLUDES(mutex_) {
    std::optional<Held> next;
    {
      common::MutexLock lock(mutex_);
      if (opened_[server] < k + 1) opened_[server] = k + 1;
      auto& hq = held_[server];
      for (auto it = hq.begin(); it != hq.end();) {
        if (it->round < watermark_[server]) {
          it = hq.erase(it);  // the round decided while its opening was held
        } else if (it->round <= opened_[server]) {
          next = std::move(*it);
          hq.erase(it);
          break;
        } else {
          ++it;
        }
      }
    }
    if (next.has_value()) {
      RoundReactor* reactor = nullptr;
      {
        common::MutexLock lock(mutex_);
        reactor = rounds_[next->round].reactor.get();
      }
      deliver(*reactor, next->src, next->dst, next->env, out);
      note_opened(server, next->round, out);
    }
  }

  void deliver(RoundReactor& reactor, NodeId src, NodeId dst, const Envelope& env,
               Outbox& out, const unsigned char* verdict = nullptr) {
    // A held opening can be flushed after its destination died (sim mode):
    // the node's volatile state — including anything queued at it — is
    // gone; the recovery replay re-supplies what still matters.
    if (dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id})) {
      return;
    }
    const bool authentic =
        verdict != nullptr ? *verdict != 0 : cluster_->transport().open(env, env.type);
    try {
      reactor.on_deliver(src, dst, env, authentic, out);
    } catch (const DecodeError&) {
      // Malformed bytes — a truncated frame from a corrupt or malicious
      // peer — must never take down a server: drop the message and let the
      // round proceed as if it was lost on the wire.
      return;
    }
    if (poll_transition_crash(*cluster_, *sched_, dst, env.type)) handle_crash(dst);
  }

  void handle_crash(NodeId node) EXCLUDES(mutex_) {
    apply_crash(*cluster_, *sched_, node);
    common::MutexLock lock(mutex_);
    if (node.kind == NodeId::Kind::kServer && node.id < n_) {
      held_[node.id].clear();
      held_dec_[node.id].clear();
    }
  }

  void handle_recover(NodeId node, Outbox& out) EXCLUDES(mutex_) {
    if (!cluster_->recover_server(ServerId{node.id})) {
      // The durable log failed its integrity check: the server must not
      // rejoin. Mark it dead on the substrate again (no recovery scheduled:
      // it stays dead); the run surfaces the stall as a pipeline error.
      sched_->crash_node(node);
      return;
    }
    std::vector<RoundReactor*> catch_up;
    {
      common::MutexLock lock(mutex_);
      dedup_.forget_dst(node);
      held_[node.id].clear();
      held_dec_[node.id].clear();
      // The apply watermark is *recovered from the durable log*: blocks the
      // server re-ingested during restore are exactly the decisions it had
      // processed, so pipelined depth-K runs resume where the log says.
      const std::size_t durable = cluster_->server(ServerId{node.id}).log().size();
      if (durable > base_height_) {
        watermark_[node.id] =
            std::max<std::size_t>(watermark_[node.id], durable - base_height_);
      }
      // Reconcile completions the crash swallowed: every round below the
      // recovered watermark was durably applied by this server, but over
      // sockets its kPeerApplied frame may have died with the process (a
      // serverd killed between the durable append and the ACK reaching the
      // coordinator). Single-process substrates fire the observer in the
      // same call stack as the append, so this loop finds nothing there.
      for (std::size_t k = 0; k < watermark_[node.id] && k < rounds_.size(); ++k) {
        mark_processed_locked(k, node.id);
      }
      // The pending-opening stack died with the node; the replay stream
      // re-supplies openings from the watermark up, and the gate must make
      // it re-process them in round order.
      opened_[node.id] = watermark_[node.id];
      if (node.id == coord_) {
        // A restarted round re-asks everything; let the re-asks through.
        for (const RoundState& rs : rounds_) {
          if (rs.started && rs.processed < n_) dedup_.forget_epoch(rs.epoch);
        }
      }
      // Catch up only the rounds this server has not yet processed — its
      // watermark (recovered above) already covers everything durable, and
      // re-driving a processed round would double-count it at the observer.
      for (std::size_t k = watermark_[node.id]; k < rounds_.size(); ++k) {
        const RoundState& rs = rounds_[k];
        if (!rs.started || rs.processed >= n_) continue;
        catch_up.push_back(rs.reactor.get());
      }
    }
    for (RoundReactor* r : catch_up) r->on_recover(node.id, out);
    launch_ready();
  }

  /// First started round that has no outcome yet is next in line for
  /// termination; the rest follow one by one as on_outcome advances the
  /// decided chain (their abort blocks must extend it).
  RoundReactor* next_termination_locked() REQUIRES(mutex_) {
    for (RoundState& rs : rounds_) {
      if (!rs.started || rs.processed >= n_ || rs.decided) continue;
      return rs.reactor.get();
    }
    return nullptr;
  }

  /// Starts every admissible round. Starts execute on the coordinator's
  /// serialized context (posted to its queue): start() reads the
  /// coordinator's log head, which only its own decision handlers mutate.
  void launch_ready() EXCLUDES(mutex_) {
    std::vector<std::size_t> starts;
    {
      common::MutexLock lock(mutex_);
      while (next_to_start_ < rounds_.size() && can_start_locked(next_to_start_)) {
        rounds_[next_to_start_].started = true;
        starts.push_back(next_to_start_++);
      }
    }
    const NodeId coord_node = NodeId::server(ServerId{coord_});
    for (const std::size_t k : starts) {
      sched_->post(coord_node, [this, k] {
        RoundReactor* reactor = nullptr;
        {
          common::MutexLock lock(mutex_);
          rounds_[k].wall_start = Clock::now();
          if (const auto v = sched_->virtual_now_us()) {
            rounds_[k].has_virtual_time = true;
            rounds_[k].virtual_start_us = *v;
          }
          reactor = rounds_[k].reactor.get();
        }
        reactor->start(sched_->outbox());
      });
    }
  }

  bool can_start_locked(std::size_t k) const REQUIRES(mutex_) {
    // Open-loop admission: the batch must have fully arrived at the
    // coordinator (always true for closed-loop pipelines).
    if (batch_ready_[k] == 0) return false;
    // A dead coordinator admits nothing; admission resumes with recovery.
    if (cluster_->is_crashed(ServerId{coord_})) return false;
    // Coordinator gate (lock-step only): its log head must already name
    // round k's prev-hash. A speculative opening projects the position, so
    // admission is bounded by the depth window alone.
    if (!speculate_ && k > 0 && watermark_[coord_] < k) return false;
    // Depth gate: started-but-incomplete rounds stay under the limit.
    return k - completed_ < depth_;
  }

  Cluster* cluster_;         // confined(ctor): immutable after construction
  Scheduler* sched_;         // confined(ctor): immutable after construction
  std::uint32_t n_;          // confined(ctor): immutable after construction
  std::uint32_t coord_;      // confined(ctor): immutable after construction
  std::uint32_t depth_;      // confined(ctor): immutable after construction
  bool speculate_;           ///< TFCommit only -- confined(ctor)
  std::size_t base_height_;  ///< height at pipeline start -- confined(ctor)

  mutable common::Mutex mutex_;
  std::vector<RoundState> rounds_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::size_t> epoch_to_round_ GUARDED_BY(mutex_);
  Dedup dedup_ GUARDED_BY(mutex_);
  std::vector<std::size_t> watermark_
      GUARDED_BY(mutex_);  ///< per server: decisions processed
  std::vector<std::size_t> opened_
      GUARDED_BY(mutex_);  ///< per server: openings processed (spec)
  std::vector<std::deque<Held>> held_
      GUARDED_BY(mutex_);  ///< per server: gated openings
  std::vector<std::deque<Held>> held_dec_
      GUARDED_BY(mutex_);  ///< per server: gated decisions (spec)
  std::size_t next_to_start_ GUARDED_BY(mutex_){0};
  std::size_t completed_ GUARDED_BY(mutex_){0};

  // Decided-chain registry (speculation): what the coordinator knows once a
  // round's outcome exists — the chain head every later opening projects
  // from, and the authoritative per-shard roots vote tags validate against.
  std::uint64_t dec_height_ GUARDED_BY(mutex_){0};
  crypto::Digest dec_head_ GUARDED_BY(mutex_);
  std::size_t decided_rounds_ GUARDED_BY(mutex_){0};
  std::vector<std::optional<crypto::Digest>> shard_roots_ GUARDED_BY(mutex_);
  bool term_mode_ GUARDED_BY(mutex_){false};  ///< terminations in progress

  Clock::time_point t0_;  // confined(driver): begin()/collect() only, outside run()
  std::vector<unsigned char> batch_ready_
      GUARDED_BY(mutex_);  ///< open-loop admission flags
  // confined(setup): installed before the scheduler runs, never reassigned
  // after; handlers only invoke the stable target.
  std::function<void(std::size_t, std::uint32_t)> decision_hook_;
};

/// The open-loop client layer: a dispatcher that owns the client-visible
/// traffic — "client_submit"/"client_resp" envelopes and the kTimer control
/// events driving submit/retry clocks — and delegates everything else (all
/// engine-framed round traffic) to the commit pipeline. Runs only on the
/// single-threaded SimNet event loop, so its state needs no lock.
///
/// Per-transaction choreography: the submit timer fires at the arrival
/// time; the client seals its request once and sends it to its affinity
/// server (client % num_servers), which relays it to the coordinator over a
/// second simulated hop. A client that has not seen its response after
/// ClientModel::retry_timeout_us re-sends the byte-identical envelope (up
/// to max_retries); the coordinator dedups by transaction index and, once
/// the round decided, replays its cached signed response. Latency is the
/// virtual time from the submit timer to the response delivery — queueing
/// at the coordinator included, which is the number closed-loop runs can
/// never produce.
class ClientSession final : public Dispatcher {
 public:
  ClientSession(Cluster& cluster, CommitPipeline& pipeline, sim::SimNet& net,
                std::vector<OpenLoopTxn> txns, sim::ClientModel model,
                std::size_t num_rounds)
      : cluster_(&cluster),
        pipeline_(&pipeline),
        net_(&net),
        model_(model),
        coord_(NodeId::server(cluster.coordinator_id())),
        pending_(num_rounds, 0),
        round_responded_(num_rounds, 0) {
    txns_.reserve(txns.size());
    for (const OpenLoopTxn& t : txns) {
      TxnState ts;
      ts.info = t;
      ts.affinity = ServerId{t.client % cluster.num_servers()};
      ++pending_[t.round];
      txns_.push_back(std::move(ts));
    }
    latency_us_.assign(txns_.size(), -1.0);
  }

  /// Puts every transaction's submit timer on the virtual clock.
  void schedule_arrivals() {
    for (std::size_t i = 0; i < txns_.size(); ++i) {
      net_->schedule_timer(NodeId::client(ClientId{txns_[i].info.client}),
                           txns_[i].info.arrival_us, i);
    }
  }

  /// Round k's decision was processed by `server`. The coordinator's
  /// processing is the moment the signed responses leave for the clients.
  void on_round_decided(std::size_t k, std::uint32_t server, Outbox& out) {
    if (server != coord_.id || k >= round_responded_.size() ||
        round_responded_[k] != 0) {
      return;
    }
    round_responded_[k] = 1;
    Server& coord_server = cluster_->server(cluster_->coordinator_id());
    for (std::size_t i = 0; i < txns_.size(); ++i) {
      TxnState& t = txns_[i];
      if (t.info.round != k) continue;
      Writer w;
      w.u64(i);
      t.response = cluster_->transport().seal(coord_server.keypair(), coord_,
                                              "client_resp", std::move(w).take());
      t.response_ready = true;
      out.send(coord_, NodeId::client(ClientId{t.info.client}), t.response);
    }
  }

  void fill(OpenLoopOutcome& outcome) {
    outcome.latency_us = std::move(latency_us_);
    outcome.client_sends = sends_;
    outcome.client_retries = retries_;
    outcome.dup_responses = dups_;
    outcome.span_us = span_us_;
  }

  // --- Dispatcher -------------------------------------------------------------

  void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    if (env.type == "client_submit") {
      handle_submit(dst, env, out);
      return;
    }
    if (env.type == "client_resp") {
      handle_resp(env);
      return;
    }
    pipeline_->dispatch(src, dst, env, out);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    if (env.type == "client_submit" || env.type == "client_resp") {
      dispatch(src, dst, env, out);
      return;
    }
    pipeline_->dispatch_replay(src, dst, env, out);
  }

  void on_control(const ControlEvent& ev, Outbox& out) override {
    if (ev.kind == ControlEvent::Kind::kTimer) {
      if (ev.node.kind == NodeId::Kind::kClient) handle_timer(ev, out);
      return;
    }
    pipeline_->on_control(ev, out);
  }

 private:
  struct TxnState {
    OpenLoopTxn info;
    ServerId affinity{0};
    Envelope submit;    ///< sealed once; retries re-send these exact bytes
    Envelope response;  ///< coordinator's cached response, replayed on late retries
    bool submitted{false};
    bool arrived{false};  ///< first copy reached the coordinator
    bool response_ready{false};
    bool responded{false};  ///< client saw the response
    std::uint32_t retries{0};
  };

  void handle_timer(const ControlEvent& ev, Outbox& out) {
    if (ev.tag >= txns_.size()) return;
    TxnState& t = txns_[ev.tag];
    if (t.responded) return;  // stale retry clock
    const NodeId me = NodeId::client(ClientId{t.info.client});
    if (!t.submitted) {
      Client& c = cluster_->client(ClientId{t.info.client});
      Writer w;
      w.u64(ev.tag);
      t.submit = cluster_->transport().seal(c.keypair(), me, "client_submit",
                                            std::move(w).take());
      t.submitted = true;
    } else {
      if (t.retries >= model_.max_retries) return;
      ++t.retries;
      ++retries_;
      cluster_->transport().count_copy(t.submit);
    }
    ++sends_;
    out.send(me, NodeId::server(t.affinity), t.submit);
    if (t.retries < model_.max_retries) {
      net_->schedule_timer(me, net_->now_us() + model_.retry_timeout_us, ev.tag);
    }
  }

  void handle_submit(NodeId dst, const Envelope& env, Outbox& out) {
    if (!cluster_->transport().open(env, "client_submit")) return;
    std::uint64_t tag = 0;
    try {
      Reader r(env.payload);
      tag = r.u64();
    } catch (const DecodeError&) {
      return;  // malformed submit: drop at the trust boundary
    }
    if (tag >= txns_.size()) return;
    TxnState& t = txns_[tag];
    if (dst != coord_) {
      // Session-affinity relay: the client's server forwards the (still
      // client-signed) request on a second simulated hop. Every received
      // copy is relayed; dedup is the coordinator's job.
      cluster_->transport().count_copy(env);
      out.send(dst, coord_, env);
      return;
    }
    if (t.response_ready) {
      // A retry arrived after the round decided: replay the cached signed
      // response rather than re-admitting anything.
      cluster_->transport().count_copy(t.response);
      out.send(coord_, NodeId::client(ClientId{t.info.client}), t.response);
      return;
    }
    if (t.arrived) return;  // duplicate submit before the decision
    t.arrived = true;
    if (--pending_[t.info.round] == 0) pipeline_->admit_batch(t.info.round);
  }

  void handle_resp(const Envelope& env) {
    if (!cluster_->transport().open(env, "client_resp")) return;
    std::uint64_t tag = 0;
    try {
      Reader r(env.payload);
      tag = r.u64();
    } catch (const DecodeError&) {
      return;  // malformed response: drop at the trust boundary
    }
    if (tag >= txns_.size()) return;
    TxnState& t = txns_[tag];
    if (t.responded) {
      ++dups_;
      return;
    }
    t.responded = true;
    latency_us_[tag] = net_->now_us() - t.info.arrival_us;
    span_us_ = std::max(span_us_, net_->now_us());
  }

  // All state is confined(actor): ClientSession is only ever driven by the
  // single-threaded SimNet event loop (see the class comment).
  Cluster* cluster_;                  // confined(actor)
  CommitPipeline* pipeline_;          // confined(actor)
  sim::SimNet* net_;                  // confined(actor)
  sim::ClientModel model_;            // confined(actor)
  NodeId coord_;                      // confined(actor)
  std::vector<TxnState> txns_;        // confined(actor)
  std::vector<std::size_t> pending_;  ///< submits not at coord -- confined(actor)
  std::vector<unsigned char> round_responded_;  // confined(actor)
  std::vector<double> latency_us_;              // confined(actor)
  std::uint64_t sends_{0};                      // confined(actor)
  std::uint64_t retries_{0};                    // confined(actor)
  std::uint64_t dups_{0};                       // confined(actor)
  double span_us_{0};                           // confined(actor)
};

/// Single-round dispatcher for the checkpoint CoSi round.
class CheckpointDispatch final : public Dispatcher {
 public:
  CheckpointDispatch(Cluster& cluster, CheckpointRound& round, Scheduler& sched)
      : cluster_(&cluster), round_(&round), sched_(&sched) {}

  void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/false);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/true);
  }

  void on_control(const ControlEvent& ev, Outbox& out) override {
    switch (ev.kind) {
      case ControlEvent::Kind::kCrash:
        apply_crash(*cluster_, *sched_, ev.node);
        break;
      case ControlEvent::Kind::kRecover:
        if (!cluster_->recover_server(ServerId{ev.node.id})) {
          sched_->crash_node(ev.node);
          return;
        }
        {
          common::MutexLock lock(mutex_);
          dedup_.forget_dst(ev.node);
          if (ev.node.id == cluster_->coordinator_id().value) {
            dedup_.forget_epoch(round_->epoch());
          }
        }
        round_->on_recover(ev.node.id, out);
        break;
      case ControlEvent::Kind::kCoordinatorTimeout:
        break;  // the checkpoint is an optimization: it simply waits
      case ControlEvent::Kind::kPeerApplied:
      case ControlEvent::Kind::kTimer:
        break;  // commit-pipeline / client-session events; not ours
    }
  }

 private:
  void dispatch_impl(NodeId src, NodeId dst, const Envelope& env, Outbox& out,
                     bool replay) {
    const auto epoch = peek_epoch(env.payload);
    if (!epoch.has_value()) return;
    {
      // Concurrent in-process workers dispatch for different destinations;
      // the dedup set is the one piece of state they share.
      common::MutexLock lock(mutex_);
      const bool fresh = dedup_.first(src, dst, env.type, *epoch);
      if (!fresh && !replay) return;
    }
    if (dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id})) {
      return;
    }
    const bool authentic = cluster_->transport().open(env, env.type);
    try {
      round_->on_deliver(src, dst, env, authentic, out);
    } catch (const DecodeError&) {
      return;  // malformed frame from the wire: drop it
    }
    if (poll_transition_crash(*cluster_, *sched_, dst, env.type)) {
      apply_crash(*cluster_, *sched_, dst);
    }
  }

  Cluster* cluster_;        // confined(ctor): immutable after construction
  CheckpointRound* round_;  // confined(ctor): immutable after construction
  Scheduler* sched_;        // confined(ctor): immutable after construction
  common::Mutex mutex_;
  Dedup dedup_ GUARDED_BY(mutex_);
};

}  // namespace

PipelineResult run_commit_rounds(Cluster& cluster, Protocol protocol,
                                 std::vector<std::vector<commit::SignedEndTxn>> batches,
                                 Scheduler& sched) {
  if (batches.empty()) return {};
  CommitPipeline pipeline(cluster, protocol, std::move(batches), sched);
  return pipeline.run();
}

void serve_commit_rounds(Cluster& cluster, Protocol protocol, std::size_t num_rounds,
                         Scheduler& sched) {
  if (num_rounds == 0) return;
  // Empty batches: cohorts work purely from delivered wire bytes, but the
  // pipeline still reserves one epoch per round — the identical sequence
  // the coordinator process reserves, which is what routes its frames to
  // the right reactors here.
  std::vector<std::vector<commit::SignedEndTxn>> batches(num_rounds);
  CommitPipeline pipeline(cluster, protocol, std::move(batches), sched);
  pipeline.begin();
  // No collect(): a cohort process can never observe global completion
  // (its completed_ counts only locally processed decisions); the
  // scheduler's run loop exits on the coordinator's shutdown frame.
  sched.run(pipeline);
}

OpenLoopOutcome run_open_loop_rounds(
    Cluster& cluster, Protocol protocol,
    std::vector<std::vector<commit::SignedEndTxn>> batches,
    std::vector<OpenLoopTxn> txns, const sim::ClientModel& model, sim::SimNet& net,
    Scheduler& sched) {
  OpenLoopOutcome outcome;
  if (batches.empty()) return outcome;
  const std::size_t num_rounds = batches.size();
  CommitPipeline pipeline(cluster, protocol, std::move(batches), sched,
                          /*external_admission=*/true);
  ClientSession session(cluster, pipeline, net, std::move(txns), model, num_rounds);
  pipeline.set_decision_hook([&](std::size_t k, std::uint32_t server) {
    session.on_round_decided(k, server, sched.outbox());
  });
  session.schedule_arrivals();
  pipeline.begin();  // admits nothing yet: every batch awaits its arrivals
  sched.run(session);
  outcome.pipeline = pipeline.collect();
  session.fill(outcome);
  return outcome;
}

CheckpointOutcome run_checkpoint_round(Cluster& cluster, Scheduler& sched) {
  const auto t0 = Clock::now();
  const auto vstart = sched.virtual_now_us();

  CheckpointRound round(cluster, cluster.epochs().reserve());
  CheckpointDispatch dispatch(cluster, round, sched);
  sched.post(NodeId::server(cluster.coordinator_id()),
             [&] { round.start(sched.outbox()); });
  sched.run(dispatch);

  round.finalize();
  CheckpointOutcome outcome;
  outcome.checkpoint = round.result();
  outcome.metrics = round.metrics();
  outcome.metrics.threads_used = sched.concurrency();
  outcome.metrics.measured_latency_us = since_us(t0);
  const double net_term =
      vstart.has_value()
          ? sched.virtual_now_us().value_or(*vstart) - *vstart
          : static_cast<double>(outcome.metrics.network_legs) *
                cluster.config().network.one_way_latency_us;
  outcome.metrics.modeled_latency_us =
      outcome.metrics.coordinator_us + outcome.metrics.cohort_critical_us + net_term;
  if (outcome.checkpoint.has_value()) {
    outcome.metrics.decision = ledger::Decision::kCommit;
    outcome.metrics.cosign_valid = true;
  }
  return outcome;
}

}  // namespace fides::engine
