// Address parsing and socket setup for the socket scheduler.
//
// Two address schemes, chosen per server in the topology list:
//
//   unix:/path/to/socket   — Unix-domain stream socket (tests, single host)
//   tcp:host:port          — TCP with TCP_NODELAY (host must be a numeric
//                            IPv4 address; name resolution is deliberately
//                            out of scope for a loopback-first transport)
//
// All fds are created close-on-exec so a forked serverd never inherits its
// parent's connections. Listening and accepted fds are non-blocking (the
// poll loop owns them); dialing is blocking with a caller-owned retry loop,
// which is the behavior a joining serverd wants while the coordinator is
// still provisioning.
#pragma once

#include <cstdint>
#include <string>

namespace fides::net {

struct ParsedAddr {
  bool is_unix{false};
  std::string path;        ///< unix: filesystem path
  std::string host;        ///< tcp: numeric IPv4 host
  std::uint16_t port{0};   ///< tcp
};

/// Parses "unix:/path" or "tcp:host:port". Throws std::runtime_error on an
/// unknown scheme or malformed port — a deployment error, not wire input.
ParsedAddr parse_addr(const std::string& addr);

/// Binds + listens on `addr` (unlinking a stale unix socket path first).
/// Returns a non-blocking listening fd. Throws std::runtime_error on
/// failure.
int listen_on(const std::string& addr);

/// One blocking connect attempt. Returns a connected fd (still blocking;
/// the caller flips it) or -1 if the peer is not accepting yet.
int dial_once(const std::string& addr);

void set_nonblocking(int fd);

/// The port a bound socket actually got — how tests ask the kernel for a
/// free TCP port (bind to port 0, read it back, pass it to every process).
std::uint16_t local_port(int fd);

}  // namespace fides::net
