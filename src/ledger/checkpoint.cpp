#include "ledger/checkpoint.hpp"

namespace fides::ledger {

namespace {

// fides-lint: allow-file(serde-pairing) -- encode_body is a digest/signing
// preimage, one-way by design; checkpoints travel via serialize() below.
void encode_body(const Checkpoint& cp, Writer& w) {
  w.u64(cp.height);
  w.raw(cp.head_hash.view());
  w.u32(static_cast<std::uint32_t>(cp.roots.size()));
  for (const auto& r : cp.roots) {
    w.u32(r.server.value);
    w.raw(r.root.view());
  }
  w.u32(static_cast<std::uint32_t>(cp.signers.size()));
  for (const ServerId s : cp.signers) w.u32(s.value);
}

crypto::Digest read_digest(Reader& r) {
  const Bytes raw = r.raw(32);
  crypto::Digest d;
  std::copy(raw.begin(), raw.end(), d.bytes.begin());
  return d;
}

}  // namespace

Bytes Checkpoint::signing_bytes() const {
  Writer w;
  w.str("fides-checkpoint");  // domain separation from blocks
  encode_body(*this, w);
  return std::move(w).take();
}

Bytes Checkpoint::serialize() const {
  Writer w;
  encode_body(*this, w);
  w.boolean(cosign.has_value());
  if (cosign) w.bytes(cosign->serialize());
  return std::move(w).take();
}

std::optional<Checkpoint> Checkpoint::deserialize(BytesView bytes) {
  try {
    Reader r(bytes);
    Checkpoint cp;
    cp.height = r.u64();
    cp.head_hash = read_digest(r);
    const std::uint32_t nr = r.u32();
    for (std::uint32_t i = 0; i < nr; ++i) {
      ShardRoot sr;
      sr.server = ServerId{r.u32()};
      sr.root = read_digest(r);
      cp.roots.push_back(sr);
    }
    const std::uint32_t ns = r.u32();
    for (std::uint32_t i = 0; i < ns; ++i) cp.signers.push_back(ServerId{r.u32()});
    if (r.boolean()) {
      const auto sig = crypto::CosiSignature::deserialize(r.bytes());
      if (!sig) return std::nullopt;
      cp.cosign = *sig;
    }
    r.expect_done();
    return cp;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

Checkpoint make_checkpoint(std::span<const Block> log,
                           std::vector<ServerId> signers) {
  Checkpoint cp;
  cp.height = log.size();
  cp.head_hash = log.empty() ? crypto::Digest::zero() : log.back().digest();
  cp.signers = std::move(signers);
  // Latest committed root per server, scanning backwards.
  for (const ServerId s : cp.signers) {
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      if (!it->committed()) continue;
      if (const crypto::Digest* root = it->root_of(s)) {
        cp.roots.push_back(ShardRoot{s, *root});
        break;
      }
    }
  }
  return cp;
}

bool validate_checkpoint(const Checkpoint& cp,
                         std::span<const crypto::PublicKey> server_keys) {
  if (!cp.cosign || cp.signers.empty()) return false;
  std::vector<crypto::PublicKey> keys;
  keys.reserve(cp.signers.size());
  for (const ServerId s : cp.signers) {
    if (s.value >= server_keys.size()) return false;
    keys.push_back(server_keys[s.value]);
  }
  return crypto::cosi_verify(cp.signing_bytes(), *cp.cosign, keys);
}

ChainCheckResult validate_chain_from(const Checkpoint& cp,
                                     std::span<const Block> blocks,
                                     std::span<const crypto::PublicKey> server_keys) {
  ChainCheckResult res;
  if (!validate_checkpoint(cp, server_keys)) {
    res.issues.push_back({static_cast<std::size_t>(cp.height),
                          "checkpoint collective signature does not verify"});
    res.ok = false;
    return res;
  }
  if (blocks.size() < cp.height) {
    res.issues.push_back({blocks.size(), "log shorter than the checkpoint height"});
    res.ok = false;
    return res;
  }
  crypto::Digest expected_prev = cp.head_hash;
  for (std::size_t i = cp.height; i < blocks.size(); ++i) {
    const Block& b = blocks[i];
    if (b.height != i) {
      res.issues.push_back({i, "height does not match position"});
    }
    if (!(b.prev_hash == expected_prev)) {
      res.issues.push_back({i, "broken hash pointer after checkpoint"});
    }
    if (!b.cosign || b.signers.empty()) {
      res.issues.push_back({i, "missing collective signature"});
    } else {
      std::vector<crypto::PublicKey> keys;
      bool signers_ok = true;
      for (const ServerId s : b.signers) {
        if (s.value >= server_keys.size()) {
          signers_ok = false;
          break;
        }
        keys.push_back(server_keys[s.value]);
      }
      if (!signers_ok ||
          !crypto::cosi_verify(b.signing_bytes(), *b.cosign, keys)) {
        res.issues.push_back({i, "collective signature does not verify"});
      }
    }
    expected_prev = b.digest();
  }
  res.ok = res.issues.empty();
  return res;
}

}  // namespace fides::ledger
