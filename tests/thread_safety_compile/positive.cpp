// Control case: correctly locked code must compile cleanly under
// -Werror=thread-safety. If this file fails, the harness flags or include
// paths are broken — the negative cases' failures would prove nothing.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    fides::common::MutexLock lock(mu_);
    ++n_;
  }

  void bump_many(int k) {
    fides::common::MutexLock lock(mu_);
    for (int i = 0; i < k; ++i) bump_locked();
  }

  int get() const {
    fides::common::MutexLock lock(mu_);
    return n_;
  }

 private:
  void bump_locked() REQUIRES(mu_) { ++n_; }

  mutable fides::common::Mutex mu_;
  int n_ GUARDED_BY(mu_){0};
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  c.bump_many(3);
  return c.get() == 4 ? 0 : 1;
}
