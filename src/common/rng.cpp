#include "common/rng.hpp"

#include <cmath>

namespace fides {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words via splitmix64, per the reference seeding
  // recommendation (avoids the all-zero state).
  for (auto& w : s_) w = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t r = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(r >> (8 * b));
    }
  }
  return out;
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

Zipf::Zipf(std::uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n, theta)),
      eta_((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_)) {}

std::uint64_t Zipf::sample(Rng& rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases"
  // rejection-free zipfian sampler, as used by YCSB.
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace fides
