#include "ordserv/group_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "commit/batch.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "engine/dispatch_util.hpp"

namespace fides::ordserv {
namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

NodeId server_node(std::uint32_t i) { return NodeId::server(ServerId{i}); }

/// Wire type of a group vote. Like the global pipeline's tf_vote~base tags:
/// speculative re-votes are distinct logical messages, so the base key lands
/// in the type tag and the at-most-once filter admits one copy of each
/// variant instead of swallowing the corrected vote as a duplicate.
std::string gtf_vote_type(std::uint64_t base) {
  if (base == 0) return "gtf_vote";
  char buf[32];
  std::snprintf(buf, sizeof buf, "gtf_vote~%016llx",
                static_cast<unsigned long long>(base));
  return buf;
}

bool is_gtf_vote_type(const std::string& type) {
  return type == "gtf_vote" || type.compare(0, 9, "gtf_vote~") == 0;
}

/// Wire codec for a sequenced OrdServ entry (SequencedBlock carries no serde
/// of its own — it never crossed a wire before the group engine).
Bytes encode_entry(const SequencedBlock& e) {
  Writer w;
  w.bytes(e.block.serialize());
  w.u32(static_cast<std::uint32_t>(e.group.members.size()));
  for (const ServerId s : e.group.members) w.u32(s.value);
  w.u32(e.group.coordinator.value);
  w.u32(static_cast<std::uint32_t>(e.depends_on.size()));
  for (const std::uint64_t d : e.depends_on) w.u64(d);
  return std::move(w).take();
}

std::optional<SequencedBlock> decode_entry(BytesView body) {
  try {
    Reader r(body);
    const Bytes block_bytes = r.bytes();
    const auto block = ledger::Block::deserialize(block_bytes);
    if (!block.has_value()) return std::nullopt;
    SequencedBlock e;
    e.block = *block;
    const std::uint32_t nm = r.u32();
    e.group.members.reserve(nm);
    for (std::uint32_t i = 0; i < nm; ++i) e.group.members.push_back(ServerId{r.u32()});
    e.group.coordinator = ServerId{r.u32()};
    const std::uint32_t nd = r.u32();
    e.depends_on.reserve(nd);
    for (std::uint32_t i = 0; i < nd; ++i) e.depends_on.push_back(r.u64());
    r.expect_done();
    return e;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

/// The engine: one Dispatcher owning every concurrent group round. Protocol
/// state is per-round (like the pipeline's reactors); the cross-round state —
/// per-server touch-order gates, the sequencing barrier, delivery validators
/// — is what makes multi-coordinator dispatch compose with pipelining and
/// speculation without a global coordinator.
///
/// One plain mutex serializes all handlers: group throughput comes from
/// virtual-time overlap of disjoint groups (what bench_group_scaling gates),
/// not from parallel handler execution. Gate flushes deliver held openings
/// inline from within a handler (all helpers REQUIRES the lock); the only
/// thing that must escape the critical section is sched_->post — an inline
/// scheduler (SimNet's default post) would re-enter dispatch — so admission
/// queues round starts in pending_starts_ and every entry point drains them
/// after releasing the lock. Clang's -Wthread-safety proves the discipline.
class GroupEngine final : public engine::Dispatcher {
 public:
  GroupEngine(Cluster& cluster, Sequencer& seq,
              std::vector<std::vector<commit::SignedEndTxn>> batches,
              engine::Scheduler& sched)
      : cluster_(&cluster),
        transport_(&cluster.transport()),
        seq_(&seq),
        sched_(&sched),
        n_(cluster.num_servers()),
        depth_(std::min<std::size_t>(
            std::max<std::size_t>(1, cluster.config().pipeline_depth), 8)),
        speculate_(cluster.config().speculate),
        touch_rounds_(n_),
        gate_upto_(n_, 0),
        started_upto_(n_, 0),
        unresolved_(n_, 0),
        decided_upto_(n_, 0),
        shard_roots_(n_),
        held_(n_),
        pending_entries_(n_),
        validators_(n_),
        refusals_(n_) {
    rounds_.reserve(batches.size());
    for (auto& batch : batches) {
      Round r;
      r.batch = std::move(batch);
      if (r.batch.empty()) {
        // No transactions → no group. Without this refusal a fabricated
        // single-server group would co-sign an empty "committed" block.
        r.terminal = true;
        r.fault = "empty batch refused at submission";
      } else {
        auto ordered = r.batch;
        commit::order_batch(ordered);
        r.group = group_for(commit::batch_txns(ordered), n_);
        if (r.group.members.empty()) {
          r.terminal = true;
          r.fault = "batch touches no shard";
        }
      }
      const std::size_t k = rounds_.size();
      if (r.terminal) {
        // Refused at admission: no epoch, no traffic, complete immediately.
        r.decided = true;
        r.completed = true;
        ++completed_;
      } else {
        // OrdServ hands out the epoch — a unique CoSi nonce domain per round
        // even when many group coordinators run concurrently; reserved for
        // every admissible round up front, in round order, so the epoch
        // sequence (and hence every signed byte) is schedule-independent.
        r.epoch = group_epoch(seq_->epochs().reserve());
        r.coord_node = server_node(r.group.coordinator.value);
        const std::size_t members = r.group.members.size();
        r.group_keys.reserve(members);
        for (const ServerId m : r.group.members) {
          r.group_keys.push_back(cluster_->server_keys()[m.value]);
        }
        r.votes.resize(members);
        r.vote_in.assign(members, 0);
        r.buffered_votes.resize(members);
        r.responses.resize(members);
        r.resp_in.assign(members, 0);
        r.done_at.assign(n_, 0);
        r.opened_at.assign(n_, 0);
        r.target = n_;  // every server processes the sequenced entry
        for (std::size_t i = 0; i < members; ++i) {
          const std::uint32_t m = r.group.members[i].value;
          r.member_slot[m] = i;
          r.touch_pos[m] = touch_rounds_[m].size();
          touch_rounds_[m].push_back(k);
        }
        epoch_to_round_[r.epoch] = k;
      }
      rounds_.push_back(std::move(r));
    }
    // Seed delivery validators from the servers' existing logs, so several
    // engine runs can extend one cluster+sequencer stream (server logs are
    // prefixes of the sequenced stream under engine delivery).
    for (std::uint32_t s = 0; s < n_; ++s) reset_validator(s);
  }

  void begin() EXCLUDES(mutex_) {
    start_wall_ = Clock::now();
    sched_->set_completion([this] {
      common::MutexLock lock(mutex_);
      return completed_ == rounds_.size();
    });
    {
      common::MutexLock lock(mutex_);
      launch_ready(sched_->outbox());
    }
    drain_starts();
  }

  GroupRunResult collect() EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    GroupRunResult result;
    result.rounds.reserve(rounds_.size());
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      const Round& r = rounds_[k];
      if (!r.completed) {
        if (std::getenv("FIDES_GROUP_DEBUG")) {
          for (std::uint32_t s = 0; s < n_; ++s) {
            std::string touches;
            for (const std::size_t t : touch_rounds_[s]) {
              touches += std::to_string(t) + ",";
            }
            std::fprintf(stderr,
                         "[grp] S%u gate=%zu started=%zu unresolved=%zu held=%zu "
                         "pend=%zu decided_upto=%zu touch=[%s] crashed=%d\n",
                         s, gate_upto_[s], started_upto_[s], unresolved_[s],
                         held_[s].size(), pending_entries_[s].size(),
                         decided_upto_[s], touches.c_str(),
                         cluster_->is_crashed(ServerId{s}));
          }
          for (std::size_t j = 0; j < rounds_.size(); ++j) {
            const Round& d = rounds_[j];
            std::string members;
            for (const ServerId m : d.group.members) {
              members += std::to_string(m.value) + ",";
            }
            std::string slots;
            for (std::size_t sl = 0; sl < d.group.members.size(); ++sl) {
              slots += std::to_string(d.vote_in.size() > sl ? d.vote_in[sl] : 9);
              slots += "/";
              slots += std::to_string(d.buffered_votes.size() > sl
                                          ? d.buffered_votes[sl].size()
                                          : 9);
              slots += ",";
            }
            std::fprintf(stderr,
                         "[grp] round %zu grp={%s} started=%d votes=%zu "
                         "slots(in/buf)=[%s] chal=%zu resps=%zu outcome=%d "
                         "decided=%d refused=%d seq=%d done=%zu/%zu\n",
                         j, members.c_str(), d.started, d.votes_seen, slots.c_str(),
                         d.challenges.size(), d.resps_seen, d.outcome.has_value(),
                         d.decided, d.refused, d.sequenced, d.done_count, d.target);
          }
        }
        throw std::logic_error(
            "group commit stalled: round " + std::to_string(k) + " saw " +
            std::to_string(r.done_count) + "/" + std::to_string(r.target) +
            " completions" + (r.fault.empty() ? "" : " (" + r.fault + ")"));
      }
      GroupRoundResult rr;
      rr.group = r.group;
      rr.group_size = r.group.members.size();
      rr.fault = r.fault;
      if (r.outcome.has_value()) {
        rr.decision = r.outcome->decision;
        rr.cosign_valid = r.outcome->cosign_valid;
        rr.refusals = r.outcome->refusals;
        rr.faulty_cosigners = r.outcome->faulty_cosigners;
      }
      if (r.entry.has_value()) rr.global_height = r.entry->block.height;
      result.rounds.push_back(std::move(rr));
    }
    result.delivery_refusals = refusals_;
    result.wall_us = since_us(start_wall_);
    result.spec_revotes = spec_revotes_;
    return result;
  }

  // --- Dispatcher --------------------------------------------------------------

  void dispatch(NodeId src, NodeId dst, const Envelope& env, engine::Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/false, std::nullopt);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env,
                       engine::Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/true, std::nullopt);
  }

  void dispatch_batch(std::span<const Delivery> batch, NodeId dst,
                      engine::Outbox& out) override {
    // Mirror of the pipeline's inbox seam: a drained run of votes/responses
    // for one destination is signature-checked as one RLC aggregate; the
    // verdicts thread into per-item dispatch so semantics stay exact.
    const bool dst_crashed =
        dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id});
    const bool batched = transport_->batch_verify() && transport_->crypto_enabled() &&
                         !dst_crashed && batch.size() >= 2;
    if (!batched) {
      for (const auto& d : batch) dispatch(d.src, dst, *d.env, out);
      return;
    }
    constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    std::vector<std::size_t> slot_of(batch.size(), kNoSlot);
    std::vector<const Envelope*> envs;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string& type = batch[i].env->type;
      if (type == "gtf_response" || is_gtf_vote_type(type)) {
        slot_of[i] = envs.size();
        envs.push_back(batch[i].env);
      }
    }
    if (envs.size() < 2) {
      for (const auto& d : batch) dispatch(d.src, dst, *d.env, out);
      return;
    }
    const std::vector<unsigned char> verdicts =
        transport_->open_batch(envs, &cluster_->pool());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::optional<bool> verdict =
          slot_of[i] == kNoSlot ? std::nullopt
                                : std::optional<bool>(verdicts[slot_of[i]] != 0);
      dispatch_impl(batch[i].src, dst, *batch[i].env, out, /*replay=*/false, verdict);
    }
  }

  void on_control(const engine::ControlEvent& ev, engine::Outbox& out) override
      EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      switch (ev.kind) {
        case engine::ControlEvent::Kind::kCrash:
          handle_crash(ev.node);
          break;
        case engine::ControlEvent::Kind::kRecover:
          handle_recover(ev.node, out);
          break;
        case engine::ControlEvent::Kind::kCoordinatorTimeout:
        case engine::ControlEvent::Kind::kTimer:
        case engine::ControlEvent::Kind::kPeerApplied:
          // Group rounds have no cooperative-termination story yet (a crashed
          // group coordinator restarts from its durable log instead), no
          // timers, and no cross-process distribution.
          break;
      }
    }
    drain_starts();  // recovery re-admits rounds
  }

 private:
  struct Round {
    // Immutable after construction.
    std::vector<commit::SignedEndTxn> batch;  ///< pristine (unordered) batch
    ServerGroup group;
    std::vector<crypto::PublicKey> group_keys;
    std::uint64_t epoch{0};
    NodeId coord_node;
    bool terminal{false};  ///< refused at admission; no protocol traffic
    std::unordered_map<std::uint32_t, std::size_t> touch_pos;    ///< server → index in touch_rounds_
    std::unordered_map<std::uint32_t, std::size_t> member_slot;  ///< server → cohort slot

    // Coordinator-side volatile round state (rebuilt on restart).
    std::unique_ptr<commit::TfCommitCoordinator> coordinator;
    bool started{false};
    bool opening_cached{false};
    Envelope opening_env;
    std::vector<commit::VoteMsg> votes;
    std::vector<unsigned char> vote_in;
    /// Speculation: votes parked per (slot, base key) until the base resolves.
    std::vector<std::map<std::uint64_t, commit::VoteMsg>> buffered_votes;
    std::size_t votes_seen{0};
    std::vector<commit::ChallengeMsg> challenges;
    std::vector<Envelope> challenge_envs;
    std::vector<commit::ResponseMsg> responses;
    std::vector<unsigned char> resp_in;
    std::size_t resps_seen{0};
    std::optional<commit::TfCommitOutcome> outcome;

    // Sequencing / refusal.
    bool decided{false};  ///< outcome or refusal known
    bool refused{false};  ///< never reaches OrdServ; members told via gtf_refuse
    std::string fault;
    bool sequenced{false};
    std::optional<SequencedBlock> entry;
    Envelope entry_env;
    Envelope refuse_env;
    bool refuse_env_cached{false};

    // Completion.
    std::vector<unsigned char> done_at;    ///< per server: entry/refusal processed
    std::vector<unsigned char> opened_at;  ///< per server: opening processed (spec gate)
    std::size_t done_count{0};
    std::size_t target{0};
    bool completed{false};
  };

  struct Held {
    NodeId src;
    NodeId dst;
    Envelope env;
  };

  // --- Gates -------------------------------------------------------------------

  /// Whether touch position `pos` at server `s` is admissible for opening
  /// processing: every earlier round touching s has passed (lock-step: its
  /// decision processed; speculating: its opening processed).
  void advance_gate(std::uint32_t s) REQUIRES(mutex_) {
    const auto& tr = touch_rounds_[s];
    while (gate_upto_[s] < tr.size()) {
      const Round& r = rounds_[tr[gate_upto_[s]]];
      const bool passed = r.done_at[s] != 0 || (speculate_ && r.opened_at[s] != 0);
      if (!passed) break;
      ++gate_upto_[s];
    }
  }

  void flush_held(std::uint32_t s, engine::Outbox& out) REQUIRES(mutex_) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = held_[s].begin(); it != held_[s].end(); ++it) {
        const auto ep = engine::peek_epoch(it->env.payload);
        const auto rit = ep.has_value() ? epoch_to_round_.find(*ep)
                                        : epoch_to_round_.end();
        if (rit == epoch_to_round_.end()) {
          held_[s].erase(it);
          progress = true;
          break;
        }
        const std::size_t k = rit->second;
        Round& r = rounds_[k];
        if (r.done_at[s] != 0) {  // round resolved while the opening waited
          held_[s].erase(it);
          progress = true;
          break;
        }
        const auto tp = r.touch_pos.find(s);
        if (tp == r.touch_pos.end() || tp->second <= gate_upto_[s]) {
          Held h = std::move(*it);
          held_[s].erase(it);
          deliver(k, h.src, h.dst, h.env, out, std::nullopt);
          progress = true;
          break;
        }
      }
    }
  }

  // --- Admission ---------------------------------------------------------------

  /// Starts every unstarted round whose members all have open pipeline
  /// windows. Unlike the global pipeline this scans *all* unstarted rounds,
  /// not just the next one — a depth-limited group must not stall a disjoint
  /// group behind it; that independence is the point of §4.6. On shared
  /// members, though, admission is strictly touch-ordered (started_upto_):
  /// letting a later round claim a member's window slot before an earlier
  /// toucher launched would deadlock the window against the opening gate.
  void launch_ready(engine::Outbox& /*out*/) REQUIRES(mutex_) {
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      Round& r = rounds_[k];
      if (r.terminal || r.started || r.decided) continue;
      if (cluster_->is_crashed(r.group.coordinator)) continue;  // starts at recovery
      bool window = true;
      for (const ServerId m : r.group.members) {
        const auto tp = r.touch_pos.find(m.value);
        if (unresolved_[m.value] >= depth_ ||
            (tp != r.touch_pos.end() && tp->second > started_upto_[m.value])) {
          window = false;
          break;
        }
      }
      if (!window) continue;
      r.started = true;
      for (const ServerId m : r.group.members) {
        ++unresolved_[m.value];
        advance_started(m.value);
      }
      // Deferred: post() may execute inline (SimNet's default), and the
      // posted start must run unlocked like every other entry point — the
      // callers drain pending_starts_ after releasing the mutex. This is
      // what lets the engine use a plain (analyzable) mutex instead of the
      // recursive one it started with.
      pending_starts_.emplace_back(k, r.coord_node);
    }
  }

  /// Posts every queued round start onto its coordinator's context. Called
  /// by each entry point (begin / dispatch / on_control) after unlocking.
  void drain_starts() EXCLUDES(mutex_) {
    for (;;) {
      std::vector<std::pair<std::size_t, NodeId>> starts;
      {
        common::MutexLock lock(mutex_);
        starts.swap(pending_starts_);
      }
      if (starts.empty()) return;
      for (const auto& start : starts) {
        const std::size_t k = start.first;
        sched_->post(start.second, [this, k] {
          engine::Outbox& out = sched_->outbox();
          common::MutexLock lock(mutex_);
          begin_round(k, out);
        });
      }
    }
  }

  void advance_started(std::uint32_t s) REQUIRES(mutex_) {
    const auto& tr = touch_rounds_[s];
    while (started_upto_[s] < tr.size() &&
           (rounds_[tr[started_upto_[s]]].started || rounds_[tr[started_upto_[s]]].terminal)) {
      ++started_upto_[s];
    }
  }

  /// Phase 1 on the group coordinator's context: assemble and broadcast the
  /// opening. Group partials carry height 0 / zero prev-hash — their chain
  /// position is OrdServ's to assign — so unlike the global pipeline there
  /// is no log-head dependence and the opening bytes are batch-determined.
  /// The sealed opening is cached: a restart re-broadcasts the identical
  /// envelope, keeping every replayed byte stable.
  void begin_round(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.decided || r.outcome.has_value()) return;
    if (cluster_->is_crashed(r.group.coordinator)) return;
    Server& coord = cluster_->server(r.group.coordinator);

    auto batch = r.batch;  // pristine copy: deterministic re-runs
    commit::order_batch(batch);
    std::vector<txn::Transaction> txns = commit::batch_txns(batch);
    r.coordinator =
        std::make_unique<commit::TfCommitCoordinator>(r.group.members, r.group_keys);
    commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
        /*height=*/0, crypto::Digest::zero(), std::move(txns), r.group.members);
    commit::GetVoteMsg get_vote = r.coordinator->start(std::move(partial), std::move(batch));
    get_vote.round = r.epoch;
    get_vote.spec = speculate_;
    if (!r.opening_cached) {
      r.opening_env = transport_->seal(coord.keypair(), r.coord_node, "gtf_get_vote",
                                       engine::frame_payload(r.epoch, get_vote.serialize()));
      r.opening_cached = true;
    }
    for (std::size_t i = 0; i < r.group.members.size(); ++i) {
      if (i > 0) transport_->count_copy(r.opening_env);
      out.send(r.coord_node, server_node(r.group.members[i].value), r.opening_env);
    }
  }

  // --- Dispatch ----------------------------------------------------------------

  void dispatch_impl(NodeId src, NodeId dst, const Envelope& env, engine::Outbox& out,
                     bool replay, std::optional<bool> verdict) EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      dispatch_locked(src, dst, env, out, replay, verdict);
    }
    drain_starts();  // completions inside the handler may admit new rounds
  }

  void dispatch_locked(NodeId src, NodeId dst, const Envelope& env, engine::Outbox& out,
                       bool replay, std::optional<bool> verdict) REQUIRES(mutex_) {
    const auto ep = engine::peek_epoch(env.payload);
    if (!ep.has_value()) return;
    const auto rit = epoch_to_round_.find(*ep);
    if (rit == epoch_to_round_.end()) return;
    const std::size_t k = rit->second;
    Round& r = rounds_[k];
    if (!replay && !dedup_.first(src, dst, env.type, *ep)) return;
    if (env.type == "gtf_get_vote" && dst.kind == NodeId::Kind::kServer) {
      const std::uint32_t s = dst.id;
      const auto tp = r.touch_pos.find(s);
      if (tp != r.touch_pos.end()) {
        if (r.done_at[s] != 0) return;  // stale: round already resolved here
        if (tp->second > gate_upto_[s]) {
          held_[s].push_back(Held{src, dst, env});
          return;
        }
      }
    }
    deliver(k, src, dst, env, out, verdict);
  }

  void deliver(std::size_t k, NodeId src, NodeId dst, const Envelope& env,
               engine::Outbox& out, std::optional<bool> verdict) REQUIRES(mutex_) {
    if (dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id})) {
      return;
    }
    const bool authentic = verdict.has_value() ? *verdict : transport_->open(env, env.type);
    try {
      const BytesView body = engine::unframe_payload(env.payload);
      if (env.type == "gtf_get_vote") {
        handle_opening(k, dst, body, authentic, out);
      } else if (is_gtf_vote_type(env.type)) {
        handle_vote(k, src, dst, body, authentic, out);
      } else if (env.type == "gtf_challenge") {
        handle_challenge(k, dst, body, authentic, out);
      } else if (env.type == "gtf_response") {
        handle_response(k, src, dst, body, authentic, out);
      } else if (env.type == "gtf_seq") {
        handle_entry(k, dst, body, authentic, out);
      } else if (env.type == "gtf_refuse") {
        handle_refuse(k, dst, authentic, out);
      }
    } catch (const DecodeError&) {
      return;  // malformed frame from an untrusted boundary: drop
    }
    if (engine::poll_transition_crash(*cluster_, *sched_, dst, env.type)) {
      handle_crash(dst);
    }
  }

  // --- Handlers ----------------------------------------------------------------

  /// Phase 2 at member dst: vote, durable-log-first.
  void handle_opening(std::size_t k, NodeId dst, BytesView body, bool authentic,
                      engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    const std::uint32_t s = dst.id;
    if (!r.member_slot.count(s)) return;
    Server& server = cluster_->server(ServerId{s});
    commit::VoteMsg empty_vote;
    Bytes vote_bytes = empty_vote.serialize();
    std::uint64_t base = 0;
    if (authentic) {
      if (const auto msg = commit::GetVoteMsg::deserialize(body)) {
        if (!server.tf_cohort().has_pending(msg->round, msg->partial_block)) {
          // First sight — or a rebuild after a crash wiped the volatile
          // round state. Recomputation is deterministic against the restored
          // durable state, and vote_once is idempotent per (epoch, base):
          // replaying yields the logged bytes, so no base ever equivocates.
          // Keying on the *recomputed* base matters after a crash: the
          // latest pre-crash vote may stack on speculative assumptions that
          // have since been decided differently — re-sending it would leave
          // the coordinator waiting forever for a corrected re-vote the
          // wiped pending stack can no longer produce.
          commit::CohortFaults faults = server.faults().cohort;
          if (!verify_touching_requests(*transport_, server, msg->requests)) {
            faults.always_vote_abort = true;  // refuse forged requests
          }
          commit::VoteMsg vote = server.tf_cohort().handle_get_vote(*msg, faults);
          server.add_mht_time_us(server.tf_cohort().last_root_compute_us());
          base = vote.base_key();
          vote_bytes = server.vote_once(r.epoch, base, "gtf_vote", vote.serialize());
        } else if (const Bytes* logged = server.logged_vote(r.epoch)) {
          // Duplicate opening for a live round: re-send the latest logged
          // vote verbatim.
          vote_bytes = *logged;
          if (const auto prev = commit::VoteMsg::deserialize(*logged)) {
            base = prev->base_key();
          }
        }
      }
    }
    if (speculate_ && r.opened_at[s] == 0) {
      r.opened_at[s] = 1;
      advance_gate(s);
    }
    Envelope vote_env =
        transport_->seal(server.keypair(), server_node(s), gtf_vote_type(base),
                         engine::frame_payload(r.epoch, vote_bytes));
    out.send(server_node(s), r.coord_node, std::move(vote_env));
    flush_held(s, out);  // a speculative gate may have advanced
  }

  /// Phase 3 at the round's coordinator: collect votes in slot order.
  void handle_vote(std::size_t k, NodeId src, NodeId dst, BytesView body, bool authentic,
                   engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (dst != r.coord_node) return;
    const auto sit = r.member_slot.find(src.id);
    if (sit == r.member_slot.end()) return;
    const std::size_t slot = sit->second;
    if (r.vote_in[slot] || r.outcome.has_value() || r.refused) return;
    // An unauthenticated or malformed vote is never ingested; the slot is
    // conservatively filled with an involved abort so the round terminates
    // with a deny.
    commit::VoteMsg vote;
    vote.cohort = ServerId{src.id};
    vote.involved = true;
    vote.abort_reason = "vote envelope failed authentication";
    if (authentic) {
      if (const auto msg = commit::VoteMsg::deserialize(body)) vote = *msg;
    }
    if (!speculate_) {
      r.votes[slot] = std::move(vote);
      r.vote_in[slot] = 1;
      ++r.votes_seen;
      maybe_fire(k, out);
    } else {
      r.buffered_votes[slot][vote.base_key()] = std::move(vote);
      try_accept(k, out);
    }
  }

  /// Speculation: whether this vote's base assumptions match the decided
  /// truth. Engine-side analogue of the pipeline's SpecContext checks — the
  /// assumptions reference group epochs, resolved against engine rounds, and
  /// the base-root identity is pinned against the decided per-shard roots.
  bool spec_vote_valid(const commit::VoteMsg& vote) const REQUIRES(mutex_) {
    for (const commit::SpecAssumption& a : vote.spec_assumed) {
      const auto rit = epoch_to_round_.find(a.epoch);
      if (rit == epoch_to_round_.end()) return false;
      const Round& ar = rounds_[rit->second];
      if (!ar.decided) return false;
      const bool applied = ar.outcome.has_value() && ar.outcome->cosign_valid &&
                           ar.outcome->block.committed();
      if (applied != a.applied) return false;
    }
    if (vote.spec_base_root.has_value() && vote.cohort.value < n_) {
      const auto& root = shard_roots_[vote.cohort.value];
      if (root.has_value() && !(*root == *vote.spec_base_root)) return false;
    }
    return true;
  }

  bool base_resolved(const Round& r) const REQUIRES(mutex_) {
    for (const auto& [s, pos] : r.touch_pos) {
      if (decided_upto_[s] < pos) return false;
    }
    return true;
  }

  void try_accept(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (!speculate_ || r.outcome.has_value() || r.refused || !r.challenges.empty()) return;
    if (!r.started || !base_resolved(r)) return;
    for (std::size_t slot = 0; slot < r.group.members.size(); ++slot) {
      auto& candidates = r.buffered_votes[slot];
      if (r.vote_in[slot]) {
        candidates.clear();
        continue;
      }
      for (auto it = candidates.begin(); it != candidates.end();) {
        if (spec_vote_valid(it->second)) {
          r.votes[slot] = std::move(it->second);
          r.vote_in[slot] = 1;
          ++r.votes_seen;
          candidates.clear();
          break;
        }
        // Mis-speculated base: discard; the member's decision handler has
        // produced (or will produce) the corrected re-vote.
        ++spec_revotes_;
        it = candidates.erase(it);
      }
    }
    maybe_fire(k, out);
  }

  /// Phase 3 fires once the last member vote is in. Group blocks need no
  /// rebase: their signed chain position is 0 by construction.
  void maybe_fire(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.votes_seen != r.group.members.size() || !r.challenges.empty()) return;
    if (r.outcome.has_value() || r.refused) return;
    // A speculative accept (mark_decided -> try_accept) can complete the vote
    // set while the coordinator is down; its Server object no longer exists.
    // Recovery restarts the round, so simply refuse to fire phase 3 here.
    if (cluster_->is_crashed(r.group.coordinator)) return;
    Server& coord = cluster_->server(r.group.coordinator);
    r.challenges = r.coordinator->on_votes(r.votes, coord.faults().coordinator);
    if (r.challenges.size() != 1 && r.challenges.size() != r.group.members.size()) {
      // A broadcast is one message; a per-cohort fan-out is |group| messages.
      // Anything else is a malformed coordinator — refuse the round instead
      // of indexing into the vector by cohort slot.
      refuse_round(k, "coordinator challenge fan-out mismatch (" +
                          std::to_string(r.challenges.size()) + " messages for " +
                          std::to_string(r.group.members.size()) + " cohorts)",
                   out);
      advance_sequencing(out);
      return;
    }
    r.challenge_envs.clear();
    r.challenge_envs.reserve(r.challenges.size());
    for (const auto& ch : r.challenges) {
      r.challenge_envs.push_back(
          transport_->seal(coord.keypair(), r.coord_node, "gtf_challenge",
                           engine::frame_payload(r.epoch, ch.serialize())));
    }
    for (std::size_t i = 0; i < r.group.members.size(); ++i) {
      const std::size_t slot = r.challenges.size() == 1 ? 0 : i;
      if (r.challenges.size() == 1 && i > 0) transport_->count_copy(r.challenge_envs[0]);
      out.send(r.coord_node, server_node(r.group.members[i].value),
               r.challenge_envs[slot]);
    }
  }

  /// Phase 4 at member dst: verify the completed block and respond once.
  void handle_challenge(std::size_t k, NodeId dst, BytesView body, bool authentic,
                        engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    const std::uint32_t s = dst.id;
    if (!r.member_slot.count(s)) return;
    Server& server = cluster_->server(ServerId{s});
    commit::ResponseMsg resp;
    resp.cohort = server.id();
    if (authentic) {
      if (const auto msg = commit::ChallengeMsg::deserialize(body)) {
        if (server.tf_cohort().partial_of(r.epoch) == nullptr &&
            server.logged_vote(r.epoch) != nullptr) {
          // Recovering cohort: a stray duplicate challenge outran the
          // replayed opening that rebuilds its round state. Stay silent —
          // the replay stream re-sends the challenge in causal order.
          return;
        }
        resp = server.tf_cohort().handle_challenge(r.epoch, *msg, server.faults().cohort);
        if (!resp.refused) {
          // Durable respond-once: the deterministic CoSi nonce must never
          // sign two distinct challenges, even across a crash.
          const auto cb = msg->challenge.to_bytes_be();
          if (!server.respond_once(r.epoch, Bytes(cb.begin(), cb.end()))) {
            resp = commit::ResponseMsg{};
            resp.cohort = server.id();
            resp.refused = true;
            resp.refusal_reason = "already responded to a different challenge this round";
          }
        }
      } else {
        resp.refused = true;
        resp.refusal_reason = "malformed challenge payload";
      }
    } else {
      resp.refused = true;
      resp.refusal_reason = "challenge envelope failed authentication";
    }
    Envelope resp_env =
        transport_->seal(server.keypair(), server_node(s), "gtf_response",
                         engine::frame_payload(r.epoch, resp.serialize()));
    out.send(server_node(s), r.coord_node, std::move(resp_env));
  }

  /// Phase 5 at the coordinator: aggregate the co-sign, decide, sequence.
  void handle_response(std::size_t k, NodeId src, NodeId dst, BytesView body,
                       bool authentic, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (dst != r.coord_node) return;
    const auto sit = r.member_slot.find(src.id);
    if (sit == r.member_slot.end()) return;
    const std::size_t slot = sit->second;
    if (!r.resp_in[slot]) {
      commit::ResponseMsg resp;
      resp.cohort = ServerId{src.id};
      resp.refused = true;
      resp.refusal_reason = "response envelope failed authentication";
      if (authentic) {
        if (const auto msg = commit::ResponseMsg::deserialize(body)) resp = *msg;
      }
      r.responses[slot] = std::move(resp);
      r.resp_in[slot] = 1;
      ++r.resps_seen;
    }
    if (r.resps_seen == r.group.members.size() && !r.outcome.has_value() && !r.refused) {
      r.outcome = r.coordinator->on_responses(r.responses);
      mark_decided(k, out);
      advance_sequencing(out);
    }
  }

  // --- Sequencing --------------------------------------------------------------

  void mark_decided(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.decided) return;
    r.decided = true;
    if (speculate_) {
      for (const ServerId m : r.group.members) advance_decided(m.value);
      for (std::size_t j = 0; j < rounds_.size(); ++j) try_accept(j, out);
    }
  }

  void advance_decided(std::uint32_t s) REQUIRES(mutex_) {
    const auto& tr = touch_rounds_[s];
    while (decided_upto_[s] < tr.size()) {
      const Round& q = rounds_[tr[decided_upto_[s]]];
      if (!q.decided) break;
      if (q.outcome.has_value() && q.outcome->cosign_valid && q.outcome->block.committed()) {
        if (const crypto::Digest* root = q.outcome->block.root_of(ServerId{s})) {
          shard_roots_[s] = *root;
        }
      }
      ++decided_upto_[s];
    }
  }

  /// Submits decided rounds to OrdServ strictly in round order — the barrier
  /// that keeps the sequenced stream (heights, chain, dependency metadata)
  /// schedule-independent even when later groups decide first.
  void advance_sequencing(engine::Outbox& out) REQUIRES(mutex_) {
    // Re-entrancy guard: refuse_round → mark_decided → try_accept can land
    // back here while the loop below is mid-iteration; a nested walk would
    // advance next_seq_ under the outer loop's ++ and skip a round.
    if (advancing_) return;
    advancing_ = true;
    while (next_seq_ < rounds_.size()) {
      Round& r = rounds_[next_seq_];
      if (r.terminal || r.refused) {
        ++next_seq_;
        continue;
      }
      if (!r.outcome.has_value()) break;
      if (!r.outcome->cosign_valid) {
        // An unsignable block never reaches OrdServ; the members learn the
        // round is over (and who to blame) via the refusal broadcast.
        refuse_round(next_seq_, "co-sign did not verify", out);
        ++next_seq_;
        continue;
      }
      sequence_round(next_seq_, out);
      ++next_seq_;
    }
    advancing_ = false;
  }

  void sequence_round(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    const std::uint64_t height = seq_->submit(r.outcome->block, r.group);
    r.sequenced = true;
    r.entry = seq_->at(height);  // locked accessor: submit() may race
    r.target = n_;
    // The gtf_seq envelope is OrdServ speaking; modeled as trusted
    // infrastructure, it borrows the lowest live server's keypair for
    // transport authentication (the group coordinator may be down by now —
    // the entry's *trust* comes from the inner co-sign, not this envelope).
    const Server* signer = lowest_live_server();
    if (signer == nullptr) {
      throw std::logic_error("no live server to publish sequenced entry from");
    }
    r.entry_env = transport_->seal(signer->keypair(), server_node(signer->id().value),
                                   "gtf_seq",
                                   engine::frame_payload(r.epoch, encode_entry(*r.entry)));
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (i > 0) transport_->count_copy(r.entry_env);
      out.send(r.entry_env.sender, server_node(i), r.entry_env);
    }
  }

  void refuse_round(std::size_t k, std::string fault, engine::Outbox& out)
      REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.refused || r.sequenced) return;
    r.refused = true;
    r.fault = std::move(fault);
    r.target = r.group.members.size();  // only members processed the round
    // Tell the members the round is over (their cohort state, and under
    // speculation their pending stack, must resolve) with the completed
    // block as evidence.
    commit::DecisionMsg msg;
    if (r.outcome.has_value()) {
      msg.final_block = r.outcome->block;
    } else if (r.coordinator != nullptr) {
      msg.final_block = r.coordinator->block();
    }
    const Server* signer = cluster_->is_crashed(r.group.coordinator)
                               ? lowest_live_server()
                               : &cluster_->server(r.group.coordinator);
    if (signer != nullptr) {
      r.refuse_env = transport_->seal(signer->keypair(),
                                      server_node(signer->id().value), "gtf_refuse",
                                      engine::frame_payload(r.epoch, msg.serialize()));
      r.refuse_env_cached = true;
      for (std::size_t i = 0; i < r.group.members.size(); ++i) {
        if (i > 0) transport_->count_copy(r.refuse_env);
        out.send(r.refuse_env.sender, server_node(r.group.members[i].value),
                 r.refuse_env);
      }
    }
    mark_decided(k, out);
    if (r.done_count >= r.target && !r.completed) {
      r.completed = true;
      ++completed_;
    }
  }

  const Server* lowest_live_server() const {
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (!cluster_->is_crashed(ServerId{i})) return &cluster_->server(ServerId{i});
    }
    return nullptr;
  }

  // --- Delivery ----------------------------------------------------------------

  /// A sequenced entry at server dst: buffered by height, drained in chain
  /// order against the server's own log.
  void handle_entry(std::size_t k, NodeId dst, BytesView body, bool authentic,
                    engine::Outbox& out) REQUIRES(mutex_) {
    if (!authentic || dst.kind != NodeId::Kind::kServer) return;
    const std::uint32_t s = dst.id;
    const auto entry = decode_entry(body);
    if (!entry.has_value()) return;
    Round& r = rounds_[k];
    if (r.done_at[s] != 0) return;
    pending_entries_[s].emplace(entry->block.height, PendingEntry{k, *entry});
    drain_entries(s, out);
  }

  struct PendingEntry {
    std::size_t round;
    SequencedBlock entry;
  };

  void drain_entries(std::uint32_t s, engine::Outbox& out) REQUIRES(mutex_) {
    Server& server = cluster_->server(ServerId{s});
    auto& pending = pending_entries_[s];
    while (!pending.empty()) {
      auto it = refusals_[s].has_value() ? pending.begin()
                                         : pending.find(server.log().size());
      if (it == pending.end()) break;
      PendingEntry pe = std::move(it->second);
      pending.erase(it);
      process_entry(pe.round, s, pe.entry, out);
    }
  }

  void process_entry(std::size_t k, std::uint32_t s, const SequencedBlock& entry,
                     engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.done_at[s] != 0) return;
    Server& server = cluster_->server(ServerId{s});
    bool applied_to_shard = false;
    if (!refusals_[s].has_value()) {
      // Nothing touches this server's log or shard before the entry
      // validates: inner co-sign over the unchained bytes, outer hash chain,
      // dependency completeness (recomputed, not trusted).
      const auto bad = validators_[s].check(entry, cluster_->server_keys());
      if (bad.has_value()) {
        refusals_[s] = DeliveryRefusal{entry.block.height, *bad};
      } else {
        const Server::ApplyResult result =
            server.apply_sequenced(entry.block, cluster_->server_keys());
        if (result == Server::ApplyResult::kApplied) {
          server.record_decision(r.epoch, "gtf_seq", entry.block);
          applied_to_shard = entry.block.committed();
        } else if (result == Server::ApplyResult::kRejected) {
          refusals_[s] = DeliveryRefusal{entry.block.height,
                                         "sequenced entry refused at apply"};
        }
        // kStale: already in the log (a duplicate raced the recovery
        // replay); the round is done at this server either way.
      }
    }
    resolve_member_decision(k, s, applied_to_shard, out);
    mark_done(k, s, out);
    sched_->notify_applied(s, r.epoch);
  }

  /// The round is over at member s: feed the truth to its cohort so the
  /// speculation stack pops and contradicted later votes come back re-signed.
  void resolve_member_decision(std::size_t k, std::uint32_t s, bool applied,
                               engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (!speculate_ || !r.member_slot.count(s)) return;
    Server& server = cluster_->server(ServerId{s});
    auto revotes = server.tf_cohort().resolve_decision(r.epoch, applied);
    for (auto& rv : revotes) {
      const std::uint64_t base = rv.vote.base_key();
      const Bytes vb = server.vote_once(rv.round, base, "gtf_vote", rv.vote.serialize());
      const auto rit = epoch_to_round_.find(rv.round);
      if (rit == epoch_to_round_.end()) continue;
      Envelope env = transport_->seal(server.keypair(), server_node(s),
                                      gtf_vote_type(base).c_str(),
                                      engine::frame_payload(rv.round, vb));
      out.send(server_node(s), rounds_[rit->second].coord_node, std::move(env));
    }
  }

  /// A refusal broadcast at member s: no chain entry, but the round is over.
  void handle_refuse(std::size_t k, NodeId dst, bool authentic, engine::Outbox& out)
      REQUIRES(mutex_) {
    if (!authentic || dst.kind != NodeId::Kind::kServer) return;
    Round& r = rounds_[k];
    const std::uint32_t s = dst.id;
    if (!r.member_slot.count(s) || r.done_at[s] != 0) return;
    resolve_member_decision(k, s, /*applied=*/false, out);
    mark_done(k, s, out);
    sched_->notify_applied(s, r.epoch);
  }

  void mark_done(std::size_t k, std::uint32_t s, engine::Outbox& out,
                 bool propagate = true) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    if (r.done_at[s] != 0) return;
    r.done_at[s] = 1;
    ++r.done_count;
    if (r.touch_pos.count(s) && r.started && unresolved_[s] > 0) --unresolved_[s];
    if (r.done_count >= r.target && !r.completed) {
      r.completed = true;
      ++completed_;
    }
    advance_gate(s);
    if (propagate) {
      flush_held(s, out);
      launch_ready(out);
    }
  }

  // --- Crash / recovery --------------------------------------------------------

  void handle_crash(NodeId node) REQUIRES(mutex_) {
    engine::apply_crash(*cluster_, *sched_, node, /*arm_termination=*/false);
    if (node.kind != NodeId::Kind::kServer || node.id >= n_) return;
    held_[node.id].clear();
    pending_entries_[node.id].clear();
  }

  void handle_recover(NodeId node, engine::Outbox& out) REQUIRES(mutex_) {
    const std::uint32_t s = node.id;
    if (node.kind != NodeId::Kind::kServer || s >= n_) return;
    if (!cluster_->recover_server(ServerId{s})) {
      // Tampered round log: the replacement refuses to restore. Stay dead.
      sched_->crash_node(node);
      return;
    }
    dedup_.forget_dst(node);
    held_[s].clear();
    pending_entries_[s].clear();
    Server& server = cluster_->server(ServerId{s});

    // The restored log is the truth: rebuild the delivery validator from it
    // and reconcile which rounds this server already processed.
    reset_validator(s);
    const std::uint64_t applied = server.log().size();
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      Round& r = rounds_[k];
      if (r.terminal) continue;
      if (r.sequenced && r.entry->block.height < applied) {
        mark_done(k, s, out, /*propagate=*/false);
      }
      if (r.done_at.size() > s && r.done_at[s] == 0) r.opened_at[s] = 0;
    }
    gate_upto_[s] = 0;
    advance_gate(s);
    std::size_t unresolved = 0;
    for (const std::size_t k : touch_rounds_[s]) {
      const Round& r = rounds_[k];
      if (r.started && r.done_at[s] == 0) ++unresolved;
    }
    unresolved_[s] = unresolved;

    // Catch-up replay, in causal order over the FIFO replay stream:
    // sequenced entries this log is missing (height order), then refusals,
    // then the in-flight rounds' openings and challenges. Replayed openings
    // still pass the touch-order gates; re-sent votes are ordinary sends the
    // receivers dedup.
    std::vector<std::pair<std::uint64_t, std::size_t>> missing;
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      const Round& r = rounds_[k];
      if (!r.terminal && r.sequenced && r.entry->block.height >= applied) {
        missing.emplace_back(r.entry->block.height, k);
      }
    }
    std::sort(missing.begin(), missing.end());
    for (const auto& [height, k] : missing) {
      out.send_replay(rounds_[k].entry_env.sender, node, rounds_[k].entry_env);
    }
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      const Round& r = rounds_[k];
      if (r.refused && r.refuse_env_cached && r.member_slot.count(s) &&
          r.done_at[s] == 0) {
        out.send_replay(r.refuse_env.sender, node, r.refuse_env);
      }
    }
    for (std::size_t k = 0; k < rounds_.size(); ++k) {
      Round& r = rounds_[k];
      if (r.terminal || !r.started || r.refused) continue;
      if (!r.decided && r.group.coordinator.value == s) {
        // The recovered node coordinates this round: forget its epoch in the
        // at-most-once filter (the re-broadcast opening must reach every
        // member again) and restart it deterministically — the same batch,
        // recorded votes, and nonces reproduce the identical block.
        dedup_.forget_epoch(r.epoch);
        restart_round(k, out);
        continue;
      }
      if (r.member_slot.count(s) && r.done_at[s] == 0) {
        // Replay the opening even for already-decided rounds: the member's
        // wiped cohort state (pending stack, round partials) is rebuilt in
        // touch order, which the gates on the later rounds' openings — and
        // the challenge straggler guard — rely on.
        out.send_replay(r.coord_node, node, r.opening_env);
        const std::size_t slot = r.member_slot.at(s);
        if (!r.challenge_envs.empty() && !r.resp_in[slot]) {
          const std::size_t ci = r.challenge_envs.size() == 1 ? 0 : slot;
          out.send_replay(r.coord_node, node, r.challenge_envs[ci]);
        }
      }
    }
    launch_ready(out);
  }

  void restart_round(std::size_t k, engine::Outbox& out) REQUIRES(mutex_) {
    Round& r = rounds_[k];
    const std::size_t members = r.group.members.size();
    r.votes.assign(members, {});
    r.vote_in.assign(members, 0);
    for (auto& b : r.buffered_votes) b.clear();
    r.votes_seen = 0;
    r.challenges.clear();
    r.challenge_envs.clear();
    r.responses.assign(members, {});
    r.resp_in.assign(members, 0);
    r.resps_seen = 0;
    r.outcome.reset();
    begin_round(k, out);
  }

  void reset_validator(std::uint32_t s) REQUIRES(mutex_) {
    const Server& server = cluster_->server(ServerId{s});
    validators_[s] = StreamValidator{};
    validators_[s].next_height = server.log().size();
    validators_[s].expected_prev = server.log().head_hash();
    for (const ledger::Block& b : server.log().blocks()) {
      for (const auto& t : b.txns) {
        for (const ItemId item : t.rw.touched_items()) {
          validators_[s].last_touch[item] = b.height;
        }
      }
    }
  }

  // --- State -------------------------------------------------------------------

  Cluster* cluster_;           // confined(ctor): immutable after construction
  Transport* transport_;       // confined(ctor): immutable after construction
  Sequencer* seq_;             // confined(ctor): immutable after construction
  engine::Scheduler* sched_;   // confined(ctor): immutable after construction
  std::uint32_t n_;            // confined(ctor): immutable after construction
  std::size_t depth_;          // confined(ctor): immutable after construction
  bool speculate_;             // confined(ctor): immutable after construction

  common::Mutex mutex_;
  std::vector<Round> rounds_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::size_t> epoch_to_round_ GUARDED_BY(mutex_);
  engine::Dedup dedup_ GUARDED_BY(mutex_);

  /// Per server: rounds touching it, in round (= admission) order.
  std::vector<std::vector<std::size_t>> touch_rounds_ GUARDED_BY(mutex_);
  /// Per server: leading count of touch rounds that passed the opening gate.
  std::vector<std::size_t> gate_upto_ GUARDED_BY(mutex_);
  /// Per server: leading count of touch rounds already admitted (started).
  /// Admission must respect per-server touch order: if a later round could
  /// claim a member's depth window before an earlier toucher launched, the
  /// window (which only frees on completion) and the opening gate (which
  /// waits for the earlier round) would deadlock against each other.
  std::vector<std::size_t> started_upto_ GUARDED_BY(mutex_);
  /// Per server: started-but-unresolved touching rounds (the depth window).
  std::vector<std::size_t> unresolved_ GUARDED_BY(mutex_);
  /// Per server: leading count of decided touch rounds (speculation truth).
  std::vector<std::size_t> decided_upto_ GUARDED_BY(mutex_);
  /// Per server: the decided chain's last co-signed root of its shard.
  std::vector<std::optional<crypto::Digest>> shard_roots_ GUARDED_BY(mutex_);

  std::vector<std::vector<Held>> held_ GUARDED_BY(mutex_);  ///< gated openings
  std::vector<std::map<std::uint64_t, PendingEntry>> pending_entries_
      GUARDED_BY(mutex_);  ///< per server
  std::vector<StreamValidator> validators_ GUARDED_BY(mutex_);  ///< per server
  std::vector<std::optional<DeliveryRefusal>> refusals_
      GUARDED_BY(mutex_);  ///< per server

  /// Round starts admitted under the lock, posted by drain_starts() after it
  /// is released (a post may execute inline and re-enter dispatch).
  std::vector<std::pair<std::size_t, NodeId>> pending_starts_ GUARDED_BY(mutex_);

  std::size_t next_seq_ GUARDED_BY(mutex_){0};  ///< next round to submit
  bool advancing_ GUARDED_BY(mutex_){false};    ///< advance_sequencing guard
  std::size_t completed_ GUARDED_BY(mutex_){0};
  std::size_t spec_revotes_ GUARDED_BY(mutex_){0};
  Clock::time_point start_wall_;  // confined(driver): begin()/collect() only
};

}  // namespace

GroupRunResult run_group_rounds(Cluster& cluster, Sequencer& sequencer,
                                std::vector<std::vector<commit::SignedEndTxn>> batches,
                                engine::Scheduler& sched) {
  GroupEngine eng(cluster, sequencer, std::move(batches), sched);
  eng.begin();
  sched.run(eng);
  return eng.collect();
}

}  // namespace fides::ordserv
