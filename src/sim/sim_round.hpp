// Event-driven commit-round drivers over SimNet.
//
// The direct-mode engine in fides/cluster.cpp executes each protocol phase
// as a lock-step loop over cohorts — delivery is a function call, so there
// is exactly one schedule. These drivers run the *same* protocol state
// machines (commit/tfcommit, commit/two_phase_commit, the checkpoint CoSi
// round) but trigger every handler from a SimNet delivery event: a cohort
// votes when its get_vote envelope *arrives*, the coordinator aggregates
// when the last vote *arrives*, and so on. Message payloads cross the
// simulated wire as canonical bytes and are deserialized at the receiver,
// so the serialization layer is exercised on every hop.
//
// Duplicates are suppressed receiver-side (at most one logical message per
// (sender, receiver, type) per round — the idempotence a real node needs
// under at-least-once delivery), and SimNet's bounded retransmission
// guarantees every logical message eventually arrives, so a round always
// terminates with the queue drained.
//
// For an honest cluster the outcome is bit-identical to direct mode:
// decisions, blocks, co-signs (deterministic nonces), and ledger state do
// not depend on the delivery schedule — which is exactly the property the
// schedule fuzzer (sim/schedule_fuzz.*) checks en masse.
#pragma once

#include "fides/cluster.hpp"

namespace fides::sim {

class SimNet;

/// One full TFCommit round over `batch`, all five phases driven by SimNet
/// delivery events. Mirrors Cluster::run_tfcommit_block.
RoundMetrics run_tfcommit_block_sim(Cluster& cluster,
                                    std::vector<commit::SignedEndTxn> batch,
                                    SimNet& net);

/// One 2PC round over `batch`, driven by SimNet delivery events.
RoundMetrics run_2pc_block_sim(Cluster& cluster,
                               std::vector<commit::SignedEndTxn> batch, SimNet& net);

/// The checkpoint CoSi round (propose / commit / challenge / response) over
/// SimNet. Returns nullopt when any server's log disagrees with the
/// proposal or the final co-sign does not validate — same contract as
/// Cluster::create_checkpoint.
std::optional<ledger::Checkpoint> create_checkpoint_sim(Cluster& cluster, SimNet& net);

}  // namespace fides::sim
