#include "txn/rw_set.hpp"

#include <algorithm>

namespace fides::txn {

void RwSetBuilder::record_read(ItemId id, Bytes value, const Timestamp& rts,
                               const Timestamp& wts) {
  ReadEntry e;
  e.id = id;
  e.value = std::move(value);
  e.rts = rts;
  e.wts = wts;
  set_.reads.push_back(std::move(e));
}

bool RwSetBuilder::has_read(ItemId id) const { return set_.find_read(id) != nullptr; }

void RwSetBuilder::record_write(ItemId id, Bytes new_value, Bytes observed_old_value,
                                const Timestamp& rts, const Timestamp& wts) {
  const auto it = std::find_if(set_.writes.begin(), set_.writes.end(),
                               [&](const WriteEntry& w) { return w.id == id; });
  if (it != set_.writes.end()) {
    // Repeated write in the same transaction: only the value changes; the
    // access-time timestamps and blind-ness were fixed at first access.
    it->new_value = std::move(new_value);
    return;
  }
  WriteEntry e;
  e.id = id;
  e.new_value = std::move(new_value);
  if (!has_read(id)) e.old_value = std::move(observed_old_value);
  e.rts = rts;
  e.wts = wts;
  set_.writes.push_back(std::move(e));
}

RwSet RwSetBuilder::build() && { return std::move(set_); }

}  // namespace fides::txn
