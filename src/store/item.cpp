#include "store/item.hpp"

#include "common/serde.hpp"

namespace fides::store {

crypto::Digest item_leaf_digest(ItemId id, BytesView value) {
  Writer w;
  w.u64(id);
  w.bytes(value);
  return crypto::sha256(w.data());
}

}  // namespace fides::store
