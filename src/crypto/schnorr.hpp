// Schnorr digital signatures over secp256k1 (§2.1).
//
// Every server and client in Fides holds a Schnorr keypair; every message
// exchanged is signed by the sender and verified by the receiver (§3.1).
// Signatures are (R, s) with R = k·G, c = H(ser(R) ‖ ser(P) ‖ m) mod n,
// s = k + c·x mod n; verification checks s·G == R + c·P.
//
// Nonces are derived deterministically from (secret key, message) in the
// spirit of RFC 6979, so signing is reproducible and never reuses a nonce
// across distinct messages.
#pragma once

#include "crypto/secp256k1.hpp"

namespace fides::crypto {

/// Serialized-affine public key. Comparable, hashable via its bytes.
struct PublicKey {
  AffinePoint point;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

  Bytes serialize() const { return point.serialize(); }
};

struct Signature {
  AffinePoint r;  ///< commitment R = k·G
  U256 s;         ///< response

  Bytes serialize() const;
  /// Parses and structurally validates: R must be a non-infinity on-curve
  /// point and s must be canonical (s < n). Malformed signatures are rejected
  /// here, once, at the trust boundary — verify() never sees them.
  static std::optional<Signature> deserialize(BytesView b);
};

class KeyPair {
 public:
  /// Derives a keypair from 32 seed bytes (reduced mod n; must not reduce
  /// to zero — the named constructors guarantee it).
  static KeyPair from_seed(BytesView seed32);

  /// Deterministic per-node keypair; convenient for tests and simulation.
  static KeyPair deterministic(std::uint64_t node_id);

  const PublicKey& public_key() const { return pk_; }
  const U256& secret_key() const { return sk_; }

  Signature sign(BytesView message) const;

 private:
  KeyPair(U256 sk, PublicKey pk) : sk_(sk), pk_(std::move(pk)) {}

  U256 sk_;
  PublicKey pk_;
};

/// Verifies sig over message under pk. Cheap rejection on malformed points.
bool verify(const PublicKey& pk, BytesView message, const Signature& sig);

/// One signature in a batch_verify call. The referenced objects must outlive
/// the call; no ownership is taken.
struct BatchItem {
  const PublicKey* pk;
  BytesView message;
  const Signature* sig;
};

/// Batch verification via a random linear combination: instead of n
/// independent checks sᵢ·G == Rᵢ + cᵢ·Pᵢ, draw coefficients zᵢ and test
///   (Σ zᵢsᵢ)·G == Σ zᵢ·Rᵢ + Σ (zᵢcᵢ)·Pᵢ
/// with one multi-scalar multiplication. A forged signature survives only if
/// the adversary predicts zᵢ, so the zᵢ are derived Fiat–Shamir-style from a
/// hash of the whole batch (128-bit, forced nonzero) — deterministic across
/// runs, unpredictable to a signer. When the aggregate check fails the batch
/// is split recursively (reusing the same zᵢ), bottoming out in individual
/// verifies, so exactly the bad indices are attributed. Returns one byte per
/// item: 1 iff verify(pk, message, sig) would return true.
std::vector<unsigned char> batch_verify(std::span<const BatchItem> items);

}  // namespace fides::crypto
