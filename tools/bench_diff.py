#!/usr/bin/env python3
"""Compare fides-bench-v1 reports against a committed baseline.

The bench binaries write BENCH_<name>.json (see bench/bench_common.hpp).
Metrics come in three groups per sweep point:

  exact  -- deterministic given seed + config (protocol counts, anything on
            the SimNet virtual clock). Compared for equality: any drift means
            the protocol schedule itself changed, which must be deliberate.
  approx -- contains measured wall/CPU time. Compared directionally with a
            noise tolerance: *_tps may not drop, *_ms may not rise.
  info   -- context only, never compared.

Google-Benchmark-format files (top-level "context" key) are accepted and
reported but never gated -- wall-clock microbenches are too noisy.

Usage:
  bench_diff.py --baseline bench/baseline --current <dir> [--tolerance 0.25]
  bench_diff.py --baseline bench/baseline --current <dir> --rebless
  bench_diff.py --self-check
"""

import argparse
import glob
import json
import os
import shutil
import sys


def is_google_benchmark(report):
    return "context" in report


def compare_reports(base, cur, tolerance, exact_tol=0.0, ms_floor=0.05):
    """Returns a list of failure strings (empty == pass)."""
    errors = []
    name = base.get("name", "?")
    if cur.get("schema") != "fides-bench-v1":
        return ["%s: current report has schema %r" % (name, cur.get("schema"))]
    if base.get("schema") != "fides-bench-v1":
        return ["%s: baseline report has schema %r" % (name, base.get("schema"))]
    if base.get("config") != cur.get("config"):
        return [
            "%s: config mismatch (baseline %r vs current %r) -- regenerate the "
            "baseline with the same knobs" % (name, base.get("config"), cur.get("config"))
        ]

    cur_points = {p["label"]: p for p in cur.get("points", [])}
    for bp in base.get("points", []):
        label = bp["label"]
        cp = cur_points.get(label)
        if cp is None:
            errors.append("%s[%s]: point missing from current run" % (name, label))
            continue

        for key, bv in bp.get("exact", {}).items():
            cv = cp.get("exact", {}).get(key)
            if cv is None:
                errors.append("%s[%s]: exact metric %s missing" % (name, label, key))
            elif bv is None or cv is None or not _close(bv, cv, exact_tol):
                errors.append(
                    "%s[%s]: exact metric %s changed: %r -> %r"
                    % (name, label, key, bv, cv)
                )

        for key, bv in bp.get("approx", {}).items():
            cv = cp.get("approx", {}).get(key)
            if cv is None:
                errors.append("%s[%s]: approx metric %s missing" % (name, label, key))
                continue
            if bv is None or cv is None:
                continue
            if key.endswith("_tps"):
                if cv < bv * (1.0 - tolerance):
                    errors.append(
                        "%s[%s]: %s dropped beyond %.0f%% tolerance: %.2f -> %.2f"
                        % (name, label, key, tolerance * 100, bv, cv)
                    )
            elif key.endswith("_ms"):
                if cv > bv * (1.0 + tolerance) and cv - bv > ms_floor:
                    errors.append(
                        "%s[%s]: %s rose beyond %.0f%% tolerance: %.3f -> %.3f"
                        % (name, label, key, tolerance * 100, bv, cv)
                    )
            # other approx keys: informational, no direction defined
    return errors


def _close(a, b, rel_tol):
    if a == b:
        return True
    if rel_tol <= 0:
        return False
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rel_tol * scale


def load(path):
    with open(path) as f:
        return json.load(f)


def run_compare(args):
    base_files = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not base_files:
        print("bench_diff: no BENCH_*.json baselines under %s" % args.baseline)
        return 1

    if args.rebless:
        blessed = 0
        for bf in base_files:
            cf = os.path.join(args.current, os.path.basename(bf))
            if os.path.exists(cf):
                shutil.copyfile(cf, bf)
                blessed += 1
                print("reblessed %s" % bf)
            else:
                print("WARNING: %s has no current counterpart, left as-is" % bf)
        print("bench_diff: reblessed %d baseline file(s)" % blessed)
        return 0

    failures = []
    compared = 0
    for bf in base_files:
        cf = os.path.join(args.current, os.path.basename(bf))
        if not os.path.exists(cf):
            failures.append("%s: missing from current run dir" % os.path.basename(bf))
            continue
        base, cur = load(bf), load(cf)
        if is_google_benchmark(base) or is_google_benchmark(cur):
            print("info-only (Google Benchmark format): %s" % os.path.basename(bf))
            continue
        compared += 1
        errs = compare_reports(base, cur, args.tolerance, args.exact_tolerance)
        if errs:
            failures.extend(errs)
        else:
            print("ok: %s (%d points)" % (base.get("name"), len(base.get("points", []))))

    if failures:
        print("\nbench_diff: %d failure(s):" % len(failures))
        for e in failures:
            print("  FAIL " + e)
        return 1
    print("bench_diff: %d report(s) within tolerance" % compared)
    return 0


def self_check():
    """Round-trip + gating unit tests on synthetic reports."""
    def report(points):
        return {
            "schema": "fides-bench-v1",
            "name": "t",
            "commit": "c",
            "config": {"txns": "100"},
            "points": points,
        }

    def point(label, exact=None, approx=None):
        return {
            "label": label,
            "exact": exact or {},
            "approx": approx or {},
            "info": {},
        }

    a = report([point("p", {"committed_txns": 100.0, "virtual_ms": 12.5},
                      {"throughput_tps": 1000.0, "avg_latency_ms": 2.0})])

    checks = []
    # 1. identical reports pass
    checks.append(("identical", compare_reports(a, a, 0.25) == []))
    # 2. JSON round-trip of a %.17g-style double survives equality
    b = json.loads(json.dumps(a))
    checks.append(("roundtrip", compare_reports(a, b, 0.25) == []))
    # 3. exact drift fails even when tiny
    c = json.loads(json.dumps(a))
    c["points"][0]["exact"]["virtual_ms"] = 12.500000001
    checks.append(("exact-drift", compare_reports(a, c, 0.25) != []))
    # 4. tps drop beyond tolerance fails; within tolerance passes
    d = json.loads(json.dumps(a))
    d["points"][0]["approx"]["throughput_tps"] = 700.0
    checks.append(("tps-drop", compare_reports(a, d, 0.25) != []))
    d["points"][0]["approx"]["throughput_tps"] = 800.0
    checks.append(("tps-within", compare_reports(a, d, 0.25) == []))
    # 5. ms rise beyond tolerance fails; direction is one-sided (faster is fine)
    e = report([point("p", {"committed_txns": 100.0, "virtual_ms": 12.5},
                      {"throughput_tps": 1000.0, "avg_latency_ms": 3.0})])
    checks.append(("ms-rise", compare_reports(a, e, 0.25) != []))
    f = json.loads(json.dumps(e))
    f["points"][0]["approx"]["avg_latency_ms"] = 0.5
    checks.append(("ms-faster-ok", compare_reports(a, f, 0.25) == []))
    # 6. missing point fails
    g = report([])
    checks.append(("missing-point", compare_reports(a, g, 0.25) != []))
    # 7. config mismatch fails
    h = json.loads(json.dumps(a))
    h["config"]["txns"] = "200"
    checks.append(("config-mismatch", compare_reports(a, h, 0.25) != []))
    # 8. Google Benchmark format detected
    checks.append(("gb-format", is_google_benchmark({"context": {}, "benchmarks": []})))
    # 9. exact tolerance escape hatch works
    checks.append(("exact-tol", compare_reports(a, c, 0.25, exact_tol=1e-6) == []))

    failed = [n for n, ok in checks if not ok]
    for n, ok in checks:
        print("%s %s" % ("ok  " if ok else "FAIL", n))
    if failed:
        print("bench_diff --self-check: %d failure(s)" % len(failed))
        return 1
    print("bench_diff --self-check: all %d checks passed" % len(checks))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current", help="directory of freshly generated BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="relative noise tolerance for approx metrics (default 0.5; "
                         "approx metrics contain wall-clock time, so leave headroom "
                         "for shared-runner noise -- the exact group is what catches "
                         "subtle drift)")
    ap.add_argument("--exact-tolerance", type=float, default=0.0,
                    help="relative tolerance for exact metrics (default 0 = bit-equal)")
    ap.add_argument("--rebless", action="store_true",
                    help="overwrite the baseline with the current run's reports")
    ap.add_argument("--self-check", action="store_true",
                    help="run internal unit tests and exit")
    args = ap.parse_args()

    if args.self_check:
        sys.exit(self_check())
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --self-check)")
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
