#include "crypto/schnorr.hpp"

#include "common/serde.hpp"

namespace fides::crypto {

namespace {

/// Challenge scalar c = H(ser(R) ‖ ser(P) ‖ m) mod n.
U256 challenge(const AffinePoint& r, const PublicKey& pk, BytesView message) {
  Sha256 h;
  const Bytes rb = r.serialize();
  const Bytes pb = pk.serialize();
  h.update(rb);
  h.update(pb);
  h.update(message);
  return scalar_from_digest(h.finalize());
}

/// Deterministic nonce: k = H(sk ‖ m ‖ ctr) mod n, retried while zero.
U256 derive_nonce(const U256& sk, BytesView message) {
  const auto skb = sk.to_bytes_be();
  for (std::uint8_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.update(BytesView(skb.data(), skb.size()));
    h.update(message);
    h.update(BytesView(&ctr, 1));
    const U256 k = scalar_from_digest(h.finalize());
    if (!k.is_zero()) return k;
  }
}

}  // namespace

Bytes Signature::serialize() const {
  Writer w;
  w.bytes(r.serialize());
  const auto sb = s.to_bytes_be();
  w.raw(BytesView(sb.data(), sb.size()));
  return std::move(w).take();
}

std::optional<Signature> Signature::deserialize(BytesView b) {
  try {
    Reader rd(b);
    const Bytes rb = rd.bytes();
    const Bytes sb = rd.raw(32);
    rd.expect_done();
    const auto point = AffinePoint::deserialize(rb);
    if (!point) return std::nullopt;
    Signature sig;
    sig.r = *point;
    sig.s = U256::from_bytes_be(sb);
    return sig;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

KeyPair KeyPair::from_seed(BytesView seed32) {
  const Digest d = sha256(seed32);
  U256 sk = scalar_from_digest(d);
  if (sk.is_zero()) sk = U256(1);  // astronomically unlikely; keep total
  const Curve& curve = Curve::instance();
  PublicKey pk{curve.to_affine(curve.mul_g(sk))};
  return KeyPair(sk, pk);
}

KeyPair KeyPair::deterministic(std::uint64_t node_id) {
  Writer w;
  w.str("fides-node-key");
  w.u64(node_id);
  return from_seed(w.data());
}

Signature KeyPair::sign(BytesView message) const {
  const Curve& curve = Curve::instance();
  const U256 k = derive_nonce(sk_, message);
  const AffinePoint r = curve.to_affine(curve.mul_g(k));
  const U256 c = challenge(r, pk_, message);

  // s = k + c*sk mod n, via the order-field Montgomery context.
  const auto& fn = curve.fn();
  const Fe s = fn.add(fn.to_mont(k), fn.mul(fn.to_mont(c), fn.to_mont(sk_)));
  return Signature{r, fn.from_mont(s)};
}

bool verify(const PublicKey& pk, BytesView message, const Signature& sig) {
  const Curve& curve = Curve::instance();
  if (pk.point.infinity || sig.r.infinity) return false;
  if (!curve.on_curve(pk.point) || !curve.on_curve(sig.r)) return false;
  if (!u256_less(sig.s, curve.order())) return false;

  const U256 c = challenge(sig.r, pk, message);
  const Point lhs = curve.mul_g(sig.s);
  const Point rhs = curve.add(curve.from_affine(sig.r), curve.mul(c, curve.from_affine(pk.point)));
  return curve.equal(lhs, rhs);
}

}  // namespace fides::crypto
