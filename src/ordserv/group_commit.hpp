// Group commit: scaled TFCommit (§4.6).
//
// Instead of one global coordinator and all-server participation, each batch
// is terminated by the group of servers it actually touches; the group's
// coordinator runs TFCommit among the members only, then publishes the
// co-signed block to OrdServ, which broadcasts one consistently ordered,
// hash-chained stream to every server.
//
// Note on what the co-sign covers: the group signs the block with
// height 0 / zero prev-hash (OrdServ fills those afterwards — "the
// coordinators of the groups do not fill in the hash of the previous block,
// rather it is filled by the OrdServ"). Verifiers therefore check the inner
// co-sign over the *unchained* bytes plus the outer OrdServ hash chain.
#pragma once

#include "fides/cluster.hpp"
#include "ordserv/sequencer.hpp"

namespace fides::ordserv {

struct GroupRoundResult {
  ledger::Decision decision{ledger::Decision::kAbort};
  ServerGroup group;
  std::uint64_t global_height{0};
  bool cosign_valid{false};
  std::size_t group_size{0};
};

/// Validates an OrdServ stream: inner co-sign per entry (over the unchained
/// block bytes, under the entry's group), outer hash chain, and dependency
/// order. Returns the index of the first bad entry, or nullopt when clean.
std::optional<std::size_t> validate_stream(
    std::span<const SequencedBlock> stream,
    std::span<const crypto::PublicKey> all_server_keys);

class GroupCommitRunner {
 public:
  GroupCommitRunner(Cluster& cluster, Sequencer& sequencer)
      : cluster_(&cluster), sequencer_(&sequencer),
        delivered_(cluster.num_servers()) {}

  /// Runs TFCommit for `batch` inside its group, publishes to OrdServ, and
  /// delivers + applies the stream at every server.
  GroupRoundResult run_group_block(std::vector<commit::SignedEndTxn> batch);

  /// The globally replicated (group-mode) log as seen by one server.
  const std::vector<SequencedBlock>& log_of(ServerId server) const {
    return delivered_.at(server.value);
  }

 private:
  void deliver_all();

  Cluster* cluster_;
  Sequencer* sequencer_;
  std::vector<std::vector<SequencedBlock>> delivered_;  // per server
};

}  // namespace fides::ordserv
