// Per-thread CPU time, for contention-robust compute measurements.
//
// The round driver's *modeled* critical path wants each handler's solo
// compute time — what the handler would cost on an uncontended core. Wall
// clocks inflate that with scheduler time slices as soon as the thread pool
// oversubscribes cores; CLOCK_THREAD_CPUTIME_ID does not tick while the
// thread is preempted, so the analytical model stays comparable between
// 1-thread and N-thread runs. (Measured wall-clock latency is reported
// separately and intentionally keeps the contention.)
#pragma once

#include <ctime>

#include <chrono>

namespace fides::common {

/// Microseconds of CPU time consumed by the calling thread. Falls back to a
/// monotonic wall clock where the POSIX per-thread clock is unavailable.
inline double thread_cpu_time_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 + static_cast<double>(ts.tv_nsec) / 1e3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fides::common
