// Modular arithmetic in Montgomery form.
//
// One `MontgomeryField` instance wraps one odd modulus (we instantiate two:
// the secp256k1 base-field prime p and the group order n). Elements are kept
// in Montgomery representation; multiplication uses the CIOS (coarsely
// integrated operand scanning) algorithm with 4x64-bit limbs.
#pragma once

#include "crypto/u256.hpp"

namespace fides::crypto {

/// A field element in Montgomery form. Only meaningful together with the
/// MontgomeryField that produced it; mixing fields is a programming error.
struct Fe {
  U256 v;

  friend constexpr bool operator==(const Fe&, const Fe&) = default;
};

class MontgomeryField {
 public:
  /// Precomputes R mod m, R^2 mod m, and -m^{-1} mod 2^64. `modulus` must be
  /// odd and > 1.
  explicit MontgomeryField(const U256& modulus);

  const U256& modulus() const { return m_; }

  Fe zero() const { return Fe{}; }
  Fe one() const { return r_; }  // R mod m == Montgomery form of 1

  /// Conversion into/out of Montgomery form. `x` is reduced mod m first.
  Fe to_mont(const U256& x) const;
  U256 from_mont(const Fe& a) const;

  Fe add(const Fe& a, const Fe& b) const;
  Fe sub(const Fe& a, const Fe& b) const;
  Fe neg(const Fe& a) const;
  Fe mul(const Fe& a, const Fe& b) const;
  Fe sqr(const Fe& a) const { return mul(a, a); }

  /// a^e (e a plain integer, not in Montgomery form).
  Fe pow(const Fe& a, const U256& e) const;

  /// Multiplicative inverse via Fermat (modulus must be prime).
  Fe inverse(const Fe& a) const;

  bool is_zero(const Fe& a) const { return a.v.is_zero(); }

 private:
  /// Montgomery reduction of the 512-bit product (CIOS core).
  Fe mont_mul(const U256& a, const U256& b) const;

  U256 m_;
  Fe r_;              // R mod m
  U256 r2_;           // R^2 mod m
  std::uint64_t n0_;  // -m^{-1} mod 2^64
};

}  // namespace fides::crypto
