// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the one-way, collision-resistant hash the paper assumes for Merkle
// hash trees (§2.3), block hash pointers (§3.1), and the CoSi challenge
// (§2.2). Streaming interface plus one-shot helpers.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace fides::crypto {

/// A 32-byte SHA-256 digest. Value type; comparable and hashable.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  friend constexpr auto operator<=>(const Digest&, const Digest&) = default;

  BytesView view() const { return BytesView(bytes.data(), bytes.size()); }
  Bytes to_bytes() const { return Bytes(bytes.begin(), bytes.end()); }
  std::string hex() const;

  /// All-zero digest, used as the "previous block" pointer of the genesis
  /// block and as a sentinel for "no digest".
  static Digest zero() { return Digest{}; }
  bool is_zero() const { return *this == Digest{}; }
};

class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* p);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_{0};
  std::uint64_t total_len_{0};
};

/// One-shot hash.
Digest sha256(BytesView data);

/// Hash of the concatenation of two digests — the Merkle interior-node rule
/// h(left | right) from §2.3.
Digest sha256_pair(const Digest& left, const Digest& right);

}  // namespace fides::crypto

namespace std {
template <>
struct hash<fides::crypto::Digest> {
  size_t operator()(const fides::crypto::Digest& d) const noexcept {
    size_t v = 0;
    for (int i = 0; i < 8; ++i) v = v * 31 + d.bytes[i];
    // First 8 bytes of a SHA-256 output are already uniform; fold them.
    size_t direct;
    static_assert(sizeof(direct) <= 32);
    __builtin_memcpy(&direct, d.bytes.data(), sizeof(direct));
    return direct ^ v;
  }
};
}  // namespace std
