// The commit pipeline: multi-block round orchestration over any scheduler.
//
// run_commit_rounds() executes a stream of batches as TFCommit/2PC rounds
// with up to ClusterConfig::pipeline_depth blocks in flight. The pipeline
// owns everything the reactors must not know about:
//
//   * Admission — round k starts once the coordinator has processed round
//     k-1's decision (its log head then names k's prev-hash) and fewer than
//     `depth` rounds are incomplete. depth == 1 reproduces the classic
//     lock-step engine exactly.
//   * Gating — a cohort's copy of round k's opening message (get_vote /
//     prepare) is held until that cohort has processed round k-1's decision,
//     so its OCC validation and hypothetical Merkle root always build on the
//     previous block's applied state. This is what makes the committed
//     ledger bit-identical at every pipeline depth, even when SimNet
//     reorders the opening past the previous decision.
//   * Routing + dedup — deliveries carry the round's epoch in the engine
//     frame; each is dispatched to its round's reactor at most once per
//     (sender, receiver, type, epoch).
//
// The data dependency above (vote k+1 needs apply k) caps the *effective*
// overlap at two rounds no matter how large `depth` is: the win is the
// decision/apply tail of round k running concurrently with round k+1's
// assembly and vote phase — across servers on the in-process scheduler,
// across network legs on SimNet.
#pragma once

#include "engine/scheduler.hpp"
#include "fides/cluster.hpp"

namespace fides::engine {

/// Runs one round per batch through `protocol`, pipelined at
/// cluster.config().pipeline_depth. Throws std::logic_error if the
/// scheduler goes quiescent with rounds incomplete (an engine bug, not a
/// protocol outcome — the protocols always terminate).
PipelineResult run_commit_rounds(Cluster& cluster, Protocol protocol,
                                 std::vector<std::vector<commit::SignedEndTxn>> batches,
                                 Scheduler& sched);

/// Cohort-side serving loop for a multi-process (socket) deployment: builds
/// the same pipeline state machine as run_commit_rounds — identical epoch
/// reservation, gating, dedup — but with empty batches (cohorts validate
/// from delivered wire bytes, never from the coordinator's batch copy) and
/// no completion check: the call returns when the scheduler's run loop
/// stops, e.g. on the coordinator's shutdown frame.
void serve_commit_rounds(Cluster& cluster, Protocol protocol, std::size_t num_rounds,
                         Scheduler& sched);

/// Open-loop variant (simulated network only): clients are SimNet nodes
/// submitting on `txns`' arrival schedule; each submit hops client →
/// affinity server → coordinator over the simulated wire (with per-client
/// retry timers from `model`), round k is admitted only once batch k fully
/// arrived at the coordinator, and decisions travel back to the clients as
/// signed responses. txns[i].round must name the batch containing txn i.
OpenLoopOutcome run_open_loop_rounds(
    Cluster& cluster, Protocol protocol,
    std::vector<std::vector<commit::SignedEndTxn>> batches,
    std::vector<OpenLoopTxn> txns, const sim::ClientModel& model, sim::SimNet& net,
    Scheduler& sched);

/// Runs one checkpoint CoSi round; metrics are populated uniformly with the
/// commit paths (modeled + measured latency, network legs, threads).
CheckpointOutcome run_checkpoint_round(Cluster& cluster, Scheduler& sched);

}  // namespace fides::engine
