#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace fides::common {

std::size_t LogHistogram::bucket_index(double v) {
  if (!(v > 0.0) || std::isnan(v)) return 0;  // zero, negative, NaN
  int exp = 0;
  // frexp: v = f * 2^exp with f in [0.5, 1). Bucket by (exp, linear
  // position of f within its octave) — exact integer arithmetic after the
  // decomposition, so the boundary functions below invert it precisely.
  const double f = std::frexp(v, &exp);
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return num_buckets() - 1;
  auto sub = static_cast<std::size_t>((f - 0.5) * 2.0 * static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(exp - 1 - kMinExp) * kSubBuckets + sub;
}

double LogHistogram::bucket_upper(std::size_t idx) {
  if (idx == 0) return std::ldexp(1.0, kMinExp);
  if (idx >= num_buckets()) idx = num_buckets() - 1;
  const std::size_t off = idx - 1;
  const int exp = kMinExp + 1 + static_cast<int>(off / kSubBuckets);
  const std::size_t sub = off % kSubBuckets;
  // Upper edge of sub-bucket `sub` in octave [2^(exp-1), 2^exp).
  const double frac = 0.5 + (static_cast<double>(sub + 1) / (2.0 * kSubBuckets));
  return std::ldexp(frac, exp);
}

double LogHistogram::bucket_lower(std::size_t idx) {
  if (idx == 0) return 0.0;
  return bucket_upper(idx - 1);
}

void LogHistogram::record(double v) {
  if (!std::isfinite(v)) {
    ++rejected_;
    return;
  }
  const std::size_t idx = bucket_index(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  if (count_ == 0) {
    max_ = v;
    min_ = v;
  } else {
    max_ = std::max(max_, v);
    min_ = std::min(min_, v);
  }
  ++count_;
  sum_ += v;
}

void LogHistogram::merge(const LogHistogram& other) {
  rejected_ += other.rejected_;
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    max_ = other.max_;
    min_ = other.min_;
  } else {
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  // Compares the *distribution*: bucket counts, count, min, max — everything
  // percentiles derive from. sum_ is deliberately excluded: floating-point
  // addition is order-sensitive, so two histograms holding the same multiset
  // of samples can differ in sum_ by an ulp depending on merge order.
  if (a.count_ != b.count_) return false;
  if (a.count_ > 0 && (a.max_ != b.max_ || a.min_ != b.min_)) return false;
  const std::size_t n = std::max(a.counts_.size(), b.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ca = i < a.counts_.size() ? a.counts_[i] : 0;
    const std::uint64_t cb = i < b.counts_.size() ? b.counts_[i] : 0;
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace fides::common
