#include "commit/tfcommit.hpp"

#include "commit/batch.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include <unordered_set>

namespace fides::commit {

namespace {

/// A deliberately wrong curve point: a valid group element that is not the
/// one the protocol expects (garbage-but-on-curve, so it passes syntactic
/// checks and is only caught by the algebra — the interesting case).
crypto::AffinePoint bogus_point() {
  const auto& curve = crypto::Curve::instance();
  return curve.to_affine(curve.mul_g(crypto::U256(0xBAD)));
}

}  // namespace

Bytes EndTxnRequest::serialize() const {
  Writer w;
  txn.encode(w);
  return std::move(w).take();
}

std::optional<EndTxnRequest> EndTxnRequest::deserialize(BytesView b) {
  try {
    Reader r(b);
    EndTxnRequest req;
    req.txn = txn::Transaction::decode(r);
    r.expect_done();
    return req;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

bool SignedEndTxn::verify(const crypto::PublicKey& client_key) const {
  return crypto::verify(client_key, request.serialize(), signature);
}

// --- Cohort -----------------------------------------------------------------

bool TfCommitCohort::involved_in(const Block& block) const {
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      if (shard_->contains(item)) return true;
    }
  }
  return false;
}

VoteMsg TfCommitCohort::handle_get_vote(const GetVoteMsg& msg, const CohortFaults& faults) {
  RoundState state;
  state.involved = involved_in(msg.partial_block);
  state.partial = msg.partial_block;
  state.spec = msg.spec;
  state.faults = faults;

  // CoSi commitment over the round's vote identity (txns + witness set) —
  // every cohort participates in co-signing even when its shard is
  // untouched (§4.1 simplification). The chain position (height/prev-hash)
  // is deliberately outside the nonce record: a speculative opening does
  // not know it yet, and the commitment must come out bit-identical either
  // way for speculative and gated runs to co-sign identical blocks.
  state.commitment =
      crypto::cosi_commit(*keypair_, msg.partial_block.vote_bytes(), msg.round);

  VoteMsg vote = compute_vote(msg.round, state);
  store_round(msg.round, std::move(state));
  if (msg.spec &&
      std::find(pending_.begin(), pending_.end(), msg.round) == pending_.end()) {
    pending_.push_back(msg.round);
  }
  return vote;
}

VoteMsg TfCommitCohort::compute_vote(std::uint64_t round, RoundState& state) {
  VoteMsg vote;
  vote.cohort = id_;
  vote.sch_commitment =
      state.faults.corrupt_sch_commitment ? bogus_point() : state.commitment.v;
  vote.involved = state.involved;
  state.assumed.clear();
  state.base_root.reset();
  if (!state.involved) {
    // Uninvolved cohorts never veto — and no in-flight block this round
    // could stack on touches their shard's relevance, so the vote carries
    // no speculation tag and can never mis-speculate.
    state.vote = txn::Vote::kCommit;
    last_vote_ = state.vote;
    return vote;
  }

  // Speculated base: the shard as it would look once the in-flight rounds
  // below this one resolve the way this cohort predicts. The prediction per
  // round is the cohort's own vote — it cannot know the other shards'
  // verdicts — and every assumption is recorded so the coordinator can
  // check it against the real decisions.
  store::ShardOverlay base(*shard_);
  std::vector<std::vector<std::pair<ItemId, Bytes>>> staged;
  for (const std::uint64_t e : pending_) {
    if (e == round) break;  // stack strictly below the round being voted
    const auto it = rounds_.find(e);
    if (it == rounds_.end()) continue;
    const RoundState& st = it->second;
    if (!st.involved) continue;  // cannot touch this shard either way
    const bool assume_applied = st.vote == txn::Vote::kCommit;
    state.assumed.push_back(SpecAssumption{e, assume_applied});
    if (!assume_applied) continue;
    std::vector<std::pair<ItemId, Bytes>> writes;
    for (const auto& t : st.partial.txns) {
      // Mirrors Server::apply_block: install writes, then advance rts on
      // every touched item.
      for (const auto& w : t.rw.writes) {
        if (!shard_->contains(w.id)) continue;
        base.stage_write(w.id, w.new_value, t.commit_ts);
        writes.emplace_back(w.id, w.new_value);
      }
      for (const ItemId item : t.rw.touched_items()) {
        if (shard_->contains(item)) base.bump_rts(item, t.commit_ts);
      }
    }
    staged.push_back(std::move(writes));
  }

  // Local 2PC vote: the batch must be internally non-conflicting (§4.6) and
  // every transaction touching this shard must pass OCC validation — on the
  // speculated base, which equals the real shard when nothing is in flight.
  txn::ValidationResult result{txn::Vote::kCommit, {}};
  if (!batch_non_conflicting(state.partial.txns)) {
    result = {txn::Vote::kAbort, "block packs conflicting transactions"};
  }
  for (const auto& t : state.partial.txns) {
    if (!result.ok()) break;
    result = txn::validate_occ(base, t);
  }
  if (state.faults.always_vote_abort) result = {txn::Vote::kAbort, "byzantine veto"};

  state.vote = result.vote;
  last_vote_ = result.vote;
  vote.vote = result.vote;
  vote.abort_reason = result.reason;
  vote.spec_assumed = state.assumed;
  last_root_compute_us_ = 0;
  state.sent_root.reset();
  // Thread CPU time: the Figure 14 "MHT update time" series must not be
  // inflated by time slices when cohorts run concurrently on the pool.
  const double start = common::thread_cpu_time_us();
  if (!state.assumed.empty()) {
    // Base identity: the predicted root of this shard *before* this round's
    // own writes — what the decided chain must actually produce for the
    // vote to count.
    state.base_root = shard_->root_after_chain(staged);
    vote.spec_base_root = state.base_root;
  }
  if (result.ok()) {
    // Hypothetical root: the shard state as if the in-flight base and then
    // this block committed. The datastore itself is untouched until the
    // decisions arrive.
    std::vector<std::pair<ItemId, Bytes>> writes;
    for (const auto& t : state.partial.txns) {
      for (const auto& w : t.rw.writes) {
        if (shard_->contains(w.id)) writes.emplace_back(w.id, w.new_value);
      }
    }
    staged.push_back(std::move(writes));
    state.sent_root = shard_->root_after_chain(staged);
    vote.root = state.sent_root;
  }
  last_root_compute_us_ = common::thread_cpu_time_us() - start;
  return vote;
}

std::vector<TfCommitCohort::ReVote> TfCommitCohort::resolve_decision(std::uint64_t round,
                                                                     bool applied) {
  std::vector<ReVote> revotes;
  const auto pos = std::find(pending_.begin(), pending_.end(), round);
  if (pos == pending_.end()) return revotes;
  pending_.erase(pos);
  // Recompute in round order: a re-vote of round m feeds the prediction an
  // even later round's re-vote stacks on.
  for (const std::uint64_t later : pending_) {
    if (later < round) continue;
    const auto it = rounds_.find(later);
    if (it == rounds_.end()) continue;
    RoundState& st = it->second;
    if (!st.involved) continue;
    const auto a = std::find_if(st.assumed.begin(), st.assumed.end(),
                                [&](const SpecAssumption& s) { return s.epoch == round; });
    if (a == st.assumed.end() || a->applied == applied) continue;  // prediction held
    ReVote rv;
    rv.round = later;
    rv.vote = compute_vote(later, st);
    revotes.push_back(std::move(rv));
  }
  return revotes;
}

ResponseMsg TfCommitCohort::handle_challenge(const ChallengeMsg& msg,
                                             const CohortFaults& faults) {
  RoundState* found = find_round(msg.block);
  if (found == nullptr) {
    ResponseMsg resp;
    resp.cohort = id_;
    resp.refused = true;
    resp.refusal_reason = "challenge received without a pending round";
    return resp;
  }
  return respond_to_challenge(*found, msg, faults);
}

ResponseMsg TfCommitCohort::handle_challenge(std::uint64_t round, const ChallengeMsg& msg,
                                             const CohortFaults& faults) {
  ResponseMsg resp;
  resp.cohort = id_;
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) {
    resp.refused = true;
    resp.refusal_reason = "challenge received without a pending round";
    return resp;
  }
  RoundState& state = it->second;
  // A speculative opening carried a projected height and no prev-hash; the
  // completed block pins the real chain position, which this cohort checks
  // at apply time instead. Everything content-ful must still match the
  // opening it voted on.
  const bool match =
      state.partial.txns == msg.block.txns && state.partial.signers == msg.block.signers &&
      (state.spec || (state.partial.height == msg.block.height &&
                      state.partial.prev_hash == msg.block.prev_hash));
  if (!match) {
    resp.refused = true;
    resp.refusal_reason = "challenge block does not match the round I voted on";
    return resp;
  }
  return respond_to_challenge(state, msg, faults);
}

ResponseMsg TfCommitCohort::respond_to_challenge(RoundState& state, const ChallengeMsg& msg,
                                                 const CohortFaults& faults) {
  ResponseMsg resp;
  resp.cohort = id_;

  const Block& block = msg.block;

  // Decision/roots consistency (§4.3.1 phase 4): a commit block must carry
  // a root from every involved server; an abort block must be missing at
  // least one.
  if (block.decision == Decision::kCommit) {
    if (state.involved) {
      const crypto::Digest* mine = block.root_of(id_);
      if (!faults.skip_root_check) {
        if (mine == nullptr) {
          resp.refused = true;
          resp.refusal_reason = "commit block missing my root";
          return resp;
        }
        if (!state.sent_root || !(*mine == *state.sent_root)) {
          resp.refused = true;
          resp.refusal_reason = "root in block does not match the root I sent";
          return resp;
        }
        if (state.vote == txn::Vote::kAbort) {
          resp.refused = true;
          resp.refusal_reason = "commit decision despite my abort vote";
          return resp;
        }
      }
    }
  }
  // For abort blocks there is nothing shard-specific to check: missing
  // roots are expected ("if the decision is abort, b_i should have some
  // missing roots"), and the challenge check below still binds the cohort
  // to the abort variant it actually received.

  // Challenge correctness: ch must equal H(X_sch ‖ block) for the block *I*
  // received (Lemma 5 detection).
  if (!faults.skip_challenge_check) {
    const crypto::U256 expected =
        crypto::cosi_challenge(msg.aggregate_commitment, block.signing_bytes());
    if (!(expected == msg.challenge)) {
      resp.refused = true;
      resp.refusal_reason = "challenge does not correspond to the block I received";
      return resp;
    }
  }

  // Nonce protection: the deterministic round nonce must never answer two
  // distinct challenges (a second response under the same nonce would leak
  // the key). Deterministic restarts re-ask the identical challenge, which
  // re-derives the identical response.
  if (state.responded && !(state.responded_challenge == msg.challenge)) {
    resp.refused = true;
    resp.refusal_reason = "already responded to a different challenge this round";
    return resp;
  }

  crypto::U256 r =
      crypto::cosi_respond(*keypair_, state.commitment.secret, msg.challenge);
  if (faults.corrupt_sch_response) {
    r = crypto::U256(0xBADBAD);
  }
  state.responded = true;
  state.responded_challenge = msg.challenge;
  resp.sch_response = r;
  return resp;
}

void TfCommitCohort::store_round(std::uint64_t round, RoundState state) {
  rounds_[round] = std::move(state);
  // Bounded memory: only the pipeline window (plus stale redeliveries) is
  // ever consulted; evict the oldest rounds beyond it.
  while (rounds_.size() > kMaxRounds) {
    const std::uint64_t evicted = rounds_.begin()->first;
    const auto pos = std::find(pending_.begin(), pending_.end(), evicted);
    if (pos != pending_.end()) pending_.erase(pos);
    rounds_.erase(rounds_.begin());
  }
}

bool TfCommitCohort::has_pending(std::uint64_t round, const Block& partial) const {
  const auto it = rounds_.find(round);
  return it != rounds_.end() && it->second.partial == partial;
}

TfCommitCohort::RoundState* TfCommitCohort::find_round(const Block& block) {
  // The completed block differs from the stored partial exactly in the
  // fields the coordinator fills (decision, roots, cosign) — including an
  // equivocating coordinator's variants, which the caller must still
  // process (and refuse via the challenge check). Everything else
  // identifies the round, even when CoSi round ids are not block heights
  // (OrdServ group commit hands out epochs).
  const auto matches = [&](const RoundState& st) {
    return st.partial.height == block.height && st.partial.prev_hash == block.prev_hash &&
           st.partial.signers == block.signers && st.partial.txns == block.txns;
  };
  const auto it = rounds_.find(block.height);
  if (it != rounds_.end() && matches(it->second)) return &it->second;
  for (auto rit = rounds_.rbegin(); rit != rounds_.rend(); ++rit) {
    if (matches(rit->second)) return &rit->second;
  }
  return nullptr;
}

const TfCommitCohort::RoundState* TfCommitCohort::find_round(const Block& block) const {
  return const_cast<TfCommitCohort*>(this)->find_round(block);
}

const Block* TfCommitCohort::partial_of(std::uint64_t round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? nullptr : &it->second.partial;
}

std::optional<crypto::AffinePoint> TfCommitCohort::term_commitment(
    std::uint64_t round) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return std::nullopt;
  // Same record discipline as the vote commitment (the termination block's
  // chain position can be fixed up after a speculative opening); the
  // distinct term_round id keeps the nonce domains apart.
  return crypto::cosi_commit(*keypair_, it->second.partial.vote_bytes(),
                             term_round(round))
      .v;
}

ResponseMsg TfCommitCohort::handle_term_challenge(std::uint64_t round,
                                                  const ChallengeMsg& msg) {
  ResponseMsg resp;
  resp.cohort = id_;

  const auto it = rounds_.find(round);
  if (it == rounds_.end()) {
    resp.refused = true;
    resp.refusal_reason = "termination challenge for an unknown round";
    return resp;
  }
  const Block& mine = it->second.partial;
  // Signers legitimately shrink to the survivor set, and for a speculative
  // opening the backup fills in the real chain position (the projected
  // height/absent prev-hash in the opening could never match); nothing else
  // may differ from the opening this cohort received.
  const bool chain_ok =
      it->second.spec ||
      (msg.block.height == mine.height && msg.block.prev_hash == mine.prev_hash);
  if (!chain_ok || !(msg.block.txns == mine.txns)) {
    resp.refused = true;
    resp.refusal_reason = "termination block does not match the opening I received";
    return resp;
  }
  if (msg.block.decision != Decision::kAbort) {
    // Only the coordinator path can justify a commit (it alone collects all
    // votes); a termination backup may never manufacture one.
    resp.refused = true;
    resp.refusal_reason = "termination block must carry an abort decision";
    return resp;
  }
  const crypto::U256 expected =
      crypto::cosi_challenge(msg.aggregate_commitment, msg.block.signing_bytes());
  if (!(expected == msg.challenge)) {
    resp.refused = true;
    resp.refusal_reason = "termination challenge does not match the block";
    return resp;
  }

  const crypto::CosiCommitment nonce = crypto::cosi_commit(
      *keypair_, it->second.partial.vote_bytes(), term_round(round));
  resp.sch_response = crypto::cosi_respond(*keypair_, nonce.secret, msg.challenge);
  return resp;
}

// --- Coordinator ------------------------------------------------------------

TfCommitCoordinator::TfCommitCoordinator(std::vector<ServerId> cohorts,
                                         std::vector<crypto::PublicKey> keys)
    : cohorts_(std::move(cohorts)), keys_(std::move(keys)) {}

Block TfCommitCoordinator::make_partial_block(std::uint64_t height,
                                              const crypto::Digest& prev_hash,
                                              std::vector<txn::Transaction> txns,
                                              std::vector<ServerId> signers) {
  Block b;
  b.height = height;
  b.prev_hash = prev_hash;
  b.txns = std::move(txns);
  b.signers = std::move(signers);
  b.decision = Decision::kAbort;  // filled in phase 3
  return b;
}

GetVoteMsg TfCommitCoordinator::start(Block partial_block,
                                      std::vector<SignedEndTxn> requests) {
  block_ = std::move(partial_block);
  commitments_.clear();
  GetVoteMsg msg;
  msg.partial_block = block_;
  msg.requests = std::move(requests);
  msg.round = block_.height;
  return msg;
}

std::vector<ChallengeMsg> TfCommitCoordinator::on_votes(std::span<const VoteMsg> votes,
                                                        const CoordinatorFaults& faults) {
  // 2PC decision rule: commit iff no involved cohort voted abort.
  bool all_commit = true;
  for (const auto& v : votes) {
    if (v.involved && v.vote == txn::Vote::kAbort) all_commit = false;
  }
  if (faults.force_commit) all_commit = true;

  block_.decision = all_commit ? Decision::kCommit : Decision::kAbort;
  block_.roots.clear();
  for (const auto& v : votes) {
    // Roots from cohorts that voted commit; on abort "the respective roots
    // will be missing in the block" (§4.3.1 phase 3).
    if (v.involved && v.root) block_.set_root(v.cohort, *v.root);
  }
  if (faults.fake_root_victim) {
    block_.set_root(*faults.fake_root_victim,
                    crypto::sha256(to_bytes("forged-root")));  // Scenario 2
  }

  commitments_.clear();
  commitments_.reserve(votes.size());
  for (const auto& v : votes) commitments_.push_back(v.sch_commitment);
  aggregate_v_ = crypto::cosi_aggregate_commitments(commitments_);
  challenge_ = crypto::cosi_challenge(aggregate_v_, block_.signing_bytes());

  ChallengeMsg honest;
  honest.challenge = challenge_;
  honest.aggregate_commitment = aggregate_v_;
  honest.block = block_;

  if (faults.equivocate == CoordinatorFaults::Equivocation::kNone) {
    // Broadcast: one message, every cohort receives the same bytes.
    std::vector<ChallengeMsg> out;
    out.push_back(std::move(honest));
    if (faults.drop_last_challenge) {
      out.assign(cohorts_.size(), out.front());
      out.pop_back();
    }
    return out;
  }

  std::vector<ChallengeMsg> out(cohorts_.size(), honest);
  {
    // Build the conflicting abort variant b_a of the block (Lemma 5).
    Block abort_variant = block_;
    abort_variant.decision = Decision::kAbort;
    abort_variant.roots.clear();

    ChallengeMsg lie;
    lie.aggregate_commitment = aggregate_v_;
    lie.block = abort_variant;
    lie.challenge =
        faults.equivocate == CoordinatorFaults::Equivocation::kSameChallenge
            ? challenge_  // Case 1: challenge matches only the commit block
            : crypto::cosi_challenge(aggregate_v_, abort_variant.signing_bytes());  // Case 2

    for (const std::size_t victim : faults.equivocation_victims) {
      if (victim < out.size()) out[victim] = lie;
    }
  }
  if (faults.drop_last_challenge && !out.empty()) out.pop_back();
  return out;
}

TfCommitOutcome TfCommitCoordinator::on_responses(std::span<const ResponseMsg> responses) {
  TfCommitOutcome outcome;

  std::vector<crypto::U256> shares;
  shares.reserve(responses.size());
  bool any_refused = false;
  for (const auto& r : responses) {
    if (r.refused) {
      any_refused = true;
      outcome.refusals.emplace_back(r.cohort, r.refusal_reason);
    }
    shares.push_back(r.sch_response);
  }

  block_.cosign = crypto::CosiSignature{
      aggregate_v_, crypto::cosi_aggregate_responses(shares)};

  outcome.cosign_valid =
      !any_refused &&
      crypto::cosi_verify(block_.signing_bytes(), *block_.cosign, keys_);

  if (!outcome.cosign_valid) {
    // Lemma 4: binary-search-free attribution — check each share against its
    // commitment; the server(s) with invalid shares are the culprits. The
    // coordinator is incentivised to do this: an unverifiable block makes
    // the auditor suspect the coordinator itself.
    const auto faulty =
        crypto::cosi_find_faulty(commitments_, shares, challenge_, keys_);
    for (const std::size_t idx : faulty) outcome.faulty_cosigners.push_back(cohorts_[idx]);
  }

  outcome.decision = block_.decision;
  outcome.block = block_;
  return outcome;
}

std::vector<ServerId> involved_servers(const Block& block, std::uint32_t num_servers) {
  std::unordered_set<std::uint32_t> set;
  if (num_servers == 0) return {};
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      set.insert(store::shard_for_item(item, num_servers).value);
    }
  }
  std::vector<ServerId> out;
  out.reserve(set.size());
  for (const std::uint32_t s : set) out.push_back(ServerId{s});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fides::commit
