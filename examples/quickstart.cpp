// Quickstart: stand up a Fides cluster, run a distributed transaction
// through TFCommit, and audit the result.
//
//   $ ./quickstart
//
// Walks the full §4.1 life-cycle: begin -> read/write -> end-transaction ->
// TFCommit -> replicated tamper-proof log -> datastore update -> audit.
#include <cstdio>

#include "audit/auditor.hpp"
#include "fides/cluster.hpp"

int main() {
  using namespace fides;

  // 1. A cluster of 4 untrusted servers, each owning one shard of 1000
  //    items, multi-versioned (enables per-version audits).
  ClusterConfig config;
  config.num_servers = 4;
  config.items_per_shard = 1000;
  config.versioning = store::VersioningMode::kMulti;
  Cluster cluster(config);
  std::printf("cluster: %u servers, %u items/shard\n", config.num_servers,
              config.items_per_shard);

  // 2. A client runs a distributed read-modify-write transaction across
  //    three shards (items 0, 1, 2 live on servers 0, 1, 2).
  Client& client = cluster.make_client();
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), std::vector<ItemId>{0, 1, 2});
  for (const ItemId item : {0, 1, 2}) {
    const Bytes value = client.read(txn, item);
    std::printf("read item %llu = \"%s\" from %s\n",
                static_cast<unsigned long long>(item), to_string(value).c_str(),
                to_string(cluster.owner_of(item)).c_str());
    client.write(txn, item, to_bytes("updated-" + std::to_string(item)));
  }

  // 3. End transaction: the signed request goes to the coordinator, which
  //    runs TFCommit (2PC + collective signing) across all servers.
  const commit::SignedEndTxn request = client.end(std::move(txn));
  const RoundMetrics metrics = cluster.run_block({request});
  std::printf("decision: %s, co-sign valid: %s, modeled latency: %.2f ms\n",
              metrics.decision == ledger::Decision::kCommit ? "COMMIT" : "ABORT",
              metrics.cosign_valid ? "yes" : "no",
              metrics.modeled_latency_us / 1000.0);

  // 4. The client verifies the collective signature before accepting.
  const ledger::Block& block = cluster.server(ServerId{0}).log().at(0);
  std::printf("client accepts block: %s\n",
              client.accept_decision(block, cluster.server_keys()) ? "yes" : "no");

  // 5. Every server now holds the same tamper-proof log block, and the
  //    datastores reflect the writes.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    std::printf("%s log head: %s...\n", to_string(ServerId{i}).c_str(),
                cluster.server(ServerId{i}).log().head_hash().hex().substr(0, 16).c_str());
  }
  std::printf("item 0 on its owner: \"%s\"\n",
              to_string(cluster.server(cluster.owner_of(0)).shard().peek(0).value).c_str());

  // 6. An external auditor verifies v-ACID over the whole history.
  audit::Auditor auditor(cluster);
  const audit::AuditReport report = auditor.run();
  std::printf("%s", report.to_string().c_str());
  return report.clean() ? 0 : 1;
}
