#include "sim/simnet.hpp"

#include <algorithm>
#include <bit>

#include "common/serde.hpp"

namespace fides::sim {

namespace {

bool contains(const std::vector<std::uint32_t>& ids, NodeId n) {
  return n.kind == NodeId::Kind::kServer &&
         std::find(ids.begin(), ids.end(), n.id) != ids.end();
}

}  // namespace

SimNet::SimNet(SimNetConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

double SimNet::draw_delay() {
  const double lo = config_.link.min_delay_us;
  const double hi = std::max(config_.link.max_delay_us, lo);
  double d = lo + rng_.uniform01() * (hi - lo);
  if (config_.link.reorder_prob > 0 && rng_.uniform01() < config_.link.reorder_prob) {
    d += rng_.uniform01() * config_.link.reorder_extra_us;
  }
  return d;
}

double SimNet::release_time(NodeId src, NodeId dst, double t, bool& was_held) const {
  // Fixpoint: healing one window may land inside another, in any config
  // order — keep bumping until no active window separates src from dst.
  // Terminates because release only ever advances to one of finitely many
  // heal times.
  double release = t;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Partition& p : config_.partitions) {
      if (release >= p.start_us && release < p.heal_us &&
          contains(p.island, src) != contains(p.island, dst)) {
        release = p.heal_us;
        was_held = true;
        changed = true;
      }
    }
  }
  return release;
}

void SimNet::fold_event(const char* tag, double at_us, NodeId src, NodeId dst,
                        const Envelope& env, const crypto::Digest& payload_digest) {
  Writer w;
  w.raw(trace_hash_.view());
  w.str(tag);
  w.u64(std::bit_cast<std::uint64_t>(at_us));
  w.u8(static_cast<std::uint8_t>(src.kind));
  w.u32(src.id);
  w.u8(static_cast<std::uint8_t>(dst.kind));
  w.u32(dst.id);
  w.str(env.type);
  w.raw(payload_digest.view());
  trace_hash_ = crypto::sha256(w.data());
}

void SimNet::schedule(double at_us, NodeId src, NodeId dst, Envelope env,
                      const crypto::Digest& payload_digest, bool duplicate) {
  Event ev;
  ev.at_us = at_us;
  ev.seq = next_seq_++;
  ev.src = src;
  ev.dst = dst;
  ev.env = std::move(env);
  ev.payload_digest = payload_digest;
  ev.duplicate = duplicate;
  queue_.push(std::move(ev));
}

void SimNet::send(NodeId src, NodeId dst, Envelope env) {
  ++stats_.sent;
  const crypto::Digest payload_digest = crypto::sha256(env.payload);
  fold_event("SEND", now_us_, src, dst, env, payload_digest);

  if (src == dst) {
    // Loopback: ideal link, no RNG draws (keeps the random stream — and
    // hence the schedule of real links — independent of self-traffic).
    schedule(now_us_ + config_.self_delay_us, src, dst, std::move(env),
             payload_digest, false);
    return;
  }

  // Loss with retransmission: each dropped copy costs one timeout before
  // the next attempt; the final attempt always goes through, so the round
  // terminates deterministically.
  double t = now_us_;
  for (std::uint32_t attempt = 1; attempt < config_.max_attempts; ++attempt) {
    if (config_.link.drop_prob <= 0 || rng_.uniform01() >= config_.link.drop_prob) break;
    ++stats_.dropped;
    fold_event("DROP", t, src, dst, env, payload_digest);
    t += config_.retransmit_timeout_us;
  }

  bool held = false;
  const double delay = draw_delay();
  double deliver_at = release_time(src, dst, t, held) + delay;
  if (held) {
    ++stats_.held;
    fold_event("HOLD", deliver_at, src, dst, env, payload_digest);
  }

  const bool dup =
      config_.link.dup_prob > 0 && rng_.uniform01() < config_.link.dup_prob;
  if (dup) {
    ++stats_.duplicated;
    bool dup_held = false;
    const double dup_at = release_time(src, dst, t, dup_held) + draw_delay();
    if (dup_held) {
      ++stats_.held;
      fold_event("HOLD", dup_at, src, dst, env, payload_digest);
    }
    fold_event("DUP", dup_at, src, dst, env, payload_digest);
    schedule(dup_at, src, dst, env, payload_digest, true);
  }
  schedule(deliver_at, src, dst, std::move(env), payload_digest, false);
}

void SimNet::run(const DeliverFn& on_deliver) {
  while (!queue_.empty()) {
    // Copy out (priority_queue::top is const): envelopes in round traffic
    // are small relative to the crypto work they trigger.
    Event ev = queue_.top();
    queue_.pop();
    now_us_ = std::max(now_us_, ev.at_us);
    ++stats_.delivered;
    fold_event("DELIVER", ev.at_us, ev.src, ev.dst, ev.env, ev.payload_digest);
    on_deliver(ev.src, ev.dst, ev.env);
  }
}

}  // namespace fides::sim
