// SimNet — a deterministic discrete-event simulated network.
//
// FoundationDB-style simulation testing for the message layer: instead of
// delivering an envelope by direct function call, a sender schedules it as
// an event on a virtual clock. Per-link delays are drawn from a seeded RNG,
// so delivery *order* is a deterministic function of the seed — and the
// fuzzer can enumerate thousands of distinct schedules (reorderings, losses
// with retransmission, duplicates, partition/heal windows, node crash and
// recovery) simply by enumerating seeds.
//
// Node faults: crash/recover events are scheduled on the same virtual
// clock. While a node is down, every delivery addressed to it is lost (the
// process is not listening); on recovery the control callback fires and the
// engine replays the node's durable state and opens an ideal-link catch-up
// stream (send_sequenced) for the messages it missed.
//
// Determinism contract: SimNet is single-threaded and every random draw
// happens in a fixed program order, so two runs with the same seed and the
// same send sequence produce byte-identical event traces. The running trace
// hash (SHA-256 folded over every SEND/DROP/DUP/HOLD/DELIVER/LOST/CRASH/
// RECOVER event, including payload digests) is the reproduction token:
// equal hashes mean equal schedules, and a failing fuzz case reproduces
// from its seed alone.
#pragma once

#include <functional>
#include <queue>
#include <set>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "engine/scheduler.hpp"
#include "fides/transport.hpp"

namespace fides::sim {

class SimNet {
 public:
  struct Stats {
    std::uint64_t sent{0};        ///< logical messages handed to send()
    std::uint64_t delivered{0};   ///< delivery callbacks fired (incl. dups)
    std::uint64_t dropped{0};     ///< copies lost; each costs one retransmit
    std::uint64_t duplicated{0};  ///< extra copies delivered
    std::uint64_t held{0};        ///< copies delayed by an active partition
    std::uint64_t lost_down{0};   ///< copies addressed to a crashed node
  };

  /// Delivery callback: the receiver-side dispatch. `dst` is the addressee;
  /// `env` is the (signed) envelope as sent — SimNet never mutates payloads.
  /// `replay` marks a recovery catch-up copy (send_sequenced).
  using DeliverFn = std::function<void(NodeId src, NodeId dst, const Envelope& env,
                                       bool replay)>;
  /// Crash/recover/timeout callback, fired as control events pop.
  using ControlFn = std::function<void(const engine::ControlEvent& ev)>;

  explicit SimNet(SimNetConfig config);

  /// Schedules delivery of `env` from src to dst. Draws delay/drop/dup
  /// choices from the seeded RNG (per-link overrides honoured); a dropped
  /// copy is retransmitted after the configured timeout (bounded by
  /// max_attempts, last attempt always delivered), and traffic crossing an
  /// active partition is held until the heal time. May be called from
  /// inside a delivery callback.
  void send(NodeId src, NodeId dst, Envelope env);

  /// Recovery catch-up stream: ideal link, fixed small delay, no fault or
  /// delay draws (the RNG stream — and hence every other link's schedule —
  /// is independent of recovery traffic), delivered in send order and
  /// flagged `replay` at the receiver.
  void send_sequenced(NodeId src, NodeId dst, Envelope env);

  /// Pops events in virtual-time order, invoking `on_deliver` for each
  /// delivery and `on_control` (when given) for each crash/recover/timeout,
  /// until the queue drains. Handlers may call send() to schedule further
  /// traffic — the loop keeps going until the network is quiescent.
  void run(const DeliverFn& on_deliver, const ControlFn& on_control = {});

  // --- Node fault schedule ----------------------------------------------------

  void schedule_crash(NodeId node, double at_us);
  void schedule_recover(NodeId node, double at_us);
  /// Failure-detection probe: fires kCoordinatorTimeout at `at_us`; the
  /// engine decides whether the watched node is still dead.
  void schedule_timeout(NodeId node, double at_us);
  /// Generic node-local timer (client submit/retry clocks): fires a kTimer
  /// control event carrying `tag` at `at_us`. Folded into the trace hash
  /// like every other event, so timer-driven traffic stays reproducible.
  void schedule_timer(NodeId node, double at_us, std::uint64_t tag);

  /// Immediate crash at the current virtual time (transition-triggered
  /// crash points). Marks the node down and folds the trace event; the
  /// caller performs the engine-side bookkeeping itself.
  void crash_now(NodeId node);

  bool is_down(NodeId node) const { return down_.count(node) != 0; }

  /// Virtual time of the most recently processed event.
  double now_us() const { return now_us_; }

  const Stats& stats() const { return stats_; }

  /// Running hash over every scheduled and processed event. Two runs with
  /// the same seed and send sequence yield the same hash; any divergence
  /// (different payload bytes, different order, different fault choices)
  /// changes it.
  const crypto::Digest& trace_hash() const { return trace_hash_; }

  const SimNetConfig& config() const { return config_; }

 private:
  struct Event {
    enum class Kind : std::uint8_t { kDeliver, kControl };
    Kind kind{Kind::kDeliver};
    double at_us{0};
    std::uint64_t seq{0};  ///< scheduling order; total-orders equal times
    NodeId src;
    NodeId dst;
    Envelope env;
    crypto::Digest payload_digest;  ///< computed once per send()
    bool duplicate{false};
    bool replay{false};  ///< recovery catch-up copy
    engine::ControlEvent ctrl;  ///< valid when kind == kControl
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };

  /// The fault/delay profile governing src→dst (per-link override when one
  /// matches, the global profile otherwise).
  const LinkFaults& link_for(NodeId src, NodeId dst) const;
  double draw_delay(const LinkFaults& lf);
  /// Earliest time >= `t` at which src->dst traffic is not partitioned.
  double release_time(NodeId src, NodeId dst, double t, bool& was_held) const;
  void schedule(double at_us, NodeId src, NodeId dst, Envelope env,
                const crypto::Digest& payload_digest, bool duplicate, bool replay);
  void schedule_control(engine::ControlEvent::Kind kind, NodeId node, double at_us,
                        std::uint64_t tag = 0);
  /// `payload_digest` = sha256 of the envelope payload, computed once per
  /// send (SimNet never mutates payloads).
  void fold_event(const char* tag, double at_us, NodeId src, NodeId dst,
                  const Envelope& env, const crypto::Digest& payload_digest);
  void fold_node_event(const char* tag, double at_us, NodeId node);

  SimNetConfig config_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_{0};
  double now_us_{0};
  Stats stats_;
  crypto::Digest trace_hash_;
  std::set<NodeId> down_;
};

}  // namespace fides::sim
