// In-process delivery for the round engine.
//
// Replaces the old lock-step phase driver in fides/cluster.cpp: instead of
// executing one protocol phase at a time with a barrier after each, every
// node gets a FIFO work queue and the cluster's thread pool runs the queues
// actor-style — deliveries to the *same* node execute in order on one
// worker at a time (so node state needs no locking), deliveries to
// *different* nodes execute concurrently. There is no barrier between
// phases or rounds: a server that finishes applying block k's decision can
// vote on block k+1 while a slower server is still applying — which is
// where pipelined throughput comes from.
//
// Determinism: outcomes are interleaving-independent (see reactor.hpp), so
// a width-1 run (num_threads == 1 — a plain sequential drain) and a
// width-N run of the same batches produce identical decisions, blocks,
// ledger state, and co-signs; only wall-clock time changes. The
// parallel_round and engine_pipeline suites pin this.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "engine/scheduler.hpp"

namespace fides::engine {

class InProcScheduler final : public Scheduler, private Outbox {
 public:
  explicit InProcScheduler(common::ThreadPool& pool) : pool_(&pool) {}

  Outbox& outbox() override { return *this; }
  void run(Dispatcher& dispatcher) override;
  void post(NodeId dst, std::function<void()> fn) override;
  std::size_t concurrency() const override { return pool_->concurrency(); }

 private:
  struct Item {
    NodeId src;                  // valid when task == nullptr
    Envelope env;                // valid when task == nullptr
    std::function<void()> task;  // non-null for posted control actions
  };

  void send(NodeId src, NodeId dst, Envelope env) override;
  void enqueue(NodeId dst, Item item) EXCLUDES(mutex_);
  /// One executor: claims runnable destinations and drains their queues
  /// until global quiescence (all queues empty, no handler running).
  /// Takes and drops mutex_ around each claim; never holds it while a
  /// handler runs (handlers re-enter via send/post).
  void worker(Dispatcher& dispatcher) EXCLUDES(mutex_);

  common::ThreadPool* pool_;  // confined(ctor): the pool synchronizes internally
  common::Mutex mutex_;
  common::CondVar cv_;
  std::unordered_map<NodeId, std::deque<Item>> queues_ GUARDED_BY(mutex_);
  std::deque<NodeId> runnable_ GUARDED_BY(mutex_);  ///< queued dsts not claimed
  std::unordered_set<NodeId> active_
      GUARDED_BY(mutex_);              ///< dsts in runnable_ or being drained
  std::size_t busy_ GUARDED_BY(mutex_){0};  ///< workers draining a dst
  bool failed_ GUARDED_BY(mutex_){false};   ///< a handler threw; all bail out
};

}  // namespace fides::engine
