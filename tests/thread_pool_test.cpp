// Unit tests for the worker pool the parallel round engine runs on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace fides::common {
namespace {

TEST(ThreadPool, ParallelForExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForResultsVisibleAfterJoin) {
  // Workers write plain (non-atomic) slots; the join must publish them.
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::vector<std::size_t> out(kN, 0);
  pool.parallel_for(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.parallel());
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroAndOneElementLoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The round engine nests: per-server fan-out, then per-level Merkle
  // fan-out inside each server's build. The caller participates in its own
  // loop, so even a saturated pool makes progress.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    pool.parallel_for(kInner, [&, o](std::size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAfterAllIndicesRun) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          hits[i].fetch_add(1);
                          if (i == 41) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The loop still completed every index: no index was dropped.
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 100);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, SubmitOnInlinePoolRunsImmediately) {
  ThreadPool pool(1);
  int calls = 0;
  pool.submit([&calls] { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ManySmallLoopsStress) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(7, [&](std::size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 200u * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

}  // namespace
}  // namespace fides::common
