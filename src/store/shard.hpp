// A data shard: the datastore component of one Fides server (§3.1, Fig 3).
//
// The shard owns a fixed universe of items (established at provisioning, as
// in the paper's evaluation where each server stores a shard of N items),
// tracks per-item values and rts/wts timestamps, and mirrors the item set in
// a Merkle hash tree whose root is what TFCommit signs into blocks.
//
// Single- vs multi-versioned mode (§4.2.1) is a per-shard choice; in
// multi-versioned mode every committed write also appends to the item's
// version chain so the auditor can authenticate any historical version.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "merkle/merkle_tree.hpp"
#include "merkle/proof.hpp"
#include "store/item.hpp"
#include "store/versioned_store.hpp"

namespace fides::store {

enum class VersioningMode : std::uint8_t {
  kSingle,
  kMulti,
};

/// Cumulative shard statistics surfaced to the benchmark harness.
struct ShardStats {
  std::uint64_t reads{0};
  std::uint64_t committed_writes{0};
  std::uint64_t merkle_nodes_rehashed{0};
};

class Shard {
 public:
  /// `item_ids` is the shard's fixed item universe; every item starts with
  /// `initial_value` and zero timestamps. `pool`, when given, parallelizes
  /// the initial Merkle build and later full-tree rebuilds (audits,
  /// recovery); the shard does not own it and it must outlive the shard.
  Shard(ShardId id, std::vector<ItemId> item_ids, Bytes initial_value,
        VersioningMode mode, common::ThreadPool* pool = nullptr);

  ShardId id() const { return id_; }
  VersioningMode mode() const { return mode_; }
  std::size_t item_count() const { return order_.size(); }
  const std::vector<ItemId>& item_ids() const { return order_; }

  bool contains(ItemId item) const { return index_.count(item) != 0; }

  /// Execution-layer read: current value + timestamps (§4.2.1).
  ReadResult read(ItemId item);

  /// Item state without bumping statistics (used by validation/audit).
  const ItemRecord& peek(ItemId item) const;

  /// Applies one committed write: installs the value, sets wts, and (in
  /// multi-versioned mode) appends a version. Updates the Merkle leaf.
  void apply_write(ItemId item, BytesView value, const Timestamp& commit_ts);

  /// Bumps the read timestamp of an item to the committing reader's ts.
  void update_read_ts(ItemId item, const Timestamp& commit_ts);

  // --- Merkle integration -------------------------------------------------

  /// Leaf index of an item within this shard's tree (item-id order).
  std::size_t leaf_index(ItemId item) const;

  crypto::Digest merkle_root() const { return tree_.root(); }

  /// Root that would result from applying `writes` (id -> new value) without
  /// mutating anything — the vote-phase computation of TFCommit (§4.3.1).
  crypto::Digest root_after(
      std::span<const std::pair<ItemId, Bytes>> writes) const;

  /// Stacked variant: the root after applying the write batches in order
  /// (each batch on top of the previous, all on top of the real tree) —
  /// the speculative vote-phase computation when earlier blocks are still
  /// in flight. Nothing is mutated.
  crypto::Digest root_after_chain(
      std::span<const std::vector<std::pair<ItemId, Bytes>>> write_batches) const;

  /// Verification Object for an item against the *current* tree.
  merkle::VerificationObject current_vo(ItemId item) const;

  /// Rebuilds the Merkle tree of the shard as of version `ts` and returns
  /// it (multi-versioned audits, Lemma 2). Expensive: O(n) hashing.
  merkle::MerkleTree tree_at_version(const Timestamp& ts) const;

  /// Value visible at version `ts` (multi-versioned mode only).
  std::optional<Bytes> value_at_version(ItemId item, const Timestamp& ts) const;

  const ShardStats& stats() const { return stats_; }

  /// Recovery (§4.2.1): "if a failure occurs, the data can be reset to the
  /// last sanitized version and the application can resume from there."
  /// Multi-versioned mode only. Rolls every item back to its version at
  /// `ts`, discards later versions, resets rts/wts to that version, and
  /// rebuilds the Merkle tree. Returns the number of versions discarded.
  std::size_t reset_to_version(const Timestamp& ts);

  // --- Fault injection (malicious servers only) ---------------------------

  /// Silently replaces the stored value *without* updating the Merkle leaf
  /// or version chain — models datastore corruption (§5 Scenario 3).
  void corrupt_value(ItemId item, Bytes bogus_value);

  /// Corrupts the historical version visible at `ts` in the version chain.
  bool corrupt_version(ItemId item, const Timestamp& ts, Bytes bogus_value);

 private:
  ItemRecord& record(ItemId item);

  ShardId id_;
  VersioningMode mode_;
  std::vector<ItemId> order_;                      // sorted item ids == leaf order
  std::unordered_map<ItemId, std::size_t> index_;  // item id -> leaf index
  std::vector<ItemRecord> records_;                // parallel to order_
  std::vector<VersionChain> chains_;               // parallel; empty in single mode
  merkle::MerkleTree tree_;
  common::ThreadPool* pool_{nullptr};              // not owned; may be null
  ShardStats stats_;
};

/// A speculative view of a shard: the base state plus the staged effects of
/// in-flight blocks that have not been applied yet. This is what a TFCommit
/// cohort validates against when it votes on block k while block k-1's
/// decision is still on the wire (speculative pipelining): reads fall
/// through to the real shard unless an overlay entry shadows them. The
/// shard itself is never mutated — if the speculation proves wrong, the
/// view is simply discarded and the vote recomputed.
class ShardOverlay {
 public:
  explicit ShardOverlay(const Shard& base) : base_(&base) {}

  bool contains(ItemId item) const { return base_->contains(item); }

  /// Item state as it would be after the staged blocks applied.
  const ItemRecord& peek(ItemId item) const {
    const auto it = overlay_.find(item);
    return it != overlay_.end() ? it->second : base_->peek(item);
  }

  /// Stages one committed write (mirrors Shard::apply_write + the write-set
  /// rts bump of the server's apply step).
  void stage_write(ItemId item, BytesView value, const Timestamp& ts);

  /// Stages the rts advance a committed transaction performs on every item
  /// it touched (mirrors Shard::update_read_ts).
  void bump_rts(ItemId item, const Timestamp& ts);

 private:
  ItemRecord& entry(ItemId item);

  const Shard* base_;
  std::unordered_map<ItemId, ItemRecord> overlay_;
};

/// Deterministic placement: item -> shard, round-robin by id. All clients and
/// servers share this function (the "lookup and directory service" of §4.1).
ShardId shard_for_item(ItemId item, std::uint32_t num_shards);

/// The item universe assigned to one shard given `items_per_shard` and the
/// round-robin placement above.
std::vector<ItemId> items_for_shard(ShardId shard, std::uint32_t num_shards,
                                    std::uint32_t items_per_shard);

}  // namespace fides::store
