#include "store/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "merkle/proof.hpp"

namespace fides::store {

Shard::Shard(ShardId id, std::vector<ItemId> item_ids, Bytes initial_value,
             VersioningMode mode, common::ThreadPool* pool)
    : id_(id), mode_(mode), order_(std::move(item_ids)), tree_(1), pool_(pool) {
  std::sort(order_.begin(), order_.end());
  order_.erase(std::unique(order_.begin(), order_.end()), order_.end());

  index_.reserve(order_.size());
  records_.reserve(order_.size());
  std::vector<crypto::Digest> leaves;
  leaves.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    index_.emplace(order_[i], i);
    records_.push_back(ItemRecord{initial_value, kTimestampZero, kTimestampZero});
    leaves.push_back(item_leaf_digest(order_[i], initial_value));
    if (mode_ == VersioningMode::kMulti) chains_.emplace_back(initial_value);
  }
  tree_ = merkle::MerkleTree(leaves, pool_);
}

ItemRecord& Shard::record(ItemId item) {
  const auto it = index_.find(item);
  if (it == index_.end()) throw std::out_of_range("Shard: unknown item");
  return records_[it->second];
}

const ItemRecord& Shard::peek(ItemId item) const {
  const auto it = index_.find(item);
  if (it == index_.end()) throw std::out_of_range("Shard: unknown item");
  return records_[it->second];
}

ReadResult Shard::read(ItemId item) {
  const ItemRecord& rec = peek(item);
  ++stats_.reads;
  return ReadResult{item, rec.value, rec.rts, rec.wts};
}

void Shard::apply_write(ItemId item, BytesView value, const Timestamp& commit_ts) {
  const std::size_t idx = leaf_index(item);
  ItemRecord& rec = records_[idx];
  rec.value.assign(value.begin(), value.end());
  rec.wts = commit_ts;
  if (mode_ == VersioningMode::kMulti) {
    chains_[idx].append(commit_ts, rec.value);
  }
  stats_.merkle_nodes_rehashed += tree_.set_leaf(idx, item_leaf_digest(item, value));
  ++stats_.committed_writes;
}

void Shard::update_read_ts(ItemId item, const Timestamp& commit_ts) {
  ItemRecord& rec = record(item);
  rec.rts = std::max(rec.rts, commit_ts);
}

std::size_t Shard::leaf_index(ItemId item) const {
  const auto it = index_.find(item);
  if (it == index_.end()) throw std::out_of_range("Shard: unknown item");
  return it->second;
}

crypto::Digest Shard::root_after(
    std::span<const std::pair<ItemId, Bytes>> writes) const {
  std::vector<std::pair<std::size_t, crypto::Digest>> updates;
  updates.reserve(writes.size());
  for (const auto& [item, value] : writes) {
    updates.emplace_back(leaf_index(item), item_leaf_digest(item, value));
  }
  return tree_.root_after(updates);
}

crypto::Digest Shard::root_after_chain(
    std::span<const std::vector<std::pair<ItemId, Bytes>>> write_batches) const {
  std::vector<std::vector<std::pair<std::size_t, crypto::Digest>>> digests;
  digests.reserve(write_batches.size());
  for (const auto& batch : write_batches) {
    std::vector<std::pair<std::size_t, crypto::Digest>> updates;
    updates.reserve(batch.size());
    for (const auto& [item, value] : batch) {
      updates.emplace_back(leaf_index(item), item_leaf_digest(item, value));
    }
    digests.push_back(std::move(updates));
  }
  std::vector<std::span<const std::pair<std::size_t, crypto::Digest>>> spans;
  spans.reserve(digests.size());
  for (const auto& d : digests) spans.emplace_back(d);
  return tree_.root_after_chain(spans);
}

merkle::VerificationObject Shard::current_vo(ItemId item) const {
  return merkle::make_vo(tree_, leaf_index(item));
}

merkle::MerkleTree Shard::tree_at_version(const Timestamp& ts) const {
  if (mode_ != VersioningMode::kMulti) {
    throw std::logic_error("Shard::tree_at_version requires multi-versioned mode");
  }
  std::vector<crypto::Digest> leaves;
  leaves.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto v = chains_[i].at(ts);
    // Every chain has a version at timestamp zero, so `v` is always set.
    leaves.push_back(item_leaf_digest(order_[i], v->value));
  }
  return merkle::MerkleTree(leaves, pool_);
}

std::optional<Bytes> Shard::value_at_version(ItemId item, const Timestamp& ts) const {
  if (mode_ != VersioningMode::kMulti) return std::nullopt;
  const auto v = chains_[leaf_index(item)].at(ts);
  if (!v) return std::nullopt;
  return v->value;
}

std::size_t Shard::reset_to_version(const Timestamp& ts) {
  if (mode_ != VersioningMode::kMulti) {
    throw std::logic_error("Shard::reset_to_version requires multi-versioned mode");
  }
  std::size_t dropped = 0;
  std::vector<crypto::Digest> leaves;
  leaves.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    dropped += chains_[i].truncate_after(ts);
    const store::ItemVersion& latest = chains_[i].latest();
    records_[i].value = latest.value;
    records_[i].wts = latest.wts;
    // Read timestamps are not versioned; resetting to the write timestamp is
    // the conservative choice that keeps future OCC validation sound (any
    // reader after recovery bumps it again).
    records_[i].rts = latest.wts;
    leaves.push_back(item_leaf_digest(order_[i], latest.value));
  }
  tree_ = merkle::MerkleTree(leaves, pool_);
  return dropped;
}

void Shard::corrupt_value(ItemId item, Bytes bogus_value) {
  // A malicious server rewrites the value behind the Merkle tree's back;
  // the stale tree is exactly what makes the corruption auditable.
  record(item).value = std::move(bogus_value);
}

bool Shard::corrupt_version(ItemId item, const Timestamp& ts, Bytes bogus_value) {
  if (mode_ != VersioningMode::kMulti) return false;
  return chains_[leaf_index(item)].corrupt_version_at(ts, std::move(bogus_value));
}

ItemRecord& ShardOverlay::entry(ItemId item) {
  const auto it = overlay_.find(item);
  if (it != overlay_.end()) return it->second;
  return overlay_.emplace(item, base_->peek(item)).first->second;
}

void ShardOverlay::stage_write(ItemId item, BytesView value, const Timestamp& ts) {
  ItemRecord& rec = entry(item);
  rec.value.assign(value.begin(), value.end());
  rec.wts = ts;
}

void ShardOverlay::bump_rts(ItemId item, const Timestamp& ts) {
  ItemRecord& rec = entry(item);
  rec.rts = std::max(rec.rts, ts);
}

ShardId shard_for_item(ItemId item, std::uint32_t num_shards) {
  return ShardId{static_cast<std::uint32_t>(item % num_shards)};
}

std::vector<ItemId> items_for_shard(ShardId shard, std::uint32_t num_shards,
                                    std::uint32_t items_per_shard) {
  std::vector<ItemId> out;
  out.reserve(items_per_shard);
  for (std::uint32_t i = 0; i < items_per_shard; ++i) {
    out.push_back(static_cast<ItemId>(i) * num_shards + shard.value);
  }
  return out;
}

}  // namespace fides::store
