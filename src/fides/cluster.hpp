// Cluster wiring and the commit-round driver.
//
// The cluster owns all servers and the transport, executes the client data
// path, and drives whole TFCommit / 2PC rounds through the protocol state
// machines, message by message, over signed envelopes.
//
// Timing model: all nodes run in one process. The driver reports two
// latencies per round:
//
//   * modeled_latency_us — the analytical critical path: coordinator work
//     plus, per phase, the slowest cohort (cohorts of one phase run in
//     parallel in a real deployment), plus one modeled network leg per
//     protocol message hop. This is what lets the Figure 14 shape (more
//     servers => more parallel Merkle work => higher throughput) emerge even
//     on a single core.
//   * measured_latency_us — the wall clock the round actually took in this
//     process. With ClusterConfig::num_threads > 1 the driver executes each
//     phase's per-cohort work concurrently on a thread pool, so on
//     multi-core hardware the measured number exhibits the same parallelism
//     the model assumes — and validates the model against real concurrency.
//
// Parallel execution is deterministic: every phase fans out over the cohort
// index, each worker writes only its own slot (its server's state, its vote,
// its envelope), and the driver joins before aggregating, so a 1-thread and
// an N-thread run of the same batch produce identical decisions, blocks, and
// ledger state.
#pragma once

#include <memory>

#include "commit/batch.hpp"
#include "common/thread_pool.hpp"
#include "fides/client.hpp"
#include "fides/server.hpp"
#include "ledger/checkpoint.hpp"

namespace fides {

namespace sim {
class SimNet;
}

/// Everything a commit round reports to the harness.
struct RoundMetrics {
  ledger::Decision decision{ledger::Decision::kAbort};
  std::size_t txns_in_block{0};

  double coordinator_us{0};     ///< total coordinator compute
  double cohort_critical_us{0};  ///< sum over phases of max cohort compute
  double mht_us{0};              ///< max per-server Merkle time in this round
  std::size_t network_legs{0};   ///< protocol message hops on the latency path

  /// critical-path compute + network_legs * one-way latency.
  double modeled_latency_us{0};

  /// Wall clock this process actually spent on the round (thread-pool
  /// fan-out included, modeled network legs excluded). The measured
  /// counterpart of the modeled critical path above.
  double measured_latency_us{0};

  /// Threads the round executed on (1 = sequential driver).
  std::size_t threads_used{1};

  /// Cosign health (TFCommit only).
  bool cosign_valid{false};
  std::vector<ServerId> faulty_cosigners;
  std::vector<std::pair<ServerId, std::string>> refusals;
};

/// "Every cohort verifies ... the encapsulated client request": Schnorr
/// check of every request touching `server`'s shard, counting one
/// verification per checked request and failing fast on the first bad
/// signature. One definition shared by the direct and simulated round
/// drivers — their outcomes and stats accounting must stay bit-identical.
bool verify_touching_requests(Transport& transport, const Server& server,
                              std::span<const commit::SignedEndTxn> requests);

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();  // out of line: sim::SimNet is incomplete here

  const ClusterConfig& config() const { return config_; }
  std::uint32_t num_servers() const { return config_.num_servers; }

  Server& server(ServerId id) { return *servers_.at(id.value); }
  const Server& server(ServerId id) const { return *servers_.at(id.value); }
  ServerId coordinator_id() const { return ServerId{0}; }

  /// All servers' public keys, indexed by server id.
  const std::vector<crypto::PublicKey>& server_keys() const { return server_keys_; }

  Transport& transport() { return transport_; }

  /// The cluster's worker pool (sized by ClusterConfig::num_threads; runs
  /// everything inline when num_threads == 1).
  common::ThreadPool& pool() { return *pool_; }

  /// Threads commit rounds run on (1 when sequential).
  std::size_t round_threads() const;

  /// The simulated network carrying commit-round and checkpoint traffic, or
  /// nullptr in direct-delivery mode. One instance persists across rounds:
  /// the virtual clock, RNG stream, and trace hash cover the whole run, so
  /// a multi-round schedule reproduces from ClusterConfig::network.sim.seed.
  sim::SimNet* simnet() { return simnet_.get(); }
  const sim::SimNet* simnet() const { return simnet_.get(); }

  /// Creates a client registered with the transport.
  Client& make_client();

  /// Which server owns an item.
  ServerId owner_of(ItemId item) const;

  // --- Data path (called by Client) -----------------------------------------

  store::ReadResult client_read(Client& client, TxnId txn, ItemId item);
  WriteAck client_write(Client& client, TxnId txn, ItemId item, Bytes value);
  void client_begin(Client& client, TxnId txn, std::span<const ItemId> items);

  // --- Commit rounds ---------------------------------------------------------

  /// Runs one full TFCommit round over `batch` (Figure 7): get_vote, votes,
  /// challenge, responses, decision, log append + datastore update.
  RoundMetrics run_tfcommit_block(std::vector<commit::SignedEndTxn> batch);

  /// Runs one 2PC round over `batch` (baseline, §6.1).
  RoundMetrics run_2pc_block(std::vector<commit::SignedEndTxn> batch);

  /// Dispatches on config().protocol.
  RoundMetrics run_block(std::vector<commit::SignedEndTxn> batch);

  /// Runs batches from `builder` until it drains; returns per-round metrics.
  std::vector<RoundMetrics> drain(commit::BatchBuilder& builder);

  /// Runs a collective-signing round over a checkpoint summarizing the
  /// current log (§3.3's checkpointing optimization): every server verifies
  /// the summary against its own log before contributing its share. Returns
  /// nullopt if any server's log disagrees (the co-sign would not form).
  std::optional<ledger::Checkpoint> create_checkpoint();

 private:
  /// Runs fn(i) for every server index, on the pool when parallel.
  void for_each_server(const std::function<void(std::size_t)>& fn);

  ClusterConfig config_;
  Transport transport_;
  std::unique_ptr<sim::SimNet> simnet_;  ///< non-null iff network.mode == kSimulated
  // Declared before servers_: shards keep a pointer to the pool for Merkle
  // rebuilds, so the pool must outlive them.
  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<crypto::PublicKey> server_keys_;
};

}  // namespace fides
