#include "ordserv/group.hpp"

#include <algorithm>

#include "commit/tfcommit.hpp"

namespace fides::ordserv {

bool ServerGroup::contains(ServerId s) const {
  return std::binary_search(members.begin(), members.end(), s);
}

bool ServerGroup::overlaps(const ServerGroup& other) const {
  return std::any_of(members.begin(), members.end(),
                     [&](ServerId s) { return other.contains(s); });
}

ServerGroup group_for(const std::vector<txn::Transaction>& txns,
                      std::uint32_t num_servers) {
  ledger::Block probe;
  probe.txns = txns;
  ServerGroup g;
  g.members = commit::involved_servers(probe, num_servers);
  if (g.members.empty()) g.members.push_back(ServerId{0});
  g.coordinator = g.members.front();
  return g;
}

}  // namespace fides::ordserv
