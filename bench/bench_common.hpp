// Shared plumbing for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the paper's §6: it runs
// the experiment driver over the paper's parameter sweep and prints the
// measured series next to the paper's reported shape. Absolute numbers
// differ (the paper ran Python on EC2; we run C++ with from-scratch crypto
// on one machine) — the *shape* is the reproduction target, as recorded in
// EXPERIMENTS.md.
//
// Environment knobs:
//   FIDES_BENCH_TXNS   client requests per data point   (default 200;
//                      paper used 1000 — set 1000 for full fidelity)
//   FIDES_BENCH_SEEDS  runs averaged per point          (default 2; paper 3)
//   FIDES_THREADS      threads for the parallel round engine (default 1 =
//                      the sequential driver; 0 or garbage falls back to 1
//                      — set an explicit count to go parallel)
//   FIDES_NET          "sim" routes commit rounds through the deterministic
//                      SimNet (seeded by FIDES_SIM_SEED, default 1); the
//                      modeled latency then reports the simulated
//                      schedule's virtual network time instead of the fixed
//                      per-leg constant
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/driver.hpp"

namespace fides::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::size_t bench_txns() { return env_size("FIDES_BENCH_TXNS", 200); }

/// Worker threads for commit rounds: FIDES_THREADS, default 1 (sequential).
inline std::uint32_t bench_threads() {
  return static_cast<std::uint32_t>(env_size("FIDES_THREADS", 1));
}

inline std::vector<std::uint64_t> bench_seeds() {
  const std::size_t n = env_size("FIDES_BENCH_SEEDS", 2);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(42 + i);
  return seeds;
}

inline void print_header(const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("txns/point=%zu, runs averaged=%zu, threads=%u\n", bench_txns(),
              bench_seeds().size(), bench_threads());
  std::printf("==============================================================\n");
}

/// Applies the FIDES_NET knob: "sim" switches the cluster onto the
/// discrete-event simulated network (direct delivery otherwise).
inline void apply_network_env(ClusterConfig& cluster) {
  const char* v = std::getenv("FIDES_NET");
  if (v != nullptr && std::string(v) == "sim") {
    cluster.network.mode = sim::NetworkMode::kSimulated;
    cluster.network.sim.seed = env_size("FIDES_SIM_SEED", 1);
  }
}

inline workload::ExperimentResult run_point(workload::ExperimentConfig cfg) {
  cfg.total_txns = bench_txns();
  cfg.cluster.sign_data_path = false;  // §6 measures from end-transaction on
  cfg.cluster.num_threads = bench_threads();
  apply_network_env(cfg.cluster);
  const auto seeds = bench_seeds();
  return workload::run_averaged(cfg, seeds);
}

}  // namespace fides::bench
