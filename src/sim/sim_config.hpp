// Configuration of the deterministic simulated network (SimNet).
//
// Kept dependency-free (plain integers/doubles) so ClusterConfig can embed
// it without pulling the event machinery into every translation unit. The
// knobs model the classic network adversary: per-link delay distributions
// (reordering falls out of randomized delays), message loss with bounded
// retransmission, duplication, and partition/heal windows. Everything is
// driven by one seed — the same seed always yields the same schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace fides::sim {

/// Per-link fault/delay model. One instance applies to every server↔server
/// link (self-delivery is ideal: fixed small delay, no faults — a node's
/// loopback does not traverse the adversary's network).
struct LinkFaults {
  /// One-way delay is drawn uniformly from [min_delay_us, max_delay_us].
  /// A wide window is the reorder mechanism: a message sent earlier can
  /// arrive later than one sent after it.
  double min_delay_us{20.0};
  double max_delay_us{200.0};

  /// Probability a given copy is dropped. Loss is transient: a dropped copy
  /// is retransmitted after retransmit_timeout_us (see SimNetConfig), so
  /// every logical message is eventually delivered — the blocking-commit
  /// protocols assume reliable eventual delivery, and the fuzzer explores
  /// the delay/reorder consequences of loss rather than infinite loss.
  double drop_prob{0.0};

  /// Probability a delivered message is delivered a second time (with an
  /// independently drawn delay). Receivers must deduplicate.
  double dup_prob{0.0};

  /// Probability a message is additionally jittered by up to
  /// reorder_extra_us — a heavier reorder tail than the base delay window.
  double reorder_prob{0.0};
  double reorder_extra_us{1000.0};
};

/// Overrides the fault/delay model of one directed server→server link.
/// Without an override a link uses SimNetConfig::link — the global profile;
/// with one, every draw for that (src, dst) pair comes from `faults`
/// instead. This is what lets a schedule degrade exactly one path (e.g. the
/// link into a server that is about to crash) while the rest of the mesh
/// stays healthy.
struct LinkOverride {
  std::uint32_t src{0};
  std::uint32_t dst{0};
  LinkFaults faults;
};

/// A temporary network partition: while the virtual clock is inside
/// [start_us, heal_us), traffic between `island` servers and the rest is
/// held and released at heal time (plus a normal link delay). Partitions
/// heal — a permanent partition would block the commit protocols forever,
/// which is a liveness question outside the safety fuzzer's scope.
struct Partition {
  std::vector<std::uint32_t> island;  ///< server ids on one side
  double start_us{0.0};
  double heal_us{0.0};
};

enum class NetworkMode : std::uint8_t {
  kDirect,     ///< delivery is a direct function call (the original engine)
  kSimulated,  ///< delivery goes through the seeded discrete-event SimNet
};

/// Open-loop client behaviour when clients are modeled as SimNet nodes.
/// A client that has not seen its commit response after retry_timeout_us
/// re-sends the same (cached, identically signed) submit envelope, up to
/// max_retries times; the coordinator dedups by transaction id and replays
/// its response. Ignored entirely in direct mode (network.mode=direct),
/// where client hops are function calls.
struct ClientModel {
  double retry_timeout_us{20000.0};
  std::uint32_t max_retries{4};
};

struct SimNetConfig {
  std::uint64_t seed{1};
  LinkFaults link;
  /// Per-link profiles taking precedence over `link` (first match wins).
  std::vector<LinkOverride> link_overrides;
  std::vector<Partition> partitions;

  /// Backoff before a dropped copy is retransmitted.
  double retransmit_timeout_us{500.0};
  /// Bound on copies per logical message; the final attempt is never
  /// dropped, so event queues always drain (termination is deterministic).
  std::uint32_t max_attempts{16};
  /// Loopback delay for self-addressed messages (no faults applied).
  double self_delay_us{1.0};
};

}  // namespace fides::sim
