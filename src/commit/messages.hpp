// Wire messages of the commit protocols (TFCommit Figure 7, plus the 2PC
// baseline). These are the payloads; the signed envelope wrapping every
// message lives in fides/transport.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/cosi.hpp"
#include "ledger/block.hpp"
#include "txn/occ.hpp"

namespace fides::commit {

using ledger::Block;
using ledger::Decision;

/// µ — the client's signed end-transaction request (§4.3.1): transaction id,
/// client-assigned commit timestamp, and the read/write sets.
struct EndTxnRequest {
  txn::Transaction txn;

  Bytes serialize() const;
  static std::optional<EndTxnRequest> deserialize(BytesView b);
};

/// The request together with the client's signature over it. Servers store
/// these as proof against falsified client blame (§3.2) and forward them
/// encapsulated in get_vote so every cohort can verify the client really
/// issued the transaction.
struct SignedEndTxn {
  ClientId client;
  EndTxnRequest request;
  crypto::Signature signature;  ///< over request.serialize()

  bool verify(const crypto::PublicKey& client_key) const;
};

// --- TFCommit (Figure 7) ----------------------------------------------------

/// Phase 1 <GetVote, SchAnnouncement>: coordinator -> all cohorts.
/// `partial_block` carries commit timestamps, read/write sets and prev-hash;
/// roots/decision are not yet filled.
struct GetVoteMsg {
  Block partial_block;
  std::vector<SignedEndTxn> requests;
  /// CoSi round id — the nonce domain and the cohort's round-state key.
  /// TfCommitCoordinator::start defaults it to the block height; the round
  /// engine and OrdServ group commit overwrite it with an epoch so ids stay
  /// unique even when aborted rounds reuse heights.
  std::uint64_t round{0};
  /// Speculative opening (engine pipelining, ClusterConfig::speculate): the
  /// partial block's height is projected and its prev_hash is unknowable
  /// (earlier blocks are still deciding). The cohort votes on top of the
  /// *pending* update set of its in-flight rounds and tags the vote with
  /// the base it assumed; the true chain position arrives with the
  /// challenge. When false the opening is chain-anchored, exactly as in
  /// the paper's lock-step protocol.
  bool spec{false};

  Bytes serialize() const;
  static std::optional<GetVoteMsg> deserialize(BytesView b);
};

/// One entry of a speculative vote's base tag: the cohort assumed the block
/// of engine round `epoch` was (or was not) applied to its shard when it
/// computed OCC validation and the hypothetical root.
struct SpecAssumption {
  std::uint64_t epoch{0};
  bool applied{false};

  friend bool operator==(const SpecAssumption&, const SpecAssumption&) = default;
};

/// Phase 2 <Vote, SchCommitment>: cohort -> coordinator. Every cohort sends
/// the Schnorr commitment; only involved cohorts add vote (+ root on
/// commit).
struct VoteMsg {
  ServerId cohort;
  crypto::AffinePoint sch_commitment;  ///< x_sch = v_i·G
  bool involved{false};
  txn::Vote vote{txn::Vote::kAbort};
  std::string abort_reason;
  std::optional<crypto::Digest> root;  ///< root_mht, iff involved && commit

  /// Speculated base tag: the in-flight rounds (and their assumed
  /// outcomes) this vote's state was built on, in round order. Empty for a
  /// vote computed on fully-applied state — including every vote of the
  /// non-speculative protocol. The coordinator validates each assumption
  /// against the actual decision before it may count the vote; a vote with
  /// a mis-speculated base is discarded and the cohort re-votes once the
  /// truth reaches it.
  std::vector<SpecAssumption> spec_assumed;
  /// Predicted root of this cohort's shard for the speculated base (before
  /// this round's own writes) — the "(epoch, root)" base identity, cross-
  /// checked against the roots earlier decided blocks actually carried.
  std::optional<crypto::Digest> spec_base_root;

  /// True iff the vote was computed on a speculated (not yet applied) base.
  bool speculative() const { return !spec_assumed.empty(); }

  /// 64-bit discriminator of the speculated base, 0 for an empty tag. A
  /// re-vote after a changed base is a *different logical vote*: it gets its
  /// own durable log record keyed (epoch, base) and its own wire identity —
  /// never an equivocation of the original.
  std::uint64_t base_key() const;

  Bytes serialize() const;
  static std::optional<VoteMsg> deserialize(BytesView b);
};

/// Phase 3 <null, SchChallenge>: coordinator -> all cohorts. The block is now
/// complete (decision + Σroots); X_sch is the aggregate commitment so each
/// cohort can recompute and check the challenge.
struct ChallengeMsg {
  crypto::U256 challenge;
  crypto::AffinePoint aggregate_commitment;
  Block block;

  Bytes serialize() const;
  static std::optional<ChallengeMsg> deserialize(BytesView b);
};

/// Phase 4 <null, SchResponse>: cohort -> coordinator. A cohort that detects
/// an inconsistency (wrong challenge, forged root, decision/roots mismatch)
/// refuses to co-sign and says why — this is what makes coordinator
/// equivocation (Lemma 5) and fake roots (Scenario 2) unsignable.
struct ResponseMsg {
  ServerId cohort;
  bool refused{false};
  std::string refusal_reason;
  crypto::U256 sch_response;  ///< r_i, valid iff !refused

  Bytes serialize() const;
  static std::optional<ResponseMsg> deserialize(BytesView b);
};

/// Phase 5 <Decision, null>: coordinator -> cohorts + client: the finalized,
/// collectively signed block.
struct DecisionMsg {
  Block final_block;

  Bytes serialize() const;
  static std::optional<DecisionMsg> deserialize(BytesView b);
};

// --- 2PC baseline (§6.1) ----------------------------------------------------

struct PrepareMsg {
  Block partial_block;  ///< same block layout, no roots/cosign ever filled
  std::vector<SignedEndTxn> requests;

  Bytes serialize() const;
  static std::optional<PrepareMsg> deserialize(BytesView b);
};

struct PrepareVoteMsg {
  ServerId cohort;
  bool involved{false};
  txn::Vote vote{txn::Vote::kAbort};
  std::string abort_reason;

  Bytes serialize() const;
  static std::optional<PrepareVoteMsg> deserialize(BytesView b);
};

struct CommitDecisionMsg {
  Block final_block;  ///< decision filled; cosign absent by design

  Bytes serialize() const;
  static std::optional<CommitDecisionMsg> deserialize(BytesView b);
};

/// Canonical bytes of a signed end-transaction bundle (client id + request +
/// client signature) — what get_vote/prepare messages encapsulate.
void encode_signed_end_txn(Writer& w, const SignedEndTxn& s);
SignedEndTxn decode_signed_end_txn(Reader& r);

}  // namespace fides::commit
