// Cross-scheduler identity over real processes: the same minted batch
// stream, replayed under the in-process scheduler, over SimNet, and over
// loopback sockets with every non-coordinator server as a fides_serverd
// child, must commit the bit-identical ledger — decisions, per-server log
// heads, and shard Merkle roots — at pipeline depths 1/2/4 with speculation
// off and on. Remote state crosses back as committed-state digests at
// shutdown. Also: a serverd SIGKILL'd by its own crash point mid-run maps
// onto the engine's crash/recover model (disconnect = kCrash, the restarted
// process's HELLO = kRecover + durable-log replay), and a TCP loopback run
// (ports leased from the kernel via bind-to-0) matches too.
//
// Serverd stderr goes to serverd-logs/run_*/ under the test CWD — the tree
// CI uploads when this suite fails.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

#include "fides/cluster.hpp"
#include "net/process.hpp"
#include "net/socket.hpp"
#include "net/socket_round.hpp"
#include "sim/simnet.hpp"
#include "workload/ycsb.hpp"

namespace fides::net {
namespace {

ClusterConfig socket_config() {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 32;
  cfg.max_batch_size = 8;
  return cfg;
}

std::vector<std::vector<commit::SignedEndTxn>> mint_batches(const ClusterConfig& cfg,
                                                            std::size_t blocks,
                                                            std::size_t txns_per_block) {
  Cluster mint(cfg);
  Client& client = mint.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(cfg.num_servers) * cfg.items_per_shard, cfg.seed);
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  for (std::size_t b = 0; b < blocks; ++b) {
    workload.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (std::size_t i = 0; i < txns_per_block; ++i) {
      batch.push_back(workload.run_transaction(client));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct LedgerFingerprint {
  std::vector<ledger::Decision> decisions;
  std::vector<std::uint64_t> log_sizes;
  std::vector<crypto::Digest> head_hashes;
  std::vector<crypto::Digest> merkle_roots;

  friend bool operator==(const LedgerFingerprint&, const LedgerFingerprint&) = default;
};

LedgerFingerprint run_single_process(ClusterConfig cfg,
                                     const std::vector<std::vector<commit::SignedEndTxn>>& batches,
                                     bool simnet) {
  if (simnet) {
    cfg.network.mode = sim::NetworkMode::kSimulated;
    cfg.network.sim.seed = 1;
  }
  Cluster cluster(cfg);
  cluster.make_client();
  const PipelineResult result = cluster.run_blocks(batches);
  LedgerFingerprint fp;
  for (const RoundMetrics& m : result.rounds) fp.decisions.push_back(m.decision);
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    fp.log_sizes.push_back(s.log().size());
    fp.head_hashes.push_back(s.log().head_hash());
    fp.merkle_roots.push_back(s.shard().merkle_root());
  }
  return fp;
}

/// Fresh per-run directory for sockets, durable logs, and serverd stderr.
std::string make_run_dir() {
  ::mkdir("serverd-logs", 0755);
  char tmpl[] = "serverd-logs/run_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed";
    return "serverd-logs";
  }
  return tmpl;
}

std::vector<std::string> unix_addrs(const std::string& dir, std::uint32_t n) {
  std::vector<std::string> addrs;
  for (std::uint32_t i = 0; i < n; ++i) {
    addrs.push_back("unix:" + dir + "/s" + std::to_string(i) + ".sock");
  }
  return addrs;
}

std::vector<std::string> serverd_argv(const ClusterConfig& cfg, const std::string& dir,
                                      const std::vector<std::string>& addrs,
                                      std::uint32_t self, std::size_t rounds,
                                      const std::string& crash_after = "") {
  std::vector<std::string> argv = {
      serverd_binary_path(),
      "--self", std::to_string(self),
      "--servers", std::to_string(cfg.num_servers),
      "--rounds", std::to_string(rounds),
      "--clients", "1",
      "--items", std::to_string(cfg.items_per_shard),
      "--batch", std::to_string(cfg.max_batch_size),
      "--pipeline", std::to_string(cfg.pipeline_depth),
      "--seed", std::to_string(cfg.seed),
      "--log-dir", dir};
  if (cfg.speculate) argv.push_back("--spec");
  if (cfg.batch_verify) argv.push_back("--batch-verify");
  if (!crash_after.empty()) {
    argv.push_back("--crash-after");
    argv.push_back(crash_after);
  }
  for (const auto& a : addrs) argv.push_back(a);
  return argv;
}

/// Coordinator side of a socket run (serverds must already be spawned on
/// `addrs`). Server 0's state is read locally; every other server's arrives
/// as its shutdown-time digest.
LedgerFingerprint coordinator_run(ClusterConfig cfg,
                                  const std::vector<std::vector<commit::SignedEndTxn>>& batches,
                                  const std::string& dir,
                                  const std::vector<std::string>& addrs) {
  cfg.round_log_dir = dir;
  Cluster cluster(cfg);
  cluster.make_client();
  SocketOptions sopts;
  sopts.addrs = addrs;
  sopts.self = 0;
  auto batch_copy = batches;
  const SocketRunResult run = run_commit_rounds_over_sockets(
      cluster, cfg.protocol, std::move(batch_copy), sopts);

  LedgerFingerprint fp;
  for (const RoundMetrics& m : run.pipeline.rounds) fp.decisions.push_back(m.decision);
  const Server& s0 = cluster.server(ServerId{0});
  fp.log_sizes.push_back(s0.log().size());
  fp.head_hashes.push_back(s0.log().head_hash());
  fp.merkle_roots.push_back(s0.shard().merkle_root());
  EXPECT_EQ(run.digests.size(), static_cast<std::size_t>(cfg.num_servers) - 1)
      << "missing a peer digest (run dir " << dir << ")";
  for (const PeerDigest& d : run.digests) {
    fp.log_sizes.push_back(d.log_height);
    fp.head_hashes.push_back(d.log_head);
    fp.merkle_roots.push_back(d.shard_root);
  }
  return fp;
}

TEST(SocketRound, LoopbackBitIdenticalToInProcessAndSimNetAtEveryDepth) {
  const ClusterConfig base_cfg = socket_config();
  const auto batches = mint_batches(base_cfg, 4, 3);

  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u}) {
      ClusterConfig cfg = base_cfg;
      cfg.pipeline_depth = depth;
      cfg.speculate = speculate;
      const std::string what =
          "depth " + std::to_string(depth) + " spec " + (speculate ? "on" : "off");

      const LedgerFingerprint direct = run_single_process(cfg, batches, false);
      ASSERT_EQ(direct.decisions.size(), batches.size());
      EXPECT_EQ(direct.decisions[0], ledger::Decision::kCommit) << what;
      EXPECT_TRUE(run_single_process(cfg, batches, true) == direct) << what;

      const std::string dir = make_run_dir();
      const auto addrs = unix_addrs(dir, cfg.num_servers);
      std::vector<pid_t> children;
      for (std::uint32_t i = 1; i < cfg.num_servers; ++i) {
        children.push_back(spawn(serverd_argv(cfg, dir, addrs, i, batches.size()),
                                 dir + "/serverd-" + std::to_string(i) + ".log"));
      }
      const LedgerFingerprint sockets = coordinator_run(cfg, batches, dir, addrs);
      for (std::size_t c = 0; c < children.size(); ++c) {
        EXPECT_EQ(wait_exit(children[c]), 0)
            << "serverd " << c + 1 << " unclean at " << what << " (logs in " << dir << ")";
      }
      EXPECT_TRUE(sockets == direct)
          << "socket run diverged at " << what << " (logs in " << dir << ")";
    }
  }
}

TEST(SocketRound, BatchVerifyBitIdenticalOverSockets) {
  // FIDES_BATCH_VERIFY over the socket scheduler: every serverd opens its
  // block's client request signatures as one RLC aggregate, and the ledger
  // must match a per-signature single-process run exactly.
  ClusterConfig cfg = socket_config();
  cfg.pipeline_depth = 2;
  const auto batches = mint_batches(cfg, 4, 3);

  const LedgerFingerprint base = run_single_process(cfg, batches, false);
  ASSERT_EQ(base.decisions[0], ledger::Decision::kCommit);

  cfg.batch_verify = true;
  EXPECT_TRUE(run_single_process(cfg, batches, false) == base) << "batched direct run";

  const std::string dir = make_run_dir();
  const auto addrs = unix_addrs(dir, cfg.num_servers);
  std::vector<pid_t> children;
  for (std::uint32_t i = 1; i < cfg.num_servers; ++i) {
    children.push_back(spawn(serverd_argv(cfg, dir, addrs, i, batches.size()),
                             dir + "/serverd-" + std::to_string(i) + ".log"));
  }
  const LedgerFingerprint sockets = coordinator_run(cfg, batches, dir, addrs);
  for (std::size_t c = 0; c < children.size(); ++c) {
    EXPECT_EQ(wait_exit(children[c]), 0)
        << "serverd " << c + 1 << " unclean (logs in " << dir << ")";
  }
  EXPECT_TRUE(sockets == base) << "batched socket run diverged (logs in " << dir << ")";
}

TEST(SocketRound, ServerdDyingMidRoundMapsOntoCrashRecover) {
  // Serverd 1 is armed to _Exit(42) right after casting its second vote; a
  // watchdog respawns it (no crash point), and the restart rejoins from the
  // shared durable round log. The coordinator sees the dead connection as
  // kCrash and the rejoin HELLO as kRecover — the run must complete with
  // the same ledger as a crashless single-process replay.
  ClusterConfig cfg = socket_config();
  cfg.pipeline_depth = 2;
  const auto batches = mint_batches(cfg, 4, 3);
  const LedgerFingerprint base = run_single_process(cfg, batches, false);

  const std::string dir = make_run_dir();
  const auto addrs = unix_addrs(dir, cfg.num_servers);
  const pid_t doomed = spawn(serverd_argv(cfg, dir, addrs, 1, batches.size(),
                                          "tf_get_vote:2"),
                             dir + "/serverd-1.log");
  const pid_t steady = spawn(serverd_argv(cfg, dir, addrs, 2, batches.size()),
                             dir + "/serverd-2.log");

  pid_t respawned = -1;
  std::thread watchdog([&] {
    EXPECT_EQ(wait_exit(doomed), 42) << "crash point did not fire";
    respawned = spawn(serverd_argv(cfg, dir, addrs, 1, batches.size()),
                      dir + "/serverd-1-respawn.log");
  });

  const LedgerFingerprint sockets = coordinator_run(cfg, batches, dir, addrs);
  watchdog.join();
  EXPECT_EQ(wait_exit(steady), 0) << "logs in " << dir;
  ASSERT_GT(respawned, 0);
  EXPECT_EQ(wait_exit(respawned), 0) << "logs in " << dir;
  EXPECT_TRUE(sockets == base) << "post-recovery ledger diverged (logs in " << dir << ")";
}

TEST(SocketRound, TcpLoopbackMatchesUnixDomain) {
  ClusterConfig cfg = socket_config();
  const auto batches = mint_batches(cfg, 2, 3);
  const LedgerFingerprint base = run_single_process(cfg, batches, false);

  // Lease free ports from the kernel: bind to port 0, read the assignment
  // back, release. (A racer could steal a port before the real listener
  // binds; SO_REUSEADDR plus the immediacy of the respawn makes that
  // vanishingly unlikely for a test.)
  std::vector<std::string> addrs;
  for (std::uint32_t i = 0; i < cfg.num_servers; ++i) {
    const int fd = listen_on("tcp:127.0.0.1:0");
    ASSERT_GE(fd, 0);
    const std::uint16_t port = local_port(fd);
    ASSERT_GT(port, 0);
    ::close(fd);
    addrs.push_back("tcp:127.0.0.1:" + std::to_string(port));
  }

  const std::string dir = make_run_dir();
  std::vector<pid_t> children;
  for (std::uint32_t i = 1; i < cfg.num_servers; ++i) {
    children.push_back(spawn(serverd_argv(cfg, dir, addrs, i, batches.size()),
                             dir + "/serverd-" + std::to_string(i) + ".log"));
  }
  const LedgerFingerprint sockets = coordinator_run(cfg, batches, dir, addrs);
  for (const pid_t pid : children) EXPECT_EQ(wait_exit(pid), 0) << "logs in " << dir;
  EXPECT_TRUE(sockets == base) << "TCP run diverged (logs in " << dir << ")";
}

}  // namespace
}  // namespace fides::net
