// Parallel-vs-sequential equivalence of the commit-round engine.
//
// The contract (fides/cluster.hpp): a 1-thread and an N-thread run of the
// same batch produce identical decisions, blocks, and ledger state — the
// thread pool changes only wall-clock time. These tests drive matched
// cluster pairs through the same deterministic workloads and compare every
// observable: decisions, block digests, log head hashes, Merkle roots,
// stored values, cosign health, and fault attribution.
#include <gtest/gtest.h>

#include "fides/cluster.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

ClusterConfig base_config(std::uint32_t num_threads) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.items_per_shard = 64;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.max_batch_size = 16;
  cfg.num_threads = num_threads;
  return cfg;
}

commit::SignedEndTxn simple_txn(Cluster& cluster, Client& client,
                                std::vector<ItemId> items, const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

/// Everything observable about a cluster's ledger + datastore state.
struct LedgerFingerprint {
  std::vector<std::size_t> log_sizes;
  std::vector<crypto::Digest> head_hashes;
  std::vector<crypto::Digest> merkle_roots;
  std::vector<crypto::Digest> block_digests;  // server 0's whole chain

  static LedgerFingerprint of(Cluster& cluster) {
    LedgerFingerprint fp;
    for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
      const Server& s = cluster.server(ServerId{i});
      fp.log_sizes.push_back(s.log().size());
      fp.head_hashes.push_back(s.log().head_hash());
      fp.merkle_roots.push_back(s.shard().merkle_root());
    }
    for (const auto& block : cluster.server(ServerId{0}).log().blocks()) {
      fp.block_digests.push_back(block.digest());
    }
    return fp;
  }

  friend bool operator==(const LedgerFingerprint&, const LedgerFingerprint&) = default;
};

/// Runs `rounds` blocks of the same deterministic workload on a fresh
/// cluster and returns (per-round decisions, final fingerprint).
struct WorkloadOutcome {
  std::vector<ledger::Decision> decisions;
  LedgerFingerprint fingerprint;
  bool all_cosigns_valid{true};
};

WorkloadOutcome run_workload(ClusterConfig cfg, std::size_t rounds,
                             std::size_t txns_per_round) {
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(cfg.num_servers) * cfg.items_per_shard, cfg.seed);

  WorkloadOutcome outcome;
  for (std::size_t r = 0; r < rounds; ++r) {
    workload.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (std::size_t i = 0; i < txns_per_round; ++i) {
      batch.push_back(workload.run_transaction(client));
    }
    const RoundMetrics metrics = cluster.run_block(std::move(batch));
    outcome.decisions.push_back(metrics.decision);
    if (cfg.protocol == Protocol::kTfCommit && !metrics.cosign_valid) {
      outcome.all_cosigns_valid = false;
    }
  }
  outcome.fingerprint = LedgerFingerprint::of(cluster);
  return outcome;
}

TEST(ParallelRound, TfCommitIdenticalAcrossThreadCounts) {
  const WorkloadOutcome seq = run_workload(base_config(1), 3, 8);
  ASSERT_TRUE(seq.all_cosigns_valid);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const WorkloadOutcome par = run_workload(base_config(threads), 3, 8);
    EXPECT_EQ(par.decisions, seq.decisions) << threads << " threads";
    EXPECT_TRUE(par.fingerprint == seq.fingerprint) << threads << " threads";
    EXPECT_TRUE(par.all_cosigns_valid);
  }
}

TEST(ParallelRound, TwoPhaseCommitIdenticalAcrossThreadCounts) {
  ClusterConfig seq_cfg = base_config(1);
  seq_cfg.protocol = Protocol::kTwoPhaseCommit;
  const WorkloadOutcome seq = run_workload(seq_cfg, 3, 8);

  ClusterConfig par_cfg = base_config(4);
  par_cfg.protocol = Protocol::kTwoPhaseCommit;
  const WorkloadOutcome par = run_workload(par_cfg, 3, 8);

  EXPECT_EQ(par.decisions, seq.decisions);
  EXPECT_TRUE(par.fingerprint == seq.fingerprint);
}

TEST(ParallelRound, AbortRoundsIdenticalToo) {
  // Conflicting pair: the second transaction is stale once the first
  // commits; both thread counts must abort the same block with the same
  // co-signed abort block in every log.
  auto run = [](std::uint32_t threads) {
    ClusterConfig cfg = base_config(threads);
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    auto t1 = simple_txn(cluster, client, {5}, "x");
    auto t2 = simple_txn(cluster, client, {5}, "y");
    const auto m1 = cluster.run_block({t1});
    const auto m2 = cluster.run_block({t2});
    return std::tuple(m1.decision, m2.decision, LedgerFingerprint::of(cluster));
  };
  const auto [seq1, seq2, seq_fp] = run(1);
  const auto [par1, par2, par_fp] = run(4);
  EXPECT_EQ(seq1, ledger::Decision::kCommit);
  EXPECT_EQ(seq2, ledger::Decision::kAbort);
  EXPECT_EQ(par1, seq1);
  EXPECT_EQ(par2, seq2);
  EXPECT_TRUE(par_fp == seq_fp);
}

TEST(ParallelRound, ByzantineAttributionIdentical) {
  // A cohort that corrupts its Schnorr response must be attributed
  // identically (same faulty-cosigner list, same invalid cosign) no matter
  // how many threads drive the round.
  auto run = [](std::uint32_t threads) {
    ClusterConfig cfg = base_config(threads);
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    cluster.server(ServerId{3}).faults().cohort.corrupt_sch_response = true;
    const auto metrics = cluster.run_block({simple_txn(cluster, client, {0, 1, 2}, "a")});
    return std::tuple(metrics.decision, metrics.cosign_valid, metrics.faulty_cosigners);
  };
  const auto [seq_dec, seq_valid, seq_faulty] = run(1);
  const auto [par_dec, par_valid, par_faulty] = run(4);
  EXPECT_FALSE(seq_valid);
  ASSERT_EQ(seq_faulty.size(), 1u);
  EXPECT_EQ(seq_faulty[0], ServerId{3});
  EXPECT_EQ(par_dec, seq_dec);
  EXPECT_EQ(par_valid, seq_valid);
  EXPECT_EQ(par_faulty, seq_faulty);
}

TEST(ParallelRound, RefusalsIdenticalUnderEquivocation) {
  // Lemma 5: an equivocating coordinator is refused by the victims. The
  // refusal set (and order) must not depend on the thread count.
  auto run = [](std::uint32_t threads) {
    ClusterConfig cfg = base_config(threads);
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    auto& faults = cluster.server(ServerId{0}).faults().coordinator;
    faults.equivocate = commit::CoordinatorFaults::Equivocation::kSameChallenge;
    faults.equivocation_victims = {2, 5};
    const auto metrics = cluster.run_block({simple_txn(cluster, client, {0, 1, 2}, "a")});
    return std::tuple(metrics.cosign_valid, metrics.refusals);
  };
  const auto [seq_valid, seq_refusals] = run(1);
  const auto [par_valid, par_refusals] = run(4);
  EXPECT_FALSE(seq_valid);
  EXPECT_FALSE(seq_refusals.empty());
  EXPECT_EQ(par_valid, seq_valid);
  EXPECT_EQ(par_refusals, seq_refusals);
}

TEST(ParallelRound, MeasuredLatencyAndThreadCountReported) {
  ClusterConfig cfg = base_config(4);
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  const auto metrics = cluster.run_block({simple_txn(cluster, client, {0, 1}, "a")});
  EXPECT_GT(metrics.measured_latency_us, 0.0);
  EXPECT_GT(metrics.modeled_latency_us, 0.0);
  EXPECT_EQ(metrics.threads_used, 4u);

  ClusterConfig seq_cfg = base_config(1);
  Cluster seq_cluster(seq_cfg);
  Client& seq_client = seq_cluster.make_client();
  const auto seq_metrics =
      seq_cluster.run_block({simple_txn(seq_cluster, seq_client, {0, 1}, "a")});
  EXPECT_EQ(seq_metrics.threads_used, 1u);
  EXPECT_GT(seq_metrics.measured_latency_us, 0.0);
}

TEST(ParallelRound, CheckpointIdenticalAcrossThreadCounts) {
  auto run = [](std::uint32_t threads) {
    ClusterConfig cfg = base_config(threads);
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    cluster.run_block({simple_txn(cluster, client, {0, 1, 2, 3}, "a")});
    return cluster.create_checkpoint();
  };
  const auto seq = run(1);
  const auto par = run(4);
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(par.has_value());
  EXPECT_EQ(seq->height, par->height);
  EXPECT_TRUE(seq->head_hash == par->head_hash);
  // The co-sign itself is deterministic (derived nonces), so even the
  // aggregate signature bits must match.
  EXPECT_TRUE(seq->cosign == par->cosign);
}

TEST(ParallelRound, TransportOpenAllMatchesSerialOpen) {
  Transport serial_t;
  Transport pooled_t;
  common::ThreadPool pool(4);
  const auto kp = crypto::KeyPair::deterministic(1);
  serial_t.register_node(NodeId::server(ServerId{0}), kp.public_key());
  pooled_t.register_node(NodeId::server(ServerId{0}), kp.public_key());

  std::vector<Envelope> envs;
  for (int i = 0; i < 12; ++i) {
    envs.push_back(serial_t.seal(kp, NodeId::server(ServerId{0}), "msg",
                                 to_bytes("payload-" + std::to_string(i))));
  }
  envs[3].payload[0] ^= 1;  // tampered
  envs[7].type = "other";   // wrong type

  std::vector<unsigned char> expected;
  for (const auto& e : envs) expected.push_back(serial_t.open(e, "msg") ? 1 : 0);
  const std::vector<unsigned char> actual = pooled_t.open_all(envs, "msg", &pool);
  EXPECT_EQ(actual, expected);
  // Same verification/rejection accounting as the serial path.
  EXPECT_EQ(pooled_t.stats().signatures_verified.load(),
            serial_t.stats().signatures_verified.load());
  EXPECT_EQ(pooled_t.stats().rejected.load(), serial_t.stats().rejected.load());
  EXPECT_EQ(pooled_t.stats().rejected.load(), 2u);
}

TEST(ParallelRound, TransportOpenAllMixedBatchesAcrossPoolWidths) {
  // Rejection accounting under concurrency: batches mixing every failure
  // mode (tampered payload, wrong type tag, unregistered sender, spoofed
  // sender) must produce the same per-slot verdicts and the same
  // verified/rejected counters as a serial open() loop, at every pool width.
  const auto kp = crypto::KeyPair::deterministic(1);
  const auto rogue = crypto::KeyPair::deterministic(2);  // never registered
  Rng rng(0xBA7C4);

  for (const std::size_t width : {2u, 4u, 8u}) {
    Transport serial_t;
    Transport pooled_t;
    common::ThreadPool pool(width);
    serial_t.register_node(NodeId::server(ServerId{0}), kp.public_key());
    pooled_t.register_node(NodeId::server(ServerId{0}), kp.public_key());

    std::vector<Envelope> envs;
    std::size_t expected_rejections = 0;
    for (int i = 0; i < 64; ++i) {
      Envelope env = serial_t.seal(kp, NodeId::server(ServerId{0}), "msg",
                                   to_bytes("payload-" + std::to_string(i)));
      switch (rng.uniform(5)) {
        case 0:  // valid
          break;
        case 1:  // tampered payload
          env.payload[rng.uniform(env.payload.size())] ^= 0x40;
          ++expected_rejections;
          break;
        case 2:  // wrong type tag
          env.type = "other";
          ++expected_rejections;
          break;
        case 3:  // unregistered sender
          env = serial_t.seal(rogue, NodeId::server(ServerId{9}), "msg",
                              to_bytes("rogue-" + std::to_string(i)));
          ++expected_rejections;
          break;
        case 4:  // spoofed sender id (signature bound to the real sender)
          env = serial_t.seal(rogue, NodeId::server(ServerId{9}), "msg",
                              to_bytes("spoof-" + std::to_string(i)));
          env.sender = NodeId::server(ServerId{0});
          ++expected_rejections;
          break;
      }
      envs.push_back(std::move(env));
    }

    std::vector<unsigned char> expected;
    const auto serial_before_verified = serial_t.stats().signatures_verified.load();
    for (const auto& e : envs) expected.push_back(serial_t.open(e, "msg") ? 1 : 0);
    const std::vector<unsigned char> actual = pooled_t.open_all(envs, "msg", &pool);

    EXPECT_EQ(actual, expected) << "pool width " << width;
    EXPECT_EQ(pooled_t.stats().rejected.load(), expected_rejections);
    EXPECT_EQ(pooled_t.stats().rejected.load(), serial_t.stats().rejected.load());
    EXPECT_EQ(pooled_t.stats().signatures_verified.load(),
              serial_t.stats().signatures_verified.load() - serial_before_verified);
  }
}

TEST(ParallelRound, TransportOpenBatchHeterogeneousTypes) {
  // open_batch takes envelopes of mixed types (each checked against its own
  // env.type), which open_all cannot express: one RLC aggregate over a whole
  // coordinator inbox of votes, responses, and 2PC messages.
  Transport serial_t;
  Transport batched_t;
  common::ThreadPool pool(4);
  const auto kp = crypto::KeyPair::deterministic(1);
  serial_t.register_node(NodeId::server(ServerId{0}), kp.public_key());
  batched_t.register_node(NodeId::server(ServerId{0}), kp.public_key());

  const char* types[] = {"tf_vote", "tf_response", "2pc_vote"};
  std::vector<Envelope> envs;
  for (int i = 0; i < 24; ++i) {
    envs.push_back(serial_t.seal(kp, NodeId::server(ServerId{0}), types[i % 3],
                                 to_bytes("payload-" + std::to_string(i))));
  }
  envs[5].payload[0] ^= 1;  // tampered
  envs[9].sender = NodeId::server(ServerId{7});  // unregistered sender

  std::vector<unsigned char> expected;
  std::vector<const Envelope*> ptrs;
  for (const auto& e : envs) {
    expected.push_back(serial_t.open(e, e.type) ? 1 : 0);
    ptrs.push_back(&e);
  }
  const std::vector<unsigned char> actual = batched_t.open_batch(ptrs, &pool);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(batched_t.stats().signatures_verified.load(),
            serial_t.stats().signatures_verified.load());
  EXPECT_EQ(batched_t.stats().rejected.load(), serial_t.stats().rejected.load());
}

TEST(ParallelRound, ParallelMerkleBuildMatchesSerial) {
  common::ThreadPool pool(4);
  std::vector<crypto::Digest> leaves;
  for (std::size_t i = 0; i < 5000; ++i) {
    leaves.push_back(crypto::sha256(to_bytes("leaf-" + std::to_string(i))));
  }
  const merkle::MerkleTree serial(leaves);
  const merkle::MerkleTree parallel(leaves, &pool);
  EXPECT_TRUE(serial.root() == parallel.root());
  EXPECT_EQ(serial.depth(), parallel.depth());
  EXPECT_EQ(serial.sibling_path(4999), parallel.sibling_path(4999));
}

}  // namespace
}  // namespace fides
