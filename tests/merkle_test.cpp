// Unit + property tests for the Merkle hash tree and Verification Objects.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "merkle/proof.hpp"

namespace fides::merkle {
namespace {

using crypto::Digest;
using crypto::sha256;

Digest leaf(std::uint64_t i) {
  return sha256(to_bytes("leaf-" + std::to_string(i)));
}

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(leaf(i));
  return leaves;
}

TEST(MerkleTree, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), leaves[0]);
}

TEST(MerkleTree, TwoLeavesMatchManualHash) {
  const auto leaves = make_leaves(2);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), crypto::sha256_pair(leaves[0], leaves[1]));
}

TEST(MerkleTree, FourLeavesMatchFigure2) {
  // The §2.3 example shape: h_{a,b,c,d} = h(h(h(a)|h(b)) | h(h(c)|h(d))).
  const auto leaves = make_leaves(4);
  MerkleTree t(leaves);
  const Digest left = crypto::sha256_pair(leaves[0], leaves[1]);
  const Digest right = crypto::sha256_pair(leaves[2], leaves[3]);
  EXPECT_EQ(t.root(), crypto::sha256_pair(left, right));
}

TEST(MerkleTree, NonPowerOfTwoPadsWithZero) {
  const auto leaves = make_leaves(3);
  MerkleTree t(leaves);
  const Digest left = crypto::sha256_pair(leaves[0], leaves[1]);
  const Digest right = crypto::sha256_pair(leaves[2], Digest::zero());
  EXPECT_EQ(t.root(), crypto::sha256_pair(left, right));
}

TEST(MerkleTree, SetLeafMatchesFullRebuild) {
  auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  leaves[7] = leaf(99);
  t.set_leaf(7, leaf(99));
  EXPECT_EQ(t.root(), MerkleTree(leaves).root());
}

TEST(MerkleTree, SetLeafRehashCountIsDepth) {
  MerkleTree t(make_leaves(16));
  EXPECT_EQ(t.set_leaf(3, leaf(50)), 4u);  // 16 leaves -> depth 4
}

TEST(MerkleTree, RootAfterDoesNotMutate) {
  MerkleTree t(make_leaves(8));
  const Digest before = t.root();
  const std::vector<std::pair<std::size_t, Digest>> updates = {{2, leaf(77)}};
  const Digest hypothetical = t.root_after(updates);
  EXPECT_EQ(t.root(), before);
  EXPECT_NE(hypothetical, before);
}

TEST(MerkleTree, RootAfterMatchesApplying) {
  MerkleTree t(make_leaves(8));
  const std::vector<std::pair<std::size_t, Digest>> updates = {
      {1, leaf(70)}, {5, leaf(71)}, {6, leaf(72)}};
  const Digest hypothetical = t.root_after(updates);
  for (const auto& [i, d] : updates) t.set_leaf(i, d);
  EXPECT_EQ(t.root(), hypothetical);
}

TEST(MerkleTree, RootAfterEmptyUpdatesIsRoot) {
  MerkleTree t(make_leaves(8));
  EXPECT_EQ(t.root_after({}), t.root());
}

TEST(MerkleTree, RootAfterLastWriteWins) {
  MerkleTree t(make_leaves(4));
  const std::vector<std::pair<std::size_t, Digest>> updates = {{2, leaf(70)},
                                                               {2, leaf(71)}};
  MerkleTree expect(make_leaves(4));
  expect.set_leaf(2, leaf(71));
  EXPECT_EQ(t.root_after(updates), expect.root());
}

TEST(MerkleTree, SiblingUpdatesInOneOverlay) {
  // Adjacent leaves share a parent; the overlay must combine them.
  MerkleTree t(make_leaves(8));
  const std::vector<std::pair<std::size_t, Digest>> updates = {{4, leaf(80)},
                                                               {5, leaf(81)}};
  const Digest hypothetical = t.root_after(updates);
  t.set_leaf(4, leaf(80));
  t.set_leaf(5, leaf(81));
  EXPECT_EQ(t.root(), hypothetical);
}

TEST(MerkleTree, OutOfRangeThrows) {
  MerkleTree t(make_leaves(4));
  EXPECT_THROW(t.set_leaf(4, leaf(1)), std::out_of_range);
  EXPECT_THROW(t.leaf(4), std::out_of_range);
  EXPECT_THROW(t.sibling_path(4), std::out_of_range);
  const std::vector<std::pair<std::size_t, Digest>> bad = {{9, leaf(1)}};
  EXPECT_THROW(t.root_after(bad), std::out_of_range);
}

TEST(VerificationObject, ProvesMembership) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const VerificationObject vo = make_vo(t, i);
    EXPECT_TRUE(verify_vo(leaves[i], vo, t.root())) << "leaf " << i;
  }
}

TEST(VerificationObject, RejectsWrongValue) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  const VerificationObject vo = make_vo(t, 3);
  EXPECT_FALSE(verify_vo(leaf(999), vo, t.root()));
}

TEST(VerificationObject, RejectsWrongPosition) {
  const auto leaves = make_leaves(10);
  MerkleTree t(leaves);
  VerificationObject vo = make_vo(t, 3);
  vo.leaf_index = 2;  // right value, wrong claimed position
  EXPECT_FALSE(verify_vo(leaves[3], vo, t.root()));
}

TEST(VerificationObject, SizeIsLogN) {
  MerkleTree t(make_leaves(1024));
  EXPECT_EQ(make_vo(t, 0).siblings.size(), 10u);  // log2(1024)
}

TEST(VerificationObject, SerializationRoundTrip) {
  MerkleTree t(make_leaves(10));
  const VerificationObject vo = make_vo(t, 6);
  const auto back = VerificationObject::deserialize(vo.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, vo);
}

TEST(VerificationObject, DeserializeRejectsGarbage) {
  EXPECT_FALSE(VerificationObject::deserialize(to_bytes("junk")).has_value());
}

// Property sweep: over a range of tree sizes, random incremental updates
// stay consistent with full rebuilds and all VOs keep verifying.
class MerklePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerklePropertyTest, IncrementalUpdatesMatchRebuildAndProofsHold) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 7);
  auto leaves = make_leaves(n);
  MerkleTree t(leaves);

  for (int step = 0; step < 20; ++step) {
    const std::size_t idx = rng.uniform(n);
    const Digest d = leaf(1000 + rng.uniform(100000));
    leaves[idx] = d;
    t.set_leaf(idx, d);
  }
  EXPECT_EQ(t.root(), MerkleTree(leaves).root());

  for (int probe = 0; probe < 5; ++probe) {
    const std::size_t idx = rng.uniform(n);
    EXPECT_TRUE(verify_vo(leaves[idx], make_vo(t, idx), t.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerklePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 64, 100, 1000));

}  // namespace
}  // namespace fides::merkle
