// Shared plumbing for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the paper's §6: it runs
// the experiment driver over the paper's parameter sweep and prints the
// measured series next to the paper's reported shape. Absolute numbers
// differ (the paper ran Python on EC2; we run C++ with from-scratch crypto
// on one machine) — the *shape* is the reproduction target, as recorded in
// EXPERIMENTS.md.
//
// Environment knobs:
//   FIDES_BENCH_TXNS   client requests per data point   (default 200;
//                      paper used 1000 — set 1000 for full fidelity)
//   FIDES_BENCH_SEEDS  runs averaged per point          (default 2; paper 3)
//   FIDES_THREADS      threads for the round engine (default 1 = sequential)
//   FIDES_PIPELINE     commit rounds in flight (default 1 = lock-step)
//   FIDES_NET          "sim" routes commit rounds through the deterministic
//                      SimNet (seeded by FIDES_SIM_SEED, default 1)
//   FIDES_ARRIVAL      "fixed" / "poisson" switches the driver to open-loop
//                      load (requires FIDES_NET=sim); default closed loop
//   FIDES_RATE         open-loop offered load in txns/sec (default 2000)
//   FIDES_CLIENTS      open-loop client population (default 4)
//   FIDES_BATCH_VERIFY "1" verifies inbox/request signatures through the RLC
//                      aggregate path (ClusterConfig::batch_verify)
//   FIDES_BENCH_JSON   write a machine-readable fides-bench-v1 report to
//                      this path (same as passing --json <path>)
// See the README's "engine knobs" table for the full semantics.
#pragma once

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <filesystem>

#include "net/process.hpp"
#include "net/socket_round.hpp"
#include "sim/simnet.hpp"
#include "workload/driver.hpp"

namespace fides::bench {

// Env knobs parse strictly: a malformed value (trailing junk, overflow,
// non-finite, non-positive) aborts the bench instead of silently running the
// fallback configuration — a sweep mislabelled by a typo'd knob is worse
// than no sweep.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  std::size_t parsed = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, parsed);
  if (ec != std::errc{} || ptr != end || v == end || parsed == 0) {
    std::fprintf(stderr, "bench: %s=\"%s\" is not a positive integer\n", name, v);
    std::exit(2);
  }
  return parsed;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !std::isfinite(parsed) ||
      parsed <= 0.0) {
    std::fprintf(stderr, "bench: %s=\"%s\" is not a positive finite number\n", name, v);
    std::exit(2);
  }
  return parsed;
}

inline std::size_t bench_txns() { return env_size("FIDES_BENCH_TXNS", 200); }

/// Worker threads for commit rounds: FIDES_THREADS, default 1 (sequential).
inline std::uint32_t bench_threads() {
  return static_cast<std::uint32_t>(env_size("FIDES_THREADS", 1));
}

/// Commit rounds in flight: FIDES_PIPELINE, default 1 (lock-step).
inline std::uint32_t bench_pipeline() {
  return static_cast<std::uint32_t>(env_size("FIDES_PIPELINE", 1));
}

/// Speculative voting: FIDES_SPEC=1 drops the apply-watermark gate on round
/// openings (TFCommit; see ClusterConfig::speculate). Default off.
inline bool bench_speculate() {
  const char* v = std::getenv("FIDES_SPEC");
  return v != nullptr && std::string(v) != "0";
}

/// Batched signature verification: FIDES_BATCH_VERIFY=1 routes inbox and
/// request opens through the RLC aggregate path (ClusterConfig::batch_verify).
/// Default off.
inline bool bench_batch_verify() {
  const char* v = std::getenv("FIDES_BATCH_VERIFY");
  return v != nullptr && std::string(v) != "0";
}

inline std::vector<std::uint64_t> bench_seeds() {
  const std::size_t n = env_size("FIDES_BENCH_SEEDS", 2);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(42 + i);
  return seeds;
}

inline void print_header(const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("txns/point=%zu, runs averaged=%zu, threads=%u, pipeline=%u\n",
              bench_txns(), bench_seeds().size(), bench_threads(), bench_pipeline());
  std::printf("==============================================================\n");
}

/// Applies the FIDES_NET knob: "sim" switches the cluster onto the
/// discrete-event simulated network (direct delivery otherwise).
inline void apply_network_env(ClusterConfig& cluster) {
  const char* v = std::getenv("FIDES_NET");
  if (v != nullptr && std::string(v) == "sim") {
    cluster.network.mode = sim::NetworkMode::kSimulated;
    cluster.network.sim.seed = env_size("FIDES_SIM_SEED", 1);
  }
}

/// Applies the open-loop knobs: FIDES_ARRIVAL ("fixed" / "poisson" /
/// anything else = closed), FIDES_RATE, FIDES_CLIENTS. Only takes effect
/// when the cluster runs on the simulated network.
inline void apply_arrival_env(workload::ExperimentConfig& cfg) {
  const char* v = std::getenv("FIDES_ARRIVAL");
  if (v != nullptr) {
    const std::string s(v);
    if (s == "fixed") {
      cfg.arrival.process = workload::ArrivalProcess::kFixedRate;
    } else if (s == "poisson") {
      cfg.arrival.process = workload::ArrivalProcess::kPoisson;
    } else {
      cfg.arrival.process = workload::ArrivalProcess::kClosed;
    }
  }
  cfg.arrival.rate_tps = env_double("FIDES_RATE", cfg.arrival.rate_tps);
  cfg.arrival.num_clients =
      static_cast<std::uint32_t>(env_size("FIDES_CLIENTS", cfg.arrival.num_clients));
}

inline workload::ExperimentResult run_point(workload::ExperimentConfig cfg) {
  cfg.total_txns = bench_txns();
  cfg.cluster.sign_data_path = false;  // §6 measures from end-transaction on
  cfg.cluster.num_threads = bench_threads();
  cfg.cluster.pipeline_depth = bench_pipeline();
  cfg.cluster.speculate = bench_speculate();
  cfg.cluster.batch_verify = bench_batch_verify();
  apply_network_env(cfg.cluster);
  apply_arrival_env(cfg);
  const auto seeds = bench_seeds();
  return workload::run_averaged(cfg, seeds);
}

// --- Machine-readable reports (schema "fides-bench-v1") -------------------------
//
// Every bench binary can write its sweep as JSON: `--json <path>` or
// FIDES_BENCH_JSON=<path>. tools/bench_diff.py compares these against the
// committed bench/baseline/ to gate the performance trajectory in CI.
//
// Metrics are grouped by how they may be compared:
//   exact  — deterministic given seed + config: protocol counts (txns,
//            blocks, messages, bytes, signatures) and anything measured on
//            the virtual clock (open-loop percentiles, spans, virtual tps).
//            bench_diff compares these byte-for-byte.
//   approx — contains measured wall/CPU time (modeled latency folds in the
//            measured compute term); compared directionally with a noise
//            tolerance (*_tps may not drop, *_ms may not rise).
//   info   — context only (wall seconds, threads); never compared.

struct MetricGroup {
  std::vector<std::pair<std::string, double>> values;
  void set(const std::string& key, double v) { values.emplace_back(key, v); }
};

struct BenchPoint {
  std::string label;
  MetricGroup exact;
  MetricGroup approx;
  MetricGroup info;
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Records a config knob (emitted as a string so exact values survive).
  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void config(const std::string& key, std::size_t value) {
    config(key, std::to_string(value));
  }

  BenchPoint& point(const std::string& label) {
    points_.emplace_back();
    points_.back().label = label;
    return points_.back();
  }

  /// Writes the report; returns false (with a note on stderr) on I/O error.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const char* commit = std::getenv("GITHUB_SHA");
    if (commit == nullptr) commit = std::getenv("FIDES_COMMIT");
    std::fprintf(f, "{\n  \"schema\": \"fides-bench-v1\",\n");
    std::fprintf(f, "  \"name\": %s,\n", quoted(name_).c_str());
    std::fprintf(f, "  \"commit\": %s,\n",
                 quoted(commit != nullptr ? commit : "unknown").c_str());
    std::fprintf(f, "  \"config\": {");
    for (std::size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i ? "," : "", quoted(config_[i].first).c_str(),
                   quoted(config_[i].second).c_str());
    }
    std::fprintf(f, "%s},\n", config_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"points\": [");
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const BenchPoint& p = points_[i];
      std::fprintf(f, "%s\n    {\n      \"label\": %s,\n", i ? "," : "",
                   quoted(p.label).c_str());
      write_group(f, "exact", p.exact);
      std::fprintf(f, ",\n");
      write_group(f, "approx", p.approx);
      std::fprintf(f, ",\n");
      write_group(f, "info", p.info);
      std::fprintf(f, "\n    }");
    }
    std::fprintf(f, "%s]\n}\n", points_.empty() ? "" : "\n  ");
    std::fclose(f);
    return true;
  }

 private:
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  static void write_group(std::FILE* f, const char* name, const MetricGroup& g) {
    std::fprintf(f, "      \"%s\": {", name);
    for (std::size_t i = 0; i < g.values.size(); ++i) {
      // %.17g round-trips doubles exactly; non-finite values (a point that
      // never completed) become null so the file stays valid JSON.
      char buf[40];
      if (std::isfinite(g.values[i].second)) {
        std::snprintf(buf, sizeof buf, "%.17g", g.values[i].second);
      } else {
        std::snprintf(buf, sizeof buf, "null");
      }
      std::fprintf(f, "%s\n        %s: %s", i ? "," : "",
                   quoted(g.values[i].first).c_str(), buf);
    }
    std::fprintf(f, "%s}", g.values.empty() ? "" : "\n      ");
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<BenchPoint> points_;
};

/// Resolves the report path: `--json <path>` beats FIDES_BENCH_JSON; empty
/// string means "don't write a report".
inline std::string bench_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  const char* env = std::getenv("FIDES_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

/// Stamps the shared env knobs into the report so a baseline diff can tell a
/// perf change from a config change.
inline void stamp_config(BenchReport& report) {
  report.config("txns", bench_txns());
  report.config("seeds", bench_seeds().size());
  report.config("threads", bench_threads());
  report.config("pipeline", bench_pipeline());
  report.config("speculate", bench_speculate() ? "1" : "0");
  report.config("batch_verify", bench_batch_verify() ? "1" : "0");
  const char* net = std::getenv("FIDES_NET");
  report.config("net", net != nullptr ? net : "direct");
  const char* arrival = std::getenv("FIDES_ARRIVAL");
  report.config("arrival", arrival != nullptr ? arrival : "closed");
}

/// Splits one experiment result into exact/approx/info groups. Open-loop
/// percentiles and throughput live on the virtual clock, so they move to the
/// exact group; closed-loop latency folds in measured compute time and stays
/// approximate.
inline void add_experiment_point(BenchReport& report, const std::string& label,
                                 const workload::ExperimentResult& r) {
  BenchPoint& p = report.point(label);
  p.exact.set("committed_txns", static_cast<double>(r.committed_txns));
  p.exact.set("aborted_txns", static_cast<double>(r.aborted_txns));
  p.exact.set("blocks", static_cast<double>(r.blocks));
  p.exact.set("net_messages", static_cast<double>(r.net.messages));
  p.exact.set("net_bytes", static_cast<double>(r.net.bytes));
  p.exact.set("signatures_created", static_cast<double>(r.net.signatures_created));
  p.exact.set("signatures_verified", static_cast<double>(r.net.signatures_verified));
  // Closed-loop percentiles derive from per-block modeled latency, which
  // folds in measured compute time — their tails (one stray slow round) are
  // far too noisy to gate, so they land in info. Open-loop percentiles are
  // pure virtual time and gate exactly.
  MetricGroup& timing = r.open_loop ? p.exact : p.info;
  timing.set("p50_ms", r.p50_ms);
  timing.set("p99_ms", r.p99_ms);
  timing.set("p999_ms", r.p999_ms);
  timing.set("max_ms", r.max_ms);
  (r.open_loop ? p.exact : p.approx).set("throughput_tps", r.throughput_tps);
  if (r.open_loop) {
    p.exact.set("offered_tps", r.offered_tps);
    p.exact.set("span_ms", r.span_ms);
    p.exact.set("client_sends", static_cast<double>(r.client_sends));
    p.exact.set("client_retries", static_cast<double>(r.client_retries));
    p.exact.set("dup_responses", static_cast<double>(r.dup_responses));
  }
  p.approx.set("avg_latency_ms", r.avg_latency_ms);
  p.approx.set("avg_measured_ms", r.avg_measured_ms);
  p.approx.set("measured_throughput_tps", r.measured_throughput_tps);
  p.approx.set("avg_mht_ms", r.avg_mht_ms);
  p.info.set("wall_seconds", r.wall_seconds);
  p.info.set("threads", static_cast<double>(r.threads));
  p.info.set("pipeline_depth", static_cast<double>(r.pipeline_depth));
}

/// Writes the report if a path was requested. Call at the end of main().
inline void finish_report(const BenchReport& report, int argc, char** argv) {
  const std::string path = bench_json_path(argc, argv);
  if (path.empty()) return;
  if (report.write(path)) std::printf("wrote %s\n", path.c_str());
}

// --- Pipeline depth sweep -----------------------------------------------------
//
// Mints a fixed stream of signed batches once (client transactions executed
// against a pristine cluster, blocks never run), then replays the identical
// stream on fresh clusters at pipeline depths 1, 2, and 4. Client keys are
// deterministic per id, so the replay clusters verify the same signatures.
// Reports measured throughput per depth and **exits non-zero** if any
// depth's decisions or ledger diverge from depth 1 — the depth-equivalence
// gate CI runs in Release mode.

struct DepthRun {
  std::vector<ledger::Decision> decisions;
  std::vector<crypto::Digest> log_heads;     // per server
  std::vector<crypto::Digest> merkle_roots;  // per server
  std::size_t committed_txns{0};
  double wall_us{0};

  bool same_ledger(const DepthRun& o) const {
    return decisions == o.decisions && log_heads == o.log_heads &&
           merkle_roots == o.merkle_roots;
  }
};

inline void pipeline_depth_section(std::uint32_t servers, std::size_t txns_per_block,
                                   std::size_t blocks,
                                   BenchReport* report = nullptr) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.items_per_shard = 10000;
  cfg.max_batch_size = txns_per_block;
  cfg.sign_data_path = false;
  // The depth > 1 gain is tail work (decision apply, next-round assembly)
  // overlapping across rounds — visible only when every server has its own
  // thread, so this section never runs below n+1 executors.
  cfg.num_threads = std::max<std::uint32_t>(servers + 1, bench_threads());

  // Mint the batch stream.
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  {
    Cluster mint(cfg);
    Client& client = mint.make_client();
    workload::YcsbWorkload workload(
        {}, static_cast<std::uint64_t>(servers) * cfg.items_per_shard, cfg.seed);
    commit::BatchBuilder batcher(txns_per_block);
    for (std::size_t b = 0; b < blocks; ++b) {
      workload.begin_batch();
      for (std::size_t i = 0; i < txns_per_block; ++i) {
        batcher.enqueue(workload.run_transaction(client));
      }
    }
    while (!batcher.empty()) batches.push_back(batcher.next_batch());
  }

  std::printf("\nPipelined engine: %u servers, %zu blocks x %zu txns, %u threads\n",
              servers, batches.size(), txns_per_block, cfg.num_threads);
  std::printf("%-8s %-6s %-14s %-16s %-10s %s\n", "depth", "spec", "wall_ms",
              "throughput_tps", "speedup", "ledger");

  std::vector<DepthRun> runs;
  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      ClusterConfig run_cfg = cfg;
      run_cfg.pipeline_depth = depth;
      run_cfg.speculate = speculate;
      Cluster cluster(run_cfg);
      cluster.make_client();  // registers the deterministic client key
      DepthRun run;
      const PipelineResult result = cluster.run_blocks(batches);
      run.wall_us = result.wall_us;
      for (const RoundMetrics& m : result.rounds) {
        run.decisions.push_back(m.decision);
        if (m.decision == ledger::Decision::kCommit) run.committed_txns += m.txns_in_block;
      }
      for (std::uint32_t i = 0; i < servers; ++i) {
        const Server& s = cluster.server(ServerId{i});
        run.log_heads.push_back(s.log().head_hash());
        run.merkle_roots.push_back(s.shard().merkle_root());
      }
      runs.push_back(std::move(run));

      const DepthRun& base = runs.front();
      const DepthRun& cur = runs.back();
      const bool identical = cur.same_ledger(base);
      std::printf("%-8u %-6s %-14.2f %-16.0f %-10.2f %s\n", depth,
                  speculate ? "on" : "off", cur.wall_us / 1000.0,
                  cur.committed_txns / (cur.wall_us / 1e6),
                  cur.wall_us > 0 ? base.wall_us / cur.wall_us : 0.0,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        std::printf("ERROR: pipeline depth %u (spec %s) diverged from depth 1\n",
                    depth, speculate ? "on" : "off");
        std::exit(1);
      }
      if (report != nullptr) {
        BenchPoint& p = report->point("pipeline/direct/depth" + std::to_string(depth) +
                                      "/spec_" + (speculate ? "on" : "off"));
        p.exact.set("committed_txns", static_cast<double>(cur.committed_txns));
        p.approx.set("wall_ms", cur.wall_us / 1000.0);
        p.approx.set("throughput_tps", cur.committed_txns / (cur.wall_us / 1e6));
      }
    }
  }

  // The same stream over SimNet, measured in deterministic *virtual* time:
  // at depth > 1, round k+1's opening legs overlap round k's decision/apply
  // legs on the simulated wire, so the virtual span shrinks — a
  // seed-reproducible measurement of protocol-level pipelining, independent
  // of host core count. Gated runs plateau at ~1.2x past depth 2 (the
  // vote-needs-previous-apply data dependency); speculative voting breaks
  // that cap, and the sweep *asserts* depth-4 speculation beats the gated
  // depth-1 baseline by >= 1.5x on the virtual clock.
  std::printf("%-8s %-6s %-14s %-16s %-10s %s\n", "depth", "spec", "virtual_ms",
              "virtual_tps", "speedup", "ledger (SimNet)");
  std::vector<DepthRun> sim_runs;
  double lockstep_d1_us = 0;
  double spec_d4_us = 0;
  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      ClusterConfig run_cfg = cfg;
      run_cfg.pipeline_depth = depth;
      run_cfg.speculate = speculate;
      run_cfg.network.mode = sim::NetworkMode::kSimulated;
      run_cfg.network.sim.seed = env_size("FIDES_SIM_SEED", 1);
      Cluster cluster(run_cfg);
      cluster.make_client();
      DepthRun run;
      const PipelineResult result = cluster.run_blocks(batches);
      run.wall_us = cluster.simnet()->now_us();  // virtual span (fresh net starts at 0)
      for (const RoundMetrics& m : result.rounds) {
        run.decisions.push_back(m.decision);
        if (m.decision == ledger::Decision::kCommit) run.committed_txns += m.txns_in_block;
      }
      for (std::uint32_t i = 0; i < servers; ++i) {
        const Server& s = cluster.server(ServerId{i});
        run.log_heads.push_back(s.log().head_hash());
        run.merkle_roots.push_back(s.shard().merkle_root());
      }
      sim_runs.push_back(std::move(run));
      if (!speculate && depth == 1) lockstep_d1_us = run.wall_us;
      if (speculate && depth == 4) spec_d4_us = run.wall_us;

      const DepthRun& cur = sim_runs.back();
      // Gate against the *direct* depth-1 run too: the simulated schedule must
      // reproduce the exact same ledger as direct delivery at every depth.
      const bool identical =
          cur.same_ledger(sim_runs.front()) && cur.same_ledger(runs.front());
      std::printf("%-8u %-6s %-14.2f %-16.0f %-10.2f %s\n", depth,
                  speculate ? "on" : "off", cur.wall_us / 1000.0,
                  cur.committed_txns / (cur.wall_us / 1e6),
                  cur.wall_us > 0 ? sim_runs.front().wall_us / cur.wall_us : 0.0,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        std::printf("ERROR: simulated pipeline depth %u (spec %s) diverged\n",
                    depth, speculate ? "on" : "off");
        std::exit(1);
      }
      if (report != nullptr) {
        // Virtual-time sweep: fully deterministic given the SimNet seed, so
        // the whole point is exact — CI catches any drift in the pipelined
        // schedule itself, not just throughput regressions.
        BenchPoint& p = report->point("pipeline/sim/depth" + std::to_string(depth) +
                                      "/spec_" + (speculate ? "on" : "off"));
        p.exact.set("committed_txns", static_cast<double>(cur.committed_txns));
        p.exact.set("virtual_ms", cur.wall_us / 1000.0);
        p.exact.set("virtual_tps", cur.committed_txns / (cur.wall_us / 1e6));
      }
    }
  }
  const double spec_speedup = spec_d4_us > 0 ? lockstep_d1_us / spec_d4_us : 0.0;
  std::printf("speculative depth-4 virtual speedup over lock-step depth-1: %.2fx\n",
              spec_speedup);
  if (spec_speedup < 1.5) {
    std::printf("ERROR: speculation failed the 1.5x virtual-time bar\n");
    std::exit(1);
  }
  if (report != nullptr) {
    report->point("pipeline/sim/summary").exact.set("spec_d4_speedup", spec_speedup);
  }

  // The same stream a third time, over real loopback sockets: this process
  // keeps server 0 and the client, every other server runs as a
  // fides_serverd child speaking length-framed envelopes on unix-domain
  // sockets. wall_ms here is genuine multi-process wall clock — the column
  // to read next to SimNet's virtual one — and the committed ledger must be
  // bit-identical to both single-process sweeps (remote state arrives as
  // signed-state digests at shutdown).
  std::printf("%-8s %-6s %-14s %-16s %s\n", "depth", "spec", "wall_ms",
              "throughput_tps", "ledger (sockets)");
  const std::string serverd = net::serverd_binary_path();
  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u}) {
      char dir_template[] = "/tmp/fides_bench_socket_XXXXXX";
      if (::mkdtemp(dir_template) == nullptr) {
        std::printf("ERROR: mkdtemp failed for the socket sweep\n");
        std::exit(1);
      }
      const std::string dir = dir_template;
      std::vector<std::string> addrs;
      for (std::uint32_t i = 0; i < servers; ++i) {
        addrs.push_back("unix:" + dir + "/s" + std::to_string(i) + ".sock");
      }
      std::vector<pid_t> children;
      for (std::uint32_t i = 1; i < servers; ++i) {
        std::vector<std::string> child_argv = {
            serverd,
            "--self", std::to_string(i),
            "--servers", std::to_string(servers),
            "--rounds", std::to_string(batches.size()),
            "--clients", "1",
            "--items", std::to_string(cfg.items_per_shard),
            "--batch", std::to_string(cfg.max_batch_size),
            "--no-data-sigs",
            "--pipeline", std::to_string(depth),
            "--seed", std::to_string(cfg.seed),
            "--log-dir", dir};
        if (speculate) child_argv.push_back("--spec");
        for (const auto& a : addrs) child_argv.push_back(a);
        children.push_back(
            net::spawn(child_argv, dir + "/serverd-" + std::to_string(i) + ".log"));
      }

      ClusterConfig run_cfg = cfg;
      run_cfg.pipeline_depth = depth;
      run_cfg.speculate = speculate;
      run_cfg.round_log_dir = dir;
      Cluster cluster(run_cfg);
      cluster.make_client();
      net::SocketOptions sopts;
      sopts.addrs = addrs;
      sopts.self = 0;
      auto batch_copy = batches;
      const net::SocketRunResult sock = net::run_commit_rounds_over_sockets(
          cluster, run_cfg.protocol, std::move(batch_copy), sopts);

      DepthRun run;
      run.wall_us = sock.pipeline.wall_us;
      for (const RoundMetrics& m : sock.pipeline.rounds) {
        run.decisions.push_back(m.decision);
        if (m.decision == ledger::Decision::kCommit) run.committed_txns += m.txns_in_block;
      }
      run.log_heads.push_back(cluster.server(ServerId{0}).log().head_hash());
      run.merkle_roots.push_back(cluster.server(ServerId{0}).shard().merkle_root());
      for (const net::PeerDigest& d : sock.digests) {
        run.log_heads.push_back(d.log_head);
        run.merkle_roots.push_back(d.shard_root);
      }

      bool clean = sock.digests.size() == static_cast<std::size_t>(servers) - 1;
      for (std::size_t c = 0; c < children.size(); ++c) {
        const int code = net::wait_exit(children[c]);
        if (code != 0) {
          std::printf("ERROR: serverd %zu exited %d (logs in %s)\n", c + 1, code,
                      dir.c_str());
          clean = false;
        }
      }
      const bool identical =
          clean && run.same_ledger(runs.front()) && run.same_ledger(sim_runs.front());
      std::printf("%-8u %-6s %-14.2f %-16.0f %s\n", depth, speculate ? "on" : "off",
                  run.wall_us / 1000.0, run.committed_txns / (run.wall_us / 1e6),
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        std::printf("ERROR: socket pipeline depth %u (spec %s) diverged from the "
                    "single-process runs (logs in %s)\n",
                    depth, speculate ? "on" : "off", dir.c_str());
        std::exit(1);
      }
      if (report != nullptr) {
        BenchPoint& p = report->point("pipeline/socket/depth" + std::to_string(depth) +
                                      "/spec_" + (speculate ? "on" : "off"));
        p.exact.set("committed_txns", static_cast<double>(run.committed_txns));
        p.approx.set("wall_ms", run.wall_us / 1000.0);
        p.approx.set("throughput_tps", run.committed_txns / (run.wall_us / 1e6));
      }
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);  // keep the dir only on failure paths
    }
  }
}

}  // namespace fides::bench
