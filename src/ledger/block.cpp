#include "ledger/block.hpp"

#include <algorithm>

namespace fides::ledger {

const crypto::Digest* Block::root_of(ServerId server) const {
  const auto it = std::find_if(roots.begin(), roots.end(),
                               [&](const ShardRoot& r) { return r.server == server; });
  return it != roots.end() ? &it->root : nullptr;
}

void Block::set_root(ServerId server, const crypto::Digest& root) {
  const auto it = std::find_if(roots.begin(), roots.end(),
                               [&](const ShardRoot& r) { return r.server == server; });
  if (it != roots.end()) {
    it->root = root;
  } else {
    roots.push_back(ShardRoot{server, root});
    std::sort(roots.begin(), roots.end(),
              [](const ShardRoot& a, const ShardRoot& b) { return a.server < b.server; });
  }
}

namespace {

// fides-lint: allow-file(serde-pairing) -- encode_body is a digest/signing
// preimage, one-way by design; blocks travel serialized by serialize() below.
void encode_body(const Block& b, Writer& w) {
  w.u64(b.height);
  w.u32(static_cast<std::uint32_t>(b.txns.size()));
  for (const auto& t : b.txns) t.encode(w);
  w.u8(static_cast<std::uint8_t>(b.decision));
  w.u32(static_cast<std::uint32_t>(b.signers.size()));
  for (const ServerId s : b.signers) w.u32(s.value);
  w.u32(static_cast<std::uint32_t>(b.roots.size()));
  for (const auto& r : b.roots) {
    w.u32(r.server.value);
    w.raw(r.root.view());
  }
  w.raw(b.prev_hash.view());
}

crypto::Digest read_digest(Reader& r) {
  const Bytes raw = r.raw(32);
  crypto::Digest d;
  std::copy(raw.begin(), raw.end(), d.bytes.begin());
  return d;
}

}  // namespace

Bytes Block::signing_bytes() const {
  Writer w;
  encode_body(*this, w);
  return std::move(w).take();
}

Bytes Block::vote_bytes() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(txns.size()));
  for (const auto& t : txns) t.encode(w);
  w.u32(static_cast<std::uint32_t>(signers.size()));
  for (const ServerId s : signers) w.u32(s.value);
  return std::move(w).take();
}

Bytes Block::serialize() const {
  Writer w;
  encode_body(*this, w);
  w.boolean(cosign.has_value());
  if (cosign) w.bytes(cosign->serialize());
  return std::move(w).take();
}

crypto::Digest Block::digest() const { return crypto::sha256(serialize()); }

Bytes unchained_signing_bytes(const Block& block) {
  Block copy = block;
  copy.height = 0;
  copy.prev_hash = crypto::Digest::zero();
  return copy.signing_bytes();
}

std::optional<Block> Block::deserialize(BytesView bytes) {
  try {
    Reader r(bytes);
    Block b;
    b.height = r.u64();
    const std::uint32_t nt = r.u32();
    b.txns.reserve(nt);
    for (std::uint32_t i = 0; i < nt; ++i) b.txns.push_back(txn::Transaction::decode(r));
    const std::uint8_t dec = r.u8();
    if (dec > 1) return std::nullopt;
    b.decision = static_cast<Decision>(dec);
    const std::uint32_t ns = r.u32();
    b.signers.reserve(ns);
    for (std::uint32_t i = 0; i < ns; ++i) b.signers.push_back(ServerId{r.u32()});
    const std::uint32_t nr = r.u32();
    b.roots.reserve(nr);
    for (std::uint32_t i = 0; i < nr; ++i) {
      ShardRoot sr;
      sr.server = ServerId{r.u32()};
      sr.root = read_digest(r);
      b.roots.push_back(sr);
    }
    b.prev_hash = read_digest(r);
    if (r.boolean()) {
      const Bytes cb = r.bytes();
      const auto sig = crypto::CosiSignature::deserialize(cb);
      if (!sig) return std::nullopt;
      b.cosign = *sig;
    }
    r.expect_done();
    return b;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace fides::ledger
