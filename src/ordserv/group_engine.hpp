// Engine-routed group commit (§4.6): multi-coordinator dispatch.
//
// Each batch's ServerGroup runs its own TFCommit round on the engine's
// message reactors, under any Scheduler (direct/inproc, SimNet) — there is no
// single global coordinator. Per-group epochs compose with the cluster's
// pipeline_depth and speculate knobs *independently per server*: disjoint
// groups pipeline and speculate past each other without interference, while
// overlapping (cross-group) transactions are serialized by the Sequencer's
// dependency metadata and the per-server touch-order gates.
//
// Votes, CoSi responses, and delivered sequenced entries go through the
// servers' durable RoundLogs (vote_once / respond_once / record_decision), so
// a group-mode commit survives a crash: recovery replays the sequenced stream
// plus any in-flight group rounds and converges on the same bit-identical
// stream the uncrashed run produces.
//
// The sequential lock-step reference driver lives in group_commit.hpp
// (GroupCommitRunner); the two drivers produce bit-identical sequenced
// streams for the same batches.
#pragma once

#include "engine/scheduler.hpp"
#include "ordserv/group_commit.hpp"

namespace fides::ordserv {

/// Result of an engine run over a sequence of group batches.
struct GroupRunResult {
  /// One per batch, in submission order (same shape as the runner's results).
  std::vector<GroupRoundResult> rounds;
  /// Per server: the refusal that halted delivery there, if any.
  std::vector<std::optional<DeliveryRefusal>> delivery_refusals;
  double wall_us{0};
  /// Votes discarded for a mis-speculated base across all rounds. Telemetry:
  /// the count depends on delivery interleaving (streams do not).
  std::size_t spec_revotes{0};
};

/// Runs every batch as a group-local TFCommit round on the engine reactors
/// under `sched`, sequencing valid outcomes through `sequencer` and
/// delivering the hash-chained stream to every server (validated, durable).
/// Throws std::logic_error if the schedule stalls before completion.
GroupRunResult run_group_rounds(Cluster& cluster, Sequencer& sequencer,
                                std::vector<std::vector<commit::SignedEndTxn>> batches,
                                engine::Scheduler& sched);

}  // namespace fides::ordserv
