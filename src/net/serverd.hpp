// fides_serverd: one Server of a deterministic Cluster as its own process.
//
// The daemon constructs the identical Cluster the coordinator process
// constructs (server and client keys are deterministic in the ids, epochs
// come from a fresh per-cluster counter, shards provision from the shared
// config), rejoins from its durable round log if one survives a previous
// incarnation, then serves commit rounds over a SocketScheduler until the
// coordinator broadcasts shutdown. The CLI lives here (not in the tool
// main) so tests can exercise parsing and option plumbing directly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fides/config.hpp"

namespace fides::net {

struct ServerdOptions {
  std::uint32_t self{1};          ///< hosted server id (1..num_servers-1)
  std::uint32_t num_servers{5};
  std::vector<std::string> addrs; ///< one per server, positional args
  std::size_t rounds{0};          ///< total rounds of the run (epoch alignment)
  std::size_t clients{0};         ///< client count (key registry alignment)
  Protocol protocol{Protocol::kTfCommit};
  std::uint32_t items{10000};
  std::uint32_t max_batch{100};
  bool sign_data_path{true};
  std::uint32_t pipeline{1};
  bool speculate{false};
  bool batch_verify{false};       ///< RLC-aggregate signature opens
  std::uint32_t threads{1};
  std::string log_dir;            ///< shared durable round-log directory
  std::uint64_t seed{42};
  /// Crash point: die (std::_Exit) right after processing the
  /// `crash_after_count`-th delivery of this message type. Empty = never.
  std::string crash_after_type;
  std::uint32_t crash_after_count{1};
};

/// Parses serverd CLI arguments. Returns nullopt and sets `error` on a bad
/// flag or a missing required argument.
std::optional<ServerdOptions> parse_serverd_args(int argc, char** argv,
                                                 std::string* error);

/// Runs the daemon to completion. Exit codes: 0 clean shutdown, 2 bad
/// deployment (unreachable coordinator, addr mismatch), 3 durable log
/// failed its integrity check, 4 coordinator connection lost mid-run.
/// A configured crash point exits with SocketOptions::crash_exit_code (42).
int run_serverd(const ServerdOptions& options);

}  // namespace fides::net
