#include "commit/tfcommit.hpp"

#include "commit/batch.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include <unordered_set>

namespace fides::commit {

namespace {

/// A deliberately wrong curve point: a valid group element that is not the
/// one the protocol expects (garbage-but-on-curve, so it passes syntactic
/// checks and is only caught by the algebra — the interesting case).
crypto::AffinePoint bogus_point() {
  const auto& curve = crypto::Curve::instance();
  return curve.to_affine(curve.mul_g(crypto::U256(0xBAD)));
}

}  // namespace

Bytes EndTxnRequest::serialize() const {
  Writer w;
  txn.encode(w);
  return std::move(w).take();
}

std::optional<EndTxnRequest> EndTxnRequest::deserialize(BytesView b) {
  try {
    Reader r(b);
    EndTxnRequest req;
    req.txn = txn::Transaction::decode(r);
    r.expect_done();
    return req;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

bool SignedEndTxn::verify(const crypto::PublicKey& client_key) const {
  return crypto::verify(client_key, request.serialize(), signature);
}

// --- Cohort -----------------------------------------------------------------

bool TfCommitCohort::involved_in(const Block& block) const {
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      if (shard_->contains(item)) return true;
    }
  }
  return false;
}

VoteMsg TfCommitCohort::handle_get_vote(const GetVoteMsg& msg, const CohortFaults& faults) {
  RoundState state;
  state.involved = involved_in(msg.partial_block);
  state.partial = msg.partial_block;

  // CoSi commitment over the partial block — every cohort participates in
  // co-signing even when its shard is untouched (§4.1 simplification).
  state.commitment =
      crypto::cosi_commit(*keypair_, msg.partial_block.signing_bytes(), msg.round);

  VoteMsg vote;
  vote.cohort = id_;
  vote.sch_commitment =
      faults.corrupt_sch_commitment ? bogus_point() : state.commitment.v;
  vote.involved = state.involved;
  if (!state.involved) {
    state.vote = txn::Vote::kCommit;  // uninvolved cohorts never veto
    last_vote_ = state.vote;
    store_round(msg.round, std::move(state));
    return vote;
  }

  // Local 2PC vote: the batch must be internally non-conflicting (§4.6) and
  // every transaction touching this shard must pass OCC validation.
  txn::ValidationResult result{txn::Vote::kCommit, {}};
  if (!batch_non_conflicting(msg.partial_block.txns)) {
    result = {txn::Vote::kAbort, "block packs conflicting transactions"};
  }
  for (const auto& t : msg.partial_block.txns) {
    if (!result.ok()) break;
    result = txn::validate_occ(*shard_, t);
  }
  if (faults.always_vote_abort) result = {txn::Vote::kAbort, "byzantine veto"};

  state.vote = result.vote;
  last_vote_ = result.vote;
  vote.vote = result.vote;
  vote.abort_reason = result.reason;
  last_root_compute_us_ = 0;
  if (result.ok()) {
    // Hypothetical root: the shard state as if the block committed. The
    // datastore itself is untouched until the decision arrives.
    std::vector<std::pair<ItemId, Bytes>> writes;
    for (const auto& t : msg.partial_block.txns) {
      for (const auto& w : t.rw.writes) {
        if (shard_->contains(w.id)) writes.emplace_back(w.id, w.new_value);
      }
    }
    // Thread CPU time: the Figure 14 "MHT update time" series must not be
    // inflated by time slices when cohorts run concurrently on the pool.
    const double start = common::thread_cpu_time_us();
    state.sent_root = shard_->root_after(writes);
    last_root_compute_us_ = common::thread_cpu_time_us() - start;
    vote.root = state.sent_root;
  }
  store_round(msg.round, std::move(state));
  return vote;
}

ResponseMsg TfCommitCohort::handle_challenge(const ChallengeMsg& msg,
                                             const CohortFaults& faults) {
  ResponseMsg resp;
  resp.cohort = id_;

  const RoundState* found = find_round(msg.block);
  if (found == nullptr) {
    resp.refused = true;
    resp.refusal_reason = "challenge received without a pending round";
    return resp;
  }
  const RoundState& state = *found;

  const Block& block = msg.block;

  // Decision/roots consistency (§4.3.1 phase 4): a commit block must carry
  // a root from every involved server; an abort block must be missing at
  // least one.
  if (block.decision == Decision::kCommit) {
    if (state.involved) {
      const crypto::Digest* mine = block.root_of(id_);
      if (!faults.skip_root_check) {
        if (mine == nullptr) {
          resp.refused = true;
          resp.refusal_reason = "commit block missing my root";
          return resp;
        }
        if (!state.sent_root || !(*mine == *state.sent_root)) {
          resp.refused = true;
          resp.refusal_reason = "root in block does not match the root I sent";
          return resp;
        }
        if (state.vote == txn::Vote::kAbort) {
          resp.refused = true;
          resp.refusal_reason = "commit decision despite my abort vote";
          return resp;
        }
      }
    }
  }
  // For abort blocks there is nothing shard-specific to check: missing
  // roots are expected ("if the decision is abort, b_i should have some
  // missing roots"), and the challenge check below still binds the cohort
  // to the abort variant it actually received.

  // Challenge correctness: ch must equal H(X_sch ‖ block) for the block *I*
  // received (Lemma 5 detection).
  if (!faults.skip_challenge_check) {
    const crypto::U256 expected =
        crypto::cosi_challenge(msg.aggregate_commitment, block.signing_bytes());
    if (!(expected == msg.challenge)) {
      resp.refused = true;
      resp.refusal_reason = "challenge does not correspond to the block I received";
      return resp;
    }
  }

  crypto::U256 r =
      crypto::cosi_respond(*keypair_, state.commitment.secret, msg.challenge);
  if (faults.corrupt_sch_response) {
    r = crypto::U256(0xBADBAD);
  }
  resp.sch_response = r;
  return resp;
}

void TfCommitCohort::store_round(std::uint64_t round, RoundState state) {
  rounds_[round] = std::move(state);
  // Bounded memory: only the pipeline window (plus stale redeliveries) is
  // ever consulted; evict the oldest rounds beyond it.
  while (rounds_.size() > kMaxRounds) rounds_.erase(rounds_.begin());
}

bool TfCommitCohort::has_pending(std::uint64_t round, const Block& partial) const {
  const auto it = rounds_.find(round);
  return it != rounds_.end() && it->second.partial == partial;
}

const TfCommitCohort::RoundState* TfCommitCohort::find_round(const Block& block) const {
  // The completed block differs from the stored partial exactly in the
  // fields the coordinator fills (decision, roots, cosign) — including an
  // equivocating coordinator's variants, which the caller must still
  // process (and refuse via the challenge check). Everything else
  // identifies the round, even when CoSi round ids are not block heights
  // (OrdServ group commit hands out epochs).
  const auto matches = [&](const RoundState& st) {
    return st.partial.height == block.height && st.partial.prev_hash == block.prev_hash &&
           st.partial.signers == block.signers && st.partial.txns == block.txns;
  };
  const auto it = rounds_.find(block.height);
  if (it != rounds_.end() && matches(it->second)) return &it->second;
  for (auto rit = rounds_.rbegin(); rit != rounds_.rend(); ++rit) {
    if (matches(rit->second)) return &rit->second;
  }
  return nullptr;
}

const Block* TfCommitCohort::partial_of(std::uint64_t round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? nullptr : &it->second.partial;
}

std::optional<crypto::AffinePoint> TfCommitCohort::term_commitment(
    std::uint64_t round) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return std::nullopt;
  return crypto::cosi_commit(*keypair_, it->second.partial.signing_bytes(),
                             term_round(round))
      .v;
}

ResponseMsg TfCommitCohort::handle_term_challenge(std::uint64_t round,
                                                  const ChallengeMsg& msg) {
  ResponseMsg resp;
  resp.cohort = id_;

  const auto it = rounds_.find(round);
  if (it == rounds_.end()) {
    resp.refused = true;
    resp.refusal_reason = "termination challenge for an unknown round";
    return resp;
  }
  const Block& mine = it->second.partial;
  if (msg.block.height != mine.height || !(msg.block.prev_hash == mine.prev_hash) ||
      !(msg.block.txns == mine.txns)) {
    // Signers legitimately shrink to the survivor set; nothing else may
    // differ from the opening this cohort received.
    resp.refused = true;
    resp.refusal_reason = "termination block does not match the opening I received";
    return resp;
  }
  if (msg.block.decision != Decision::kAbort) {
    // Only the coordinator path can justify a commit (it alone collects all
    // votes); a termination backup may never manufacture one.
    resp.refused = true;
    resp.refusal_reason = "termination block must carry an abort decision";
    return resp;
  }
  const crypto::U256 expected =
      crypto::cosi_challenge(msg.aggregate_commitment, msg.block.signing_bytes());
  if (!(expected == msg.challenge)) {
    resp.refused = true;
    resp.refusal_reason = "termination challenge does not match the block";
    return resp;
  }

  const crypto::CosiCommitment nonce = crypto::cosi_commit(
      *keypair_, it->second.partial.signing_bytes(), term_round(round));
  resp.sch_response = crypto::cosi_respond(*keypair_, nonce.secret, msg.challenge);
  return resp;
}

// --- Coordinator ------------------------------------------------------------

TfCommitCoordinator::TfCommitCoordinator(std::vector<ServerId> cohorts,
                                         std::vector<crypto::PublicKey> keys)
    : cohorts_(std::move(cohorts)), keys_(std::move(keys)) {}

Block TfCommitCoordinator::make_partial_block(std::uint64_t height,
                                              const crypto::Digest& prev_hash,
                                              std::vector<txn::Transaction> txns,
                                              std::vector<ServerId> signers) {
  Block b;
  b.height = height;
  b.prev_hash = prev_hash;
  b.txns = std::move(txns);
  b.signers = std::move(signers);
  b.decision = Decision::kAbort;  // filled in phase 3
  return b;
}

GetVoteMsg TfCommitCoordinator::start(Block partial_block,
                                      std::vector<SignedEndTxn> requests) {
  block_ = std::move(partial_block);
  commitments_.clear();
  GetVoteMsg msg;
  msg.partial_block = block_;
  msg.requests = std::move(requests);
  msg.round = block_.height;
  return msg;
}

std::vector<ChallengeMsg> TfCommitCoordinator::on_votes(std::span<const VoteMsg> votes,
                                                        const CoordinatorFaults& faults) {
  // 2PC decision rule: commit iff no involved cohort voted abort.
  bool all_commit = true;
  for (const auto& v : votes) {
    if (v.involved && v.vote == txn::Vote::kAbort) all_commit = false;
  }
  if (faults.force_commit) all_commit = true;

  block_.decision = all_commit ? Decision::kCommit : Decision::kAbort;
  block_.roots.clear();
  for (const auto& v : votes) {
    // Roots from cohorts that voted commit; on abort "the respective roots
    // will be missing in the block" (§4.3.1 phase 3).
    if (v.involved && v.root) block_.set_root(v.cohort, *v.root);
  }
  if (faults.fake_root_victim) {
    block_.set_root(*faults.fake_root_victim,
                    crypto::sha256(to_bytes("forged-root")));  // Scenario 2
  }

  commitments_.clear();
  commitments_.reserve(votes.size());
  for (const auto& v : votes) commitments_.push_back(v.sch_commitment);
  aggregate_v_ = crypto::cosi_aggregate_commitments(commitments_);
  challenge_ = crypto::cosi_challenge(aggregate_v_, block_.signing_bytes());

  ChallengeMsg honest;
  honest.challenge = challenge_;
  honest.aggregate_commitment = aggregate_v_;
  honest.block = block_;

  if (faults.equivocate == CoordinatorFaults::Equivocation::kNone) {
    // Broadcast: one message, every cohort receives the same bytes.
    std::vector<ChallengeMsg> out;
    out.push_back(std::move(honest));
    return out;
  }

  std::vector<ChallengeMsg> out(cohorts_.size(), honest);
  {
    // Build the conflicting abort variant b_a of the block (Lemma 5).
    Block abort_variant = block_;
    abort_variant.decision = Decision::kAbort;
    abort_variant.roots.clear();

    ChallengeMsg lie;
    lie.aggregate_commitment = aggregate_v_;
    lie.block = abort_variant;
    lie.challenge =
        faults.equivocate == CoordinatorFaults::Equivocation::kSameChallenge
            ? challenge_  // Case 1: challenge matches only the commit block
            : crypto::cosi_challenge(aggregate_v_, abort_variant.signing_bytes());  // Case 2

    for (const std::size_t victim : faults.equivocation_victims) {
      if (victim < out.size()) out[victim] = lie;
    }
  }
  return out;
}

TfCommitOutcome TfCommitCoordinator::on_responses(std::span<const ResponseMsg> responses) {
  TfCommitOutcome outcome;

  std::vector<crypto::U256> shares;
  shares.reserve(responses.size());
  bool any_refused = false;
  for (const auto& r : responses) {
    if (r.refused) {
      any_refused = true;
      outcome.refusals.emplace_back(r.cohort, r.refusal_reason);
    }
    shares.push_back(r.sch_response);
  }

  block_.cosign = crypto::CosiSignature{
      aggregate_v_, crypto::cosi_aggregate_responses(shares)};

  outcome.cosign_valid =
      !any_refused &&
      crypto::cosi_verify(block_.signing_bytes(), *block_.cosign, keys_);

  if (!outcome.cosign_valid) {
    // Lemma 4: binary-search-free attribution — check each share against its
    // commitment; the server(s) with invalid shares are the culprits. The
    // coordinator is incentivised to do this: an unverifiable block makes
    // the auditor suspect the coordinator itself.
    const auto faulty =
        crypto::cosi_find_faulty(commitments_, shares, challenge_, keys_);
    for (const std::size_t idx : faulty) outcome.faulty_cosigners.push_back(cohorts_[idx]);
  }

  outcome.decision = block_.decision;
  outcome.block = block_;
  return outcome;
}

std::vector<ServerId> involved_servers(const Block& block, std::uint32_t num_servers) {
  std::unordered_set<std::uint32_t> set;
  if (num_servers == 0) return {};
  for (const auto& t : block.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      set.insert(store::shard_for_item(item, num_servers).value);
    }
  }
  std::vector<ServerId> out;
  out.reserve(set.size());
  for (const std::uint32_t s : set) out.push_back(ServerId{s});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fides::commit
