#include "ledger/round_log.hpp"

#include <cstdio>

#include "common/serde.hpp"

namespace fides::ledger {

Bytes RoundRecord::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(epoch);
  w.u64(base);
  w.str(msg_type);
  w.bytes(payload);
  return std::move(w).take();
}

std::optional<RoundRecord> RoundRecord::decode(BytesView b) {
  try {
    Reader r(b);
    RoundRecord rec;
    const std::uint8_t t = r.u8();
    if (t != static_cast<std::uint8_t>(Type::kVote) &&
        t != static_cast<std::uint8_t>(Type::kDecision) &&
        t != static_cast<std::uint8_t>(Type::kResponse)) {
      return std::nullopt;
    }
    rec.type = static_cast<Type>(t);
    rec.epoch = r.u64();
    rec.base = r.u64();
    rec.msg_type = r.str();
    rec.payload = r.bytes();
    r.expect_done();
    return rec;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

crypto::Digest chain_record(const crypto::Digest& head, BytesView record_bytes) {
  Writer w;
  w.raw(head.view());
  w.raw(record_bytes);
  return crypto::sha256(w.data());
}

// --- MemRoundLog --------------------------------------------------------------

void MemRoundLog::append(const RoundRecord& record) {
  Entry e;
  e.bytes = record.encode();
  head_ = chain_record(head_, e.bytes);
  e.chain = head_;
  records_.push_back(std::move(e));
}

std::optional<std::vector<RoundRecord>> MemRoundLog::replay() const {
  std::vector<RoundRecord> out;
  out.reserve(records_.size());
  crypto::Digest chain;  // zero digest
  for (const Entry& e : records_) {
    chain = chain_record(chain, e.bytes);
    if (!(chain == e.chain)) return std::nullopt;
    auto rec = RoundRecord::decode(e.bytes);
    if (!rec) return std::nullopt;
    out.push_back(std::move(*rec));
  }
  return out;
}

void MemRoundLog::tamper(std::size_t i, std::size_t byte_offset) {
  if (i < records_.size() && byte_offset < records_[i].bytes.size()) {
    records_[i].bytes[byte_offset] ^= 0x01;
  }
}

// --- FileRoundLog -------------------------------------------------------------

FileRoundLog::FileRoundLog(std::string path) : path_(std::move(path)) {
  // Re-derive count and chain head from an existing file so appends continue
  // the chain across process restarts. A corrupt tail is surfaced at
  // replay() time, not here.
  if (const auto existing = replay()) {
    count_ = existing->size();
    crypto::Digest chain;
    for (const RoundRecord& rec : *existing) chain = chain_record(chain, rec.encode());
    head_ = chain;
  }
  // One append handle for the log's lifetime — append() sits on the
  // write-ahead path of every vote and decision, so no per-record open.
  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr) throw std::runtime_error("FileRoundLog: cannot open " + path_);
}

FileRoundLog::~FileRoundLog() {
  if (out_ != nullptr) std::fclose(out_);
}

void FileRoundLog::append(const RoundRecord& record) {
  const Bytes bytes = record.encode();
  head_ = chain_record(head_, bytes);

  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  unsigned char hdr[4] = {static_cast<unsigned char>(len & 0xFF),
                          static_cast<unsigned char>((len >> 8) & 0xFF),
                          static_cast<unsigned char>((len >> 16) & 0xFF),
                          static_cast<unsigned char>((len >> 24) & 0xFF)};
  bool ok = std::fwrite(hdr, 1, sizeof hdr, out_) == sizeof hdr;
  ok = ok && std::fwrite(bytes.data(), 1, bytes.size(), out_) == bytes.size();
  ok = ok && std::fwrite(head_.view().data(), 1, 32, out_) == 32;
  ok = std::fflush(out_) == 0 && ok;
  if (!ok) throw std::runtime_error("FileRoundLog: short write to " + path_);
  ++count_;
}

std::optional<std::vector<RoundRecord>> FileRoundLog::replay() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::vector<RoundRecord>{};  // no file yet: empty log

  std::vector<RoundRecord> out;
  crypto::Digest chain;
  bool ok = true;
  for (;;) {
    unsigned char hdr[4];
    const std::size_t got = std::fread(hdr, 1, sizeof hdr, f);
    if (got == 0) break;  // clean end of log
    if (got != sizeof hdr) {
      ok = false;
      break;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                              (static_cast<std::uint32_t>(hdr[1]) << 8) |
                              (static_cast<std::uint32_t>(hdr[2]) << 16) |
                              (static_cast<std::uint32_t>(hdr[3]) << 24);
    if (len > (1u << 28)) {  // implausible record: corrupt length field
      ok = false;
      break;
    }
    Bytes bytes(len);
    unsigned char stored[32];
    if (std::fread(bytes.data(), 1, len, f) != len ||
        std::fread(stored, 1, 32, f) != 32) {
      ok = false;
      break;
    }
    chain = chain_record(chain, bytes);
    if (!std::equal(stored, stored + 32, chain.view().begin())) {
      ok = false;
      break;
    }
    auto rec = RoundRecord::decode(bytes);
    if (!rec) {
      ok = false;
      break;
    }
    out.push_back(std::move(*rec));
  }
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace fides::ledger
