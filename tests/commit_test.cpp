// Tests for TFCommit (§4.3) and the 2PC baseline, driven directly through
// the protocol state machines: happy paths, abort paths, every Byzantine
// deviation of Lemmas 4 & 5 and Scenario 2, and batching (§4.6).
#include <gtest/gtest.h>

#include "commit/batch.hpp"
#include "commit/tfcommit.hpp"
#include "commit/two_phase_commit.hpp"

namespace fides::commit {
namespace {

constexpr std::uint32_t kServers = 4;

/// Minimal in-test harness: N shards + cohorts + a coordinator, no cluster.
class TfCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint32_t i = 0; i < kServers; ++i) {
      keypairs.push_back(crypto::KeyPair::deterministic(i));
      keys.push_back(keypairs.back().public_key());
      shards.push_back(std::make_unique<store::Shard>(
          ShardId{i}, store::items_for_shard(ShardId{i}, kServers, 16),
          to_bytes("init"), store::VersioningMode::kSingle));
      cohort_ids.push_back(ServerId{i});
    }
    for (std::uint32_t i = 0; i < kServers; ++i) {
      cohorts.push_back(std::make_unique<TfCommitCohort>(ServerId{i}, keypairs[i],
                                                         *shards[i]));
    }
  }

  txn::Transaction make_txn(std::uint64_t ts, std::vector<ItemId> items) {
    txn::Transaction t;
    t.id = TxnId{0, ts};
    t.commit_ts = Timestamp{ts, 0};
    for (const ItemId item : items) {
      const auto& shard = *shards[item % kServers];
      const auto& rec = shard.peek(item);
      t.rw.reads.push_back(txn::ReadEntry{item, rec.value, rec.rts, rec.wts});
      t.rw.writes.push_back(txn::WriteEntry{
          item, to_bytes("w" + std::to_string(ts) + "-" + std::to_string(item)),
          std::nullopt, rec.rts, rec.wts});
    }
    return t;
  }

  /// Runs one full round; faults are per-cohort plus coordinator faults.
  TfCommitOutcome run_round(std::vector<txn::Transaction> txns,
                            const std::vector<CohortFaults>& cohort_faults = {},
                            const CoordinatorFaults& coord_faults = {}) {
    TfCommitCoordinator coordinator(cohort_ids, keys);
    Block partial = TfCommitCoordinator::make_partial_block(
        round_, prev_hash_, std::move(txns), cohort_ids);
    const GetVoteMsg get_vote = coordinator.start(std::move(partial), {});

    std::vector<VoteMsg> votes;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      const CohortFaults f =
          i < cohort_faults.size() ? cohort_faults[i] : CohortFaults{};
      votes.push_back(cohorts[i]->handle_get_vote(get_vote, f));
    }
    const auto challenges = coordinator.on_votes(votes, coord_faults);
    std::vector<ResponseMsg> responses;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      const CohortFaults f =
          i < cohort_faults.size() ? cohort_faults[i] : CohortFaults{};
      const std::size_t slot = challenges.size() == 1 ? 0 : i;
      responses.push_back(cohorts[i]->handle_challenge(challenges[slot], f));
    }
    const TfCommitOutcome outcome = coordinator.on_responses(responses);
    if (outcome.cosign_valid) {
      prev_hash_ = outcome.block.digest();
      ++round_;
    }
    return outcome;
  }

  std::vector<crypto::KeyPair> keypairs;
  std::vector<crypto::PublicKey> keys;
  std::vector<std::unique_ptr<store::Shard>> shards;
  std::vector<std::unique_ptr<TfCommitCohort>> cohorts;
  std::vector<ServerId> cohort_ids;
  std::uint64_t round_{0};
  crypto::Digest prev_hash_ = crypto::Digest::zero();
};

TEST_F(TfCommitTest, HappyPathCommitsWithValidCosign) {
  const auto outcome = run_round({make_txn(1, {0, 1, 2})});
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_TRUE(outcome.cosign_valid);
  EXPECT_TRUE(outcome.refusals.empty());
  EXPECT_TRUE(crypto::cosi_verify(outcome.block.signing_bytes(),
                                  *outcome.block.cosign, keys));
}

TEST_F(TfCommitTest, CommitBlockCarriesRootsOfInvolvedServers) {
  const auto outcome = run_round({make_txn(1, {0, 1})});  // servers 0 and 1
  EXPECT_NE(outcome.block.root_of(ServerId{0}), nullptr);
  EXPECT_NE(outcome.block.root_of(ServerId{1}), nullptr);
  EXPECT_EQ(outcome.block.root_of(ServerId{2}), nullptr);  // uninvolved
  EXPECT_EQ(outcome.block.root_of(ServerId{3}), nullptr);
}

TEST_F(TfCommitTest, RootsMatchHypotheticalShardState) {
  const txn::Transaction t = make_txn(1, {0});
  const auto outcome = run_round({t});
  std::vector<std::pair<ItemId, Bytes>> writes;
  for (const auto& w : t.rw.writes) writes.emplace_back(w.id, w.new_value);
  EXPECT_EQ(*outcome.block.root_of(ServerId{0}), shards[0]->root_after(writes));
}

TEST_F(TfCommitTest, VetoAbortsWholeBlockButStillSigns) {
  std::vector<CohortFaults> faults(kServers);
  faults[1].always_vote_abort = true;
  const auto outcome = run_round({make_txn(1, {0, 1, 2})}, faults);
  EXPECT_EQ(outcome.decision, Decision::kAbort);
  // "Even an aborted transaction must be signed by all the servers."
  EXPECT_TRUE(outcome.cosign_valid);
  // "If any involved cohorts chose abort, the respective roots will be
  // missing in the block."
  EXPECT_EQ(outcome.block.root_of(ServerId{1}), nullptr);
}

TEST_F(TfCommitTest, UninvolvedServersStillCosign) {
  const auto outcome = run_round({make_txn(1, {0})});  // only server 0 involved
  EXPECT_TRUE(outcome.cosign_valid);
  EXPECT_EQ(outcome.block.signers.size(), kServers);
}

TEST_F(TfCommitTest, StaleTransactionAborts) {
  // Commit ts 5 first, then try ts 3 touching the same item: OCC aborts.
  ASSERT_EQ(run_round({make_txn(5, {0})}).decision, Decision::kCommit);
  for (std::uint32_t i = 0; i < kServers; ++i) {
    // Apply the committed block to shards (normally the server does this).
    txn::apply_committed(*shards[i], make_txn(5, {0}));
  }
  const auto outcome = run_round({make_txn(3, {0})});
  EXPECT_EQ(outcome.decision, Decision::kAbort);
}

// --- Lemma 4: wrong CoSi values are attributed to the exact server ------------

TEST_F(TfCommitTest, CorruptResponseIdentified) {
  std::vector<CohortFaults> faults(kServers);
  faults[2].corrupt_sch_response = true;
  const auto outcome = run_round({make_txn(1, {0, 1})}, faults);
  EXPECT_FALSE(outcome.cosign_valid);
  ASSERT_EQ(outcome.faulty_cosigners.size(), 1u);
  EXPECT_EQ(outcome.faulty_cosigners[0], ServerId{2});
}

TEST_F(TfCommitTest, CorruptCommitmentIdentified) {
  std::vector<CohortFaults> faults(kServers);
  faults[3].corrupt_sch_commitment = true;
  const auto outcome = run_round({make_txn(1, {0})}, faults);
  EXPECT_FALSE(outcome.cosign_valid);
  ASSERT_EQ(outcome.faulty_cosigners.size(), 1u);
  EXPECT_EQ(outcome.faulty_cosigners[0], ServerId{3});
}

TEST_F(TfCommitTest, MultipleCorruptCosignersAllIdentified) {
  std::vector<CohortFaults> faults(kServers);
  faults[1].corrupt_sch_response = true;
  faults[3].corrupt_sch_response = true;
  const auto outcome = run_round({make_txn(1, {0})}, faults);
  EXPECT_FALSE(outcome.cosign_valid);
  EXPECT_EQ(outcome.faulty_cosigners,
            (std::vector<ServerId>{ServerId{1}, ServerId{3}}));
}

// --- Scenario 2: fake Merkle root in the block ---------------------------------

TEST_F(TfCommitTest, FakeRootRefusedByVictim) {
  CoordinatorFaults coord;
  coord.fake_root_victim = ServerId{1};
  const auto outcome = run_round({make_txn(1, {0, 1})}, {}, coord);
  EXPECT_FALSE(outcome.cosign_valid);
  bool victim_refused = false;
  for (const auto& [server, reason] : outcome.refusals) {
    if (server == ServerId{1}) {
      victim_refused = true;
      EXPECT_NE(reason.find("root"), std::string::npos);
    }
  }
  EXPECT_TRUE(victim_refused);
}

TEST_F(TfCommitTest, FakeRootWithCollusionSignsButLeavesEvidence) {
  // If the victim colludes (skips its root check), the block signs — and the
  // forged root is now permanently bound to the co-sign, which is exactly
  // what the datastore audit (Lemma 2) will later catch.
  CoordinatorFaults coord;
  coord.fake_root_victim = ServerId{1};
  std::vector<CohortFaults> faults(kServers);
  faults[1].skip_root_check = true;
  const auto outcome = run_round({make_txn(1, {0, 1})}, faults, coord);
  EXPECT_TRUE(outcome.cosign_valid);
  EXPECT_EQ(*outcome.block.root_of(ServerId{1}),
            crypto::sha256(to_bytes("forged-root")));
}

// --- Lemma 5: coordinator equivocation ------------------------------------------

TEST_F(TfCommitTest, EquivocationSameChallengeDetectedByVictims) {
  // Case 1: same challenge, different blocks. Victims recompute the
  // challenge over the block they received and refuse.
  CoordinatorFaults coord;
  coord.equivocate = CoordinatorFaults::Equivocation::kSameChallenge;
  coord.equivocation_victims = {2, 3};
  const auto outcome = run_round({make_txn(1, {0, 1, 2, 3})}, {}, coord);
  EXPECT_FALSE(outcome.cosign_valid);
  EXPECT_GE(outcome.refusals.size(), 2u);
}

TEST_F(TfCommitTest, EquivocationMatchingChallengesProducesInvalidCosign) {
  // Case 2: per-block consistent challenges. No cohort can object locally,
  // but the aggregate responses mix two challenges, so the final signature
  // corresponds to neither block.
  CoordinatorFaults coord;
  coord.equivocate = CoordinatorFaults::Equivocation::kMatchingChallenges;
  coord.equivocation_victims = {3};
  const auto outcome = run_round({make_txn(1, {0, 1, 2, 3})}, {}, coord);
  EXPECT_FALSE(outcome.cosign_valid);
  EXPECT_TRUE(outcome.refusals.empty());  // nobody could tell locally...
  // ...but the aggregate exposes it, and share verification localizes the
  // inconsistency to the equivocation victim's challenge domain.
  EXPECT_FALSE(outcome.faulty_cosigners.empty());
}

TEST_F(TfCommitTest, ForceCommitOverAbortVoteRefused) {
  // Atomicity attack: coordinator declares commit although a cohort voted
  // abort. The vetoing cohort's root is missing and it refuses to co-sign.
  std::vector<CohortFaults> faults(kServers);
  faults[0].always_vote_abort = true;
  CoordinatorFaults coord;
  coord.force_commit = true;
  const auto outcome = run_round({make_txn(1, {0, 1})}, faults, coord);
  EXPECT_FALSE(outcome.cosign_valid);
  bool vetoer_refused = false;
  for (const auto& [server, reason] : outcome.refusals) {
    vetoer_refused |= server == ServerId{0};
  }
  EXPECT_TRUE(vetoer_refused);
}

// --- Batching (§4.6) -------------------------------------------------------------

TEST_F(TfCommitTest, BatchedBlockCommitsManyTransactions) {
  std::vector<txn::Transaction> batch;
  for (std::uint64_t i = 0; i < 8; ++i) {
    batch.push_back(make_txn(i + 1, {i * 2}));  // disjoint items
  }
  const auto outcome = run_round(std::move(batch));
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_EQ(outcome.block.txns.size(), 8u);
}

class BatchBuilderTest : public ::testing::Test {
 protected:
  SignedEndTxn make(std::uint64_t seq, std::vector<ItemId> items) {
    SignedEndTxn s;
    s.request.txn.id = TxnId{0, seq};
    s.request.txn.commit_ts = Timestamp{seq, 0};
    for (const ItemId i : items) {
      s.request.txn.rw.writes.push_back(
          txn::WriteEntry{i, to_bytes("v"), std::nullopt, {}, {}});
    }
    return s;
  }
};

TEST_F(BatchBuilderTest, ConflictingTxnDeferredToNextBatch) {
  BatchBuilder builder(10);
  builder.enqueue(make(1, {5}));
  builder.enqueue(make(2, {5}));  // conflicts with txn 1
  builder.enqueue(make(3, {7}));

  const auto first = builder.next_batch();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].request.txn.id.seq, 1u);
  EXPECT_EQ(first[1].request.txn.id.seq, 3u);

  const auto second = builder.next_batch();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request.txn.id.seq, 2u);
  EXPECT_TRUE(builder.empty());
}

TEST_F(BatchBuilderTest, RespectsMaxBatchSize) {
  BatchBuilder builder(3);
  for (std::uint64_t i = 0; i < 7; ++i) builder.enqueue(make(i, {i}));
  EXPECT_EQ(builder.next_batch().size(), 3u);
  EXPECT_EQ(builder.next_batch().size(), 3u);
  EXPECT_EQ(builder.next_batch().size(), 1u);
}

// --- 2PC baseline ----------------------------------------------------------------

class TwoPcTest : public TfCommitTest {};

TEST_F(TwoPcTest, HappyPathCommits) {
  TwoPhaseCommitCoordinator coordinator(cohort_ids);
  Block partial = TfCommitCoordinator::make_partial_block(
      0, crypto::Digest::zero(), {make_txn(1, {0, 1})}, cohort_ids);
  const PrepareMsg prepare = coordinator.start(std::move(partial), {});

  std::vector<TwoPhaseCommitCohort> tpc;
  for (std::uint32_t i = 0; i < kServers; ++i) tpc.emplace_back(ServerId{i}, *shards[i]);
  std::vector<PrepareVoteMsg> votes;
  for (auto& c : tpc) votes.push_back(c.handle_prepare(prepare));

  const auto outcome = coordinator.on_votes(votes);
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_FALSE(outcome.block.cosign.has_value());  // trusted: no co-sign
  EXPECT_TRUE(outcome.block.roots.empty());        // trusted: no Merkle roots
}

TEST_F(TwoPcTest, AnyAbortVoteAborts) {
  TwoPhaseCommitCoordinator coordinator(cohort_ids);
  // Make server 1's item stale so it votes abort.
  shards[1]->apply_write(1, to_bytes("newer"), Timestamp{50, 0});
  Block partial = TfCommitCoordinator::make_partial_block(
      0, crypto::Digest::zero(), {make_txn(1, {0, 1})}, cohort_ids);
  const PrepareMsg prepare = coordinator.start(std::move(partial), {});
  std::vector<TwoPhaseCommitCohort> tpc;
  for (std::uint32_t i = 0; i < kServers; ++i) tpc.emplace_back(ServerId{i}, *shards[i]);
  std::vector<PrepareVoteMsg> votes;
  for (auto& c : tpc) votes.push_back(c.handle_prepare(prepare));
  EXPECT_EQ(coordinator.on_votes(votes).decision, Decision::kAbort);
}

}  // namespace
}  // namespace fides::commit
