// Figure 15 — varying data items per shard (§6.4).
//
// Sweep: 5 servers, 100 transactions per block, 1000..10000 items per shard.
// Paper result: latency +~15%, throughput -~14% as shards grow (deeper
// Merkle trees: updating a leaf touches ~10 nodes at 1k items, ~14 at 10k).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::print_header(
      "Figure 15: items per shard, 5 servers, 100 txns/block",
      "latency rises ~15%, throughput falls ~14%, 1k -> 10k items/shard");

  bench::BenchReport report("fig15_items_per_shard");
  bench::stamp_config(report);

  std::printf("%-14s %-14s %-14s %-16s %-10s %-14s\n", "items/shard", "latency_ms",
              "measured_ms", "throughput_tps", "p99_ms", "mht_update_ms");

  for (std::uint32_t items = 1000; items <= 10000; items += 1000) {
    workload::ExperimentConfig cfg;
    cfg.cluster.num_servers = 5;
    cfg.cluster.items_per_shard = items;
    cfg.cluster.max_batch_size = 100;
    cfg.txns_per_block = 100;
    const auto r = bench::run_point(cfg);
    std::printf("%-14u %-14.2f %-14.2f %-16.0f %-10.2f %-14.4f\n", items,
                r.avg_latency_ms, r.avg_measured_ms, r.throughput_tps, r.p99_ms,
                r.avg_mht_ms);
    bench::add_experiment_point(report, "items" + std::to_string(items), r);
  }
  bench::finish_report(report, argc, argv);
  return 0;
}
