#include "crypto/cosi.hpp"

#include "common/serde.hpp"

namespace fides::crypto {

Bytes CosiSignature::serialize() const {
  Writer w;
  w.bytes(v.serialize());
  const auto rb = r.to_bytes_be();
  w.raw(BytesView(rb.data(), rb.size()));
  return std::move(w).take();
}

std::optional<CosiSignature> CosiSignature::deserialize(BytesView b) {
  try {
    Reader rd(b);
    const Bytes vb = rd.bytes();
    const Bytes rb = rd.raw(32);
    rd.expect_done();
    const auto point = AffinePoint::deserialize(vb);
    if (!point) return std::nullopt;
    CosiSignature sig;
    sig.v = *point;
    sig.r = U256::from_bytes_be(rb);
    return sig;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

CosiCommitment cosi_commit(const KeyPair& kp, BytesView record, std::uint64_t round) {
  const Curve& curve = Curve::instance();
  const auto skb = kp.secret_key().to_bytes_be();
  for (std::uint8_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.update(to_bytes("cosi-nonce"));
    h.update(BytesView(skb.data(), skb.size()));
    h.update(record);
    Writer w;
    w.u64(round);
    w.u8(ctr);
    h.update(w.data());
    const U256 v = scalar_from_digest(h.finalize());
    if (v.is_zero()) continue;
    return CosiCommitment{v, curve.to_affine(curve.mul_g(v))};
  }
}

AffinePoint cosi_aggregate_commitments(std::span<const AffinePoint> commitments) {
  const Curve& curve = Curve::instance();
  Point acc = curve.infinity();
  for (const auto& c : commitments) acc = curve.add(acc, curve.from_affine(c));
  return curve.to_affine(acc);
}

U256 cosi_challenge(const AffinePoint& aggregate_v, BytesView record) {
  Sha256 h;
  h.update(aggregate_v.serialize());
  h.update(record);
  return scalar_from_digest(h.finalize());
}

U256 cosi_respond(const KeyPair& kp, const U256& secret, const U256& challenge) {
  const auto& fn = Curve::instance().fn();
  const Fe r = fn.add(fn.to_mont(secret),
                      fn.mul(fn.to_mont(challenge), fn.to_mont(kp.secret_key())));
  return fn.from_mont(r);
}

U256 cosi_aggregate_responses(std::span<const U256> responses) {
  const auto& fn = Curve::instance().fn();
  Fe acc = fn.zero();
  for (const auto& r : responses) acc = fn.add(acc, fn.to_mont(r));
  return fn.from_mont(acc);
}

bool cosi_verify(BytesView record, const CosiSignature& sig,
                 std::span<const PublicKey> public_keys) {
  const Curve& curve = Curve::instance();
  if (public_keys.empty()) return false;
  if (!curve.on_curve(sig.v)) return false;
  if (!u256_less(sig.r, curve.order())) return false;

  Point x_agg = curve.infinity();
  for (const auto& pk : public_keys) {
    if (pk.point.infinity || !curve.on_curve(pk.point)) return false;
    x_agg = curve.add(x_agg, curve.from_affine(pk.point));
  }
  // r·G == V + c·X rearranged to r·G + (n-c)·X == V: one joint ladder.
  const U256 c = cosi_challenge(sig.v, record);
  const auto& fn = curve.fn();
  const U256 neg_c = fn.from_mont(fn.neg(fn.to_mont(c)));
  const Point lhs = curve.mul_add(sig.r, neg_c, x_agg);
  return curve.equal(lhs, curve.from_affine(sig.v));
}

bool cosi_verify_share(const AffinePoint& commitment, const U256& response,
                       const U256& challenge, const PublicKey& pk) {
  const Curve& curve = Curve::instance();
  if (!curve.on_curve(commitment) || !curve.on_curve(pk.point)) return false;
  if (!u256_less(response, curve.order())) return false;  // msm precondition
  const auto& fn = curve.fn();
  const U256 neg_c = fn.from_mont(fn.neg(fn.to_mont(challenge)));
  const Point lhs = curve.mul_add(response, neg_c, curve.from_affine(pk.point));
  return curve.equal(lhs, curve.from_affine(commitment));
}

std::vector<std::size_t> cosi_find_faulty(std::span<const AffinePoint> commitments,
                                          std::span<const U256> responses,
                                          const U256& challenge,
                                          std::span<const PublicKey> public_keys) {
  std::vector<std::size_t> faulty;
  // A witness controls only its own share: mismatched span lengths mean the
  // *caller* assembled the round wrong, and indexing past the shorter spans
  // would read out of range. Treat every slot as unattested rather than
  // guessing which spans line up.
  if (responses.size() != commitments.size() || public_keys.size() != commitments.size()) {
    faulty.resize(commitments.size());
    for (std::size_t i = 0; i < faulty.size(); ++i) faulty[i] = i;
    return faulty;
  }
  for (std::size_t i = 0; i < commitments.size(); ++i) {
    if (!cosi_verify_share(commitments[i], responses[i], challenge, public_keys[i])) {
      faulty.push_back(i);
    }
  }
  return faulty;
}

}  // namespace fides::crypto
