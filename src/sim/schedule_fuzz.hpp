// Seeded schedule fuzzing of TFCommit/2PC rounds over SimNet.
//
// One seed = one fully determined scenario: cluster shape, network fault
// profile (delays, loss, duplication, reorder, partition window), an
// optional Byzantine deviation from the existing FaultConfig menu, and the
// message schedule itself. run_schedule executes the scenario and checks
// the paper's safety story as machine invariants:
//
//   * Agreement  — every honest server ends with the same log (sizes, head
//     hashes, per-block digests), no matter how the schedule interleaved.
//   * Durability — no committed transaction is lost: the last committed
//     write of every item is present in the owning honest server's store.
//   * Detection  — every injected Byzantine deviation leaves evidence:
//     commit-layer faults surface in-round (invalid co-sign, attributed
//     faulty cosigners, refusals — Lemmas 4 & 5); data/log-layer faults are
//     flagged by the auditor (Lemmas 1, 2, 6, 7).
//   * Honest runs audit clean (no false accusations), and a checkpoint
//     co-sign forms whenever all honest logs agree.
//
// Determinism: two calls with the same seed produce identical trace hashes,
// decisions, and result hashes — so any failure reproduces from the one
// seed printed by the runner (FIDES_SIM_SEED workflow, see README).
#pragma once

#include <string>

#include "crypto/sha256.hpp"

namespace fides::sim {

struct FuzzOutcome {
  std::uint64_t seed{0};
  bool ok{true};
  std::string failure;   ///< first violated invariant (empty when ok)
  std::string scenario;  ///< human-readable description of the scenario

  crypto::Digest trace_hash;   ///< SimNet event trace (schedule identity)
  crypto::Digest result_hash;  ///< decisions + honest ledger fingerprint

  bool byzantine{false};  ///< a Byzantine deviation was injected
  bool detected{false};   ///< the deviation left the expected evidence

  bool crashed{false};     ///< a crash/recover cycle was injected
  bool terminated{false};  ///< a round finished via cohort-driven termination

  bool speculative{false};     ///< the scenario ran with speculative voting on
  std::size_t spec_revotes{0}; ///< mis-speculated vote variants discarded
};

struct FuzzOptions {
  /// Force a pipelined scenario (pipeline_depth in 2..4) even for seeds
  /// that would organically draw depth 1 — the pipelined smoke sweep. The
  /// agreement/durability/detection oracles are unchanged: pipelining must
  /// be invisible to every safety property.
  bool force_pipeline{false};

  /// Add a seeded crash/recover cycle to every scenario: one server loses
  /// all volatile state at a drawn virtual time and restores from its
  /// durable round log after a drawn downtime — composable with the
  /// existing network faults and Byzantine deviations. Coordinator crashes
  /// under TFCommit sometimes arm the cooperative-termination timeout. The
  /// oracles gain: recovered servers agree bit-for-bit with survivors, no
  /// committed write is lost across the crash, and no server ever sends two
  /// different votes for one round (vote-once across restarts).
  bool with_crash{false};

  /// Force ClusterConfig::speculate on for every TFCommit scenario (with
  /// pipeline_depth drawn from 2..8). Without it, speculation is still a
  /// fuzzed dimension — roughly half of the TFCommit seeds draw it, with
  /// depth 1..8 and an extra abort-heavy scripted stream that reliably
  /// forces mis-speculated bases and re-votes. The oracles are unchanged:
  /// speculation must be invisible to every safety property.
  bool force_speculation{false};
};

/// Executes the scenario derived from `seed` and checks all invariants.
FuzzOutcome run_schedule(std::uint64_t seed, const FuzzOptions& options = {});

}  // namespace fides::sim
