#include "sim/schedule_fuzz.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "audit/auditor.hpp"
#include "common/rng.hpp"
#include "ordserv/group_engine.hpp"
#include "sim/simnet.hpp"
#include "workload/ycsb.hpp"

namespace fides::sim {

namespace {

/// The Byzantine deviation menu, one layer at a time — each entry maps to a
/// lemma or §5 scenario and to the evidence the harness demands.
enum class Fault : std::uint8_t {
  kNone,
  kReadGarbage,         // Lemma 1 / Scenario 1
  kReadStale,           // Lemma 1 / Figure 10
  kSkipWrite,           // Lemma 2 / Scenario 3
  kCorruptAfterCommit,  // Lemma 2
  kCorruptCommitment,   // Lemma 4
  kCorruptResponse,     // Lemma 4
  kVoteAbort,           // griefing veto (legal but visible: nothing commits)
  kEquivSame,           // Lemma 5 case 1
  kEquivMatching,       // Lemma 5 case 2
  kFakeRoot,            // Scenario 2
  kForceCommit,         // atomicity attack (Lemma 5)
  kTamperLog,           // Lemma 6
  kTruncateLog,         // Lemma 7
  kCount_,
};

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kReadGarbage: return "read-garbage";
    case Fault::kReadStale: return "read-stale";
    case Fault::kSkipWrite: return "skip-write";
    case Fault::kCorruptAfterCommit: return "corrupt-after-commit";
    case Fault::kCorruptCommitment: return "corrupt-sch-commitment";
    case Fault::kCorruptResponse: return "corrupt-sch-response";
    case Fault::kVoteAbort: return "always-vote-abort";
    case Fault::kEquivSame: return "equivocate-same-challenge";
    case Fault::kEquivMatching: return "equivocate-matching-challenges";
    case Fault::kFakeRoot: return "fake-root";
    case Fault::kForceCommit: return "force-commit";
    case Fault::kTamperLog: return "tamper-log";
    case Fault::kTruncateLog: return "truncate-log";
    case Fault::kCount_: break;
  }
  return "?";
}

bool is_coordinator_fault(Fault f) {
  return f == Fault::kEquivSame || f == Fault::kEquivMatching ||
         f == Fault::kFakeRoot || f == Fault::kForceCommit;
}

/// Faults whose evidence the auditor produces (as opposed to in-round
/// metrics). These leave a committed history behind, so the audit has
/// blocks to replay.
bool is_audit_fault(Fault f) {
  return f == Fault::kReadGarbage || f == Fault::kReadStale ||
         f == Fault::kSkipWrite || f == Fault::kCorruptAfterCommit ||
         f == Fault::kTamperLog || f == Fault::kTruncateLog;
}

commit::SignedEndTxn scripted_txn(Cluster& cluster, Client& client,
                                  const std::vector<ItemId>& items,
                                  const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

struct Scenario {
  ClusterConfig cfg;
  Fault fault{Fault::kNone};
  std::uint32_t culprit{0};
  bool crash{false};
  std::uint32_t crash_victim{0};
  /// §4.6 group-mode dimension: the scripted history runs as group-local
  /// TFCommit rounds through the engine-routed multi-coordinator dispatch
  /// (ordserv::run_group_rounds) and an OrdServ stream, instead of global
  /// pipelined rounds.
  bool group{false};
  std::string description;
};

Scenario derive_scenario(std::uint64_t seed, const FuzzOptions& options) {
  const bool force_pipeline = options.force_pipeline;
  // Independent stream from SimNet's (which gets its own derived seed), so
  // scenario shape and schedule don't alias.
  Rng rng(seed ^ 0x51AF'F00D'5EED'F00DULL);
  Scenario s;

  ClusterConfig& cfg = s.cfg;
  cfg.num_servers = 3 + static_cast<std::uint32_t>(rng.uniform(4));  // 3..6
  cfg.items_per_shard = 24;
  cfg.max_batch_size = 8;
  cfg.num_threads = 1 + static_cast<std::uint32_t>(rng.uniform(2));
  // A fraction of seeds run the noise phase with blocks in flight; the
  // safety oracles are depth-oblivious, so pipelining must change nothing
  // they can see.
  cfg.pipeline_depth = 1 + static_cast<std::uint32_t>(rng.uniform(4));  // 1..4
  if (rng.uniform01() < 0.55 && !force_pipeline) cfg.pipeline_depth = 1;
  if (force_pipeline && cfg.pipeline_depth == 1) cfg.pipeline_depth = 2;
  cfg.seed = seed;
  // Batched (RLC-aggregate) signature opens on half the seeds. Derived from
  // seed parity rather than an rng draw so the existing draw stream — and
  // therefore every previously minimized repro seed — keeps its shape. The
  // detection oracles below are blind to this flag: attribution of
  // bad-signature faults must stay at 100% either way.
  cfg.batch_verify = (seed & 1) != 0;
  cfg.versioning = rng.uniform(2) == 0 ? store::VersioningMode::kSingle
                                       : store::VersioningMode::kMulti;
  cfg.network.mode = NetworkMode::kSimulated;

  SimNetConfig& net = cfg.network.sim;
  net.seed = seed * 0x9E37'79B9'7F4A'7C15ULL + 0xD1B5'4A32'D192'ED03ULL;
  net.link.min_delay_us = 10 + rng.uniform01() * 90;
  net.link.max_delay_us = net.link.min_delay_us + rng.uniform01() * 600;
  net.link.drop_prob = rng.uniform01() < 0.5 ? rng.uniform01() * 0.3 : 0.0;
  net.link.dup_prob = rng.uniform01() < 0.5 ? rng.uniform01() * 0.25 : 0.0;
  net.link.reorder_prob = rng.uniform01() < 0.5 ? rng.uniform01() * 0.5 : 0.0;
  net.link.reorder_extra_us = 200 + rng.uniform01() * 2000;
  bool partitioned = false;
  if (rng.uniform01() < 0.35) {
    Partition p;
    p.start_us = rng.uniform01() * 1500;
    p.heal_us = p.start_us + 200 + rng.uniform01() * 3000;
    for (std::uint32_t i = 0; i < cfg.num_servers; ++i) {
      if (rng.uniform(2) == 0) p.island.push_back(i);
    }
    if (p.island.empty()) p.island.push_back(static_cast<std::uint32_t>(
        rng.uniform(cfg.num_servers)));
    if (p.island.size() == cfg.num_servers) p.island.pop_back();
    net.partitions.push_back(std::move(p));
    partitioned = true;
  }

  const bool use_2pc = rng.uniform(5) == 0;
  cfg.protocol = use_2pc ? Protocol::kTwoPhaseCommit : Protocol::kTfCommit;

  // Speculative voting is a fuzzed dimension of its own (TFCommit only):
  // about half the seeds run with the opening gate dropped and pipeline
  // depth pushed to 1..8 — composed with every network fault, Byzantine
  // deviation, and crash cycle below.
  const bool draw_spec = rng.uniform(2) == 0;
  if (!use_2pc && (draw_spec || options.force_speculation)) {
    cfg.speculate = true;
    cfg.pipeline_depth = 1 + static_cast<std::uint32_t>(rng.uniform(8));  // 1..8
    if (options.force_speculation && cfg.pipeline_depth == 1) cfg.pipeline_depth = 2;
  }

  // Group-mode dimension (§4.6): a quarter of the TFCommit seeds run their
  // scripted history as group-local rounds through the engine-routed
  // multi-coordinator dispatch. Derived from seed bits, not an rng draw, so
  // the existing draw stream — and every minimized repro seed — keeps its
  // shape.
  s.group = !use_2pc && ((seed >> 1) & 3) == 3;

  // Byzantine deviations exist in the TFCommit stack only; 2PC schedules
  // fuzz the network dimension alone.
  if (!use_2pc && rng.uniform01() < 0.65) {
    s.fault = static_cast<Fault>(
        1 + rng.uniform(static_cast<std::uint64_t>(Fault::kCount_) - 1));
  }
  if (s.group && s.fault != Fault::kNone && s.fault != Fault::kCorruptCommitment &&
      s.fault != Fault::kCorruptResponse && s.fault != Fault::kVoteAbort) {
    // Group rounds exercise the cohort-layer menu: the coordinator faults are
    // per-round volatile state the multi-coordinator dispatch does not model,
    // and log faults would tamper a stream the delivery validator owns. Remap
    // deterministically so the group dimension still sees every cohort fault.
    static constexpr Fault kGroupMenu[] = {Fault::kCorruptCommitment,
                                           Fault::kCorruptResponse, Fault::kVoteAbort};
    s.fault = kGroupMenu[static_cast<std::uint8_t>(s.fault) % 3];
  }
  // Faults that rely on version history need the multi-versioned store.
  if (s.fault == Fault::kReadStale || s.fault == Fault::kCorruptAfterCommit) {
    cfg.versioning = store::VersioningMode::kMulti;
  }
  s.culprit = is_coordinator_fault(s.fault)
                  ? 0
                  : static_cast<std::uint32_t>(rng.uniform(cfg.num_servers));

  // Crash/recover cycle (--crash): one server dies at a drawn virtual time
  // and restores from its durable round log after a drawn downtime. The
  // cycle composes with the scenario's network faults and (non-colliding)
  // Byzantine deviation; Byzantine victims are avoided because a crash
  // would *heal* a corrupted store or tampered log and the detection
  // oracles would then rightly complain about missing evidence.
  double term_timeout = 0;
  if (options.with_crash) {
    s.crash = true;
    s.crash_victim = static_cast<std::uint32_t>(rng.uniform(cfg.num_servers));
    if (s.fault != Fault::kNone && s.crash_victim == s.culprit) {
      s.crash_victim = (s.crash_victim + 1) % cfg.num_servers;
    }
    CrashFault cf;
    cf.server = s.crash_victim;
    cf.at_us = 50 + rng.uniform01() * 2500;
    cf.downtime_us = 500 + rng.uniform01() * 5000;
    if (s.crash_victim == 0 && !use_2pc && !s.group && s.fault == Fault::kNone &&
        rng.uniform(2) == 0) {
      // (Group-mode rounds restart a dead coordinator deterministically
      // instead of arming cohort-driven termination, so the timeout knob
      // stays off for group seeds.)
      // Coordinator death: half the fault-free seeds arm cohort-driven
      // termination (fires iff the coordinator is still down when the probe
      // pops). Byzantine scenarios keep the pure restart path: termination
      // aborts the scripted rounds, and an aborted history carries no
      // committed evidence for the detection oracles to find.
      term_timeout = 300 + rng.uniform01() * 0.8 * cf.downtime_us;
      cfg.termination_timeout_us = term_timeout;
    }
    cfg.crashes.push_back(cf);
  }

  std::ostringstream d;
  d << (use_2pc ? "2pc" : s.group ? "tfcommit-group" : "tfcommit")
    << " n=" << cfg.num_servers
    << " threads=" << cfg.num_threads << " pipe=" << cfg.pipeline_depth
    << (cfg.speculate ? " spec" : "") << (cfg.batch_verify ? " bv" : "")
    << " drop=" << net.link.drop_prob
    << " dup=" << net.link.dup_prob << " reorder=" << net.link.reorder_prob
    << (partitioned ? " partition" : "") << " fault=" << fault_name(s.fault);
  if (s.fault != Fault::kNone) d << "@S" << s.culprit;
  if (s.crash) {
    d << " crash@S" << s.crash_victim << "(t=" << cfg.crashes[0].at_us
      << ",down=" << cfg.crashes[0].downtime_us << ")";
    if (term_timeout > 0) d << " term=" << term_timeout;
  }
  s.description = d.str();
  return s;
}

/// First item owned by server `owner`.
ItemId item_owned_by(const Cluster& cluster, std::uint32_t owner) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(cluster.num_servers()) *
      cluster.config().items_per_shard;
  for (ItemId item = 0; item < total; ++item) {
    if (cluster.owner_of(item).value == owner) return item;
  }
  return 0;
}

void fold(crypto::Digest& acc, BytesView data) {
  Writer w;
  w.raw(acc.view());
  w.bytes(data);
  acc = crypto::sha256(w.data());
}

}  // namespace

FuzzOutcome run_schedule(std::uint64_t seed, const FuzzOptions& options) {
  FuzzOutcome out;
  out.seed = seed;

  const Scenario scenario = derive_scenario(seed, options);
  out.scenario = scenario.description;
  out.byzantine = scenario.fault != Fault::kNone;
  out.crashed = scenario.crash;
  out.speculative = scenario.cfg.speculate;
  const Fault fault = scenario.fault;
  const bool use_2pc = scenario.cfg.protocol == Protocol::kTwoPhaseCommit;
  const std::uint32_t n = scenario.cfg.num_servers;
  const std::uint32_t culprit = scenario.culprit;

  Cluster cluster(scenario.cfg);
  Client& client = cluster.make_client();
  Rng rng(seed ^ 0xF022'CE55'0000'0001ULL);  // history-shape choices

  auto fail = [&](const std::string& why) {
    if (out.ok) {
      out.ok = false;
      out.failure = why;
    }
  };

  // Items the scripted history targets: A on the culprit's shard, B on the
  // next server's — so the deviation is guaranteed to be exercised.
  const ItemId item_a = item_owned_by(cluster, culprit);
  const ItemId item_b = item_owned_by(cluster, (culprit + 1) % n);
  std::optional<ServerId> fake_root_victim;

  // --- Install the pre-run deviation -----------------------------------------
  Server& culprit_server = cluster.server(ServerId{culprit});
  switch (fault) {
    case Fault::kReadGarbage:
      culprit_server.faults().read_fault = ReadFault::kGarbageValue;
      break;
    case Fault::kReadStale:
      culprit_server.faults().read_fault = ReadFault::kStaleValue;
      break;
    case Fault::kSkipWrite:
      culprit_server.faults().skip_write_item = item_a;
      break;
    case Fault::kCorruptAfterCommit:
      culprit_server.faults().corrupt_after_commit_item = item_a;
      break;
    case Fault::kCorruptCommitment:
      culprit_server.faults().cohort.corrupt_sch_commitment = true;
      break;
    case Fault::kCorruptResponse:
      culprit_server.faults().cohort.corrupt_sch_response = true;
      break;
    case Fault::kVoteAbort:
      culprit_server.faults().cohort.always_vote_abort = true;
      break;
    case Fault::kEquivSame:
    case Fault::kEquivMatching: {
      auto& cf = culprit_server.faults().coordinator;
      cf.equivocate = fault == Fault::kEquivSame
                          ? commit::CoordinatorFaults::Equivocation::kSameChallenge
                          : commit::CoordinatorFaults::Equivocation::kMatchingChallenges;
      cf.equivocation_victims = {static_cast<std::size_t>(1 + rng.uniform(n - 1))};
      break;
    }
    case Fault::kFakeRoot:
      // Forge the root of an involved non-coordinator server (B's owner).
      fake_root_victim = ServerId{(culprit + 1) % n};
      culprit_server.faults().coordinator.fake_root_victim = fake_root_victim;
      break;
    case Fault::kForceCommit:
      culprit_server.faults().coordinator.force_commit = true;
      break;
    default:
      break;  // none / post-run log faults
  }

  // --- Scripted history + noise ----------------------------------------------
  std::vector<RoundMetrics> rounds;
  std::vector<ordserv::GroupRoundResult> group_rounds;  // group-mode scenarios
  std::map<ItemId, Bytes> committed;  // last committed value per item

  // Runs a stream of batches through the (possibly pipelined) engine and
  // folds each round's writes into the committed map in round order —
  // ledger append order stays sequential at every pipeline depth.
  auto run_rounds = [&](std::vector<std::vector<commit::SignedEndTxn>> batches) {
    std::vector<std::vector<std::pair<ItemId, Bytes>>> writes(batches.size());
    for (std::size_t b = 0; b < batches.size(); ++b) {
      for (const auto& req : batches[b]) {
        for (const auto& w : req.request.txn.rw.writes) {
          writes[b].emplace_back(w.id, w.new_value);
        }
      }
    }
    PipelineResult result = cluster.run_blocks(std::move(batches));
    for (std::size_t b = 0; b < result.rounds.size(); ++b) {
      RoundMetrics& m = result.rounds[b];
      const bool applied =
          m.decision == ledger::Decision::kCommit && (use_2pc || m.cosign_valid);
      if (applied) {
        for (auto& [item, value] : writes[b]) committed[item] = std::move(value);
      }
      out.spec_revotes += m.spec_revotes;
      rounds.push_back(std::move(m));
    }
  };
  auto run_round = [&](std::vector<commit::SignedEndTxn> batch) {
    std::vector<std::vector<commit::SignedEndTxn>> batches;
    batches.push_back(std::move(batch));
    run_rounds(std::move(batches));
  };

  if (scenario.group) {
    // §4.6 group mode: the scripted history runs as group-local TFCommit
    // rounds on the engine's multi-coordinator dispatch, sequenced through
    // one OrdServ stream and delivered (validated) at every server. Fresh
    // items per round keep OCC out of the picture — except one deliberate
    // cross-group item reuse that forces a declared dependency — so abort
    // decisions are attributable to the injected cohort fault.
    auto on = [&](std::uint32_t srv, std::uint32_t k) {
      return ItemId{srv + static_cast<std::uint64_t>(n) * k};
    };
    const ItemId dep_item = on((culprit + 2) % n, 11);
    constexpr std::size_t kGroupRounds = 8;
    std::vector<std::vector<commit::SignedEndTxn>> batches;
    std::vector<std::vector<std::pair<ItemId, Bytes>>> writes(kGroupRounds);
    std::vector<bool> touches_culprit(kGroupRounds, false);
    for (std::uint32_t i = 0; i < kGroupRounds; ++i) {
      // Odd rounds run the culprit's own group so the fault is exercised;
      // even rounds roam adjacent pairs so disjoint groups race in flight.
      const std::uint32_t s1 = i % 2 == 1 ? culprit : i % n;
      std::vector<ItemId> items = {on(s1, i + 1), on((s1 + 1) % n, i + 1)};
      if (i == 2 || i == 6) items.push_back(dep_item);
      auto txn = scripted_txn(cluster, client, items, "g" + std::to_string(i));
      for (const auto& w : txn.request.txn.rw.writes) {
        writes[i].emplace_back(w.id, w.new_value);
      }
      for (const ItemId item : items) {
        if (cluster.owner_of(item).value == culprit) touches_culprit[i] = true;
      }
      batches.push_back({std::move(txn)});
    }

    ordserv::Sequencer seq;
    ordserv::GroupRunResult gres = cluster.run_group_blocks(seq, std::move(batches));
    out.spec_revotes += gres.spec_revotes;
    for (std::size_t b = 0; b < gres.rounds.size(); ++b) {
      const ordserv::GroupRoundResult& r = gres.rounds[b];
      if (r.decision == ledger::Decision::kCommit && r.cosign_valid) {
        for (auto& [item, value] : writes[b]) committed[item] = std::move(value);
      }
    }

    // Group-mode oracles: refusal-free delivery (faulty rounds are refused
    // before OrdServ, never at delivery), a stream that validates from
    // genesis (inner co-signs, outer chain, recomputed dependencies), and
    // epoch discipline — every admitted round drew exactly one epoch.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (gres.delivery_refusals[i].has_value()) {
        fail("group delivery refused at S" + std::to_string(i) + ": " +
             gres.delivery_refusals[i]->reason);
      }
    }
    const std::vector<ordserv::SequencedBlock> stream(seq.stream().begin(),
                                                      seq.stream().end());
    if (const auto bad = ordserv::validate_stream(stream, cluster.server_keys())) {
      fail("group stream failed validation at height " + std::to_string(*bad));
    }
    if (seq.epochs().issued() != kGroupRounds) {
      fail("group rounds drew " + std::to_string(seq.epochs().issued()) +
           " epochs for " + std::to_string(kGroupRounds) + " rounds");
    }
    // Dependency-order oracle: whenever two sequenced entries touch the
    // deliberately reused item, the later one must declare the earlier.
    std::optional<std::uint64_t> dep_height;
    for (const ordserv::SequencedBlock& e : stream) {
      bool touches_dep = false;
      for (const auto& t : e.block.txns) {
        for (const ItemId item : t.rw.touched_items()) {
          if (item == dep_item) touches_dep = true;
        }
      }
      if (!touches_dep) continue;
      if (dep_height.has_value() &&
          std::find(e.depends_on.begin(), e.depends_on.end(), *dep_height) ==
              e.depends_on.end()) {
        fail("group stream hides the cross-group dependency at height " +
             std::to_string(e.block.height));
      }
      dep_height = e.block.height;
    }

    // Detection (cohort menu only — see derive_scenario): bad co-sign shares
    // are attributed to the culprit in-round; a vetoing cohort is visible as
    // co-signed aborts on every round it participates in.
    if (fault == Fault::kCorruptCommitment || fault == Fault::kCorruptResponse) {
      out.detected = std::any_of(
          gres.rounds.begin(), gres.rounds.end(), [&](const auto& r) {
            return !r.cosign_valid &&
                   std::find(r.faulty_cosigners.begin(), r.faulty_cosigners.end(),
                             ServerId{culprit}) != r.faulty_cosigners.end();
          });
    } else if (fault == Fault::kVoteAbort) {
      bool any = false, all_aborted = true;
      for (std::size_t b = 0; b < gres.rounds.size(); ++b) {
        if (!touches_culprit[b]) continue;
        any = true;
        if (gres.rounds[b].decision != ledger::Decision::kAbort) all_aborted = false;
      }
      out.detected = any && all_aborted;
    }
    group_rounds = std::move(gres.rounds);
  } else if (fault == Fault::kForceCommit) {
    // The atomicity attack needs an abort vote to override: t2 reads B, then
    // t1 commits a newer version of B, then t2's block arrives stale.
    run_round({scripted_txn(cluster, client, {item_a, item_b}, "s0")});
    auto t_stale = scripted_txn(cluster, client, {item_b}, "s1");
    run_round({scripted_txn(cluster, client, {item_b}, "s2")});
    run_round({std::move(t_stale)});
  } else {
    run_round({scripted_txn(cluster, client, {item_a, item_b}, "r0")});
    run_round({scripted_txn(cluster, client, {item_a, item_b}, "r1")});
    if (scenario.cfg.speculate) {
      // Abort-heavy pipelined stream: block c1 aborts on item_b's stale
      // read while item_a2's owner voted commit — so that owner's
      // speculative vote for block c2 stacks a write that never lands and
      // must be discarded and deterministically re-voted. This is the
      // mis-speculation pressure every speculative seed gets for free.
      const ItemId item_a2 = item_a + n;  // same shard as item_a, untouched
      std::vector<std::vector<commit::SignedEndTxn>> conflict;
      auto c0 = scripted_txn(cluster, client, {item_a, item_b}, "c0");
      auto c1 = scripted_txn(cluster, client, {item_a2, item_b}, "c1");
      auto c2 = scripted_txn(cluster, client, {item_a2}, "c2");
      conflict.push_back({std::move(c0)});
      conflict.push_back({std::move(c1)});
      conflict.push_back({std::move(c2)});
      run_rounds(std::move(conflict));
    }
    // Noise rounds: workload transactions over the whole keyspace. At
    // pipeline_depth > 1 several noise blocks go through one pipelined
    // call, so rounds are genuinely in flight together under the scenario's
    // network faults and Byzantine deviation.
    workload::YcsbWorkload workload(
        {}, static_cast<std::uint64_t>(n) * scenario.cfg.items_per_shard, seed);
    workload.begin_batch();
    const std::size_t noise_blocks =
        scenario.cfg.pipeline_depth > 1 ? 2 + rng.uniform(2) : 1;
    std::vector<std::vector<commit::SignedEndTxn>> noise;
    for (std::size_t b = 0; b < noise_blocks; ++b) {
      std::vector<commit::SignedEndTxn> batch;
      const std::size_t txns = 1 + rng.uniform(3);
      for (std::size_t i = 0; i < txns; ++i) {
        batch.push_back(workload.run_transaction(client));
      }
      noise.push_back(std::move(batch));
    }
    run_rounds(std::move(noise));
  }

  // --- Checkpoint round (TFCommit): must form whenever honest logs agree ------
  // (Group-mode logs are the sequenced stream; validate_stream above is their
  // whole-log check, so the checkpoint round stays a global-mode oracle.)
  if (!use_2pc && !scenario.group && rng.uniform(2) == 0) {
    if (!cluster.create_checkpoint().has_value()) {
      fail("checkpoint co-sign failed to form on agreeing logs");
    }
  }

  // --- Post-run log-layer deviations ------------------------------------------
  Fault effective_fault = fault;
  if (fault == Fault::kTamperLog || fault == Fault::kTruncateLog) {
    auto& log = culprit_server.log();
    if (log.size() < 2) {
      effective_fault = Fault::kNone;  // nothing committed to tamper with
      out.byzantine = false;
    } else if (fault == Fault::kTamperLog) {
      const std::size_t h = rng.uniform(log.size());
      ledger::Block forged = log.at(h);
      forged.decision = forged.committed() ? ledger::Decision::kAbort
                                           : ledger::Decision::kCommit;
      log.tamper_block(h, forged);
    } else {
      log.truncate_tail(log.size() - 1);
    }
  }

  // --- Invariant 1: honest agreement ------------------------------------------
  std::vector<std::uint32_t> honest;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (effective_fault == Fault::kNone || i != culprit) honest.push_back(i);
  }
  const Server& ref = cluster.server(ServerId{honest[0]});
  for (const std::uint32_t i : honest) {
    const Server& s = cluster.server(ServerId{i});
    if (s.log().size() != ref.log().size()) {
      fail("honest logs diverge in length (S" + std::to_string(i) + ")");
      break;
    }
    if (!(s.log().head_hash() == ref.log().head_hash())) {
      fail("honest log head hashes diverge (S" + std::to_string(i) + ")");
      break;
    }
    bool blocks_equal = true;
    for (std::size_t b = 0; b < s.log().size(); ++b) {
      if (!(s.log().at(b).digest() == ref.log().at(b).digest())) blocks_equal = false;
    }
    if (!blocks_equal) {
      fail("honest logs diverge in block contents (S" + std::to_string(i) + ")");
      break;
    }
  }

  // --- Invariant 2: no committed transaction is lost ---------------------------
  // With a crash in the scenario this doubles as the recovery-durability
  // oracle: the victim's store was rebuilt from its round log mid-run, so a
  // lost write here would mean the log replay dropped a committed block.
  for (const auto& [item, value] : committed) {
    const std::uint32_t owner = cluster.owner_of(item).value;
    if (std::find(honest.begin(), honest.end(), owner) == honest.end()) continue;
    if (cluster.server(ServerId{owner}).shard().peek(item).value != value) {
      fail("committed write to item " + std::to_string(item) +
           " lost on honest server S" + std::to_string(owner));
    }
  }

  // --- Crash/recovery oracles ---------------------------------------------------
  if (scenario.crash) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (cluster.is_crashed(ServerId{i})) {
        fail("server S" + std::to_string(i) + " still down at end of run");
      }
    }
    // Invariant 1 already pinned the recovered victim's ledger bit-identical
    // to the survivors' (it is in the honest set unless it is the culprit).
  }
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    out.terminated = out.terminated || rounds[r].terminated_by_cohorts;
    for (const ServerId eq : rounds[r].vote_equivocators) {
      if (effective_fault == Fault::kNone || eq.value != culprit) {
        fail("server S" + std::to_string(eq.value) + " equivocated its vote in round " +
             std::to_string(r));
      }
    }
  }

  // --- Invariant 3: detection --------------------------------------------------
  const auto any_round = [&](auto&& pred) {
    return std::any_of(rounds.begin(), rounds.end(), pred);
  };
  const auto attributed = [&](const RoundMetrics& m) {
    return !m.cosign_valid &&
           std::find(m.faulty_cosigners.begin(), m.faulty_cosigners.end(),
                     ServerId{culprit}) != m.faulty_cosigners.end();
  };
  const auto refused = [&](const RoundMetrics& m) {
    return !m.cosign_valid && !m.refusals.empty();
  };

  audit::AuditReport report;
  if (!use_2pc && !scenario.group &&
      (effective_fault == Fault::kNone || is_audit_fault(effective_fault))) {
    audit::Auditor auditor(cluster);
    report = auditor.run();
  }
  const auto audit_flags = [&](audit::ViolationKind kind) {
    for (const auto& v : report.of_kind(kind)) {
      if (v.server == ServerId{culprit}) return true;
    }
    return false;
  };

  // (Group-mode detection ran inside the group branch above.)
  if (!scenario.group) switch (effective_fault) {
    case Fault::kNone:
      if (!use_2pc && !report.clean()) {
        fail("honest run audited dirty: " + report.to_string());
      }
      break;
    case Fault::kReadGarbage:
    case Fault::kReadStale:
      out.detected = audit_flags(audit::ViolationKind::kIncorrectRead);
      break;
    case Fault::kSkipWrite:
    case Fault::kCorruptAfterCommit:
      out.detected = audit_flags(audit::ViolationKind::kDatastoreCorruption);
      break;
    case Fault::kCorruptCommitment:
    case Fault::kCorruptResponse:
      out.detected = any_round(attributed);
      break;
    case Fault::kVoteAbort:
      // A vetoing cohort is visible as aborted (but co-signed) rounds: the
      // scripted rounds 0 and 1 both touch the griefer's shard, so its veto
      // must have blocked them. (The noise round may not involve it.)
      out.detected = rounds.size() >= 2 &&
                     rounds[0].decision == ledger::Decision::kAbort &&
                     rounds[1].decision == ledger::Decision::kAbort;
      break;
    case Fault::kEquivSame:
    case Fault::kForceCommit:
      out.detected = any_round(refused);
      break;
    case Fault::kEquivMatching:
      // Nobody can refuse locally (the abort variant looks legitimate), but
      // the aggregate co-sign cannot verify and share verification localizes
      // the inconsistency (commit_test: refusals empty, faulty set not).
      out.detected = any_round([&](const RoundMetrics& m) {
        return !m.cosign_valid && (!m.refusals.empty() || !m.faulty_cosigners.empty());
      });
      break;
    case Fault::kFakeRoot:
      out.detected = any_round([&](const RoundMetrics& m) {
        if (m.cosign_valid) return false;
        for (const auto& [server, reason] : m.refusals) {
          if (server == *fake_root_victim) return true;
        }
        return false;
      });
      break;
    case Fault::kTamperLog:
      // A rewritten block surfaces as kInvalidCosign (its co-sign no longer
      // matches the contents) or as kTamperedLog (chain breakage) depending
      // on where it sits — audit_test pins both classifications.
      out.detected = audit_flags(audit::ViolationKind::kTamperedLog) ||
                     audit_flags(audit::ViolationKind::kInvalidCosign);
      break;
    case Fault::kTruncateLog:
      out.detected = audit_flags(audit::ViolationKind::kIncompleteLog);
      break;
    case Fault::kCount_:
      break;
  }
  if (out.byzantine && !out.detected) {
    fail(std::string("undetected Byzantine fault: ") + fault_name(effective_fault) +
         " at S" + std::to_string(culprit));
  }

  // --- Reproduction tokens -----------------------------------------------------
  out.trace_hash = cluster.simnet()->trace_hash();
  crypto::Digest acc;
  for (const RoundMetrics& m : rounds) {
    Bytes d{static_cast<std::uint8_t>(m.decision == ledger::Decision::kCommit),
            static_cast<std::uint8_t>(m.cosign_valid)};
    fold(acc, d);
  }
  for (const ordserv::GroupRoundResult& r : group_rounds) {
    Bytes d{static_cast<std::uint8_t>(r.decision == ledger::Decision::kCommit),
            static_cast<std::uint8_t>(r.cosign_valid),
            static_cast<std::uint8_t>(r.fault.empty())};
    fold(acc, d);
  }
  for (const std::uint32_t i : honest) {
    const Server& s = cluster.server(ServerId{i});
    fold(acc, s.log().head_hash().view());
    fold(acc, s.shard().merkle_root().view());
  }
  out.result_hash = acc;
  return out;
}

}  // namespace fides::sim
