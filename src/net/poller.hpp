// A poll(2)-based fd watcher set — the event-loop core of the socket
// scheduler.
//
// Level-triggered by design (the FDWatcher + poll() pattern): every
// registered fd is polled for readability on every iteration, plus
// writability while its owner has buffered output pending (write-buffer
// draining on POLLOUT). Callbacks fire from poll_once() on the caller's
// thread; there is no internal threading. An fd may be removed from inside
// its own callback — readiness results are snapshotted before dispatch and
// entries are re-looked-up per fd, so removal mid-dispatch is safe.
#pragma once

#include <functional>
#include <vector>

namespace fides::net {

class Poller {
 public:
  /// `revents` is the raw poll(2) readiness mask for the fd.
  using Callback = std::function<void(int fd, short revents)>;

  void add(int fd, Callback cb);
  void remove(int fd);
  bool contains(int fd) const;

  /// Whether to also poll the fd for writability (POLLOUT) — set while the
  /// connection has unsent buffered bytes, cleared when the buffer drains.
  void set_want_write(int fd, bool want);

  /// One poll(2) round: waits up to `timeout_ms` (0 = non-blocking probe,
  /// -1 = indefinitely), then invokes callbacks for every ready fd.
  /// Returns the number of fds that were ready.
  int poll_once(int timeout_ms);

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int fd{-1};
    bool want_write{false};
    Callback cb;
  };

  const Entry* find(int fd) const;
  Entry* find(int fd);

  // Single-threaded by contract (see header comment): every mutation and
  // every poll_once() happens on the owning event-loop thread, so no lock.
  std::vector<Entry> entries_;  // confined(actor)
};

}  // namespace fides::net
