#include "common/thread_pool.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace fides::common {

struct ThreadPool::Impl {
  Mutex mutex;
  CondVar work_available;
  std::deque<std::function<void()>> queue GUARDED_BY(mutex);
  std::vector<std::thread> workers;  // confined(ctor/dtor): spawned before any
                                     // submit, joined by the destructor only
  bool stopping GUARDED_BY(mutex) {false};

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex);
        while (!stopping && queue.empty()) work_available.wait(lock);
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

namespace {

/// Shared state of one parallel_for: self-contained so late-running pool
/// tasks stay valid even after the submitting frame has returned (they then
/// find no indices left to claim and finish immediately).
struct ForLoop {
  std::function<void(std::size_t)> body;
  std::size_t n{0};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex mutex;
  CondVar all_done;
  std::exception_ptr error GUARDED_BY(mutex);  ///< first exception wins

  explicit ForLoop(std::function<void(std::size_t)> b, std::size_t count)
      : body(std::move(b)), n(count) {}

  /// Claims and runs indices until none remain. Any thread may call this.
  void drain() {
    std::size_t finished = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(mutex);
        if (!error) error = std::current_exception();
      }
      ++finished;
    }
    if (finished == 0) return;
    if (done.fetch_add(finished, std::memory_order_acq_rel) + finished == n) {
      MutexLock lock(mutex);  // pairs with the waiter
      all_done.notify_all();
    }
  }

  void wait() {
    MutexLock lock(mutex);
    while (done.load(std::memory_order_acquire) != n) all_done.wait(lock);
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(new Impl) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // num_threads counts the caller: parallel_for always participates, so a
  // pool asked for N total executors spawns N-1 workers (and never
  // oversubscribes by one when N == hardware_concurrency).
  const std::size_t workers = num_threads - 1;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_available.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

std::size_t ThreadPool::size() const { return impl_->workers.size(); }

void ThreadPool::submit(std::function<void()> task) {
  if (impl_->workers.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_available.notify_one();
}

void ThreadPool::parallel_for(std::size_t n, std::function<void(std::size_t)> body) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto loop = std::make_shared<ForLoop>(std::move(body), n);
  // One helper task per worker (capped by n-1: the caller takes a share).
  const std::size_t helpers = std::min(impl_->workers.size(), n - 1);
  {
    MutexLock lock(impl_->mutex);
    for (std::size_t i = 0; i < helpers; ++i) {
      impl_->queue.push_back([loop] { loop->drain(); });
    }
  }
  impl_->work_available.notify_all();
  loop->drain();
  loop->wait();
}

}  // namespace fides::common
