// Ablation: Merkle hash tree costs (§6.3's "most expensive operation").
//
// Microbenchmarks the design choices behind the shard tree:
//   * incremental leaf update vs full rebuild (Fides uses incremental);
//   * the pure root_after overlay used in the TFCommit vote phase;
//   * verification-object generation and folding (audit path).
// Tree sizes span the Figure 15 sweep (1k..10k leaves, plus extremes).
#include <benchmark/benchmark.h>

#include "ablation_json.hpp"
#include "common/rng.hpp"
#include "merkle/proof.hpp"

namespace {

using fides::merkle::MerkleTree;
using fides::crypto::Digest;

std::vector<Digest> leaves(std::size_t n) {
  std::vector<Digest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(fides::crypto::sha256(fides::to_bytes("leaf" + std::to_string(i))));
  }
  return out;
}

void BM_FullRebuild(benchmark::State& state) {
  const auto ls = leaves(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MerkleTree t(ls);
    benchmark::DoNotOptimize(t.root());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullRebuild)->Arg(1000)->Arg(4000)->Arg(10000)->Complexity();

void BM_IncrementalLeafUpdate(benchmark::State& state) {
  MerkleTree t(leaves(static_cast<std::size_t>(state.range(0))));
  fides::Rng rng(7);
  const Digest d = fides::crypto::sha256(fides::to_bytes("update"));
  for (auto _ : state) {
    t.set_leaf(rng.uniform(static_cast<std::uint64_t>(state.range(0))), d);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalLeafUpdate)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oLogN);

// The vote-phase computation: hypothetical root over k writes on a 10k-leaf
// shard without mutating it (k = ops landing on one shard per block).
void BM_RootAfterOverlay(benchmark::State& state) {
  MerkleTree t(leaves(10000));
  fides::Rng rng(7);
  const Digest d = fides::crypto::sha256(fides::to_bytes("w"));
  std::vector<std::pair<std::size_t, Digest>> updates;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    updates.emplace_back(rng.uniform(10000), d);
  }
  for (auto _ : state) benchmark::DoNotOptimize(t.root_after(updates));
}
BENCHMARK(BM_RootAfterOverlay)->Arg(1)->Arg(20)->Arg(100)->Arg(500);

void BM_MakeVerificationObject(benchmark::State& state) {
  MerkleTree t(leaves(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(fides::merkle::make_vo(t, 17));
}
BENCHMARK(BM_MakeVerificationObject)->Arg(1000)->Arg(10000);

void BM_FoldVerificationObject(benchmark::State& state) {
  MerkleTree t(leaves(static_cast<std::size_t>(state.range(0))));
  const auto vo = fides::merkle::make_vo(t, 17);
  const Digest leaf = t.leaf(17);
  for (auto _ : state) benchmark::DoNotOptimize(fides::merkle::fold_vo(leaf, vo));
}
BENCHMARK(BM_FoldVerificationObject)->Arg(1000)->Arg(10000);

}  // namespace

FIDES_ABLATION_MAIN()
