#include "merkle/proof.hpp"

namespace fides::merkle {

Bytes VerificationObject::serialize() const {
  Writer w;
  w.u64(leaf_index);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& d : siblings) w.raw(d.view());
  return std::move(w).take();
}

std::optional<VerificationObject> VerificationObject::deserialize(BytesView b) {
  try {
    Reader rd(b);
    VerificationObject vo;
    vo.leaf_index = rd.u64();
    const std::uint32_t n = rd.u32();
    if (n > 64) return std::nullopt;  // deeper than any 2^64-leaf tree: bogus
    vo.siblings.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Bytes raw = rd.raw(32);
      Digest d;
      std::copy(raw.begin(), raw.end(), d.bytes.begin());
      vo.siblings.push_back(d);
    }
    rd.expect_done();
    return vo;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

VerificationObject make_vo(const MerkleTree& tree, std::size_t i) {
  VerificationObject vo;
  vo.leaf_index = i;
  vo.siblings = tree.sibling_path(i);
  return vo;
}

Digest fold_vo(const Digest& leaf_digest, const VerificationObject& vo) {
  Digest acc = leaf_digest;
  std::uint64_t idx = vo.leaf_index;
  for (const auto& sib : vo.siblings) {
    acc = (idx & 1) ? crypto::sha256_pair(sib, acc) : crypto::sha256_pair(acc, sib);
    idx >>= 1;
  }
  return acc;
}

bool verify_vo(const Digest& leaf_digest, const VerificationObject& vo,
               const Digest& expected_root) {
  return fold_vo(leaf_digest, vo) == expected_root;
}

}  // namespace fides::merkle
