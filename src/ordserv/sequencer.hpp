// OrdServ — the block ordering service (§4.6, Figure 9).
//
// Group coordinators publish blocks *without* hash pointers; OrdServ
// atomically broadcasts a single stream, assigning global heights and
// chaining the blocks ("the coordinators of the groups do not fill in the
// hash of the previous block, rather it is filled by the OrdServ").
//
// Ordering contract: submission order is preserved between dependent blocks
// (groups with overlapping servers, or blocks touching common items);
// independent blocks may be ordered arbitrarily — we keep FIFO, which
// trivially satisfies both cases, and expose the dependency metadata so
// tests can verify the contract (the ParBlock-style dependency tracking the
// paper plans to integrate).
//
// The paper suggests PBFT among coordinators or Apache Kafka as concrete
// OrdServ instances; this in-process sequencer implements the same abstract
// contract — a single consistently ordered, dependency-respecting stream —
// which is all §4.6 requires of it.
#pragma once

#include <deque>
#include <unordered_map>

#include "ledger/block.hpp"
#include "ordserv/group.hpp"

namespace fides::ordserv {

struct SequencedBlock {
  ledger::Block block;       ///< height/prev_hash filled by the sequencer
  ServerGroup group;         ///< who terminated it
  std::vector<std::uint64_t> depends_on;  ///< heights of dependency blocks
};

class Sequencer {
 public:
  /// Accepts a block published by a group coordinator. `block.height` and
  /// `block.prev_hash` are overwritten; the co-sign must already cover the
  /// transactions (the signed bytes bind txns + roots + decision + signers;
  /// see note below). Returns the assigned global height.
  std::uint64_t submit(ledger::Block block, ServerGroup group);

  /// Blocks sequenced so far, in broadcast order.
  const std::deque<SequencedBlock>& stream() const { return stream_; }

  /// Drains blocks not yet delivered to `server` (at-most-once per server).
  std::vector<const SequencedBlock*> fetch_new(ServerId server);

  std::size_t size() const { return stream_.size(); }

 private:
  std::deque<SequencedBlock> stream_;
  crypto::Digest head_hash_{};  // zero for genesis
  std::unordered_map<ItemId, std::uint64_t> last_touch_;   // item -> height
  std::unordered_map<std::uint32_t, std::size_t> cursor_;  // server -> next idx
};

}  // namespace fides::ordserv
