// Ablation: global TFCommit vs §4.6 group commit.
//
// With a global coordinator every server participates in every termination;
// with group commit only the involved servers do. This bench measures the
// per-block signer count and round cost as the cluster grows while each
// transaction keeps touching 5 items — the scaling argument of §4.6.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "ordserv/group_commit.hpp"
#include "workload/ycsb.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::BenchReport report("ablation_groupcommit");
  std::printf("============================================================\n");
  std::printf("Ablation: global TFCommit vs group commit (5-item txns)\n");
  std::printf("============================================================\n");
  std::printf("%-8s %-18s %-18s %-20s\n", "servers", "global_signers",
              "group_signers_avg", "group_round_ms_avg");

  for (const std::uint32_t servers : {5u, 9u, 16u, 25u}) {
    ClusterConfig cfg;
    cfg.num_servers = servers;
    cfg.items_per_shard = 1000;
    cfg.versioning = store::VersioningMode::kSingle;
    cfg.sign_data_path = false;
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    workload::YcsbWorkload wl({}, static_cast<std::uint64_t>(servers) * 1000, 42);

    ordserv::Sequencer sequencer;
    ordserv::GroupCommitRunner runner(cluster, sequencer);

    const int kRounds = 20;
    double group_size_sum = 0;
    double ms_sum = 0;
    for (int i = 0; i < kRounds; ++i) {
      const auto req = wl.run_transaction(client);
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = runner.run_group_block({req});
      ms_sum += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      group_size_sum += static_cast<double>(result.group_size);
    }
    std::printf("%-8u %-18u %-18.1f %-20.3f\n", servers, servers,
                group_size_sum / kRounds, ms_sum / kRounds);

    bench::BenchPoint& p = report.point("servers" + std::to_string(servers));
    p.exact.set("global_signers", static_cast<double>(servers));
    p.exact.set("group_signers_avg", group_size_sum / kRounds);
    p.approx.set("group_round_ms_avg", ms_sum / kRounds);
  }
  bench::finish_report(report, argc, argv);
  return 0;
}
