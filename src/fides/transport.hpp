// Signed in-process transport.
//
// "All message exchanges (client-server or server-server) are digitally
// signed by the sender and verified by the receiver" (§3.1). Envelope =
// sender + type tag + canonical payload bytes + Schnorr signature. The
// transport keeps the public-key registry (servers and clients know each
// other's keys) and the traffic statistics the benchmark harness reports.
//
// Delivery is a function call: the cluster passes the envelope to the
// receiving node, which first `open()`s it (signature check) before acting.
// The latency model is applied analytically by the round driver, not by
// sleeping — see fides/cluster.hpp.
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <unordered_map>

#include "common/thread_pool.hpp"
#include "crypto/schnorr.hpp"
#include "fides/config.hpp"

namespace fides {

/// Uniform address space over servers and clients.
struct NodeId {
  enum class Kind : std::uint8_t { kServer = 0, kClient = 1 };
  Kind kind{Kind::kServer};
  std::uint32_t id{0};

  static NodeId server(ServerId s) { return {Kind::kServer, s.value}; }
  static NodeId client(ClientId c) { return {Kind::kClient, c.value}; }

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;
};

std::string to_string(NodeId n);

}  // namespace fides

namespace std {
template <>
struct hash<fides::NodeId> {
  size_t operator()(const fides::NodeId& n) const noexcept {
    // Pack into 64 bits, then splitmix64-finalize. The mix is computed in
    // uint64_t regardless of the platform's size_t width (a size_t shift by
    // 32 would be UB where size_t is 32-bit), and the high kind bits still
    // influence the truncated result on 32-bit targets.
    std::uint64_t x =
        (static_cast<std::uint64_t>(n.kind) << 32) | static_cast<std::uint64_t>(n.id);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
}  // namespace std

namespace fides {

struct Envelope {
  NodeId sender;
  std::string type;  ///< message type tag, bound into the signature
  Bytes payload;     ///< canonical message bytes
  crypto::Signature signature;
};

class Transport {
 public:
  /// Traffic counters. Thread-safe: the round driver seals/opens envelopes
  /// from pool workers concurrently, so every counter is an atomic. Copying
  /// a Stats takes a (non-atomic-across-fields) snapshot — fine for the
  /// reporting paths, which copy only between rounds.
  struct Stats {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> signatures_created{0};
    std::atomic<std::uint64_t> signatures_verified{0};
    std::atomic<std::uint64_t> rejected{0};

    Stats() = default;
    Stats(const Stats& o) { *this = o; }
    Stats& operator=(const Stats& o) {
      if (this != &o) {
        messages.store(o.messages.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        bytes.store(o.bytes.load(std::memory_order_relaxed), std::memory_order_relaxed);
        signatures_created.store(o.signatures_created.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
        signatures_verified.store(o.signatures_verified.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
        rejected.store(o.rejected.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      }
      return *this;
    }

    void reset() { *this = Stats{}; }
  };

  void register_node(NodeId node, crypto::PublicKey key);
  const crypto::PublicKey* key_of(NodeId node) const;

  /// Wraps and signs a payload. Every seal counts as one message sent.
  Envelope seal(const crypto::KeyPair& sender_key, NodeId sender, std::string type,
                Bytes payload);

  /// Accounts for one more copy of an already-sealed broadcast envelope:
  /// the sender signs a broadcast once and sends the same envelope to every
  /// recipient, but each copy is still a message on the wire.
  void count_copy(const Envelope& env);

  /// Verifies sender signature against the registry (and that the claimed
  /// type matches). Returns false — and counts a rejection — on any failure.
  /// Thread-safe against concurrent open/seal calls (stats are atomic and
  /// the key registry is read-only while rounds run).
  bool open(const Envelope& env, std::string_view expected_type);

  /// Verifies a batch of envelopes, each against its own type tag, through
  /// one RLC aggregate check (crypto::batch_verify) instead of one Schnorr
  /// verification per envelope — the coordinator's per-phase inbox opened as
  /// a unit. Sub-batches fan out across `pool` when one is given. Result
  /// slot i is 1 iff open(*envelopes[i], envelopes[i]->type) would return
  /// true; Stats accounting is identical to calling open() serially on each.
  /// (Plain bytes, not vector<bool>, so pool workers write independently
  /// addressable slots.)
  std::vector<unsigned char> open_batch(std::span<const Envelope* const> envelopes,
                                        common::ThreadPool* pool = nullptr);

  /// Homogeneous-type convenience over open_batch: envelopes whose type tag
  /// differs from `expected_type` are rejected up front, the rest go through
  /// the one batched verification entry point.
  std::vector<unsigned char> open_all(std::span<const Envelope> envelopes,
                                      std::string_view expected_type,
                                      common::ThreadPool* pool = nullptr);

  /// When disabled, seal/open skip the actual signature computation but
  /// still count messages/bytes (data-path fast mode; see ClusterConfig).
  /// Only toggled between rounds, never while pool workers are in flight.
  void set_crypto_enabled(bool enabled) {
    crypto_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool crypto_enabled() const { return crypto_enabled_.load(std::memory_order_relaxed); }

  /// Mirrors ClusterConfig::batch_verify so verification sites that only see
  /// the transport (request checks, the pipeline's inbox seam) can route
  /// through the batched path. Toggled only between rounds.
  void set_batch_verify(bool enabled) {
    batch_verify_.store(enabled, std::memory_order_relaxed);
  }
  bool batch_verify() const { return batch_verify_.load(std::memory_order_relaxed); }

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  static Bytes signing_preimage(const Envelope& env);

  // Audited for the thread-safety pass: registry_ is written only during
  // cluster setup (before any round traffic or pool fan-out exists) and is
  // read-only while rounds run, so it needs no lock; everything mutated on
  // the hot path (stats_ counters, the two mode flags) is atomic.
  std::unordered_map<NodeId, crypto::PublicKey> registry_;  // confined(setup)
  Stats stats_;  // confined(shared-atomics): every field is a relaxed atomic
  std::atomic<bool> crypto_enabled_{true};
  std::atomic<bool> batch_verify_{false};
};

}  // namespace fides
