// Merkle Hash Tree (§2.3) with O(log n) incremental updates.
//
// Each Fides shard mirrors its data items in one of these trees; the root is
// what TFCommit embeds into every block (Table 1, Σroots) and what the
// auditor checks datastore state against (Lemma 2).
//
// The tree is built over a fixed leaf universe (the shard's item set, in
// item-id order), padded to a power of two with zero digests. Two update
// modes support the two places the protocol needs roots:
//   * set_leaf      — destructive, applied when a transaction commits;
//   * root_after    — pure, computes the root that *would* result from a set
//                     of leaf updates without touching the tree. This is the
//                     vote-phase computation: "the MHT reflects all updates
//                     in Ti assuming Ti commits; the datastore is unaffected
//                     if Ti eventually aborts" (§4.3.1 phase 2).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "crypto/sha256.hpp"

namespace fides::merkle {

using crypto::Digest;

class MerkleTree {
 public:
  /// An empty tree over `leaf_count` zero leaves.
  explicit MerkleTree(std::size_t leaf_count);

  /// Builds from initial leaf digests (defines leaf_count). When `pool` is
  /// given and parallel, interior levels are hashed level-by-level with the
  /// nodes of each level fanned out across workers — same tree, built on
  /// however many cores are available (bulk provisioning / audit rebuilds).
  explicit MerkleTree(std::span<const Digest> leaves,
                      common::ThreadPool* pool = nullptr);

  std::size_t leaf_count() const { return leaf_count_; }

  const Digest& leaf(std::size_t i) const;
  Digest root() const;

  /// Replaces leaf i and recomputes the path to the root. Returns the number
  /// of interior nodes rehashed (benchmarked in Fig 14/15 reproductions).
  std::size_t set_leaf(std::size_t i, const Digest& d);

  /// Root after hypothetically applying `updates` (index, digest) — the tree
  /// itself is not modified. Cost O(k·log n) time and space for k updates.
  Digest root_after(std::span<const std::pair<std::size_t, Digest>> updates) const;

  /// Stacked overlay: the root after hypothetically applying `batches` in
  /// order (batch i+1 on top of batch i on top of the real tree). This is
  /// the speculative-voting computation: each batch is the update set of one
  /// in-flight block, and the last batch is the round being voted on. The
  /// tree is not modified; cost O(K·log n) for K total updates.
  Digest root_after_chain(
      std::span<const std::span<const std::pair<std::size_t, Digest>>> batches) const;

  /// Sibling path for leaf i, bottom-up — the Verification Object of §2.3.
  std::vector<Digest> sibling_path(std::size_t i) const;

  /// Depth of the padded tree (number of siblings in a verification object).
  std::size_t depth() const { return depth_; }

 private:
  // Heap layout: nodes_[1] is the root; children of k are 2k and 2k+1;
  // leaves occupy [cap_, 2*cap_).
  std::size_t node_index(std::size_t leaf) const { return cap_ + leaf; }

  /// Recomputes every interior node from the leaves, bottom-up. Each level
  /// only reads the level below it, so the nodes of one level hash in
  /// parallel; small levels stay serial (fan-out overhead dominates).
  void build_interior(common::ThreadPool* pool);

  /// Allocates the node array over zero leaves without hashing the interior
  /// — for constructors that install real leaves and rebuild immediately.
  struct DeferInterior {};
  MerkleTree(std::size_t leaf_count, DeferInterior);

  std::size_t leaf_count_;
  std::size_t cap_;    // leaf capacity, power of two
  std::size_t depth_;  // log2(cap_)
  std::vector<Digest> nodes_;
};

}  // namespace fides::merkle
