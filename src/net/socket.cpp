#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace fides::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int cloexec_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail("socket()");
  return fd;
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in tcp_sockaddr(const ParsedAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("tcp address must be numeric IPv4: " + addr.host);
  }
  return sa;
}

}  // namespace

ParsedAddr parse_addr(const std::string& addr) {
  ParsedAddr out;
  if (addr.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = addr.substr(5);
    if (out.path.empty()) throw std::runtime_error("empty unix socket path: " + addr);
    return out;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::runtime_error("tcp address must be tcp:host:port: " + addr);
    }
    out.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
      throw std::runtime_error("bad tcp port: " + addr);
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
  }
  throw std::runtime_error("unknown address scheme (want unix: or tcp:): " + addr);
}

int listen_on(const std::string& addr) {
  const ParsedAddr parsed = parse_addr(addr);
  if (parsed.is_unix) {
    ::unlink(parsed.path.c_str());  // stale socket from a previous run
    const int fd = cloexec_socket(AF_UNIX);
    const sockaddr_un sa = unix_sockaddr(parsed.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fail("bind(" + parsed.path + ")");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      fail("listen(" + parsed.path + ")");
    }
    set_nonblocking(fd);
    return fd;
  }
  const int fd = cloexec_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in sa = tcp_sockaddr(parsed);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    fail("bind(" + addr + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    fail("listen(" + addr + ")");
  }
  set_nonblocking(fd);
  return fd;
}

int dial_once(const std::string& addr) {
  const ParsedAddr parsed = parse_addr(addr);
  if (parsed.is_unix) {
    const int fd = cloexec_socket(AF_UNIX);
    const sockaddr_un sa = unix_sockaddr(parsed.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = cloexec_socket(AF_INET);
  const sockaddr_in sa = tcp_sockaddr(parsed);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

std::uint16_t local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    fail("getsockname()");
  }
  return ntohs(sa.sin_port);
}

}  // namespace fides::net
