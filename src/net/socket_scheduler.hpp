// The third scheduler: real sockets, one process per server.
//
// SocketScheduler implements the engine's Scheduler/Outbox seam over a
// poll(2) event loop (net/poller.hpp) speaking length-framed messages
// (net/frame.hpp) on TCP or Unix-domain stream sockets. Each process hosts
// exactly one server of a deterministically replicated Cluster — the
// coordinator process (self == 0) also hosts the clients — and every
// process constructs the identical Cluster from the identical config, so
// keys, epochs, and provisioned shards agree without any state exchange.
//
// Routing is locality: a send whose destination is hosted here goes onto a
// local FIFO and is dispatched in the run loop; anything else is framed
// onto the destination process's connection (dialed on demand, retried
// while the peer is still provisioning). The reactors and the commit
// pipeline are unchanged — the same bit-identical-ledger gate the
// in-process and SimNet schedulers pass applies to this one.
//
// Crash mapping: a peer's connection dying mid-run surfaces as the engine's
// existing kCrash ControlEvent (the coordinator destroys its local replica,
// exactly as SimNet crashes do); the peer process reconnecting — its HELLO
// frame after a restart — surfaces as kRecover, which replays the shared
// durable round log and re-sends the catch-up stream over the socket. A
// hosted server hitting a configured crash point dies for real:
// crash_node(self) is std::_Exit, and the durable log (flushed on every
// append) is what the restarted process rejoins from.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/scheduler.hpp"
#include "fides/cluster.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"

namespace fides::net {

struct SocketOptions {
  /// addrs[i] = listen address of the process hosting server i
  /// ("unix:/path" or "tcp:host:port"). Size must equal num_servers.
  std::vector<std::string> addrs;
  std::uint32_t self{0};  ///< the server this process hosts

  /// Serverd under a configured crash point: crash_node(self) exits the
  /// process with `crash_exit_code` instead of simulating. Off for the
  /// coordinator.
  bool die_on_crash{false};
  int crash_exit_code{42};

  /// How long dial-on-demand retries while a peer is still provisioning
  /// its (deterministically identical, hence equally slow) cluster.
  double connect_timeout_s{120.0};
  /// run() throws after this long without a delivery, control event, or
  /// readable frame — the multi-process analogue of quiescence-with-
  /// incomplete-rounds, surfaced as an error instead of a hang.
  double stall_timeout_s{120.0};
};

class SocketScheduler final : public engine::Scheduler, private engine::Outbox {
 public:
  /// Binds + listens on addrs[self] immediately (so the process is
  /// dialable before run() starts); a non-coordinator also dials the
  /// coordinator and introduces itself, which is what turns a serverd
  /// restart into the coordinator's kRecover signal.
  SocketScheduler(Cluster& cluster, SocketOptions opts);
  ~SocketScheduler() override;

  SocketScheduler(const SocketScheduler&) = delete;
  SocketScheduler& operator=(const SocketScheduler&) = delete;

  // --- engine::Scheduler ------------------------------------------------------

  engine::Outbox& outbox() override { return *this; }
  void run(engine::Dispatcher& dispatcher) override;

  /// Node-local control actions run inline when the node is hosted here;
  /// a start() posted for a remote coordinator is dropped — that process
  /// runs it itself.
  void post(NodeId dst, std::function<void()> fn) override;

  std::size_t concurrency() const override { return 1; }
  bool supports_crashes() const override { return true; }
  void crash_node(NodeId node) override;
  /// Recovery is driven by the real reconnect (HELLO after restart), not a
  /// timer; nothing to schedule.
  void schedule_recover(NodeId node, double delay_us) override;
  /// Coordinator-death termination over sockets is out of scope (v1); the
  /// probe is a no-op, so rounds wait for the coordinator — 2PC semantics
  /// documented in the README.
  void schedule_failure_probe(NodeId node, double delay_us) override;

  void notify_applied(std::uint32_t server, std::uint64_t epoch) override;
  void set_completion(std::function<bool()> done) override { done_ = std::move(done); }

  // --- Coordinator finish flow ------------------------------------------------

  /// After run() completed: queries every live remote server's committed-
  /// state digest, then broadcasts shutdown and drains the sockets.
  /// Returns the digests that arrived within `timeout_s`, sorted by server.
  std::vector<PeerDigest> finish(double timeout_s = 30.0);

  /// Serverd side: run() returned because the coordinator said so (vs a
  /// lost coordinator connection, which also ends the loop but unclean).
  bool shutdown_received() const { return shutdown_; }

 private:
  struct Conn {
    int fd{-1};
    FrameReader reader;
    Bytes wbuf;              ///< unsent frame bytes, drained on POLLOUT
    std::size_t wpos{0};
    std::int64_t peer_server{-1};  ///< from HELLO or the dial target; -1 unknown
  };

  struct Delivery {
    NodeId src;
    NodeId dst;
    Envelope env;
    bool replay{false};
  };
  struct LocalEvent {
    bool is_control{false};
    Delivery delivery;
    engine::ControlEvent control;
  };

  bool hosted(NodeId node) const {
    return node.kind == NodeId::Kind::kServer ? node.id == opts_.self : opts_.self == 0;
  }

  // Outbox.
  void send(NodeId src, NodeId dst, Envelope env) override;
  void send_replay(NodeId src, NodeId dst, Envelope env) override;
  void send_impl(NodeId src, NodeId dst, Envelope env, bool replay);

  Conn* conn_for_server(std::uint32_t server);
  Conn* adopt_fd(int fd, std::int64_t peer_server);
  void queue_frame(Conn& conn, const Bytes& frame);
  /// False if the conn died on a write error (and was dropped).
  bool flush_conn(Conn& conn);
  void handle_accept();
  void handle_readable(Conn& conn, short revents);
  void handle_frame(Conn& conn, const Frame& frame);
  void drop_conn(Conn& conn, const char* why);
  bool drain_local();

  /// Writes every buffered byte (blocking via short poll rounds) — the
  /// teardown path, where losing buffered decisions would strand peers.
  void flush_all_blocking(double timeout_s);

  // Everything below is confined to the process's single event-loop thread
  // (concurrency() == 1): construction, run(), finish(), and every poll
  // callback execute on the same thread, so no field needs a lock.
  Cluster* cluster_;         // confined(actor)
  SocketOptions opts_;       // confined(actor)
  Poller poller_;            // confined(actor)
  int listen_fd_{-1};        // confined(actor)
  std::string listen_path_;  // confined(actor) -- unix socket path, unlinked on teardown
  std::vector<std::unique_ptr<Conn>> conns_;               // confined(actor)
  std::unordered_map<std::uint32_t, Conn*> conn_of_server_;  // confined(actor)
  std::vector<unsigned char> peer_crashed_;  // confined(actor)
  std::deque<LocalEvent> queue_;             // confined(actor)
  engine::Dispatcher* dispatcher_{nullptr};  // confined(actor)
  std::function<bool()> done_;               // confined(actor)
  bool shutdown_{false};                     // confined(actor)
  bool coordinator_lost_{false};  // confined(actor) -- coordinator conn died un-shutdown
  bool finished_{false};  // confined(actor) -- run() done; disconnects are teardown
  std::vector<PeerDigest> digests_;  // confined(actor)
};

}  // namespace fides::net
