// MUST NOT COMPILE under clang -Werror=thread-safety: calls a
// REQUIRES(mutex) helper without holding the mutex. The surrounding CMake
// harness asserts that this translation unit is rejected.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    bump_locked();  // <-- caller does not hold mu_: -Wthread-safety error
  }

 private:
  void bump_locked() REQUIRES(mu_) { ++n_; }

  fides::common::Mutex mu_;
  int n_ GUARDED_BY(mu_){0};
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return 0;
}
