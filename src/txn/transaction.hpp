// Transaction model: read/write sets per Table 1.
//
// A block entry carries, per transaction:
//   R_set — list of <id : value, rts, wts>
//   W_set — list of <id : new_val, old_val, rts, wts>
// where old_val is populated only for blind writes, and rts/wts are the
// item's timestamps observed at access time. These are exactly the fields
// the auditor needs for Lemmas 1-3.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"
#include "common/timestamp.hpp"

namespace fides::txn {

struct ReadEntry {
  ItemId id{};
  Bytes value;    ///< value returned by the server
  Timestamp rts;  ///< item's read-ts at access
  Timestamp wts;  ///< item's write-ts at access (identifies the version read)

  friend bool operator==(const ReadEntry&, const ReadEntry&) = default;
};

struct WriteEntry {
  ItemId id{};
  Bytes new_value;
  std::optional<Bytes> old_value;  ///< populated only for blind writes
  Timestamp rts;                   ///< item's read-ts at access
  Timestamp wts;                   ///< item's write-ts at access

  bool blind() const { return old_value.has_value(); }

  friend bool operator==(const WriteEntry&, const WriteEntry&) = default;
};

struct RwSet {
  std::vector<ReadEntry> reads;
  std::vector<WriteEntry> writes;

  friend bool operator==(const RwSet&, const RwSet&) = default;

  bool empty() const { return reads.empty() && writes.empty(); }

  const ReadEntry* find_read(ItemId id) const;
  const WriteEntry* find_write(ItemId id) const;

  /// Every distinct item this transaction touches.
  std::vector<ItemId> touched_items() const;

  void encode(Writer& w) const;
  static RwSet decode(Reader& r);
};

/// A terminated (or terminating) transaction as it appears in a block.
struct Transaction {
  TxnId id;
  Timestamp commit_ts;  ///< client-assigned commit timestamp (Table 1 TxnId)
  RwSet rw;

  friend bool operator==(const Transaction&, const Transaction&) = default;

  void encode(Writer& w) const;
  static Transaction decode(Reader& r);
};

/// True iff the two transactions access no common item — the batching
/// criterion of §4.6 ("a set of non-conflicting client generated
/// transactions" per block).
bool non_conflicting(const Transaction& a, const Transaction& b);

}  // namespace fides::txn
