// Group-commit scaling (§4.6): virtual-time throughput vs group count and
// cross-group conflict rate, through the engine-routed multi-coordinator
// dispatch (ordserv/group_engine.hpp).
//
// The 8-server cluster is partitioned into G disjoint server groups; each
// round's batch touches every server of its group (G=1 reproduces the global
// all-server round, G=8 is fully sharded). With probability `conflict` a
// batch instead bridges two adjacent groups, serializing them through the
// touch-order gates and the sequencer. Throughput is rounds per second of
// SimNet *virtual* time — deterministic for a given seed, so the scaling
// shape gates exactly:
//
//   * 4 disjoint groups must clear >= 2.5x the global-group throughput
//     (the §4.6 scaling claim: disjoint groups pipeline independently);
//   * rising conflict must degrade monotonically, not collapse: G=4 at 50%
//     cross-group traffic still beats the global group.
//
// Knobs: FIDES_GROUPS caps the sweep's group count (default 8), plus the
// usual FIDES_BENCH_TXNS / FIDES_PIPELINE / FIDES_SIM_SEED.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "ordserv/group_engine.hpp"

namespace {

using namespace fides;

constexpr std::uint32_t kServers = 8;

ClusterConfig scaling_config() {
  ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.items_per_shard = 512;
  cfg.versioning = store::VersioningMode::kSingle;
  cfg.sign_data_path = false;
  cfg.network.mode = sim::NetworkMode::kSimulated;
  cfg.network.sim.seed = bench::env_size("FIDES_SIM_SEED", 1);
  cfg.pipeline_depth = static_cast<std::uint32_t>(
      std::max<std::size_t>(bench::bench_pipeline(), 8));
  cfg.speculate = true;
  return cfg;
}

/// Deterministic per-round coin for the conflict draw (no std::rand: the
/// sweep must reproduce bit-for-bit).
bool bridge_round(std::uint32_t groups, double conflict, std::size_t round) {
  std::uint64_t x = 0x9E3779B97F4A7C15ULL ^ (round * 0xBF58476D1CE4E5B9ULL) ^
                    (static_cast<std::uint64_t>(groups) << 32);
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x % 10000) < conflict * 10000.0;
}

/// Mints `rounds` one-txn batches: round i belongs to group i % G and writes
/// one fresh item on every member server (item = server + kServers * k, so
/// no item is ever reused and OCC never aborts — the sweep measures protocol
/// concurrency, not abort rates). A bridging round touches two adjacent
/// groups' servers instead.
std::vector<std::vector<commit::SignedEndTxn>> mint_batches(const ClusterConfig& cfg,
                                                            std::uint32_t groups,
                                                            double conflict,
                                                            std::size_t rounds) {
  Cluster mint(cfg);
  Client& client = mint.make_client();
  const std::uint32_t width = kServers / groups;
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  batches.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::uint32_t g = static_cast<std::uint32_t>(i % groups);
    std::vector<ItemId> items;
    auto touch_group = [&](std::uint32_t grp) {
      for (std::uint32_t s = grp * width; s < (grp + 1) * width; ++s) {
        items.push_back(ItemId{s + kServers * static_cast<std::uint32_t>(i + 1)});
      }
    };
    touch_group(g);
    if (groups > 1 && bridge_round(groups, conflict, i)) touch_group((g + 1) % groups);
    ClientTxn txn = client.begin();
    for (const ItemId item : items) {
      client.read(txn, item);
      client.write(txn, item, to_bytes("w" + std::to_string(i)));
    }
    batches.push_back({client.end(std::move(txn))});
  }
  return batches;
}

struct SweepPoint {
  double vt_tps{0};
  double span_ms{0};
  std::size_t sequenced{0};
};

SweepPoint run_point(const ClusterConfig& cfg, std::uint32_t groups, double conflict,
                     std::size_t rounds) {
  const auto batches = mint_batches(cfg, groups, conflict, rounds);
  Cluster cluster(cfg);
  cluster.make_client();
  ordserv::Sequencer seq;
  const ordserv::GroupRunResult result = cluster.run_group_blocks(seq, batches);
  for (const auto& refusal : result.delivery_refusals) {
    if (refusal.has_value()) {
      std::printf("ERROR: delivery refused at height %llu: %s\n",
                  static_cast<unsigned long long>(refusal->height),
                  refusal->reason.c_str());
      std::exit(1);
    }
  }
  SweepPoint p;
  p.sequenced = seq.size();
  p.span_ms = cluster.simnet()->now_us() / 1000.0;
  p.vt_tps = p.span_ms > 0 ? static_cast<double>(rounds) / (p.span_ms / 1000.0) : 0;
  if (p.sequenced != rounds) {
    std::printf("ERROR: %zu rounds submitted, %zu sequenced\n", rounds, p.sequenced);
    std::exit(1);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fides;
  bench::BenchReport report("group_scaling");
  const ClusterConfig cfg = scaling_config();
  const std::size_t rounds = std::max<std::size_t>(24, bench::bench_txns() / 4);
  const std::uint32_t max_groups = static_cast<std::uint32_t>(
      std::min<std::size_t>(bench::env_size("FIDES_GROUPS", 8), kServers));
  const double conflicts[] = {0.0, 0.1, 0.5};

  std::printf("============================================================\n");
  std::printf("Group commit scaling: %u servers, %zu rounds, depth %u, SimNet seed %zu\n",
              kServers, rounds, cfg.pipeline_depth,
              static_cast<std::size_t>(cfg.network.sim.seed));
  std::printf("engine-routed multi-coordinator dispatch; virtual-time throughput\n");
  std::printf("============================================================\n");
  std::printf("%-8s %-10s %-14s %-14s %s\n", "groups", "conflict", "span_ms",
              "vt_blocks_ps", "scaling_vs_G1");

  std::map<std::pair<std::uint32_t, int>, SweepPoint> sweep;
  for (std::uint32_t groups = 1; groups <= max_groups; groups *= 2) {
    for (int ci = 0; ci < 3; ++ci) {
      const SweepPoint p = run_point(cfg, groups, conflicts[ci], rounds);
      sweep[{groups, ci}] = p;
      const double base = sweep.count({1, ci}) ? sweep[{1, ci}].vt_tps : 0;
      std::printf("%-8u %-10.2f %-14.2f %-14.1f %.2fx\n", groups, conflicts[ci],
                  p.span_ms, p.vt_tps, base > 0 ? p.vt_tps / base : 1.0);

      bench::BenchPoint& bp =
          report.point("G" + std::to_string(groups) + "_c" +
                       std::to_string(static_cast<int>(conflicts[ci] * 100)));
      bp.approx.set("vt_blocks_per_sec", p.vt_tps);
      bp.approx.set("span_ms", p.span_ms);
      bp.exact.set("sequenced", static_cast<double>(p.sequenced));
    }
  }

  // --- Gates (deterministic virtual time; CI runs these in Release) ----------
  if (max_groups >= 4) {
    const double g1 = sweep[{1, 0}].vt_tps;
    const double g4 = sweep[{4, 0}].vt_tps;
    const double scaling = g1 > 0 ? g4 / g1 : 0;
    std::printf("\n4-group scaling at zero conflict: %.2fx\n", scaling);
    if (scaling < 2.5) {
      std::printf("ERROR: 4 disjoint groups failed the 2.5x scaling bar (%.2fx)\n",
                  scaling);
      std::exit(1);
    }
    // Conflict must degrade monotonically (5% slack), never collapse below
    // the global-group baseline.
    for (std::uint32_t groups = 2; groups <= max_groups; groups *= 2) {
      for (int ci = 1; ci < 3; ++ci) {
        const double lo = sweep[{groups, ci}].vt_tps;
        const double hi = sweep[{groups, ci - 1}].vt_tps;
        if (lo > hi * 1.05) {
          std::printf("ERROR: G=%u throughput rose with conflict (%.1f -> %.1f)\n",
                      groups, hi, lo);
          std::exit(1);
        }
      }
    }
    const double g4_hot = sweep[{4, 2}].vt_tps;
    const double g1_hot = sweep[{1, 2}].vt_tps;
    std::printf("4-group vs global at 50%% conflict: %.2fx\n",
                g1_hot > 0 ? g4_hot / g1_hot : 0);
    if (g4_hot < g1_hot * 1.2) {
      std::printf("ERROR: G=4 collapsed under conflict (%.1f vs global %.1f)\n",
                  g4_hot, g1_hot);
      std::exit(1);
    }
    report.point("gates").exact.set("scaling_4g_pass", 1.0);
  } else {
    std::printf("\nFIDES_GROUPS=%u < 4: scaling gates skipped\n", max_groups);
  }

  bench::finish_report(report, argc, argv);
  return 0;
}
