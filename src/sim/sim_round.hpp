// SimNet as a round-engine scheduler.
//
// All commit-round and checkpoint choreography lives in src/engine/ — one
// set of reactors shared with the in-process path. This adapter is the only
// simulation-specific piece: it turns engine sends into SimNet events and
// SimNet deliveries into engine dispatches, so the same protocol logic runs
// under seeded delay/reorder/drop/duplication/partition schedules. Message
// payloads cross the simulated wire as canonical bytes and are deserialized
// at the receiver, so the serialization layer is exercised on every hop.
//
// For an honest cluster the outcome is bit-identical to direct mode:
// decisions, blocks, co-signs (deterministic nonces), and ledger state do
// not depend on the delivery schedule — which is exactly the property the
// schedule fuzzer (sim/schedule_fuzz.*) checks en masse.
#pragma once

#include "engine/scheduler.hpp"
#include "sim/simnet.hpp"

namespace fides::sim {

class SimNetScheduler final : public engine::Scheduler, private engine::Outbox {
 public:
  explicit SimNetScheduler(SimNet& net) : net_(&net) {}

  engine::Outbox& outbox() override { return *this; }

  void run(engine::Dispatcher& dispatcher) override {
    net_->run(
        [&](NodeId src, NodeId dst, const Envelope& env, bool replay) {
          if (replay) {
            dispatcher.dispatch_replay(src, dst, env, *this);
          } else {
            dispatcher.dispatch(src, dst, env, *this);
          }
        },
        [&](const engine::ControlEvent& ev) { dispatcher.on_control(ev, *this); });
  }

  // post() keeps the default inline execution: the event loop is
  // single-threaded, so node-local control actions need no queueing.

  std::optional<double> virtual_now_us() const override { return net_->now_us(); }

  /// The event loop is single-threaded by design.
  std::size_t concurrency() const override { return 1; }

  bool supports_crashes() const override { return true; }

  void crash_node(NodeId node) override { net_->crash_now(node); }

  void schedule_recover(NodeId node, double delay_us) override {
    net_->schedule_recover(node, net_->now_us() + delay_us);
  }

  void schedule_failure_probe(NodeId node, double delay_us) override {
    net_->schedule_timeout(node, net_->now_us() + delay_us);
  }

 private:
  void send(NodeId src, NodeId dst, Envelope env) override {
    net_->send(src, dst, std::move(env));
  }

  void send_replay(NodeId src, NodeId dst, Envelope env) override {
    net_->send_sequenced(src, dst, std::move(env));
  }

  SimNet* net_;
};

}  // namespace fides::sim
