#include "fides/server.hpp"

#include "common/cpu_time.hpp"
#include "txn/occ.hpp"

namespace fides {

Server::Server(ServerId id, const ClusterConfig& config, common::ThreadPool* pool,
               ledger::RoundLog* durable)
    : id_(id),
      keypair_(crypto::KeyPair::deterministic(0x5EB0'0000ULL + id.value)),
      shard_(ShardId{id.value},
             store::items_for_shard(ShardId{id.value}, config.num_servers,
                                    config.items_per_shard),
             config.initial_value, config.versioning, pool),
      tf_cohort_(id, keypair_, shard_),
      tpc_cohort_(id, shard_),
      round_log_(durable) {
  if (round_log_ == nullptr) {
    owned_round_log_ = std::make_unique<ledger::MemRoundLog>();
    round_log_ = owned_round_log_.get();
  }
}

void Server::handle_begin(ClientId /*client*/, TxnId /*txn*/) {
  // Begin Transaction carries no state in this design: reads/writes name
  // their transaction explicitly and OCC validation happens at termination.
  // The handler exists because the paper's client protocol sends it (§4.1
  // step 1) and the signed envelope lands in the client-message log.
}

store::ReadResult Server::handle_read(ClientId /*client*/, TxnId /*txn*/, ItemId item) {
  store::ReadResult result = shard_.read(item);

  const bool strike =
      faults_.read_fault != ReadFault::kNone &&
      (!faults_.read_fault_item || *faults_.read_fault_item == item);
  if (strike) {
    switch (faults_.read_fault) {
      case ReadFault::kStaleValue: {
        // Figure 10: return a previous value with up-to-date timestamps.
        const auto prev = shard_.mode() == store::VersioningMode::kMulti &&
                                  shard_.peek(item).wts.logical > 0
                              ? shard_.value_at_version(
                                    item, Timestamp{shard_.peek(item).wts.logical - 1,
                                                    ~std::uint32_t{0}})
                              : std::nullopt;
        result.value = prev ? *prev : to_bytes("stale");
        break;
      }
      case ReadFault::kGarbageValue:
        result.value = to_bytes("garbage");
        break;
      case ReadFault::kNone:
        break;
    }
  }
  return result;
}

WriteAck Server::handle_write(ClientId /*client*/, TxnId txn, ItemId item, Bytes value) {
  const store::ItemRecord& old = shard_.peek(item);
  WriteAck ack{item, old.value, old.rts, old.wts};
  write_buffer_.stage(txn, item, std::move(value));
  return ack;
}

Server::ApplyResult Server::apply_decision(const commit::DecisionMsg& msg,
                                           std::span<const crypto::PublicKey> all_server_keys) {
  const ledger::Block& block = msg.final_block;
  if (!block.cosign || block.signers.empty()) return ApplyResult::kRejected;
  std::vector<crypto::PublicKey> signer_keys;
  signer_keys.reserve(block.signers.size());
  for (const ServerId s : block.signers) {
    if (s.value >= all_server_keys.size()) return ApplyResult::kRejected;
    signer_keys.push_back(all_server_keys[s.value]);
  }
  if (!crypto::cosi_verify(block.signing_bytes(), *block.cosign, signer_keys)) {
    return ApplyResult::kRejected;
  }
  if (block.height < log_.size()) return ApplyResult::kStale;
  if (block.height > log_.size()) return ApplyResult::kFuture;
  if (!(block.prev_hash == log_.head_hash())) {
    // Right height, wrong chain: a block whose prev-hash this server's log
    // cannot host (e.g. a forged chain position smuggled past a speculative
    // cohort, which defers the chain check to exactly this point). Refuse
    // rather than let the log's append discipline throw mid-round.
    return ApplyResult::kRejected;
  }
  ingest_block(block);
  return ApplyResult::kApplied;
}

bool Server::handle_decision(const commit::DecisionMsg& msg,
                             std::span<const crypto::PublicKey> all_server_keys) {
  return apply_decision(msg, all_server_keys) == ApplyResult::kApplied;
}

Server::ApplyResult Server::apply_sequenced(const ledger::Block& block,
                                            std::span<const crypto::PublicKey> all_server_keys) {
  if (!block.cosign || block.signers.empty()) return ApplyResult::kRejected;
  std::vector<crypto::PublicKey> signer_keys;
  signer_keys.reserve(block.signers.size());
  for (const ServerId s : block.signers) {
    if (s.value >= all_server_keys.size()) return ApplyResult::kRejected;
    signer_keys.push_back(all_server_keys[s.value]);
  }
  if (!crypto::cosi_verify(ledger::unchained_signing_bytes(block), *block.cosign,
                           signer_keys)) {
    return ApplyResult::kRejected;
  }
  if (block.height < log_.size()) return ApplyResult::kStale;
  if (block.height > log_.size()) return ApplyResult::kFuture;
  if (!(block.prev_hash == log_.head_hash())) return ApplyResult::kRejected;
  ingest_block(block);
  return ApplyResult::kApplied;
}

Server::ApplyResult Server::apply_decision_2pc(const commit::CommitDecisionMsg& msg) {
  if (msg.final_block.height < log_.size()) return ApplyResult::kStale;
  if (msg.final_block.height > log_.size()) return ApplyResult::kFuture;
  ingest_block(msg.final_block);
  return ApplyResult::kApplied;
}

void Server::handle_decision_2pc(const commit::CommitDecisionMsg& msg) {
  apply_decision_2pc(msg);
}

void Server::ingest_block(const ledger::Block& block) {
  log_.append(block);
  if (block.committed()) apply_block(block);
}

Bytes Server::vote_once(std::uint64_t epoch, std::uint64_t base,
                        const std::string& msg_type, Bytes computed) {
  const auto it = votes_by_epoch_base_.find({epoch, base});
  if (it != votes_by_epoch_base_.end()) return it->second;
  ledger::RoundRecord rec;
  rec.type = ledger::RoundRecord::Type::kVote;
  rec.epoch = epoch;
  rec.base = base;
  rec.msg_type = msg_type;
  rec.payload = computed;
  round_log_->append(rec);
  votes_by_epoch_base_.emplace(std::make_pair(epoch, base), computed);
  latest_vote_base_[epoch] = base;
  return computed;
}

const Bytes* Server::logged_vote(std::uint64_t epoch) const {
  const auto it = latest_vote_base_.find(epoch);
  if (it == latest_vote_base_.end()) return nullptr;
  return logged_vote(epoch, it->second);
}

const Bytes* Server::logged_vote(std::uint64_t epoch, std::uint64_t base) const {
  const auto it = votes_by_epoch_base_.find({epoch, base});
  return it == votes_by_epoch_base_.end() ? nullptr : &it->second;
}

bool Server::respond_once(std::uint64_t nonce_round, const Bytes& challenge_bytes) {
  const auto it = responded_by_round_.find(nonce_round);
  if (it != responded_by_round_.end()) return it->second == challenge_bytes;
  ledger::RoundRecord rec;
  rec.type = ledger::RoundRecord::Type::kResponse;
  rec.epoch = nonce_round;
  rec.msg_type = "tf_response";
  rec.payload = challenge_bytes;
  round_log_->append(rec);
  responded_by_round_.emplace(nonce_round, challenge_bytes);
  return true;
}

void Server::record_decision(std::uint64_t epoch, const std::string& msg_type,
                             const ledger::Block& block) {
  ledger::RoundRecord rec;
  rec.type = ledger::RoundRecord::Type::kDecision;
  rec.epoch = epoch;
  rec.msg_type = msg_type;
  rec.payload = block.serialize();
  round_log_->append(rec);
}

bool Server::restore() {
  const auto records = round_log_->replay();
  if (!records.has_value()) return false;  // integrity violation: refuse
  for (const ledger::RoundRecord& rec : *records) {
    if (rec.type == ledger::RoundRecord::Type::kVote) {
      votes_by_epoch_base_.emplace(std::make_pair(rec.epoch, rec.base), rec.payload);
      latest_vote_base_[rec.epoch] = rec.base;  // replay order = record order
    } else if (rec.type == ledger::RoundRecord::Type::kResponse) {
      responded_by_round_.emplace(rec.epoch, rec.payload);
    } else {
      const auto block = ledger::Block::deserialize(rec.payload);
      if (!block.has_value()) return false;
      ingest_block(*block);
    }
  }
  return true;
}

void Server::apply_block(const ledger::Block& block) {
  const double start = common::thread_cpu_time_us();
  for (const auto& t : block.txns) {
    // Honest application first; datastore faults strike afterwards so the
    // Merkle tree (and hence future signed roots) match the block while the
    // actual stored value does not — the §5 Scenario 3 shape.
    for (const auto& w : t.rw.writes) {
      if (!shard_.contains(w.id)) continue;
      if (faults_.skip_write_item && *faults_.skip_write_item == w.id) {
        // Pretend to apply: tree and version chain advance (they feed the
        // signed roots) but the live value silently keeps its old content.
        const Bytes old_value = shard_.peek(w.id).value;
        shard_.apply_write(w.id, w.new_value, t.commit_ts);
        shard_.corrupt_value(w.id, old_value);
        shard_.corrupt_version(w.id, t.commit_ts, old_value);
        continue;
      }
      shard_.apply_write(w.id, w.new_value, t.commit_ts);
    }
    for (const ItemId id : t.rw.touched_items()) {
      if (shard_.contains(id)) shard_.update_read_ts(id, t.commit_ts);
    }
    // Drop this transaction's buffered writes (they are now applied or, for
    // aborted blocks, this code never runs and discard happens lazily).
    write_buffer_.discard(t.id);

    if (faults_.corrupt_after_commit_item) {
      const ItemId victim = *faults_.corrupt_after_commit_item;
      if (shard_.contains(victim)) {
        shard_.corrupt_value(victim, to_bytes("corrupted"));
        shard_.corrupt_version(victim, t.commit_ts, to_bytes("corrupted"));
      }
    }
  }
  add_mht_time_us(common::thread_cpu_time_us() - start);
}

AuditItemProof Server::audit_item(ItemId item, const Timestamp& ts) const {
  return audit_items(std::span(&item, 1), ts).front();
}

std::vector<AuditItemProof> Server::audit_items(std::span<const ItemId> items,
                                                const Timestamp& ts) const {
  std::vector<AuditItemProof> proofs;
  proofs.reserve(items.size());
  if (shard_.mode() == store::VersioningMode::kMulti) {
    const merkle::MerkleTree tree = shard_.tree_at_version(ts);
    for (const ItemId item : items) {
      AuditItemProof proof;
      proof.id = item;
      const auto value = shard_.value_at_version(item, ts);
      proof.value = value ? *value : Bytes{};
      proof.vo = merkle::make_vo(tree, shard_.leaf_index(item));
      proofs.push_back(std::move(proof));
    }
  } else {
    for (const ItemId item : items) {
      AuditItemProof proof;
      proof.id = item;
      proof.value = shard_.peek(item).value;
      proof.vo = shard_.current_vo(item);
      proofs.push_back(std::move(proof));
    }
  }
  return proofs;
}

}  // namespace fides
