#include "net/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace fides::net {

pid_t spawn(const std::vector<std::string>& argv, const std::string& stderr_path) {
  if (argv.empty()) throw std::runtime_error("spawn: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("spawn: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    const int fd = ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;
    return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

bool try_wait(pid_t pid, int* code) {
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r != pid) return false;
  if (WIFEXITED(status)) {
    *code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    *code = -WTERMSIG(status);
  } else {
    *code = -1;
  }
  return true;
}

void kill_process(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

std::string serverd_binary_path() {
  if (const char* env = std::getenv("FIDES_SERVERD"); env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string self(buf);
    const auto slash = self.rfind('/');
    if (slash != std::string::npos) {
      return self.substr(0, slash + 1) + "fides_serverd";
    }
  }
  return "./fides_serverd";  // last resort: CWD
}

}  // namespace fides::net
