// Timestamp-ordering optimistic concurrency control (§4.3.1).
//
// "Similar to timestamp based optimistic concurrency control, at commit
// time, a server checks if the data accessed in the terminating transaction
// has been updated since they were read. If yes, the server chooses to
// abort." A server votes commit only when the transaction serializes at its
// client-assigned commit timestamp:
//   * every read still sees the current version (no intervening writer) and
//     the commit timestamp exceeds the version it read;
//   * every write targets items whose current rts and wts both precede the
//     commit timestamp (no RW-, WW-, or WR-conflict per Lemma 3).
#pragma once

#include <string>

#include "store/shard.hpp"
#include "txn/transaction.hpp"

namespace fides::txn {

enum class Vote : std::uint8_t {
  kCommit,
  kAbort,
};

struct ValidationResult {
  Vote vote{Vote::kAbort};
  std::string reason;  ///< human-readable abort cause (empty on commit)

  bool ok() const { return vote == Vote::kCommit; }
};

/// Validates the sub-RwSet of `txn` that touches items owned by `shard`.
/// Items owned by other shards are ignored (each cohort validates only its
/// own partition).
ValidationResult validate_occ(const store::Shard& shard, const Transaction& txn);

/// Applies the committed transaction's effects on `shard`: installs writes,
/// advances rts on reads and rts+wts on writes to the commit timestamp
/// (§4.1 step 7, "Update datastore").
void apply_committed(store::Shard& shard, const Transaction& txn);

}  // namespace fides::txn
