#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace fides::workload {

namespace {

/// ln(x) for x in (0, 1], using only +,-,*,/ on doubles. std::log may
/// differ by an ulp across libm versions, which would fork the Poisson
/// arrival schedule — and with it every virtual-time metric the CI bench
/// baseline compares exactly. IEEE basic operations are correctly rounded
/// everywhere, so this evaluation is bit-identical on any platform (the
/// repo builds without FP contraction on default x86-64 flags).
double portable_log(double x) {
  int e = 0;
  double f = std::frexp(x, &e);  // x = f * 2^e, f in [0.5, 1)
  // Fold f into [sqrt(1/2), sqrt(2)) so the series argument stays small.
  if (f < 0.70710678118654752440) {
    f *= 2.0;
    e -= 1;
  }
  const double z = (f - 1.0) / (f + 1.0);  // |z| <= 0.1716
  const double z2 = z * z;
  // atanh series: ln(f) = 2z * (1 + z2/3 + z2^2/5 + ...); nine terms give
  // ~1e-15 relative error at this argument range.
  double p = 1.0 / 17.0;
  p = p * z2 + 1.0 / 15.0;
  p = p * z2 + 1.0 / 13.0;
  p = p * z2 + 1.0 / 11.0;
  p = p * z2 + 1.0 / 9.0;
  p = p * z2 + 1.0 / 7.0;
  p = p * z2 + 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  p = p * z2 + 1.0;
  return 2.0 * z * p + static_cast<double>(e) * 0.69314718055994530942;
}

}  // namespace

std::vector<double> arrival_times_us(const ArrivalConfig& config, std::size_t n) {
  std::vector<double> times;
  times.reserve(n);
  const double rate = std::max(config.rate_tps, 1e-6);
  const double mean_gap_us = 1e6 / rate;
  if (config.process == ArrivalProcess::kPoisson) {
    Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Inverse-CDF exponential draw; clamp the uniform away from 0 so the
      // log is finite and gaps stay strictly positive.
      const double u = std::max(rng.uniform01(), 1e-12);
      t += -mean_gap_us * portable_log(u);
      times.push_back(t);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(static_cast<double>(i + 1) * mean_gap_us);
    }
  }
  return times;
}

}  // namespace fides::workload
