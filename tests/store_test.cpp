// Unit tests for the datastore substrate: shards, version chains, write
// buffers, placement.
#include <gtest/gtest.h>

#include "store/shard.hpp"
#include "store/write_buffer.hpp"

namespace fides::store {
namespace {

Shard make_shard(VersioningMode mode, std::size_t items = 8) {
  std::vector<ItemId> ids;
  for (std::size_t i = 0; i < items; ++i) ids.push_back(i * 10);
  return Shard(ShardId{0}, std::move(ids), to_bytes("init"), mode);
}

TEST(Shard, InitialState) {
  Shard s = make_shard(VersioningMode::kSingle);
  EXPECT_EQ(s.item_count(), 8u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(70));
  EXPECT_FALSE(s.contains(5));
  const ItemRecord& rec = s.peek(10);
  EXPECT_EQ(to_string(rec.value), "init");
  EXPECT_TRUE(rec.rts.is_zero());
  EXPECT_TRUE(rec.wts.is_zero());
}

TEST(Shard, ReadBumpsStats) {
  Shard s = make_shard(VersioningMode::kSingle);
  s.read(10);
  s.read(20);
  EXPECT_EQ(s.stats().reads, 2u);
}

TEST(Shard, UnknownItemThrows) {
  Shard s = make_shard(VersioningMode::kSingle);
  EXPECT_THROW(s.read(5), std::out_of_range);
  EXPECT_THROW(s.peek(5), std::out_of_range);
  EXPECT_THROW(s.leaf_index(5), std::out_of_range);
}

TEST(Shard, ApplyWriteUpdatesValueAndTimestamps) {
  Shard s = make_shard(VersioningMode::kSingle);
  const Timestamp ts{5, 1};
  s.apply_write(10, to_bytes("v1"), ts);
  const ItemRecord& rec = s.peek(10);
  EXPECT_EQ(to_string(rec.value), "v1");
  EXPECT_EQ(rec.wts, ts);
}

TEST(Shard, UpdateReadTsMonotone) {
  Shard s = make_shard(VersioningMode::kSingle);
  s.update_read_ts(10, Timestamp{5, 0});
  s.update_read_ts(10, Timestamp{3, 0});  // lower: must not regress
  EXPECT_EQ(s.peek(10).rts, (Timestamp{5, 0}));
}

TEST(Shard, WriteChangesMerkleRoot) {
  Shard s = make_shard(VersioningMode::kSingle);
  const auto before = s.merkle_root();
  s.apply_write(10, to_bytes("v1"), Timestamp{1, 0});
  EXPECT_NE(s.merkle_root(), before);
}

TEST(Shard, RootAfterMatchesActualApply) {
  Shard s = make_shard(VersioningMode::kSingle);
  const std::vector<std::pair<ItemId, Bytes>> writes = {{10, to_bytes("a")},
                                                        {30, to_bytes("b")}};
  const auto predicted = s.root_after(writes);
  EXPECT_NE(predicted, s.merkle_root());  // prediction, not mutation
  s.apply_write(10, to_bytes("a"), Timestamp{1, 0});
  s.apply_write(30, to_bytes("b"), Timestamp{1, 0});
  EXPECT_EQ(s.merkle_root(), predicted);
}

TEST(Shard, CurrentVoAuthenticatesAgainstRoot) {
  Shard s = make_shard(VersioningMode::kSingle);
  s.apply_write(20, to_bytes("x"), Timestamp{1, 0});
  const auto vo = s.current_vo(20);
  EXPECT_TRUE(merkle::verify_vo(item_leaf_digest(20, to_bytes("x")), vo,
                                s.merkle_root()));
}

TEST(Shard, CorruptValueLeavesTreeStale) {
  // The §5 Scenario 3 shape: value corrupted behind the Merkle tree's back,
  // so the stored value no longer authenticates.
  Shard s = make_shard(VersioningMode::kSingle);
  s.apply_write(20, to_bytes("honest"), Timestamp{1, 0});
  const auto root = s.merkle_root();
  s.corrupt_value(20, to_bytes("evil"));
  EXPECT_EQ(s.merkle_root(), root);  // tree untouched
  EXPECT_FALSE(merkle::verify_vo(
      item_leaf_digest(20, s.peek(20).value), s.current_vo(20), root));
}

TEST(Shard, MultiVersionKeepsHistory) {
  Shard s = make_shard(VersioningMode::kMulti);
  s.apply_write(10, to_bytes("v1"), Timestamp{1, 0});
  s.apply_write(10, to_bytes("v2"), Timestamp{2, 0});
  EXPECT_EQ(to_string(*s.value_at_version(10, Timestamp{1, 0})), "v1");
  EXPECT_EQ(to_string(*s.value_at_version(10, Timestamp{2, 0})), "v2");
  // Timestamp between versions resolves to the earlier one.
  EXPECT_EQ(to_string(*s.value_at_version(10, Timestamp{1, 999})), "v1");
}

TEST(Shard, TreeAtVersionReconstructsHistoricalRoot) {
  Shard s = make_shard(VersioningMode::kMulti);
  s.apply_write(10, to_bytes("v1"), Timestamp{1, 0});
  const auto root_v1 = s.merkle_root();
  s.apply_write(10, to_bytes("v2"), Timestamp{2, 0});
  EXPECT_NE(s.merkle_root(), root_v1);
  EXPECT_EQ(s.tree_at_version(Timestamp{1, 0}).root(), root_v1);
  EXPECT_EQ(s.tree_at_version(Timestamp{2, 0}).root(), s.merkle_root());
}

TEST(Shard, TreeAtVersionRequiresMultiVersion) {
  Shard s = make_shard(VersioningMode::kSingle);
  EXPECT_THROW(s.tree_at_version(Timestamp{1, 0}), std::logic_error);
  EXPECT_FALSE(s.value_at_version(10, Timestamp{1, 0}).has_value());
}

TEST(Shard, CorruptVersionAltersHistoricalTree) {
  Shard s = make_shard(VersioningMode::kMulti);
  s.apply_write(10, to_bytes("v1"), Timestamp{1, 0});
  const auto honest_root = s.tree_at_version(Timestamp{1, 0}).root();
  ASSERT_TRUE(s.corrupt_version(10, Timestamp{1, 0}, to_bytes("evil")));
  EXPECT_NE(s.tree_at_version(Timestamp{1, 0}).root(), honest_root);
}

TEST(VersionChain, AtSelectsLatestNotAfter) {
  VersionChain chain(to_bytes("v0"));
  chain.append(Timestamp{10, 0}, to_bytes("v10"));
  chain.append(Timestamp{20, 0}, to_bytes("v20"));
  EXPECT_EQ(to_string(chain.at(Timestamp{5, 0})->value), "v0");
  EXPECT_EQ(to_string(chain.at(Timestamp{10, 0})->value), "v10");
  EXPECT_EQ(to_string(chain.at(Timestamp{15, 0})->value), "v10");
  EXPECT_EQ(to_string(chain.at(Timestamp{99, 0})->value), "v20");
  EXPECT_EQ(chain.version_count(), 3u);
}

TEST(VersionChain, RejectsNonMonotonicAppend) {
  VersionChain chain(to_bytes("v0"));
  chain.append(Timestamp{10, 0}, to_bytes("v10"));
  EXPECT_THROW(chain.append(Timestamp{10, 0}, to_bytes("dup")), std::invalid_argument);
  EXPECT_THROW(chain.append(Timestamp{5, 0}, to_bytes("old")), std::invalid_argument);
}

TEST(WriteBuffer, StageTakeDiscard) {
  WriteBuffer buf;
  const TxnId t1{1, 1}, t2{1, 2};
  buf.stage(t1, 10, to_bytes("a"));
  buf.stage(t1, 20, to_bytes("b"));
  buf.stage(t2, 10, to_bytes("c"));
  EXPECT_EQ(buf.pending_transactions(), 2u);
  EXPECT_EQ(buf.staged(t1).size(), 2u);

  const auto writes = buf.take(t1);
  EXPECT_EQ(writes.size(), 2u);
  EXPECT_EQ(buf.pending_transactions(), 1u);
  EXPECT_TRUE(buf.take(t1).empty());  // already taken

  buf.discard(t2);
  EXPECT_EQ(buf.pending_transactions(), 0u);
}

TEST(WriteBuffer, LastWriterWinsWithinTxn) {
  WriteBuffer buf;
  const TxnId t{1, 1};
  buf.stage(t, 10, to_bytes("first"));
  buf.stage(t, 10, to_bytes("second"));
  const auto writes = buf.take(t);
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(to_string(writes[0].new_value), "second");
}

TEST(Placement, RoundRobinPartition) {
  // Every item in [0, n*k) belongs to exactly one shard, and that shard's
  // item list contains it.
  const std::uint32_t servers = 4, per_shard = 25;
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    const auto items = items_for_shard(ShardId{s}, servers, per_shard);
    EXPECT_EQ(items.size(), per_shard);
    for (const ItemId item : items) {
      EXPECT_EQ(shard_for_item(item, servers), (ShardId{s}));
    }
    total += items.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(servers) * per_shard);
}

TEST(Shard, DuplicateItemIdsDeduplicated) {
  Shard s(ShardId{0}, {5, 5, 7}, to_bytes("x"), VersioningMode::kSingle);
  EXPECT_EQ(s.item_count(), 2u);
}

TEST(Shard, MerkleRehashStatsAccumulate) {
  Shard s = make_shard(VersioningMode::kSingle);  // 8 items -> depth 3
  s.apply_write(10, to_bytes("a"), Timestamp{1, 0});
  EXPECT_EQ(s.stats().merkle_nodes_rehashed, 3u);
  EXPECT_EQ(s.stats().committed_writes, 1u);
}

}  // namespace
}  // namespace fides::store
