#!/usr/bin/env python3
"""fides_lint -- repo-invariant linter for the Fides codebase.

Checks invariants that the compiler cannot (or that we only enforce under
clang, but want diagnosed everywhere):

  raw-mutex        std::mutex / std::unique_lock / std::condition_variable &
                   friends outside the sanctioned wrapper (src/common/mutex.hpp).
                   Raw primitives are invisible to clang's thread-safety
                   analysis; everything must go through common::Mutex /
                   common::MutexLock / common::CondVar.
  nondeterminism   std::random_device, rand()/srand(), time()/std::time(),
                   gettimeofday, std::chrono::system_clock, and std:: random
                   engines. All randomness flows through common/rng.hpp
                   (seeded xoshiro256**) so runs reproduce from a seed;
                   wall-clock time is allowed only via steady_clock for
                   measurement, never as an input to protocol logic.
  sim-wallclock    any clock read (steady_clock included) inside src/sim/ --
                   the simulator runs on a virtual clock; reading the host
                   clock there breaks schedule reproducibility.
  decode-bounds    a .cpp file that defines a decode function must reference
                   DecodeError or include common/serde.hpp (whose Reader
                   throws it on truncation). Wire decoding that can fail any
                   other way -- assert, UB, silent truncation -- is a
                   protocol-boundary bug.
  serde-pairing    every free function encode_X has a decode_X counterpart
                   somewhere in the tree and vice versa; a header declaring a
                   member `encode(` also declares `decode(`. One-way codecs
                   drift silently.
  assert-effects   assert() whose argument has side effects (++/--/
                   assignment/mutating container calls) -- vanishes under
                   NDEBUG and changes behavior between build types.
  guarded-fields   in the annotated concurrency layer (GUARDED_FIELD_FILES),
                   every member field named with a trailing underscore must
                   either be GUARDED_BY(a mutex), a std::atomic, one of the
                   wrapper types, or carry a `confined(...)` tag naming the
                   thread-confinement story:
                     confined(actor)      only ever touched from one logical
                                          thread of control
                     confined(ctor)       written in the constructor, read-only
                                          after
                     confined(ctor/dtor)  touched only in ctor/dtor (no
                                          concurrent access exists yet/anymore)
                     confined(setup)      written during single-threaded setup,
                                          read-only while rounds run
                     confined(driver)     touched only by the run()/collect()
                                          driver thread
                     confined(shared-atomics)  aggregate whose every field is
                                          itself an atomic
                   Nested plain-struct fields (no trailing underscore) are
                   guarded transitively through their containers and are out
                   of scope for the heuristic.

Suppressions (always give a reason after `--`):

  // fides-lint: allow(rule) -- reason        suppress `rule` for this line
  // fides-lint: allow-file(rule) -- reason   suppress `rule` for this file
  // fides-lint: off(rule)                    suppress until on(rule)
  // fides-lint: on(rule)

Usage:
  fides_lint.py [--root DIR] [paths...]   # default paths: src tests tools bench examples
  fides_lint.py --self-check              # run the embedded fixture suite
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

# The concurrency layer covered by the thread-safety annotation pass: every
# trailing-underscore member here must be annotated or carry a confined() tag.
GUARDED_FIELD_FILES = [
    "src/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
    "src/engine/inproc_scheduler.hpp",
    "src/engine/inproc_scheduler.cpp",
    "src/engine/pipeline.cpp",
    "src/ordserv/sequencer.hpp",
    "src/ordserv/sequencer.cpp",
    "src/ordserv/group_engine.cpp",
    "src/fides/transport.hpp",
    "src/net/poller.hpp",
    "src/net/poller.cpp",
    "src/net/socket_scheduler.hpp",
]

# The one file allowed to name the raw std primitives (it wraps them).
RAW_MUTEX_SANCTIONED = "src/common/mutex.hpp"

ALL_RULES = (
    "raw-mutex",
    "nondeterminism",
    "sim-wallclock",
    "decode-bounds",
    "serde-pairing",
    "assert-effects",
    "guarded-fields",
)

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)

NONDET_RE = re.compile(
    r"std::random_device\b"
    r"|(?<![\w.:>])s?rand\s*\("
    r"|std::time\s*\("
    r"|(?<![\w.:>])time\s*\("
    r"|\bgettimeofday\b"
    r"|std::chrono::system_clock\b"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b)\b"
)

SIM_WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|\bclock_gettime\b"
)

# A decode function *definition* (has a body) -- approximated by name + "(",
# which in practice only appears in files that implement or declare codecs.
DECODE_FN_RE = re.compile(r"\bdecode\w*\s*\(")
SERDE_INCLUDE_RE = re.compile(r'#\s*include\s+"common/serde\.hpp"')

ENCODE_FREE_RE = re.compile(r"\bencode_(\w+)\s*\(")
DECODE_FREE_RE = re.compile(r"\bdecode_(\w+)\s*\(")
ENCODE_MEMBER_RE = re.compile(r"\b(?:Bytes|void)\s+encode\s*\(")

ASSERT_RE = re.compile(r"(?<!static_)(?<!\w)assert\s*\((?P<body>.*)")
ASSERT_EFFECT_RE = re.compile(
    r"\+\+|--"
    r"|(?<![=!<>+\-*/&|^])=(?![=])"
    r"|\.(?:push_back|pop_back|pop_front|insert|erase|emplace\w*|clear|reset|swap)\s*\("
    r"|\bfetch_(?:add|sub|and|or|xor)\b"
)

# A single-line trailing-underscore member declaration. Multi-line
# declarations (type on one line, GUARDED_BY(...) + ';' on the next) never
# match -- those are annotated by construction or they wouldn't be split.
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|const\s+)*"
    r"[A-Za-z_][\w:]*(?:<[^;]*>)?[&*\s]+"
    r"(?:[A-Za-z_][\w:]*(?:<[^;]*>)?[&*\s]+)*"
    r"([a-z][a-z0-9_]*_)\s*(?:\{[^{};]*\})?\s*;"
)
MEMBER_DECL_EXCLUDE_RE = re.compile(
    r"^\s*(?:return|using|throw|delete|typedef|case|goto|else|if|while|for|do|switch)\b"
)
MEMBER_OK_TYPE_RE = re.compile(r"std::atomic\b|common::Mutex\b|common::CondVar\b")
CONFINED_TAG_RE = re.compile(r"\bconfined\([^)]+\)")

SUPPRESS_RE = re.compile(r"fides-lint:\s*(allow|allow-file|off|on)\(([\w-]+)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


def split_code_comment(line, in_block_comment):
    """Returns (code, comment, in_block_comment_after). String literals are
    blanked out of `code` so their contents never trip a rule."""
    code = []
    comment = []
    i = 0
    n = len(line)
    in_string = None  # the quote char, or None
    while i < n:
        c = line[i]
        if in_block_comment:
            if line.startswith("*/", i):
                in_block_comment = False
                i += 2
            else:
                comment.append(c)
                i += 1
            continue
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            code.append(" ")
            continue
        if c in "\"'":
            in_string = c
            code.append(" ")
            i += 1
            continue
        if line.startswith("//", i):
            comment.append(line[i + 2 :])
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        code.append(c)
        i += 1
    return "".join(code), "".join(comment), in_block_comment


class FileLinter:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.lines = text.splitlines()
        self.violations = []
        self.file_allowed = set()
        self.off = set()
        # Pre-scan for allow-file() so position in the file doesn't matter.
        for line in self.lines:
            for kind, rule in SUPPRESS_RE.findall(line):
                if kind == "allow-file":
                    self.file_allowed.add(rule)

    def report(self, lineno, rule, message, line_suppressed):
        if rule in self.file_allowed or rule in self.off or rule in line_suppressed:
            return
        self.violations.append(Violation(self.rel, lineno, rule, message))

    def lint(self):
        rel = self.rel.replace(os.sep, "/")
        in_sim = rel.startswith("src/sim/")
        in_guarded = rel in GUARDED_FIELD_FILES
        raw_mutex_sanctioned = rel == RAW_MUTEX_SANCTIONED

        has_decode_def = False
        decode_def_line = 0
        mentions_decode_error = "DecodeError" in "\n".join(self.lines)
        includes_serde = False
        encode_names = set()
        decode_names = set()
        member_encode_line = 0
        member_decode = False

        in_block = False
        for idx, raw in enumerate(self.lines):
            lineno = idx + 1
            suppressed = set()
            toggles = SUPPRESS_RE.findall(raw)
            for kind, rule in toggles:
                if kind == "allow":
                    suppressed.add(rule)
                elif kind == "off":
                    self.off.add(rule)
                elif kind == "on":
                    self.off.discard(rule)

            code, comment, in_block = split_code_comment(raw, in_block)

            if not raw_mutex_sanctioned and RAW_MUTEX_RE.search(code):
                self.report(
                    lineno,
                    "raw-mutex",
                    "raw std synchronization primitive; use common::Mutex / "
                    "common::MutexLock / common::CondVar (src/common/mutex.hpp) so "
                    "clang thread-safety analysis sees the lock",
                    suppressed,
                )

            m = NONDET_RE.search(code)
            if m:
                self.report(
                    lineno,
                    "nondeterminism",
                    "nondeterministic source %r; all randomness goes through "
                    "common/rng.hpp and protocol logic never reads the wall clock"
                    % m.group(0),
                    suppressed,
                )

            if in_sim and SIM_WALLCLOCK_RE.search(code):
                self.report(
                    lineno,
                    "sim-wallclock",
                    "host clock read inside src/sim/ -- the simulator runs on a "
                    "virtual clock; host time breaks schedule reproducibility",
                    suppressed,
                )

            if SERDE_INCLUDE_RE.search(raw):
                includes_serde = True
            if DECODE_FN_RE.search(code) and not has_decode_def:
                has_decode_def = True
                decode_def_line = lineno
            for name in ENCODE_FREE_RE.findall(code):
                encode_names.add(name)
            for name in DECODE_FREE_RE.findall(code):
                decode_names.add(name)
            if ENCODE_MEMBER_RE.search(code) and member_encode_line == 0:
                member_encode_line = lineno
            if re.search(r"\bdecode\s*\(", code):
                member_decode = True

            am = ASSERT_RE.search(code)
            if am and ASSERT_EFFECT_RE.search(am.group("body")):
                self.report(
                    lineno,
                    "assert-effects",
                    "assert() argument appears to have side effects; it vanishes "
                    "under NDEBUG -- hoist the effect out of the assert",
                    suppressed,
                )

            if in_guarded:
                annotated = (
                    "GUARDED_BY(" in code
                    or "PT_GUARDED_BY(" in code
                    or MEMBER_OK_TYPE_RE.search(code)
                    or CONFINED_TAG_RE.search(comment)
                )
                if not annotated and not MEMBER_DECL_EXCLUDE_RE.match(code):
                    if "=" not in code and "(" not in code:
                        dm = MEMBER_DECL_RE.match(code)
                        if dm:
                            self.report(
                                lineno,
                                "guarded-fields",
                                "member %r in the annotated concurrency layer has "
                                "neither GUARDED_BY(...) nor a confined(...) tag "
                                "documenting its thread-confinement" % dm.group(1),
                                suppressed,
                            )

        # File-granularity rules (line suppressions don't apply; use
        # allow-file for these).
        if (
            has_decode_def
            and rel.endswith(".cpp")
            and rel.startswith("src/")
            and not mentions_decode_error
            and not includes_serde
        ):
            self.report(
                decode_def_line,
                "decode-bounds",
                "file defines/uses a decode function but neither references "
                "DecodeError nor includes common/serde.hpp -- wire decoding must "
                "fail by throwing DecodeError",
                set(),
            )
        if (
            member_encode_line
            and not member_decode
            and rel.endswith((".hpp", ".h"))
        ):
            self.report(
                member_encode_line,
                "serde-pairing",
                "header declares a member encode() without a matching decode() -- "
                "one-way codecs drift silently",
                set(),
            )
        return self.violations, encode_names, decode_names, self.file_allowed


def lint_tree(root, paths):
    files = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(p)
            continue
        for dirpath, _dirnames, filenames in os.walk(full):
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.relpath(os.path.join(dirpath, fn), root))

    violations = []
    # encode_X/decode_X pairing is resolved across the whole tree: the codec
    # halves legitimately live in different files.
    encode_sites = {}  # name -> (rel, line)
    decode_sites = {}
    pairing_allowed_files = set()

    for rel in sorted(set(files)):
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            violations.append(Violation(rel, 0, "io", str(e)))
            continue
        linter = FileLinter(full, rel.replace(os.sep, "/"), text)
        vs, enc, dec, allowed = linter.lint()
        violations.extend(vs)
        if "serde-pairing" in allowed:
            pairing_allowed_files.add(rel.replace(os.sep, "/"))
        for name in enc:
            encode_sites.setdefault(name, set()).add(rel.replace(os.sep, "/"))
        for name in dec:
            decode_sites.setdefault(name, set()).add(rel.replace(os.sep, "/"))

    # A codec half is exempt when any file mentioning it carries
    # allow-file(serde-pairing) -- the declaring header speaks for its callers.
    for name, rels in sorted(encode_sites.items()):
        if name not in decode_sites and not (rels & pairing_allowed_files):
            violations.append(
                Violation(
                    min(rels),
                    0,
                    "serde-pairing",
                    "encode_%s has no decode_%s anywhere in the tree" % (name, name),
                )
            )
    for name, rels in sorted(decode_sites.items()):
        if name not in encode_sites and not (rels & pairing_allowed_files):
            violations.append(
                Violation(
                    min(rels),
                    0,
                    "serde-pairing",
                    "decode_%s has no encode_%s anywhere in the tree" % (name, name),
                )
            )
    return violations


# --- self-check ----------------------------------------------------------------

FIXTURES = [
    # (name, rel_path, source, expected rule hits)
    (
        "raw mutex flagged",
        "src/x/a.cpp",
        "#include <mutex>\nstd::mutex m;\n",
        ["raw-mutex"],
    ),
    (
        "raw mutex in comment ignored",
        "src/x/a.cpp",
        "// std::mutex is banned here\nint x;\n",
        [],
    ),
    (
        "raw mutex in string ignored",
        "src/x/a.cpp",
        'const char* s = "std::mutex";\n',
        [],
    ),
    (
        "raw mutex allowed inline",
        "src/x/a.cpp",
        "std::mutex m;  // fides-lint: allow(raw-mutex) -- test fixture\n",
        [],
    ),
    (
        "raw mutex sanctioned file",
        "src/common/mutex.hpp",
        "std::mutex m_;\n",
        [],
    ),
    (
        "off/on block",
        "src/x/a.cpp",
        "// fides-lint: off(raw-mutex)\nstd::mutex a;\n"
        "// fides-lint: on(raw-mutex)\nstd::mutex b;\n",
        ["raw-mutex"],
    ),
    (
        "allow-file",
        "src/x/a.cpp",
        "// fides-lint: allow-file(raw-mutex) -- fixture\nstd::mutex a;\nstd::mutex b;\n",
        [],
    ),
    (
        "random_device and time()",
        "src/x/b.cpp",
        "auto r = std::random_device{}();\nauto t = time(nullptr);\n",
        ["nondeterminism", "nondeterminism"],
    ),
    (
        "cpu_time() call not flagged",
        "src/x/b.cpp",
        "double t = cpu_time();\nauto d = p.time();\n",
        [],
    ),
    (
        "std engine flagged",
        "src/x/b.cpp",
        "std::mt19937 gen(42);\n",
        ["nondeterminism"],
    ),
    (
        "steady_clock fine outside sim",
        "src/workload/c.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n",
        [],
    ),
    (
        "steady_clock banned in sim",
        "src/sim/c.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n",
        ["sim-wallclock"],
    ),
    (
        "decode without DecodeError",
        "src/x/d.cpp",
        "Foo decode_foo(BytesView b) { return Foo{}; }\n"
        "void encode_foo(Writer& w);\n",
        ["decode-bounds"],
    ),
    (
        "decode with serde include",
        "src/x/d.cpp",
        '#include "common/serde.hpp"\n'
        "Foo decode_foo(BytesView b) { return Foo{}; }\n"
        "void encode_foo(Writer& w);\n",
        [],
    ),
    (
        "unpaired encode",
        "src/x/e.cpp",
        "void encode_orphan(Writer& w) {}\n",
        ["serde-pairing"],
    ),
    (
        "member encode without decode",
        "src/x/f.hpp",
        "struct F { Bytes encode() const; };\n",
        ["serde-pairing"],
    ),
    (
        "member encode with decode",
        "src/x/f.hpp",
        "struct F { Bytes encode() const; static F decode(BytesView b); };\n",
        [],
    ),
    (
        "assert with side effect",
        "src/x/g.cpp",
        "void f() { assert(q.push_back(1), true); assert(++n > 0); }\n",
        ["assert-effects"],
    ),
    (
        "assert with comparison fine",
        "src/x/g.cpp",
        "void f() { assert(a == b); assert(n <= m); static_assert(sizeof(int) == 4); }\n",
        [],
    ),
    (
        "unannotated guarded member",
        "src/net/poller.hpp",
        "class P {\n  std::vector<int> entries_;\n};\n",
        ["guarded-fields"],
    ),
    (
        "guarded member ok",
        "src/net/poller.hpp",
        "class P {\n  std::vector<int> entries_ GUARDED_BY(mutex_);\n"
        "  int count_;  // confined(actor)\n"
        "  std::atomic<int> hits_{0};\n  common::Mutex mutex_;\n};\n",
        [],
    ),
    (
        "guarded heuristic skips locals and returns",
        "src/net/poller.hpp",
        "int f() {\n  return entries_;\n}\n",
        [],
    ),
    (
        "file outside guarded list not checked",
        "src/x/h.hpp",
        "class P {\n  std::vector<int> entries_;\n};\n",
        [],
    ),
]


def self_check():
    import shutil
    import tempfile

    failures = []
    for name, rel, source, expected in FIXTURES:
        tmp = tempfile.mkdtemp(prefix="fides_lint_check_")
        try:
            full = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(source)
            got = sorted(v.rule for v in lint_tree(tmp, [os.path.dirname(rel)]))
            if got != sorted(expected):
                failures.append(
                    "%s: expected %s, got %s" % (name, sorted(expected), got)
                )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    if failures:
        for f in failures:
            print("SELF-CHECK FAIL:", f, file=sys.stderr)
        return 1
    print("fides_lint self-check: %d fixtures passed" % len(FIXTURES))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repo root (default: cwd)")
    ap.add_argument("--self-check", action="store_true", help="run the fixture suite")
    ap.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories relative to --root "
        "(default: src tests tools bench examples)",
    )
    args = ap.parse_args()

    if args.self_check:
        return self_check()

    paths = args.paths or ["src", "tests", "tools", "bench", "examples"]
    paths = [p for p in paths if os.path.exists(os.path.join(args.root, p))]
    violations = lint_tree(args.root, paths)
    for v in violations:
        print(v)
    if violations:
        print(
            "fides_lint: %d violation(s). See tools/fides_lint.py for the rule "
            "catalogue and suppression syntax." % len(violations),
            file=sys.stderr,
        )
        return 1
    print("fides_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
