#include "workload/driver.hpp"

#include <algorithm>
#include <chrono>

namespace fides::workload {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();

  Cluster cluster(config.cluster);
  Client& client = cluster.make_client();
  const std::uint64_t total_items =
      static_cast<std::uint64_t>(config.cluster.num_servers) *
      config.cluster.items_per_shard;
  YcsbWorkload workload(config.workload, total_items, config.cluster.seed);

  ExperimentResult result;
  result.threads = cluster.round_threads();
  result.pipeline_depth = std::max<std::uint32_t>(1, config.cluster.pipeline_depth);
  double total_latency_us = 0;
  double total_measured_us = 0;
  double total_commit_wall_us = 0;
  double total_mht_us = 0;

  // Execute one window's transactions against the data path, then terminate
  // them together (§4.6 batching). The window spans pipeline_depth blocks so
  // a deeper pipeline always has its next block ready.
  const std::size_t window = config.txns_per_block * result.pipeline_depth;
  std::size_t remaining = config.total_txns;
  commit::BatchBuilder batcher(config.txns_per_block);
  while (remaining > 0) {
    workload.begin_batch();
    const std::size_t n = std::min(window, remaining);
    for (std::size_t i = 0; i < n; ++i) {
      batcher.enqueue(workload.run_transaction(client));
    }
    remaining -= n;

    std::vector<std::vector<commit::SignedEndTxn>> batches;
    while (!batcher.empty()) {
      batches.push_back(batcher.next_batch());
    }
    const PipelineResult run = cluster.run_blocks(std::move(batches));
    total_commit_wall_us += run.wall_us;
    for (const RoundMetrics& metrics : run.rounds) {
      ++result.blocks;
      total_latency_us += metrics.modeled_latency_us;
      total_measured_us += metrics.measured_latency_us;
      total_mht_us += metrics.mht_us;
      if (metrics.decision == ledger::Decision::kCommit) {
        result.committed_txns += metrics.txns_in_block;
      } else {
        result.aborted_txns += metrics.txns_in_block;
      }
    }
  }

  if (result.blocks > 0) {
    result.avg_latency_ms = total_latency_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_measured_ms =
        total_measured_us / 1000.0 / static_cast<double>(result.blocks);
    result.avg_mht_ms = total_mht_us / 1000.0 / static_cast<double>(result.blocks);
  }
  if (total_latency_us > 0) {
    result.throughput_tps =
        static_cast<double>(result.committed_txns) / (total_latency_us / 1e6);
  }
  if (total_commit_wall_us > 0) {
    result.measured_throughput_tps =
        static_cast<double>(result.committed_txns) / (total_commit_wall_us / 1e6);
  }
  result.net = cluster.transport().stats();
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return result;
}

ExperimentResult run_averaged(ExperimentConfig config,
                              std::span<const std::uint64_t> seeds) {
  ExperimentResult avg;
  for (const std::uint64_t seed : seeds) {
    config.cluster.seed = seed;
    const ExperimentResult r = run_experiment(config);
    avg.committed_txns += r.committed_txns;
    avg.aborted_txns += r.aborted_txns;
    avg.blocks += r.blocks;
    avg.avg_latency_ms += r.avg_latency_ms;
    avg.throughput_tps += r.throughput_tps;
    avg.avg_mht_ms += r.avg_mht_ms;
    avg.avg_measured_ms += r.avg_measured_ms;
    avg.measured_throughput_tps += r.measured_throughput_tps;
    avg.threads = r.threads;
    avg.pipeline_depth = r.pipeline_depth;
    avg.wall_seconds += r.wall_seconds;
    avg.net.messages += r.net.messages;
    avg.net.bytes += r.net.bytes;
    avg.net.signatures_created += r.net.signatures_created;
    avg.net.signatures_verified += r.net.signatures_verified;
  }
  const double n = static_cast<double>(seeds.size());
  if (n > 0) {
    avg.avg_latency_ms /= n;
    avg.throughput_tps /= n;
    avg.avg_mht_ms /= n;
    avg.avg_measured_ms /= n;
    avg.measured_throughput_tps /= n;
  }
  return avg;
}

}  // namespace fides::workload
