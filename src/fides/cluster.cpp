#include "fides/cluster.hpp"

#include <algorithm>
#include <chrono>

#include "common/cpu_time.hpp"
#include "sim/sim_round.hpp"
#include "sim/simnet.hpp"

namespace fides {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

}  // namespace

bool verify_touching_requests(Transport& transport, const Server& server,
                              std::span<const commit::SignedEndTxn> requests) {
  for (const auto& req : requests) {
    bool touches_me = false;
    for (const ItemId item : req.request.txn.rw.touched_items()) {
      if (server.shard().contains(item)) {
        touches_me = true;
        break;
      }
    }
    if (!touches_me) continue;
    const crypto::PublicKey* ck = transport.key_of(NodeId::client(req.client));
    ++transport.stats().signatures_verified;
    if (ck == nullptr || !req.verify(*ck)) return false;
  }
  return true;
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<common::ThreadPool>(config_.num_threads)) {
  if (config_.network.mode == sim::NetworkMode::kSimulated) {
    simnet_ = std::make_unique<sim::SimNet>(config_.network.sim);
  }
  // Server provisioning builds a full Merkle tree over every shard; with a
  // parallel pool the servers provision concurrently (and each server's tree
  // build fans out further — nested parallel_for is safe, the caller helps).
  servers_.resize(config_.num_servers);
  for_each_server([this](std::size_t i) {
    servers_[i] = std::make_unique<Server>(ServerId{static_cast<std::uint32_t>(i)},
                                           config_, pool_.get());
  });
  // Key registration mutates the shared transport registry: sequential.
  server_keys_.reserve(config_.num_servers);
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) {
    server_keys_.push_back(servers_[i]->public_key());
    transport_.register_node(NodeId::server(ServerId{i}), server_keys_.back());
  }
}

Cluster::~Cluster() = default;

std::size_t Cluster::round_threads() const { return pool_->concurrency(); }

void Cluster::for_each_server(const std::function<void(std::size_t)>& fn) {
  pool_->parallel_for(config_.num_servers, fn);
}

Client& Cluster::make_client() {
  const ClientId id{static_cast<std::uint32_t>(clients_.size())};
  clients_.push_back(std::make_unique<Client>(id, *this));
  transport_.register_node(NodeId::client(id), clients_.back()->keypair().public_key());
  return *clients_.back();
}

ServerId Cluster::owner_of(ItemId item) const {
  return ServerId{store::shard_for_item(item, config_.num_servers).value};
}

// --- Data path ---------------------------------------------------------------

void Cluster::client_begin(Client& client, TxnId txn, std::span<const ItemId> items) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  for (const ItemId item : items) {
    Server& server = *servers_[owner_of(item).value];
    Writer w;
    w.u32(txn.client);
    w.u64(txn.seq);
    Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()),
                                   "begin_txn", std::move(w).take());
    if (transport_.open(env, "begin_txn")) {
      server.record_client_message(env);
      server.handle_begin(client.id(), txn);
    }
  }
  transport_.set_crypto_enabled(true);
}

store::ReadResult Cluster::client_read(Client& client, TxnId txn, ItemId item) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  Server& server = *servers_[owner_of(item).value];

  Writer w;
  w.u32(txn.client);
  w.u64(txn.seq);
  w.u64(item);
  Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()), "read",
                                 std::move(w).take());
  store::ReadResult result;
  if (transport_.open(env, "read")) {
    server.record_client_message(env);
    result = server.handle_read(client.id(), txn, item);
    // Response travels back signed by the server.
    Writer resp;
    resp.u64(result.id);
    resp.bytes(result.value);
    resp.timestamp(result.rts);
    resp.timestamp(result.wts);
    Envelope renv = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                    "read_resp", std::move(resp).take());
    transport_.open(renv, "read_resp");
  }
  transport_.set_crypto_enabled(true);
  return result;
}

WriteAck Cluster::client_write(Client& client, TxnId txn, ItemId item, Bytes value) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  Server& server = *servers_[owner_of(item).value];

  Writer w;
  w.u32(txn.client);
  w.u64(txn.seq);
  w.u64(item);
  w.bytes(value);
  Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()), "write",
                                 std::move(w).take());
  WriteAck ack;
  if (transport_.open(env, "write")) {
    server.record_client_message(env);
    ack = server.handle_write(client.id(), txn, item, std::move(value));
    Writer resp;
    resp.u64(ack.id);
    resp.bytes(ack.old_value);
    resp.timestamp(ack.rts);
    resp.timestamp(ack.wts);
    Envelope renv = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                    "write_ack", std::move(resp).take());
    transport_.open(renv, "write_ack");
  }
  transport_.set_crypto_enabled(true);
  return ack;
}

// --- TFCommit round ------------------------------------------------------------

RoundMetrics Cluster::run_tfcommit_block(std::vector<commit::SignedEndTxn> batch) {
  if (simnet_ != nullptr) {
    return sim::run_tfcommit_block_sim(*this, std::move(batch), *simnet_);
  }
  RoundMetrics metrics;
  metrics.txns_in_block = batch.size();
  metrics.threads_used = round_threads();
  const auto round_start = Clock::now();
  commit::order_batch(batch);

  const std::uint32_t n = config_.num_servers;
  Server& coord_server = *servers_[coordinator_id().value];
  const NodeId coord_node = NodeId::server(coordinator_id());

  std::vector<ServerId> cohort_ids;
  for (std::uint32_t i = 0; i < n; ++i) cohort_ids.push_back(ServerId{i});
  commit::TfCommitCoordinator coordinator(cohort_ids, server_keys_);

  // Phase 1 <GetVote, SchAnnouncement> — coordinator assembles and signs.
  auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord_server.log().size(), coord_server.log().head_hash(), commit::batch_txns(batch),
      cohort_ids);
  commit::GetVoteMsg get_vote = coordinator.start(std::move(partial), batch);
  // Broadcast: sign once, every cohort gets (and verifies) the same envelope.
  const Envelope get_vote_env = transport_.seal(coord_server.keypair(), coord_node,
                                                "tf_get_vote", get_vote.serialize());
  for (std::uint32_t i = 1; i < n; ++i) {
    transport_.count_copy(get_vote_env);
  }
  metrics.coordinator_us += since_us(t0);

  // Phase 2 <Vote, SchCommitment> — every cohort concurrently on the pool
  // (each worker touches only its own server and its own output slots).
  std::vector<commit::VoteMsg> votes(n);
  std::vector<Envelope> vote_envs(n);
  std::vector<double> phase2_us(n, 0);
  std::vector<double> phase2_mht_us(n, 0);
  for_each_server([&](std::size_t i) {
    Server& server = *servers_[i];
    const double tc = common::thread_cpu_time_us();
    commit::VoteMsg vote;
    if (transport_.open(get_vote_env, "tf_get_vote")) {
      const bool requests_ok =
          verify_touching_requests(transport_, server, get_vote.requests);
      commit::CohortFaults faults = server.faults().cohort;
      if (!requests_ok) faults.always_vote_abort = true;  // refuse forged requests
      vote = server.tf_cohort().handle_get_vote(get_vote, faults);
      server.add_mht_time_us(server.tf_cohort().last_root_compute_us());
      phase2_mht_us[i] = server.tf_cohort().last_root_compute_us();
    }
    vote_envs[i] = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                   "tf_vote", vote.serialize());
    votes[i] = std::move(vote);
    phase2_us[i] = common::thread_cpu_time_us() - tc;
  });
  metrics.cohort_critical_us += *std::max_element(phase2_us.begin(), phase2_us.end());
  metrics.mht_us = std::max(
      metrics.mht_us, *std::max_element(phase2_mht_us.begin(), phase2_mht_us.end()));

  // Phase 3 <null, SchChallenge> — coordinator verifies the vote envelopes
  // (in parallel: n independent Schnorr checks) then aggregates.
  t0 = Clock::now();
  transport_.open_all(vote_envs, "tf_vote", pool_.get());
  std::vector<commit::ChallengeMsg> challenges =
      coordinator.on_votes(votes, coord_server.faults().coordinator);
  // Honest coordinators broadcast one challenge (single-element vector);
  // an equivocating one crafts and signs divergent envelopes per cohort.
  std::vector<Envelope> challenge_envs;
  challenge_envs.reserve(challenges.size());
  for (const auto& ch : challenges) {
    challenge_envs.push_back(transport_.seal(coord_server.keypair(), coord_node,
                                             "tf_challenge", ch.serialize()));
  }
  for (std::uint32_t i = 1; challenges.size() == 1 && i < n; ++i) {
    transport_.count_copy(challenge_envs[0]);
  }
  metrics.coordinator_us += since_us(t0);

  // Phase 4 <null, SchResponse> — cohorts validate the block and respond,
  // concurrently.
  std::vector<commit::ResponseMsg> responses(n);
  std::vector<Envelope> response_envs(n);
  std::vector<double> phase4_us(n, 0);
  for_each_server([&](std::size_t i) {
    Server& server = *servers_[i];
    const double tc = common::thread_cpu_time_us();
    const std::size_t slot = challenges.size() == 1 ? 0 : i;
    commit::ResponseMsg resp;
    if (transport_.open(challenge_envs[slot], "tf_challenge")) {
      resp = server.tf_cohort().handle_challenge(challenges[slot],
                                                 server.faults().cohort);
    } else {
      resp.cohort = server.id();
      resp.refused = true;
      resp.refusal_reason = "challenge envelope failed authentication";
    }
    response_envs[i] = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                       "tf_response", resp.serialize());
    responses[i] = std::move(resp);
    phase4_us[i] = common::thread_cpu_time_us() - tc;
  });
  metrics.cohort_critical_us += *std::max_element(phase4_us.begin(), phase4_us.end());

  // Phase 5 <Decision, null> — coordinator verifies the response envelopes
  // in parallel and finalizes the co-sign.
  t0 = Clock::now();
  transport_.open_all(response_envs, "tf_response", pool_.get());
  commit::TfCommitOutcome outcome = coordinator.on_responses(responses);
  metrics.cosign_valid = outcome.cosign_valid;
  metrics.faulty_cosigners = outcome.faulty_cosigners;
  metrics.refusals = outcome.refusals;
  metrics.decision = outcome.decision;

  commit::DecisionMsg decision{outcome.block};
  const Envelope decision_env = transport_.seal(coord_server.keypair(), coord_node,
                                                "tf_decision", decision.serialize());
  for (std::uint32_t i = 1; i < n; ++i) {
    transport_.count_copy(decision_env);
  }
  metrics.coordinator_us += since_us(t0);

  // Log append + datastore update at every server (steps 6-7), concurrently:
  // each server verifies the co-sign, appends to its own log, and applies
  // the writes to its own shard.
  std::vector<double> apply_us(n, 0);
  std::vector<double> apply_mht_us(n, 0);
  for_each_server([&](std::size_t i) {
    Server& server = *servers_[i];
    const double tc = common::thread_cpu_time_us();
    const double mht_before = server.mht_time_us();
    if (transport_.open(decision_env, "tf_decision")) {
      server.handle_decision(decision, server_keys_);
    }
    apply_mht_us[i] = server.mht_time_us() - mht_before;
    apply_us[i] = common::thread_cpu_time_us() - tc;
  });
  metrics.cohort_critical_us += *std::max_element(apply_us.begin(), apply_us.end());
  metrics.mht_us = std::max(
      metrics.mht_us, *std::max_element(apply_mht_us.begin(), apply_mht_us.end()));

  // end_txn (client->coord) + get_vote + vote + challenge + response +
  // decision (coord->cohorts/client in parallel) = 6 one-way legs.
  metrics.network_legs = 6;
  metrics.modeled_latency_us =
      metrics.coordinator_us + metrics.cohort_critical_us +
      static_cast<double>(metrics.network_legs) * config_.network.one_way_latency_us;
  metrics.measured_latency_us = since_us(round_start);
  return metrics;
}

// --- 2PC round -----------------------------------------------------------------

RoundMetrics Cluster::run_2pc_block(std::vector<commit::SignedEndTxn> batch) {
  if (simnet_ != nullptr) {
    return sim::run_2pc_block_sim(*this, std::move(batch), *simnet_);
  }
  RoundMetrics metrics;
  metrics.txns_in_block = batch.size();
  metrics.threads_used = round_threads();
  const auto round_start = Clock::now();
  commit::order_batch(batch);

  const std::uint32_t n = config_.num_servers;
  Server& coord_server = *servers_[coordinator_id().value];
  const NodeId coord_node = NodeId::server(coordinator_id());

  std::vector<ServerId> cohort_ids;
  for (std::uint32_t i = 0; i < n; ++i) cohort_ids.push_back(ServerId{i});
  commit::TwoPhaseCommitCoordinator coordinator(cohort_ids);

  // Prepare phase.
  auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord_server.log().size(), coord_server.log().head_hash(), commit::batch_txns(batch),
      cohort_ids);
  commit::PrepareMsg prepare = coordinator.start(std::move(partial), batch);
  const Envelope prepare_env = transport_.seal(coord_server.keypair(), coord_node,
                                               "2pc_prepare", prepare.serialize());
  for (std::uint32_t i = 1; i < n; ++i) {
    transport_.count_copy(prepare_env);
  }
  metrics.coordinator_us += since_us(t0);

  // Vote phase — all cohorts concurrently.
  std::vector<commit::PrepareVoteMsg> votes(n);
  std::vector<Envelope> vote_envs(n);
  std::vector<double> vote_us(n, 0);
  for_each_server([&](std::size_t i) {
    Server& server = *servers_[i];
    const double tc = common::thread_cpu_time_us();
    commit::PrepareVoteMsg vote;
    if (transport_.open(prepare_env, "2pc_prepare")) {
      const bool requests_ok =
          verify_touching_requests(transport_, server, prepare.requests);
      vote = server.tpc_cohort().handle_prepare(prepare);
      if (!requests_ok) {
        vote.vote = txn::Vote::kAbort;
        vote.abort_reason = "client request signature invalid";
      }
    }
    vote_envs[i] = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                   "2pc_vote", vote.serialize());
    votes[i] = std::move(vote);
    vote_us[i] = common::thread_cpu_time_us() - tc;
  });
  metrics.cohort_critical_us += *std::max_element(vote_us.begin(), vote_us.end());

  // Decision phase — vote envelopes verified in parallel at the coordinator.
  t0 = Clock::now();
  transport_.open_all(vote_envs, "2pc_vote", pool_.get());
  commit::TwoPhaseCommitOutcome outcome = coordinator.on_votes(votes);
  metrics.decision = outcome.decision;
  commit::CommitDecisionMsg decision{outcome.block};
  const Envelope decision_env = transport_.seal(coord_server.keypair(), coord_node,
                                                "2pc_decision", decision.serialize());
  for (std::uint32_t i = 1; i < n; ++i) {
    transport_.count_copy(decision_env);
  }
  metrics.coordinator_us += since_us(t0);

  // Log append + apply at every server, concurrently.
  std::vector<double> apply_us(n, 0);
  for_each_server([&](std::size_t i) {
    Server& server = *servers_[i];
    const double tc = common::thread_cpu_time_us();
    if (transport_.open(decision_env, "2pc_decision")) {
      server.handle_decision_2pc(decision);
    }
    apply_us[i] = common::thread_cpu_time_us() - tc;
  });
  metrics.cohort_critical_us += *std::max_element(apply_us.begin(), apply_us.end());

  // end_txn + prepare + vote + decision = 4 one-way legs.
  metrics.network_legs = 4;
  metrics.modeled_latency_us =
      metrics.coordinator_us + metrics.cohort_critical_us +
      static_cast<double>(metrics.network_legs) * config_.network.one_way_latency_us;
  metrics.measured_latency_us = since_us(round_start);
  return metrics;
}

RoundMetrics Cluster::run_block(std::vector<commit::SignedEndTxn> batch) {
  return config_.protocol == Protocol::kTfCommit ? run_tfcommit_block(std::move(batch))
                                                 : run_2pc_block(std::move(batch));
}

std::vector<RoundMetrics> Cluster::drain(commit::BatchBuilder& builder) {
  std::vector<RoundMetrics> rounds;
  while (!builder.empty()) {
    rounds.push_back(run_block(builder.next_batch()));
  }
  return rounds;
}

std::optional<ledger::Checkpoint> Cluster::create_checkpoint() {
  if (simnet_ != nullptr) {
    return sim::create_checkpoint_sim(*this, *simnet_);
  }
  std::vector<ServerId> signers;
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) signers.push_back(ServerId{i});

  // The coordinator proposes a checkpoint over its own log.
  ledger::Checkpoint cp = ledger::make_checkpoint(
      servers_[coordinator_id().value]->log().blocks(), signers);
  const Bytes record = cp.signing_bytes();

  // CoSi round: each server only contributes after verifying that the
  // proposal matches its own log (same height, same head hash) — a server
  // with a divergent log refuses, and the checkpoint cannot form. The
  // per-server commitment and response computations fan out over the pool.
  const std::uint32_t n = config_.num_servers;
  std::vector<crypto::AffinePoint> commitments(n);
  std::vector<crypto::CosiCommitment> secrets(n);
  std::vector<unsigned char> agrees(n, 0);
  for_each_server([&](std::size_t i) {
    const Server& server = *servers_[i];
    if (server.log().size() != cp.height || !(server.log().head_hash() == cp.head_hash)) {
      return;  // agrees[i] stays 0: this server refuses
    }
    agrees[i] = 1;
    secrets[i] = crypto::cosi_commit(server.keypair(), record,
                                     ledger::checkpoint_cosi_round(cp.height));
    commitments[i] = secrets[i].v;
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!agrees[i]) return std::nullopt;
  }
  const crypto::AffinePoint v = crypto::cosi_aggregate_commitments(commitments);
  const crypto::U256 challenge = crypto::cosi_challenge(v, record);
  std::vector<crypto::U256> responses(n);
  for_each_server([&](std::size_t i) {
    responses[i] = crypto::cosi_respond(servers_[i]->keypair(), secrets[i].secret, challenge);
  });
  cp.cosign = crypto::CosiSignature{v, crypto::cosi_aggregate_responses(responses)};
  if (!ledger::validate_checkpoint(cp, server_keys_)) return std::nullopt;
  return cp;
}

}  // namespace fides
