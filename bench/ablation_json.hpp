// Maps the repo-wide `--json <path>` / FIDES_BENCH_JSON convention onto
// Google Benchmark's own JSON reporter, so the ablation microbenches honour
// the same knob as the figure benches. tools/bench_diff.py recognises the
// Google-Benchmark format (top-level "context" key) and treats it as
// informational only — wall-clock microbenchmarks are too noisy to gate.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace fides::bench {

inline int ablation_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::string json_path;
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (args[i] == "--json") {
      json_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("FIDES_BENCH_JSON");
    if (env != nullptr) json_path = env;
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (std::string& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace fides::bench

#define FIDES_ABLATION_MAIN()                        \
  int main(int argc, char** argv) {                  \
    return fides::bench::ablation_main(argc, argv);  \
  }
