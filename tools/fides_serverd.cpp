// fides_serverd — one server of a Fides cluster as its own process.
//
// Usage:
//   fides_serverd --self 1 --servers 5 --rounds 8 --clients 4 \
//     --log-dir /tmp/run1 unix:/tmp/run1/s0.sock ... unix:/tmp/run1/s4.sock
//
// All option plumbing lives in src/net/serverd.cpp so the test suite can
// drive it in-process.
#include <cstdio>

#include "net/serverd.hpp"

int main(int argc, char** argv) {
  std::string error;
  const auto options = fides::net::parse_serverd_args(argc, argv, &error);
  if (!options) {
    std::fprintf(stderr, "fides_serverd: %s\n", error.c_str());
    std::fprintf(stderr,
                 "usage: fides_serverd --self N --servers N --rounds N --log-dir DIR\n"
                 "         [--clients N] [--protocol tfcommit|2pc] [--items N]\n"
                 "         [--batch N] [--no-data-sigs] [--pipeline N] [--spec]\n"
                 "         [--batch-verify]\n"
                 "         [--threads N] [--seed N]\n"
                 "         [--crash-after TYPE:COUNT] ADDR0 ADDR1 ... (one per server)\n");
    return 2;
  }
  return fides::net::run_serverd(*options);
}
