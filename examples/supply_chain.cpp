// Supply-chain scenario (§1): multiple mutually distrusting administrative
// domains share one Fides database.
//
// A manufacturer, a shipper, and a retailer each host one shard (their own
// inventory records) on infrastructure the others do not trust. Hand-offs
// are distributed transactions across domains; §4.6 group commit terminates
// each hand-off inside the group of involved domains only, and OrdServ
// broadcasts one dependency-ordered stream every domain replicates.
#include <cstdio>

#include "ordserv/group_commit.hpp"

namespace {

using namespace fides;

// Domain 0 = manufacturer, 1 = shipper, 2 = retailer, 3 = customs.
// Item k*4+d lives on domain d: shipment record for lot k at that domain.
constexpr std::uint32_t kDomains = 4;

ItemId lot_at(std::uint64_t lot, std::uint32_t domain) { return lot * kDomains + domain; }

commit::SignedEndTxn handoff(Cluster& cluster, Client& client, std::uint64_t lot,
                             std::uint32_t from, std::uint32_t to,
                             const std::string& state) {
  ClientTxn txn = client.begin();
  const std::vector<ItemId> items = {lot_at(lot, from), lot_at(lot, to)};
  cluster.client_begin(client, txn.id(), items);
  client.read(txn, items[0]);
  client.read(txn, items[1]);
  client.write(txn, items[0], to_bytes("released:" + state));
  client.write(txn, items[1], to_bytes("received:" + state));
  return client.end(std::move(txn));
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_servers = kDomains;
  config.items_per_shard = 64;
  config.versioning = store::VersioningMode::kSingle;
  Cluster cluster(config);
  Client& client = cluster.make_client();

  ordserv::Sequencer ordserv;
  ordserv::GroupCommitRunner runner(cluster, ordserv);

  struct Hop {
    std::uint64_t lot;
    std::uint32_t from, to;
    const char* state;
  };
  const Hop hops[] = {
      {0, 0, 1, "lot0-to-shipper"},   {1, 0, 1, "lot1-to-shipper"},
      {0, 1, 3, "lot0-at-customs"},   {1, 1, 2, "lot1-to-retailer"},
      {0, 3, 2, "lot0-to-retailer"},
  };

  std::printf("running %zu cross-domain hand-offs via group commit:\n",
              std::size(hops));
  for (const Hop& hop : hops) {
    const auto result = runner.run_group_block(
        {handoff(cluster, client, hop.lot, hop.from, hop.to, hop.state)});
    std::printf("  %-18s group={", hop.state);
    for (const ServerId member : result.group.members) {
      std::printf(" %s", to_string(member).c_str());
    }
    std::printf(" }  decision=%s height=%llu\n",
                result.decision == ledger::Decision::kCommit ? "commit" : "abort",
                static_cast<unsigned long long>(result.global_height));
  }

  // Every domain replicates the same ordered stream; dependencies (same lot
  // touching the same domain records) are reflected in the metadata.
  const auto& stream = runner.log_of(ServerId{2});
  std::printf("\nretailer's replicated stream (%zu blocks):\n", stream.size());
  for (const auto& entry : stream) {
    std::printf("  height %llu deps={",
                static_cast<unsigned long long>(entry.block.height));
    for (const auto dep : entry.depends_on) {
      std::printf(" %llu", static_cast<unsigned long long>(dep));
    }
    std::printf(" } signers=%zu\n", entry.block.signers.size());
  }

  const auto bad = ordserv::validate_stream(stream, cluster.server_keys());
  std::printf("\nstream validation: %s\n",
              bad ? "FAILED" : "clean (co-signs + chain + dependency order)");
  std::printf("lot0 at retailer: \"%s\"\n",
              to_string(cluster.server(ServerId{2}).shard().peek(lot_at(0, 2)).value)
                  .c_str());
  return bad ? 1 : 0;
}
