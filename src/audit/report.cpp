#include "audit/report.hpp"

#include <algorithm>
#include <sstream>

namespace fides::audit {

std::string to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kTamperedLog: return "tampered-log";
    case ViolationKind::kIncompleteLog: return "incomplete-log";
    case ViolationKind::kIncorrectRead: return "incorrect-read";
    case ViolationKind::kDatastoreCorruption: return "datastore-corruption";
    case ViolationKind::kSerializabilityViolation: return "serializability-violation";
    case ViolationKind::kInvalidCosign: return "invalid-cosign";
    case ViolationKind::kAtomicityViolation: return "atomicity-violation";
    case ViolationKind::kNoValidLog: return "no-valid-log";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "[" << audit::to_string(kind) << "]";
  if (server) os << " server=" << fides::to_string(*server);
  if (block) os << " block=" << *block;
  if (version) os << " version=" << fides::to_string(*version);
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

bool AuditReport::has(ViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.kind == kind; });
}

std::vector<Violation> AuditReport::of_kind(ViolationKind kind) const {
  std::vector<Violation> out;
  for (const auto& v : violations) {
    if (v.kind == kind) out.push_back(v);
  }
  return out;
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit: " << blocks_audited << " blocks, " << items_authenticated
     << " items authenticated";
  if (adopted_log_source) {
    os << ", adopted log of " << fides::to_string(*adopted_log_source);
  }
  os << "\n";
  if (clean()) {
    os << "  no violations detected\n";
  } else {
    for (const auto& v : violations) os << "  " << v.to_string() << "\n";
  }
  return os.str();
}

}  // namespace fides::audit
