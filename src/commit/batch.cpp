#include "commit/batch.hpp"

#include <algorithm>

namespace fides::commit {

bool batch_non_conflicting(std::span<const txn::Transaction> txns) {
  std::unordered_set<ItemId> touched;
  for (const auto& t : txns) {
    for (const ItemId item : t.rw.touched_items()) {
      if (!touched.insert(item).second) return false;
    }
  }
  return true;
}

void order_batch(std::vector<SignedEndTxn>& batch) {
  std::sort(batch.begin(), batch.end(),
            [](const SignedEndTxn& a, const SignedEndTxn& b) {
              return a.request.txn.commit_ts < b.request.txn.commit_ts;
            });
}

std::vector<txn::Transaction> batch_txns(std::span<const SignedEndTxn> batch) {
  std::vector<txn::Transaction> txns;
  txns.reserve(batch.size());
  for (const auto& s : batch) txns.push_back(s.request.txn);
  return txns;
}

void BatchBuilder::enqueue(SignedEndTxn request) {
  queue_.push_back(std::move(request));
}

std::vector<SignedEndTxn> BatchBuilder::next_batch() {
  std::vector<SignedEndTxn> batch;
  std::unordered_set<ItemId> touched;

  for (auto it = queue_.begin(); it != queue_.end() && batch.size() < max_batch_;) {
    const auto items = it->request.txn.rw.touched_items();
    const bool conflicts = std::any_of(items.begin(), items.end(), [&](ItemId id) {
      return touched.count(id) != 0;
    });
    if (conflicts) {
      ++it;
      continue;
    }
    for (const ItemId id : items) touched.insert(id);
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return batch;
}

}  // namespace fides::commit
