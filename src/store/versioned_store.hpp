// Version chains for multi-versioned datastores (§4.2.1).
//
// "For multi-versioned data, when a transaction commits, a correct server
// additionally creates a new version of the data items accessed in the
// transaction while maintaining the older versions." Versions enable both
// recoverability (reset to last sanitized version) and per-version audits
// (Lemma 2: the auditor detects the precise version at which the datastore
// became inconsistent).
#pragma once

#include <optional>
#include <vector>

#include "store/item.hpp"

namespace fides::store {

/// Append-only chain of committed versions for one item, ordered by
/// ascending commit timestamp.
class VersionChain {
 public:
  /// Creates the chain with an initial version at timestamp zero.
  explicit VersionChain(Bytes initial_value);

  /// Appends a version; `wts` must exceed the latest version's timestamp.
  void append(const Timestamp& wts, Bytes value);

  /// Latest committed version.
  const ItemVersion& latest() const { return versions_.back(); }

  /// The version visible at `ts`: greatest wts <= ts. Nullopt if `ts`
  /// precedes the initial version (cannot happen with ts >= zero).
  std::optional<ItemVersion> at(const Timestamp& ts) const;

  std::size_t version_count() const { return versions_.size(); }
  const std::vector<ItemVersion>& versions() const { return versions_; }

  /// Overwrites the value of the version visible at `ts` — a *malicious*
  /// mutation used only by fault injection; a correct server never calls it.
  bool corrupt_version_at(const Timestamp& ts, Bytes value);

  /// Recovery (§4.2.1): discards every version with wts > ts, making the
  /// version visible at `ts` the latest again. The initial version is never
  /// discarded. Returns the number of versions dropped.
  std::size_t truncate_after(const Timestamp& ts);

 private:
  std::vector<ItemVersion> versions_;
};

}  // namespace fides::store
