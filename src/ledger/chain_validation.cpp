#include "ledger/chain_validation.hpp"

namespace fides::ledger {

ChainCheckResult validate_chain(std::span<const Block> blocks,
                                std::span<const crypto::PublicKey> server_keys,
                                bool require_cosign) {
  ChainCheckResult res;
  crypto::Digest expected_prev = crypto::Digest::zero();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Block& b = blocks[i];
    if (b.height != i) {
      res.issues.push_back({i, "height " + std::to_string(b.height) +
                                   " does not match position " + std::to_string(i)});
    }
    if (!(b.prev_hash == expected_prev)) {
      res.issues.push_back({i, "broken hash pointer: prev_hash does not match "
                               "the digest of the preceding block"});
    }
    if (require_cosign) {
      if (!b.cosign) {
        res.issues.push_back({i, "missing collective signature"});
      } else {
        // The co-sign covers the block's declared signer set; resolve their
        // keys from the full membership. An empty/bogus signer set or one
        // naming an unknown server cannot validate.
        std::vector<crypto::PublicKey> keys;
        keys.reserve(b.signers.size());
        bool signers_ok = !b.signers.empty();
        for (const ServerId s : b.signers) {
          if (s.value >= server_keys.size()) {
            signers_ok = false;
            break;
          }
          keys.push_back(server_keys[s.value]);
        }
        if (!signers_ok) {
          res.issues.push_back({i, "block declares an invalid signer set"});
        } else if (!crypto::cosi_verify(b.signing_bytes(), *b.cosign, keys)) {
          res.issues.push_back({i, "collective signature does not verify against "
                                   "the block contents"});
        }
      }
    }
    expected_prev = b.digest();
  }
  res.ok = res.issues.empty();
  return res;
}

LogSelection select_correct_log(const std::vector<std::vector<Block>>& logs,
                                std::span<const crypto::PublicKey> server_keys) {
  LogSelection sel;
  std::vector<bool> valid(logs.size(), false);
  for (std::size_t i = 0; i < logs.size(); ++i) {
    const auto check = validate_chain(logs[i], server_keys, /*require_cosign=*/true);
    valid[i] = check.ok;
    if (!check.ok) sel.invalid.push_back(i);
  }

  // Among valid logs, the longest is complete (>= the correct server's log,
  // and validity rules out fabricated extensions).
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (valid[i] && logs[i].size() >= best_len) {
      if (!sel.chosen || logs[i].size() > best_len) sel.chosen = i;
      best_len = std::max(best_len, logs[i].size());
    }
  }

  if (sel.chosen) {
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (valid[i] && logs[i].size() < best_len) sel.incomplete.push_back(i);
    }
  }
  return sel;
}

}  // namespace fides::ledger
