#include "crypto/secp256k1.hpp"

#include <stdexcept>

namespace fides::crypto {

namespace {

// secp256k1 domain parameters (SEC 2), little-endian 64-bit limbs.
constexpr U256 kP = U256::from_limbs(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                                     0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL);
constexpr U256 kN = U256::from_limbs(0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                                     0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL);
constexpr U256 kGx = U256::from_limbs(0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                                      0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL);
constexpr U256 kGy = U256::from_limbs(0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                                      0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL);

}  // namespace

Bytes AffinePoint::serialize() const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);  // SEC1 uncompressed marker
  const auto xb = x.to_bytes_be();
  const auto yb = y.to_bytes_be();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

std::optional<AffinePoint> AffinePoint::deserialize(BytesView b) {
  if (b.size() == 1 && b[0] == 0x00) {
    AffinePoint a;
    a.infinity = true;
    return a;
  }
  if (b.size() != 65 || b[0] != 0x04) return std::nullopt;
  AffinePoint a;
  a.x = U256::from_bytes_be(b.subspan(1, 32));
  a.y = U256::from_bytes_be(b.subspan(33, 32));
  if (!Curve::instance().on_curve(a)) return std::nullopt;
  return a;
}

const Curve& Curve::instance() {
  static const Curve curve;
  return curve;
}

Curve::Curve() : fp_(kP), fn_(kN), b7_(fp_.to_mont(U256(7))) {
  g_.x = fp_.to_mont(kGx);
  g_.y = fp_.to_mont(kGy);
  g_.z = fp_.one();

  g_table_.resize(64);
  Point window_base = g_;  // 16^i * G
  for (int i = 0; i < 64; ++i) {
    g_table_[i][0] = window_base;
    for (int j = 1; j < 15; ++j) {
      g_table_[i][j] = add(g_table_[i][j - 1], window_base);
    }
    for (int d = 0; d < 4; ++d) window_base = dbl(window_base);
  }
}

Point Curve::infinity() const {
  Point p;
  p.x = fp_.one();
  p.y = fp_.one();
  p.z = fp_.zero();
  return p;
}

Point Curve::negate(const Point& p) const {
  Point r = p;
  r.y = fp_.neg(p.y);
  return r;
}

Point Curve::dbl(const Point& p) const {
  // dbl-2009-l formulas (a = 0 special case).
  if (p.is_infinity() || fp_.is_zero(p.y)) return infinity();
  const auto& f = fp_;
  const Fe a = f.sqr(p.x);                    // XX
  const Fe b = f.sqr(p.y);                    // YY
  const Fe c = f.sqr(b);                      // YYYY
  Fe d = f.sub(f.sqr(f.add(p.x, b)), f.add(a, c));
  d = f.add(d, d);                            // D = 2*((X+YY)^2 - XX - YYYY)
  const Fe e = f.add(f.add(a, a), a);         // E = 3*XX
  const Fe ff = f.sqr(e);                     // F = E^2
  Point r;
  r.x = f.sub(ff, f.add(d, d));               // X3 = F - 2D
  Fe c8 = f.add(c, c);
  c8 = f.add(c8, c8);
  c8 = f.add(c8, c8);                         // 8*YYYY
  r.y = f.sub(f.mul(e, f.sub(d, r.x)), c8);   // Y3 = E*(D-X3) - 8*YYYY
  const Fe yz = f.mul(p.y, p.z);
  r.z = f.add(yz, yz);                        // Z3 = 2*Y*Z
  return r;
}

Point Curve::add(const Point& p, const Point& q) const {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const auto& f = fp_;
  // add-2007-bl general Jacobian addition.
  const Fe z1z1 = f.sqr(p.z);
  const Fe z2z2 = f.sqr(q.z);
  const Fe u1 = f.mul(p.x, z2z2);
  const Fe u2 = f.mul(q.x, z1z1);
  const Fe s1 = f.mul(f.mul(p.y, q.z), z2z2);
  const Fe s2 = f.mul(f.mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return infinity();  // P + (-P)
  }
  const Fe h = f.sub(u2, u1);
  Fe i = f.add(h, h);
  i = f.sqr(i);                                // I = (2H)^2
  const Fe j = f.mul(h, i);                    // J = H*I
  Fe rr = f.sub(s2, s1);
  rr = f.add(rr, rr);                          // r = 2*(S2-S1)
  const Fe v = f.mul(u1, i);                   // V = U1*I
  Point out;
  out.x = f.sub(f.sub(f.sqr(rr), j), f.add(v, v));  // X3 = r^2 - J - 2V
  Fe s1j = f.mul(s1, j);
  s1j = f.add(s1j, s1j);
  out.y = f.sub(f.mul(rr, f.sub(v, out.x)), s1j);   // Y3 = r*(V-X3) - 2*S1*J
  Fe z = f.add(p.z, q.z);
  z = f.sub(f.sqr(z), f.add(z1z1, z2z2));
  out.z = f.mul(z, h);                              // Z3 = ((Z1+Z2)^2-Z1Z1-Z2Z2)*H
  return out;
}

Point Curve::mul(const U256& k, const Point& p) const {
  Point acc = infinity();
  const int top = k.bit_length();
  for (int i = top; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(i)) acc = add(acc, p);
  }
  return acc;
}

Point Curve::mul_g(const U256& k) const {
  Point acc = infinity();
  for (int i = 0; i < 64; ++i) {
    const unsigned digit = static_cast<unsigned>((k.w[i / 16] >> (4 * (i % 16))) & 0xF);
    if (digit != 0) acc = add(acc, g_table_[i][digit - 1]);
  }
  return acc;
}

AffinePoint Curve::to_affine(const Point& p) const {
  AffinePoint a;
  if (p.is_infinity()) {
    a.infinity = true;
    return a;
  }
  const auto& f = fp_;
  const Fe zinv = f.inverse(p.z);
  const Fe zinv2 = f.sqr(zinv);
  const Fe zinv3 = f.mul(zinv2, zinv);
  a.x = f.from_mont(f.mul(p.x, zinv2));
  a.y = f.from_mont(f.mul(p.y, zinv3));
  return a;
}

Point Curve::from_affine(const AffinePoint& a) const {
  if (a.infinity) return infinity();
  Point p;
  p.x = fp_.to_mont(a.x);
  p.y = fp_.to_mont(a.y);
  p.z = fp_.one();
  return p;
}

bool Curve::on_curve(const AffinePoint& a) const {
  if (a.infinity) return true;
  if (!u256_less(a.x, kP) || !u256_less(a.y, kP)) return false;
  const auto& f = fp_;
  const Fe x = f.to_mont(a.x);
  const Fe y = f.to_mont(a.y);
  const Fe lhs = f.sqr(y);
  const Fe rhs = f.add(f.mul(f.sqr(x), x), b7_);
  return lhs == rhs;
}

bool Curve::equal(const Point& p, const Point& q) const {
  if (p.is_infinity() || q.is_infinity()) return p.is_infinity() == q.is_infinity();
  // Cross-multiplied comparison avoids inversions:
  // X1/Z1^2 == X2/Z2^2  <=>  X1*Z2^2 == X2*Z1^2, likewise for Y with cubes.
  const auto& f = fp_;
  const Fe z1z1 = f.sqr(p.z);
  const Fe z2z2 = f.sqr(q.z);
  if (!(f.mul(p.x, z2z2) == f.mul(q.x, z1z1))) return false;
  const Fe z1c = f.mul(z1z1, p.z);
  const Fe z2c = f.mul(z2z2, q.z);
  return f.mul(p.y, z2c) == f.mul(q.y, z1c);
}

U256 scalar_from_digest(const Digest& d) {
  const U256 x = U256::from_bytes_be(d.view());
  return u256_mod(x, kN);
}

}  // namespace fides::crypto
