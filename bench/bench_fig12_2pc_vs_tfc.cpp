// Figure 12 — 2PC vs TFCommit (§6.1).
//
// Sweep: 3..7 servers, ONE transaction per block (so the per-transaction
// overhead of trust-freedom is visible), 10000 items/shard.
// Paper result: TFCommit latency ≈ 1.8x 2PC; 2PC throughput ≈ 2.1x TFCommit.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::print_header(
      "Figure 12: 2PC vs TFCommit, 1 txn/block, 3-7 servers",
      "TFC latency ~1.8x 2PC; 2PC throughput ~2.1x TFC; both flat-ish in n");

  bench::BenchReport report("fig12_2pc_vs_tfc");
  bench::stamp_config(report);

  std::printf("%-8s %-12s %-12s %-12s %-12s %-12s %-12s %-10s %-10s %-10s\n",
              "servers", "tfc_lat_ms", "tfc_meas_ms", "2pc_lat_ms", "2pc_meas_ms",
              "tfc_tps", "2pc_tps", "tfc_p99_ms", "lat_ratio", "tps_ratio");

  for (std::uint32_t servers = 3; servers <= 7; ++servers) {
    workload::ExperimentConfig cfg;
    cfg.cluster.num_servers = servers;
    cfg.cluster.items_per_shard = 10000;
    cfg.txns_per_block = 1;
    cfg.cluster.max_batch_size = 1;

    cfg.cluster.protocol = Protocol::kTfCommit;
    const auto tfc = bench::run_point(cfg);
    cfg.cluster.protocol = Protocol::kTwoPhaseCommit;
    const auto tpc = bench::run_point(cfg);

    std::printf(
        "%-8u %-12.3f %-12.3f %-12.3f %-12.3f %-12.0f %-12.0f %-10.3f %-10.2f %-10.2f\n",
        servers, tfc.avg_latency_ms, tfc.avg_measured_ms, tpc.avg_latency_ms,
        tpc.avg_measured_ms, tfc.throughput_tps, tpc.throughput_tps, tfc.p99_ms,
        tfc.avg_latency_ms / tpc.avg_latency_ms,
        tpc.throughput_tps / tfc.throughput_tps);

    bench::add_experiment_point(report, "tfc/servers" + std::to_string(servers), tfc);
    bench::add_experiment_point(report, "2pc/servers" + std::to_string(servers), tpc);
  }
  bench::finish_report(report, argc, argv);
  return 0;
}
