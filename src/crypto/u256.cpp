#include "crypto/u256.hpp"

#include <stdexcept>

#include "common/hex.hpp"

namespace fides::crypto {

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (w[i] != 0) return 64 * i + 63 - __builtin_clzll(w[i]);
  }
  return -1;
}

std::array<std::uint8_t, 32> U256::to_bytes_be() const {
  std::array<std::uint8_t, 32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int b = 0; b < 8; ++b) {
      out[31 - (8 * limb + b)] = static_cast<std::uint8_t>(w[limb] >> (8 * b));
    }
  }
  return out;
}

U256 U256::from_bytes_be(BytesView b) {
  if (b.size() != 32) throw std::invalid_argument("U256::from_bytes_be: need 32 bytes");
  U256 x;
  for (int limb = 0; limb < 4; ++limb) {
    for (int byte = 0; byte < 8; ++byte) {
      x.w[limb] |= static_cast<std::uint64_t>(b[31 - (8 * limb + byte)]) << (8 * byte);
    }
  }
  return x;
}

std::string U256::hex() const {
  const auto b = to_bytes_be();
  return hex_encode(BytesView(b.data(), b.size()));
}

std::optional<U256> U256::from_hex(std::string_view h) {
  std::string padded(h);
  if (padded.size() < 64) padded.insert(0, 64 - padded.size(), '0');
  if (padded.size() != 64) return std::nullopt;
  const auto bytes = hex_decode(padded);
  if (!bytes) return std::nullopt;
  return U256::from_bytes_be(*bytes);
}

bool u256_less(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i];
  }
  return false;
}

std::uint64_t u256_add(U256& dst, const U256& a, const U256& b) {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t t;
    const std::uint64_t c1 = __builtin_add_overflow(a.w[i], b.w[i], &t) ? 1u : 0u;
    const std::uint64_t c2 = __builtin_add_overflow(t, carry, &dst.w[i]) ? 1u : 0u;
    carry = c1 | c2;  // at most one of the two adds can carry
  }
  return carry;
}

std::uint64_t u256_sub(U256& dst, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t t;
    const std::uint64_t b1 = __builtin_sub_overflow(a.w[i], b.w[i], &t) ? 1u : 0u;
    const std::uint64_t b2 = __builtin_sub_overflow(t, borrow, &dst.w[i]) ? 1u : 0u;
    borrow = b1 | b2;
  }
  return borrow;
}

std::array<std::uint64_t, 8> u256_mul_wide(const U256& a, const U256& b) {
  std::array<std::uint64_t, 8> r{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a.w[i]) * b.w[j] + r[i + j] + carry;
      r[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r[i + 4] = carry;
  }
  return r;
}

U256 u256_mod(const U256& a, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("u256_mod: zero modulus");
  if (u256_less(a, m)) return a;
  // Binary long division: shift-subtract from the top bit down.
  U256 rem;
  for (int i = a.bit_length(); i >= 0; --i) {
    // rem = rem*2 + bit
    U256 doubled;
    u256_add(doubled, rem, rem);
    if (a.bit(i)) {
      const U256 one(1);
      u256_add(doubled, doubled, one);
    }
    U256 reduced;
    if (u256_sub(reduced, doubled, m) == 0) {
      rem = reduced;
    } else {
      rem = doubled;
    }
  }
  return rem;
}

U256 u512_mod(const std::array<std::uint64_t, 8>& v, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("u512_mod: zero modulus");
  // Process bits from the top; rem stays < m so rem*2+bit < 2m fits in
  // 257 bits — track the carry from doubling explicitly.
  U256 rem;
  for (int i = 511; i >= 0; --i) {
    U256 doubled;
    std::uint64_t carry = u256_add(doubled, rem, rem);
    if ((v[i / 64] >> (i % 64)) & 1) {
      const U256 one(1);
      carry += u256_add(doubled, doubled, one);
    }
    U256 reduced;
    const std::uint64_t borrow = u256_sub(reduced, doubled, m);
    if (carry != 0 || borrow == 0) {
      rem = reduced;
    } else {
      rem = doubled;
    }
  }
  return rem;
}

}  // namespace fides::crypto
