// Schnorr digital signatures over secp256k1 (§2.1).
//
// Every server and client in Fides holds a Schnorr keypair; every message
// exchanged is signed by the sender and verified by the receiver (§3.1).
// Signatures are (R, s) with R = k·G, c = H(ser(R) ‖ ser(P) ‖ m) mod n,
// s = k + c·x mod n; verification checks s·G == R + c·P.
//
// Nonces are derived deterministically from (secret key, message) in the
// spirit of RFC 6979, so signing is reproducible and never reuses a nonce
// across distinct messages.
#pragma once

#include "crypto/secp256k1.hpp"

namespace fides::crypto {

/// Serialized-affine public key. Comparable, hashable via its bytes.
struct PublicKey {
  AffinePoint point;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

  Bytes serialize() const { return point.serialize(); }
};

struct Signature {
  AffinePoint r;  ///< commitment R = k·G
  U256 s;         ///< response

  Bytes serialize() const;
  static std::optional<Signature> deserialize(BytesView b);
};

class KeyPair {
 public:
  /// Derives a keypair from 32 seed bytes (reduced mod n; must not reduce
  /// to zero — the named constructors guarantee it).
  static KeyPair from_seed(BytesView seed32);

  /// Deterministic per-node keypair; convenient for tests and simulation.
  static KeyPair deterministic(std::uint64_t node_id);

  const PublicKey& public_key() const { return pk_; }
  const U256& secret_key() const { return sk_; }

  Signature sign(BytesView message) const;

 private:
  KeyPair(U256 sk, PublicKey pk) : sk_(sk), pk_(std::move(pk)) {}

  U256 sk_;
  PublicKey pk_;
};

/// Verifies sig over message under pk. Cheap rejection on malformed points.
bool verify(const PublicKey& pk, BytesView message, const Signature& sig);

}  // namespace fides::crypto
