#include "net/poller.hpp"

#include <poll.h>

#include <cerrno>

namespace fides::net {

void Poller::add(int fd, Callback cb) {
  if (Entry* e = find(fd)) {
    e->cb = std::move(cb);
    e->want_write = false;
    return;
  }
  entries_.push_back(Entry{fd, false, std::move(cb)});
}

void Poller::remove(int fd) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->fd == fd) {
      entries_.erase(it);
      return;
    }
  }
}

bool Poller::contains(int fd) const { return find(fd) != nullptr; }

void Poller::set_want_write(int fd, bool want) {
  if (Entry* e = find(fd)) e->want_write = want;
}

int Poller::poll_once(int timeout_ms) {
  if (entries_.empty()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const Entry& e : entries_) {
    pollfd p{};
    p.fd = e.fd;
    p.events = POLLIN;
    if (e.want_write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) return 0;  // timeout, or EINTR — the caller loops anyway
  // Snapshot readiness, then dispatch: a callback may add or remove fds,
  // so each ready fd is re-resolved against the live entry list.
  std::vector<std::pair<int, short>> ready;
  ready.reserve(static_cast<std::size_t>(n));
  for (const pollfd& p : fds) {
    if (p.revents != 0) ready.emplace_back(p.fd, p.revents);
  }
  for (const auto& [fd, revents] : ready) {
    Entry* e = find(fd);
    if (e == nullptr || !e->cb) continue;  // removed by an earlier callback
    auto cb = e->cb;                       // copy: the callback may remove the entry
    cb(fd, revents);
  }
  return n;
}

const Poller::Entry* Poller::find(int fd) const {
  for (const Entry& e : entries_) {
    if (e.fd == fd) return &e;
  }
  return nullptr;
}

Poller::Entry* Poller::find(int fd) {
  for (Entry& e : entries_) {
    if (e.fd == fd) return &e;
  }
  return nullptr;
}

}  // namespace fides::net
