// Transaction batching (§4.6, first scaling dimension).
//
// "The coordinator collects and inserts a set of non-conflicting client
// generated transactions and orders them within a single block at the start
// of TFCommit." The builder greedily packs transactions whose item sets are
// pairwise disjoint; conflicting transactions stay queued for a later block.
#pragma once

#include <deque>
#include <span>
#include <unordered_set>
#include <vector>

#include "commit/messages.hpp"

namespace fides::commit {

/// True iff the transactions are pairwise non-conflicting (disjoint item
/// sets) — the §4.6 block invariant. Cohorts re-check this on every block:
/// a coordinator that packs conflicting transactions gets vetoed.
bool batch_non_conflicting(std::span<const txn::Transaction> txns);

/// Sorts a batch by commit timestamp — the §4.6 block order that OCC
/// validation and the auditor expect. One definition shared by the direct
/// and simulated round drivers, whose block contents must stay
/// bit-identical.
void order_batch(std::vector<SignedEndTxn>& batch);

/// The bare transactions of a batch, in batch order.
std::vector<txn::Transaction> batch_txns(std::span<const SignedEndTxn> batch);

class BatchBuilder {
 public:
  explicit BatchBuilder(std::size_t max_batch_size) : max_batch_(max_batch_size) {}

  /// Enqueues a terminated-transaction request awaiting a block slot.
  void enqueue(SignedEndTxn request);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Pops up to max_batch_size pairwise non-conflicting requests, preserving
  /// arrival order among the selected. Skipped (conflicting) requests keep
  /// their queue position for the next block.
  std::vector<SignedEndTxn> next_batch();

 private:
  std::size_t max_batch_;
  std::deque<SignedEndTxn> queue_;
};

}  // namespace fides::commit
