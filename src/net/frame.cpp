#include "net/frame.hpp"

#include <cstring>

namespace fides::net {

namespace {

void write_node(Writer& w, NodeId node) {
  w.u8(static_cast<std::uint8_t>(node.kind));
  w.u32(node.id);
}

NodeId read_node(Reader& r) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(NodeId::Kind::kClient)) {
    throw DecodeError("wire frame: unknown node kind");
  }
  NodeId n;
  n.kind = static_cast<NodeId::Kind>(kind);
  n.id = r.u32();
  return n;
}

crypto::Digest read_digest(Reader& r) {
  const Bytes raw = r.raw(32);
  crypto::Digest d;
  std::memcpy(d.bytes.data(), raw.data(), 32);
  return d;
}

/// Prepends the u32 little-endian length to a finished payload.
Bytes with_length_prefix(Bytes payload) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  return std::move(w).take();
}

Writer begin_frame(FrameKind kind) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  return w;
}

}  // namespace

Bytes encode_hello(NodeId node) {
  Writer w = begin_frame(FrameKind::kHello);
  write_node(w, node);
  return with_length_prefix(std::move(w).take());
}

Bytes encode_envelope(NodeId src, NodeId dst, bool replay, const Envelope& env) {
  Writer w = begin_frame(FrameKind::kEnvelope);
  write_node(w, src);
  write_node(w, dst);
  w.u8(replay ? 1 : 0);
  write_node(w, env.sender);
  w.str(env.type);
  w.bytes(env.payload);
  w.bytes(env.signature.serialize());
  return with_length_prefix(std::move(w).take());
}

Bytes encode_applied(std::uint32_t server, std::uint64_t epoch) {
  Writer w = begin_frame(FrameKind::kApplied);
  w.u32(server);
  w.u64(epoch);
  return with_length_prefix(std::move(w).take());
}

Bytes encode_shutdown() {
  Writer w = begin_frame(FrameKind::kShutdown);
  return with_length_prefix(std::move(w).take());
}

Bytes encode_digest_query(std::uint32_t server) {
  Writer w = begin_frame(FrameKind::kDigestQuery);
  w.u32(server);
  return with_length_prefix(std::move(w).take());
}

Bytes encode_digest_reply(const PeerDigest& digest) {
  Writer w = begin_frame(FrameKind::kDigestReply);
  w.u32(digest.server);
  w.u64(digest.log_height);
  w.raw(digest.log_head.view());
  w.raw(digest.shard_root.view());
  return with_length_prefix(std::move(w).take());
}

Frame decode_frame(BytesView payload) {
  Reader r(payload);
  Frame f;
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(FrameKind::kHello):
      f.kind = FrameKind::kHello;
      f.hello_node = read_node(r);
      break;
    case static_cast<std::uint8_t>(FrameKind::kEnvelope): {
      f.kind = FrameKind::kEnvelope;
      f.src = read_node(r);
      f.dst = read_node(r);
      f.replay = r.u8() != 0;
      f.envelope.sender = read_node(r);
      f.envelope.type = r.str();
      f.envelope.payload = r.bytes();
      const Bytes sig = r.bytes();
      const auto parsed = crypto::Signature::deserialize(sig);
      if (!parsed.has_value()) throw DecodeError("wire frame: unparseable signature");
      f.envelope.signature = *parsed;
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kApplied):
      f.kind = FrameKind::kApplied;
      f.server = r.u32();
      f.epoch = r.u64();
      break;
    case static_cast<std::uint8_t>(FrameKind::kShutdown):
      f.kind = FrameKind::kShutdown;
      break;
    case static_cast<std::uint8_t>(FrameKind::kDigestQuery):
      f.kind = FrameKind::kDigestQuery;
      f.server = r.u32();
      break;
    case static_cast<std::uint8_t>(FrameKind::kDigestReply):
      f.kind = FrameKind::kDigestReply;
      f.digest.server = r.u32();
      f.digest.log_height = r.u64();
      f.digest.log_head = read_digest(r);
      f.digest.shard_root = read_digest(r);
      break;
    default:
      throw DecodeError("wire frame: unknown frame kind");
  }
  r.expect_done();
  return f;
}

void FrameReader::feed(BytesView data) {
  // Compact before growing: everything before pos_ has been consumed.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (std::size_t{1} << 20)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Bytes> FrameReader::next() {
  if (buf_.size() - pos_ < 4) return std::nullopt;
  // The prefix is a serde u32: little-endian by definition, decoded
  // explicitly so the reader is correct on any host endianness.
  const std::uint32_t len = static_cast<std::uint32_t>(buf_[pos_]) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 3]) << 24);
  if (len > max_frame_) {
    throw DecodeError("wire frame exceeds the maximum frame size");
  }
  if (buf_.size() - pos_ - 4 < len) return std::nullopt;
  Bytes payload(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  return payload;
}

}  // namespace fides::net
