#include "ordserv/group_commit.hpp"

#include <algorithm>

#include "commit/batch.hpp"
#include "txn/occ.hpp"

namespace fides::ordserv {

std::optional<std::string> StreamValidator::check(
    const SequencedBlock& entry,
    std::span<const crypto::PublicKey> all_server_keys) {
  const ledger::Block& b = entry.block;

  if (b.height != next_height) {
    return "height " + std::to_string(b.height) + " where " +
           std::to_string(next_height) + " expected";
  }
  if (!(b.prev_hash == expected_prev)) return "prev-hash chain broken";

  if (!b.cosign || b.signers.empty()) return "missing group co-sign";
  std::vector<crypto::PublicKey> keys;
  keys.reserve(b.signers.size());
  for (const ServerId s : b.signers) {
    if (s.value >= all_server_keys.size()) return "signer out of range";
    keys.push_back(all_server_keys[s.value]);
  }
  if (!crypto::cosi_verify(ledger::unchained_signing_bytes(b), *b.cosign, keys)) {
    return "group co-sign does not verify";
  }

  for (const std::uint64_t dep : entry.depends_on) {
    if (dep >= b.height) return "dependency on a later block";
  }
  // `depends_on` is sequencer metadata, covered by no signature. Recompute
  // the dependencies from the block's own (co-signed) transactions and make
  // sure every one of them is declared — a lying OrdServ must not be able to
  // hide a cross-group dependency. std::find, not binary_search: a tampered
  // entry's list need not be sorted.
  for (const auto& t : b.txns) {
    for (const ItemId item : t.rw.touched_items()) {
      const auto it = last_touch.find(item);
      if (it == last_touch.end()) continue;
      if (std::find(entry.depends_on.begin(), entry.depends_on.end(),
                    it->second) == entry.depends_on.end()) {
        return "under-reported dependency on height " + std::to_string(it->second);
      }
    }
  }

  for (const auto& t : b.txns) {
    for (const ItemId item : t.rw.touched_items()) last_touch[item] = b.height;
  }
  expected_prev = b.digest();
  ++next_height;
  return std::nullopt;
}

std::optional<std::size_t> validate_stream(
    std::span<const SequencedBlock> stream,
    std::span<const crypto::PublicKey> all_server_keys) {
  StreamValidator v;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (v.check(stream[i], all_server_keys)) return i;
  }
  return std::nullopt;
}

GroupRoundResult GroupCommitRunner::run_group_block(
    std::vector<commit::SignedEndTxn> batch) {
  GroupRoundResult result;

  if (batch.empty()) {
    // No transactions → no group. Without this refusal a fabricated
    // single-server group would co-sign an empty "committed" block.
    result.fault = "empty batch refused at submission";
    return result;
  }

  // Same canonical order as the engine drivers: block bytes (and hence CoSi
  // nonces and the sequenced stream) stay bit-identical across drivers.
  commit::order_batch(batch);
  std::vector<txn::Transaction> txns = commit::batch_txns(batch);

  const ServerGroup group = group_for(txns, cluster_->num_servers());
  result.group = group;
  result.group_size = group.members.size();
  if (group.members.empty()) {
    result.fault = "batch touches no shard";
    return result;
  }

  // TFCommit among the group members only.
  std::vector<crypto::PublicKey> group_keys;
  group_keys.reserve(group.members.size());
  for (const ServerId s : group.members) {
    group_keys.push_back(cluster_->server_keys()[s.value]);
  }
  commit::TfCommitCoordinator coordinator(group.members, group_keys);

  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      /*height=*/0, crypto::Digest::zero(), std::move(txns), group.members);
  commit::GetVoteMsg get_vote = coordinator.start(std::move(partial), std::move(batch));
  // OrdServ hands out the epoch: a unique CoSi nonce domain per round, even
  // when multiple group coordinators terminate batches concurrently. The
  // group-domain tag keeps it disjoint from the cluster engine's epochs.
  get_vote.round = group_epoch(sequencer_->epochs().reserve());

  std::vector<commit::VoteMsg> votes;
  votes.reserve(group.members.size());
  for (const ServerId s : group.members) {
    Server& server = cluster_->server(s);
    votes.push_back(
        server.tf_cohort().handle_get_vote(get_vote, server.faults().cohort));
  }

  Server& coord_server = cluster_->server(group.coordinator);
  const std::vector<commit::ChallengeMsg> challenges =
      coordinator.on_votes(votes, coord_server.faults().coordinator);
  if (challenges.size() != 1 && challenges.size() != group.members.size()) {
    // A broadcast is one message; a per-cohort fan-out is |group| messages.
    // Anything else is a malformed coordinator — refuse the round instead of
    // indexing into the vector by cohort slot (which read out of bounds
    // before this guard existed).
    result.fault = "coordinator challenge fan-out mismatch (" +
                   std::to_string(challenges.size()) + " messages for " +
                   std::to_string(group.members.size()) + " cohorts)";
    return result;
  }

  std::vector<commit::ResponseMsg> responses;
  responses.reserve(group.members.size());
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    Server& server = cluster_->server(group.members[i]);
    const std::size_t slot = challenges.size() == 1 ? 0 : i;
    responses.push_back(server.tf_cohort().handle_challenge(challenges[slot],
                                                            server.faults().cohort));
  }

  const commit::TfCommitOutcome outcome = coordinator.on_responses(responses);
  result.decision = outcome.decision;
  result.cosign_valid = outcome.cosign_valid;
  result.refusals = outcome.refusals;
  result.faulty_cosigners = outcome.faulty_cosigners;
  if (!outcome.cosign_valid) {
    // An unsignable block never reaches OrdServ; the group retries or aborts
    // out-of-band (and the refusals identify the culprit).
    result.fault = "co-sign did not verify";
    return result;
  }

  result.global_height = sequencer_->submit(outcome.block, group);
  deliver_all();
  return result;
}

void GroupCommitRunner::deliver_all() {
  for (std::uint32_t s = 0; s < cluster_->num_servers(); ++s) {
    Server& server = cluster_->server(ServerId{s});
    for (const SequencedBlock* entry : sequencer_->fetch_new(ServerId{s})) {
      if (refusals_[s]) continue;  // chain already broken at this server
      // Nothing touches the shard before the entry validates: inner co-sign
      // over the unchained bytes, outer hash chain, dependency completeness.
      const auto bad =
          validators_[s].check(*entry, cluster_->server_keys());
      if (bad) {
        refusals_[s] = DeliveryRefusal{entry->block.height, *bad};
        continue;
      }
      delivered_[s].push_back(*entry);
      if (entry->block.committed()) {
        for (const auto& t : entry->block.txns) {
          txn::apply_committed(server.shard(), t);
        }
      }
    }
  }
}

}  // namespace fides::ordserv
