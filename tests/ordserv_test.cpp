// Tests for the §4.6 scaling path: server groups, the OrdServ sequencer,
// and group-commit rounds.
#include <gtest/gtest.h>

#include "ordserv/group_commit.hpp"

namespace fides::ordserv {
namespace {

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.num_servers = 5;
  cfg.items_per_shard = 20;
  cfg.versioning = store::VersioningMode::kSingle;
  return cfg;
}

commit::SignedEndTxn rw_txn(Cluster& /*cluster*/, Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

txn::Transaction touching(std::vector<ItemId> items) {
  txn::Transaction t;
  for (const ItemId i : items) {
    t.rw.writes.push_back(txn::WriteEntry{i, to_bytes("v"), std::nullopt, {}, {}});
  }
  return t;
}

TEST(ServerGroup, GroupForPicksInvolvedServers) {
  // 5 servers; items 0 and 6 live on servers 0 and 1.
  const ServerGroup g = group_for({touching({0, 6})}, 5);
  EXPECT_EQ(g.members, (std::vector<ServerId>{ServerId{0}, ServerId{1}}));
  EXPECT_EQ(g.coordinator, ServerId{0});
  EXPECT_TRUE(g.contains(ServerId{1}));
  EXPECT_FALSE(g.contains(ServerId{2}));
}

TEST(ServerGroup, OverlapDetection) {
  const ServerGroup a = group_for({touching({0})}, 5);   // server 0
  const ServerGroup b = group_for({touching({1})}, 5);   // server 1
  const ServerGroup c = group_for({touching({0, 1})}, 5);  // servers 0,1
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Sequencer, AssignsHeightsAndChains) {
  Sequencer seq;
  ledger::Block b1, b2;
  b1.txns.push_back(touching({0}));
  b2.txns.push_back(touching({1}));
  EXPECT_EQ(seq.submit(b1, group_for(b1.txns, 5)), 0u);
  EXPECT_EQ(seq.submit(b2, group_for(b2.txns, 5)), 1u);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.stream()[1].block.prev_hash, seq.stream()[0].block.digest());
  EXPECT_TRUE(seq.stream()[0].block.prev_hash.is_zero());
}

TEST(Sequencer, TracksDependencies) {
  Sequencer seq;
  ledger::Block b1, b2, b3;
  b1.txns.push_back(touching({0}));
  b2.txns.push_back(touching({1}));     // independent of b1
  b3.txns.push_back(touching({0, 1}));  // depends on both
  seq.submit(b1, group_for(b1.txns, 5));
  seq.submit(b2, group_for(b2.txns, 5));
  seq.submit(b3, group_for(b3.txns, 5));
  EXPECT_TRUE(seq.stream()[0].depends_on.empty());
  EXPECT_TRUE(seq.stream()[1].depends_on.empty());
  EXPECT_EQ(seq.stream()[2].depends_on, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Sequencer, FetchNewDeliversOnce) {
  Sequencer seq;
  ledger::Block b;
  b.txns.push_back(touching({0}));
  seq.submit(b, group_for(b.txns, 5));
  EXPECT_EQ(seq.fetch_new(ServerId{0}).size(), 1u);
  EXPECT_TRUE(seq.fetch_new(ServerId{0}).empty());
  EXPECT_EQ(seq.fetch_new(ServerId{1}).size(), 1u);
}

TEST(GroupCommit, RoundCommitsWithinGroupOnly) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Items 0 and 6 involve servers 0 and 1 only.
  const auto result = runner.run_group_block({rw_txn(cluster, client, {0, 6}, "a")});
  EXPECT_EQ(result.decision, ledger::Decision::kCommit);
  EXPECT_TRUE(result.cosign_valid);
  EXPECT_EQ(result.group_size, 2u);
  EXPECT_EQ(result.group.members,
            (std::vector<ServerId>{ServerId{0}, ServerId{1}}));

  // The block reached every server's stream, and the write applied.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(runner.log_of(ServerId{i}).size(), 1u);
  }
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "a-0");
}

TEST(GroupCommit, StreamValidates) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});
  runner.run_group_block({rw_txn(cluster, client, {0, 1}, "c")});

  const auto& stream = runner.log_of(ServerId{4});
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_FALSE(validate_stream(stream, cluster.server_keys()).has_value());
  // Dependency metadata: block 2 depends on blocks 0 and 1.
  EXPECT_EQ(stream[2].depends_on, (std::vector<std::uint64_t>{0, 1}));
}

TEST(GroupCommit, StreamDetectsTampering) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});

  auto stream = runner.log_of(ServerId{0});
  stream[0].block.txns[0].rw.writes[0].new_value = to_bytes("evil");
  const auto bad = validate_stream(stream, cluster.server_keys());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 0u);
}

TEST(GroupCommit, StreamDetectsReorder) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});

  auto stream = runner.log_of(ServerId{0});
  std::swap(stream[0], stream[1]);
  EXPECT_TRUE(validate_stream(stream, cluster.server_keys()).has_value());
}

TEST(GroupCommit, DisjointGroupsProgressIndependently) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Server pairs (0) and (1): Gi ∩ Gj = ∅ — any order is fine, FIFO used.
  const auto r1 = runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  const auto r2 = runner.run_group_block({rw_txn(cluster, client, {1}, "b")});
  EXPECT_EQ(r1.decision, ledger::Decision::kCommit);
  EXPECT_EQ(r2.decision, ledger::Decision::kCommit);
  EXPECT_FALSE(r1.group.overlaps(r2.group));
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "a-0");
  EXPECT_EQ(to_string(cluster.server(ServerId{1}).shard().peek(1).value), "b-1");
}

TEST(GroupCommit, DependentGroupsKeepOrder) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Two sequential writes to the same item through different group rounds:
  // the second must see the first (no lost update).
  auto t1 = rw_txn(cluster, client, {0}, "first");
  ASSERT_EQ(runner.run_group_block({t1}).decision, ledger::Decision::kCommit);
  auto t2 = rw_txn(cluster, client, {0}, "second");
  ASSERT_EQ(runner.run_group_block({t2}).decision, ledger::Decision::kCommit);
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "second-0");
  const auto& stream = runner.log_of(ServerId{0});
  EXPECT_EQ(stream[1].depends_on, (std::vector<std::uint64_t>{0}));
}

TEST(GroupCommit, ByzantineGroupMemberBlocksSigning) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  cluster.server(ServerId{1}).faults().cohort.corrupt_sch_response = true;
  // Items 0 and 6 -> servers 0 and 1; member 1 sabotages the co-sign.
  const auto result = runner.run_group_block({rw_txn(cluster, client, {0, 6}, "a")});
  EXPECT_FALSE(result.cosign_valid);
  EXPECT_EQ(seq.size(), 0u);  // never published
}

}  // namespace
}  // namespace fides::ordserv
