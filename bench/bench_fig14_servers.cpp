// Figure 14 — varying the number of servers/shards (§6.3).
//
// Sweep: 3..9 servers, 10000 items/shard, 100 transactions per block.
// Paper result: +47% throughput and -33% latency from 3 to 9 servers; the
// per-block Merkle (MHT) update time shrinks as the 500 operations per block
// spread across more shards.
//
// This bench reports both the *modeled* critical-path latency (the paper's
// analytical single-machine reproduction) and the *measured* wall-clock
// latency of each round under the parallel round engine, then validates the
// engine itself: the same batch executed at 1 thread and at N threads must
// produce identical commit decisions and ledger contents, with the N-thread
// run faster on multi-core hardware (FIDES_THREADS controls N; see
// bench_common.hpp).
#include <algorithm>

#include "bench_common.hpp"
#include "workload/ycsb.hpp"

namespace {

using namespace fides;

struct EngineRun {
  double measured_us_per_round{0};
  ledger::Decision decision{ledger::Decision::kAbort};
  std::vector<crypto::Digest> log_heads;     // per server
  std::vector<crypto::Digest> merkle_roots;  // per server
};

/// Runs `rounds` TFCommit blocks of a deterministic YCSB workload on a fresh
/// cluster with `num_threads` workers and returns the measured per-round
/// wall clock plus the final ledger fingerprint.
EngineRun run_engine(std::uint32_t servers, std::uint32_t num_threads,
                     std::size_t rounds, std::size_t txns_per_block,
                     bool batch_verify = false) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.items_per_shard = 10000;
  cfg.max_batch_size = txns_per_block;
  cfg.num_threads = num_threads;
  cfg.sign_data_path = false;
  cfg.batch_verify = batch_verify;

  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(servers) * cfg.items_per_shard, cfg.seed);

  EngineRun run;
  double total_measured_us = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    workload.begin_batch();
    commit::BatchBuilder batcher(txns_per_block);
    for (std::size_t i = 0; i < txns_per_block; ++i) {
      batcher.enqueue(workload.run_transaction(client));
    }
    while (!batcher.empty()) {
      const RoundMetrics metrics = cluster.run_tfcommit_block(batcher.next_batch());
      total_measured_us += metrics.measured_latency_us;
      run.decision = metrics.decision;
    }
  }
  run.measured_us_per_round = total_measured_us / static_cast<double>(rounds);
  for (std::uint32_t i = 0; i < servers; ++i) {
    run.log_heads.push_back(cluster.server(ServerId{i}).log().head_hash());
    run.merkle_roots.push_back(cluster.server(ServerId{i}).shard().merkle_root());
  }
  return run;
}

void parallel_engine_section(bench::BenchReport& report) {
  const std::uint32_t servers = 8;
  // Same FIDES_THREADS knob as the sweep above, floored at 4: this section
  // exists to demonstrate the multi-thread engine, so it never runs below
  // the minimum width that can show a speedup.
  const std::uint32_t threads = std::max<std::uint32_t>(4, fides::bench::bench_threads());
  const std::size_t rounds = std::max<std::size_t>(2, fides::bench::bench_txns() / 100);

  std::printf("\nParallel round engine: %u servers, %zu rounds of 100 txns\n", servers,
              rounds);
  const EngineRun seq = run_engine(servers, 1, rounds, 100);
  const EngineRun par = run_engine(servers, threads, rounds, 100);

  const bool identical = seq.decision == par.decision &&
                         seq.log_heads == par.log_heads &&
                         seq.merkle_roots == par.merkle_roots;
  const double speedup =
      par.measured_us_per_round > 0
          ? seq.measured_us_per_round / par.measured_us_per_round
          : 0.0;
  std::printf("%-24s %-18s %-18s %-9s %s\n", "", "measured_ms/round", "decision", "speedup",
              "ledger");
  std::printf("%-24s %-18.3f %-18s %-9s %s\n", "1 thread",
              seq.measured_us_per_round / 1000.0,
              seq.decision == ledger::Decision::kCommit ? "commit" : "abort", "1.00x", "-");
  std::printf("%-24s %-18.3f %-18s %.2fx    %s\n",
              (std::to_string(threads) + " threads").c_str(),
              par.measured_us_per_round / 1000.0,
              par.decision == ledger::Decision::kCommit ? "commit" : "abort", speedup,
              identical ? "identical" : "DIVERGED");
  if (!identical) {
    std::printf("ERROR: parallel run diverged from sequential run\n");
    std::exit(1);
  }
  bench::BenchPoint& p = report.point("parallel_engine");
  p.approx.set("seq_ms_per_round", seq.measured_us_per_round / 1000.0);
  p.approx.set("par_ms_per_round", par.measured_us_per_round / 1000.0);
  p.info.set("threads", threads);
  p.info.set("speedup", speedup);
}

/// Wide-cohort rounds with FIDES_BATCH_VERIFY semantics off vs on: the same
/// workload, threads, and seeds, with the only difference being whether the
/// coordinator inbox and per-cohort request checks verify signatures one by
/// one or as RLC aggregates. The ledger must be byte-identical either way;
/// the wall clock must improve by >= 1.3x (the bench gate CI runs).
void batch_verify_section(bench::BenchReport& report) {
  const std::uint32_t servers = 9;
  const std::uint32_t threads = std::max<std::uint32_t>(4, fides::bench::bench_threads());
  const std::size_t rounds = std::max<std::size_t>(2, fides::bench::bench_txns() / 100);

  std::printf("\nBatched verification: %u servers, %zu rounds of 100 txns, %u threads\n",
              servers, rounds, threads);
  const EngineRun off = run_engine(servers, threads, rounds, 100, /*batch_verify=*/false);
  const EngineRun on = run_engine(servers, threads, rounds, 100, /*batch_verify=*/true);

  const bool identical = off.decision == on.decision && off.log_heads == on.log_heads &&
                         off.merkle_roots == on.merkle_roots;
  const double speedup = on.measured_us_per_round > 0
                             ? off.measured_us_per_round / on.measured_us_per_round
                             : 0.0;
  std::printf("%-24s %-18s %-18s %-9s %s\n", "", "measured_ms/round", "decision",
              "speedup", "ledger");
  std::printf("%-24s %-18.3f %-18s %-9s %s\n", "per-signature opens",
              off.measured_us_per_round / 1000.0,
              off.decision == ledger::Decision::kCommit ? "commit" : "abort", "1.00x", "-");
  std::printf("%-24s %-18.3f %-18s %.2fx    %s\n", "batched opens",
              on.measured_us_per_round / 1000.0,
              on.decision == ledger::Decision::kCommit ? "commit" : "abort", speedup,
              identical ? "identical" : "DIVERGED");
  if (!identical) {
    std::printf("ERROR: batched verification diverged from per-signature opens\n");
    std::exit(1);
  }
  if (speedup < 1.3) {
    std::printf("ERROR: batched verification failed the 1.3x wall-clock bar (%.2fx)\n",
                speedup);
    std::exit(1);
  }
  bench::BenchPoint& p = report.point("batch_verify_engine");
  p.approx.set("unbatched_ms_per_round", off.measured_us_per_round / 1000.0);
  p.approx.set("batched_ms_per_round", on.measured_us_per_round / 1000.0);
  p.info.set("threads", threads);
  p.info.set("speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fides;
  bench::print_header(
      "Figure 14: number of servers, 100 txns/block",
      "throughput +~47%, latency -~33%, MHT update time falls, 3 -> 9 servers");

  bench::BenchReport report("fig14_servers");
  bench::stamp_config(report);

  std::printf("%-8s %-14s %-14s %-16s %-10s %-14s %-10s\n", "servers", "modeled_ms",
              "measured_ms", "throughput_tps", "p99_ms", "mht_update_ms", "aborted");

  for (std::uint32_t servers = 3; servers <= 9; ++servers) {
    workload::ExperimentConfig cfg;
    cfg.cluster.num_servers = servers;
    cfg.cluster.items_per_shard = 10000;
    cfg.cluster.max_batch_size = 100;
    cfg.txns_per_block = 100;
    const auto r = bench::run_point(cfg);
    std::printf("%-8u %-14.2f %-14.2f %-16.0f %-10.2f %-14.4f %-10zu\n", servers,
                r.avg_latency_ms, r.avg_measured_ms, r.throughput_tps, r.p99_ms,
                r.avg_mht_ms, r.aborted_txns);
    bench::add_experiment_point(report, "servers" + std::to_string(servers), r);
  }

  parallel_engine_section(report);
  batch_verify_section(report);
  bench::pipeline_depth_section(/*servers=*/4, /*txns_per_block=*/25,
                                /*blocks=*/std::max<std::size_t>(8, bench::bench_txns() / 25),
                                &report);
  bench::finish_report(report, argc, argv);
  return 0;
}
