// Chain validation and correct-log selection (§3.3 step ii, Lemmas 6 & 7).
//
// During an audit the auditor gathers logs from all servers, validates each
// (co-sign per block + hash-pointer chain), discards invalid logs, and —
// because at least one server is correct — adopts the longest valid log as
// the correct *and complete* history. Valid-but-shorter logs expose servers
// that omitted the tail (Lemma 7); invalid logs expose tampering or
// reordering (Lemma 6).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ledger/block.hpp"

namespace fides::ledger {

struct ChainIssue {
  std::size_t block_index{0};
  std::string what;
};

struct ChainCheckResult {
  bool ok{true};
  std::vector<ChainIssue> issues;
};

/// Validates a log: consecutive heights, prev_hash links, and (when
/// `require_cosign`) a valid collective signature on every block under the
/// full server membership. 2PC logs are validated with require_cosign=false.
ChainCheckResult validate_chain(std::span<const Block> blocks,
                                std::span<const crypto::PublicKey> server_keys,
                                bool require_cosign);

struct LogSelection {
  /// Index (into the input vector) of the adopted correct & complete log.
  std::optional<std::size_t> chosen;
  /// Logs failing validate_chain — tampered or reordered (Lemma 6).
  std::vector<std::size_t> invalid;
  /// Valid logs strictly shorter than the chosen one — truncated (Lemma 7).
  std::vector<std::size_t> incomplete;
};

/// Implements the auditor's log-selection step. `logs[i]` is the log
/// collected from server i.
LogSelection select_correct_log(const std::vector<std::vector<Block>>& logs,
                                std::span<const crypto::PublicKey> server_keys);

}  // namespace fides::ledger
