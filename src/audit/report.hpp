// Audit findings (§3.3).
//
// Fides' detection guarantee is two-part: (i) the precise point in the
// transaction history where an anomaly occurred, and (ii) the exact
// misbehaving server(s), irrefutably linked. A Violation captures both.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/timestamp.hpp"

namespace fides::audit {

enum class ViolationKind : std::uint8_t {
  kTamperedLog,                ///< Lemma 6: modified or reordered blocks
  kIncompleteLog,              ///< Lemma 7: omitted tail
  kIncorrectRead,              ///< Lemma 1: wrong value returned for a read
  kDatastoreCorruption,        ///< Lemma 2: store does not match signed root
  kSerializabilityViolation,   ///< Lemma 3: RW/WW/WR conflict out of ts order
  kInvalidCosign,              ///< Lemma 4: block signature does not verify
  kAtomicityViolation,         ///< Lemma 5: divergent decisions across servers
  kNoValidLog,                 ///< all collected logs invalid (n correct servers
                               ///< assumption violated)
};

std::string to_string(ViolationKind k);

struct Violation {
  ViolationKind kind{};
  std::optional<ServerId> server;      ///< culprit, when attributable
  std::optional<std::size_t> block;    ///< block height of the anomaly
  std::optional<Timestamp> version;    ///< offending version (datastore audits)
  std::string detail;

  std::string to_string() const;
};

struct AuditReport {
  std::vector<Violation> violations;
  /// Which server's log the auditor adopted as correct & complete.
  std::optional<ServerId> adopted_log_source;
  std::size_t blocks_audited{0};
  std::size_t items_authenticated{0};

  bool clean() const { return violations.empty(); }
  bool has(ViolationKind kind) const;
  std::vector<Violation> of_kind(ViolationKind kind) const;

  std::string to_string() const;
};

}  // namespace fides::audit
