#include "workload/ycsb.hpp"

#include <algorithm>

namespace fides::workload {

YcsbWorkload::YcsbWorkload(WorkloadConfig config, std::uint64_t total_items,
                           std::uint64_t seed)
    : config_(config),
      total_items_(total_items),
      rng_(seed),
      zipf_(std::max<std::uint64_t>(total_items, 1), config.zipf_theta) {}

std::vector<ItemId> YcsbWorkload::pick_items() {
  std::vector<ItemId> items;
  items.reserve(config_.ops_per_txn);
  // If the batch window has nearly exhausted the keyspace, disjointness is
  // impossible; fall back to plain distinct-within-txn sampling.
  const bool disjoint =
      config_.disjoint_batches &&
      batch_used_.size() + config_.ops_per_txn * 4 < total_items_;
  const auto hot_items = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(total_items_) *
                                    config_.hot_set_fraction));
  while (items.size() < config_.ops_per_txn) {
    ItemId candidate = 0;
    switch (config_.distribution) {
      case Distribution::kUniform:
        candidate = rng_.uniform(total_items_);
        break;
      case Distribution::kZipfian:
        candidate = zipf_.sample(rng_);
        break;
      case Distribution::kHotspot:
        // Hot keys occupy the front of the id range so they spread across
        // shards (ids are striped round-robin over servers).
        candidate = rng_.uniform01() < config_.hot_op_fraction
                        ? rng_.uniform(hot_items)
                        : hot_items + rng_.uniform(std::max<std::uint64_t>(
                                          1, total_items_ - hot_items));
        if (candidate >= total_items_) candidate = total_items_ - 1;
        break;
    }
    if (disjoint && batch_used_.count(candidate) != 0) continue;
    if (std::find(items.begin(), items.end(), candidate) == items.end()) {
      items.push_back(candidate);
    }
  }
  if (disjoint) batch_used_.insert(items.begin(), items.end());
  return items;
}

Bytes YcsbWorkload::next_value() {
  return to_bytes("v" + std::to_string(++value_counter_));
}

commit::SignedEndTxn YcsbWorkload::run_transaction(Client& client) {
  const std::vector<ItemId> items = pick_items();
  ClientTxn txn = client.begin();
  for (const ItemId item : items) {
    client.read(txn, item);
    const bool read_only = rng_.uniform01() < config_.read_only_fraction;
    if (!read_only) client.write(txn, item, next_value());
  }
  return client.end(std::move(txn));
}

}  // namespace fides::workload
