// A Fides client (§4.1, Figure 5).
//
// Clients own their transactions end to end: they begin transactions at the
// involved servers, issue reads and writes directly to the owning partitions
// (no front-end transaction managers — those could lie), accumulate the
// read/write sets, assign the commit timestamp, and send the signed
// end-transaction request to the coordinator.
#pragma once

#include <unordered_map>

#include "commit/messages.hpp"
#include "fides/transport.hpp"
#include "txn/rw_set.hpp"

namespace fides {

class Cluster;  // fwd — the client talks to servers through the cluster

/// Handle for one in-flight transaction at the client.
class ClientTxn {
 public:
  TxnId id() const { return id_; }

  /// Items this transaction has touched so far (drives Begin fan-out).
  const std::vector<ItemId>& touched() const { return touched_; }

 private:
  friend class Client;
  TxnId id_;
  txn::RwSetBuilder builder_;
  std::vector<ItemId> touched_;
};

class Client {
 public:
  Client(ClientId id, Cluster& cluster);

  ClientId id() const { return id_; }
  const crypto::KeyPair& keypair() const { return keypair_; }

  /// Step 1: Begin Transaction (allocates the txn id; the Begin message to
  /// each involved server is sent lazily at first access).
  ClientTxn begin();

  /// Steps 2-3: read an item through its owning server. Returns the value;
  /// records the entry in the read set.
  Bytes read(ClientTxn& txn, ItemId item);

  /// Steps 2-3: write an item (buffered server-side); records the entry.
  void write(ClientTxn& txn, ItemId item, Bytes value);

  /// Step 4: End Transaction — builds the signed request for the
  /// coordinator. The commit timestamp comes from the client's Lamport
  /// oracle, merged with every timestamp observed during execution.
  commit::SignedEndTxn end(ClientTxn&& txn);

  /// Verifies a finalized block's co-sign before accepting the decision
  /// (§4.3.1: "the client, with the public keys of all the servers,
  /// verifies the co-sign"). Triggers-an-audit is modelled as returning
  /// false.
  bool accept_decision(const ledger::Block& block,
                       std::span<const crypto::PublicKey> server_keys) const;

  TimestampOracle& oracle() { return oracle_; }

 private:
  ClientId id_;
  Cluster* cluster_;
  crypto::KeyPair keypair_;
  TimestampOracle oracle_;
  std::uint64_t next_seq_{0};
};

}  // namespace fides
