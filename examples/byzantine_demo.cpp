// Byzantine gauntlet: runs every §5 failure class against a live cluster and
// shows each one being detected — during the protocol round (TFCommit
// refusals, Lemma 4 attribution) or by the offline audit (Lemmas 1-7).
#include <cstdio>

#include "audit/auditor.hpp"
#include "fides/cluster.hpp"

namespace {

using namespace fides;

commit::SignedEndTxn rw_txn(Cluster& cluster, Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "DETECTED" : "MISSED  ", what);
  if (!ok) ++failures;
}

std::unique_ptr<Cluster> fresh_cluster() {
  ClusterConfig config;
  config.num_servers = 4;
  config.items_per_shard = 64;
  config.versioning = store::VersioningMode::kMulti;
  return std::make_unique<Cluster>(config);
}

}  // namespace

int main() {
  // --- 1. Incorrect reads (Scenario 1, Lemma 1) ------------------------------
  std::printf("1. execution layer: server lies about read values\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    cluster->run_block({rw_txn(*cluster, client, {0}, "honest")});
    cluster->server(cluster->owner_of(0)).faults().read_fault =
        ReadFault::kGarbageValue;
    cluster->run_block({rw_txn(*cluster, client, {0}, "tainted")});
    audit::Auditor auditor(*cluster, {audit::DatastorePolicy::kNone});
    check(auditor.run().has(audit::ViolationKind::kIncorrectRead),
          "stale/garbage read attributed to the lying server");
  }

  // --- 2. Fake Merkle root in the block (Scenario 2) --------------------------
  std::printf("2. commit layer: coordinator forges a benign server's root\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    cluster->server(ServerId{0}).faults().coordinator.fake_root_victim = ServerId{1};
    const auto metrics = cluster->run_block({rw_txn(*cluster, client, {0, 1}, "x")});
    bool victim_refused = false;
    for (const auto& [server, reason] : metrics.refusals) {
      victim_refused |= server == ServerId{1};
    }
    check(!metrics.cosign_valid && victim_refused,
          "benign server refused to co-sign the forged root");
  }

  // --- 3. Datastore corruption (Scenario 3, Lemma 2) --------------------------
  std::printf("3. datastore: server skips the committed update\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    cluster->server(cluster->owner_of(0)).faults().skip_write_item = 0;
    cluster->run_block({rw_txn(*cluster, client, {0}, "900")});
    audit::Auditor auditor(*cluster);
    const auto report = auditor.run();
    const auto v = report.of_kind(audit::ViolationKind::kDatastoreCorruption);
    check(!v.empty() && v[0].server == cluster->owner_of(0) && v[0].block == 0u,
          "VO fold mismatch at the precise version, attributed to the server");
  }

  // --- 4. Bad CoSi values (Lemma 4) -------------------------------------------
  std::printf("4. commit layer: cohort sends a bogus Schnorr response\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    cluster->server(ServerId{2}).faults().cohort.corrupt_sch_response = true;
    const auto metrics = cluster->run_block({rw_txn(*cluster, client, {0}, "x")});
    check(!metrics.cosign_valid && metrics.faulty_cosigners.size() == 1 &&
              metrics.faulty_cosigners[0] == ServerId{2},
          "invalid aggregate; per-share check names the culprit");
  }

  // --- 5. Coordinator equivocation (Lemma 5) ----------------------------------
  std::printf("5. commit layer: coordinator sends commit to some, abort to others\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    auto& faults = cluster->server(ServerId{0}).faults().coordinator;
    faults.equivocate = commit::CoordinatorFaults::Equivocation::kSameChallenge;
    faults.equivocation_victims = {2, 3};
    const auto metrics = cluster->run_block({rw_txn(*cluster, client, {0, 1, 2}, "x")});
    check(!metrics.cosign_valid && metrics.refusals.size() >= 2,
          "victims saw the challenge/block mismatch; block unsignable");
  }

  // --- 6. Log tampering (Lemma 6) ----------------------------------------------
  std::printf("6. log: server rewrites committed history\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    for (int i = 0; i < 3; ++i) {
      cluster->run_block(
          {rw_txn(*cluster, client, {static_cast<ItemId>(i)}, "b" + std::to_string(i))});
    }
    ledger::Block forged = cluster->server(ServerId{3}).log().at(1);
    forged.txns[0].rw.writes[0].new_value = to_bytes("rewritten");
    cluster->server(ServerId{3}).log().tamper_block(1, forged);
    audit::Auditor auditor(*cluster, {audit::DatastorePolicy::kNone});
    const auto report = auditor.run();
    bool attributed = false;
    for (const auto& v : report.violations) attributed |= v.server == ServerId{3};
    check(attributed, "co-sign mismatch pinpoints the tampering server");
  }

  // --- 7. Log truncation (Lemma 7) ----------------------------------------------
  std::printf("7. log: server omits the tail\n");
  {
    auto cluster = fresh_cluster();
    Client& client = cluster->make_client();
    for (int i = 0; i < 3; ++i) {
      cluster->run_block(
          {rw_txn(*cluster, client, {static_cast<ItemId>(i)}, "b" + std::to_string(i))});
    }
    cluster->server(ServerId{1}).log().truncate_tail(1);
    audit::Auditor auditor(*cluster, {audit::DatastorePolicy::kNone});
    const auto report = auditor.run();
    const auto v = report.of_kind(audit::ViolationKind::kIncompleteLog);
    check(v.size() == 1 && v[0].server == ServerId{1},
          "shorter-but-valid log exposed against the adopted complete log");
  }

  std::printf("\n%s\n", failures == 0 ? "all Byzantine behaviours detected"
                                      : "SOME FAULTS ESCAPED");
  return failures == 0 ? 0 : 1;
}
