// Shared plumbing for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the paper's §6: it runs
// the experiment driver over the paper's parameter sweep and prints the
// measured series next to the paper's reported shape. Absolute numbers
// differ (the paper ran Python on EC2; we run C++ with from-scratch crypto
// on one machine) — the *shape* is the reproduction target, as recorded in
// EXPERIMENTS.md.
//
// Environment knobs:
//   FIDES_BENCH_TXNS   client requests per data point   (default 200;
//                      paper used 1000 — set 1000 for full fidelity)
//   FIDES_BENCH_SEEDS  runs averaged per point          (default 2; paper 3)
//   FIDES_THREADS      threads for the round engine (default 1 = sequential)
//   FIDES_PIPELINE     commit rounds in flight (default 1 = lock-step)
//   FIDES_NET          "sim" routes commit rounds through the deterministic
//                      SimNet (seeded by FIDES_SIM_SEED, default 1)
// See the README's "engine knobs" table for the full semantics.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simnet.hpp"
#include "workload/driver.hpp"

namespace fides::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::size_t bench_txns() { return env_size("FIDES_BENCH_TXNS", 200); }

/// Worker threads for commit rounds: FIDES_THREADS, default 1 (sequential).
inline std::uint32_t bench_threads() {
  return static_cast<std::uint32_t>(env_size("FIDES_THREADS", 1));
}

/// Commit rounds in flight: FIDES_PIPELINE, default 1 (lock-step).
inline std::uint32_t bench_pipeline() {
  return static_cast<std::uint32_t>(env_size("FIDES_PIPELINE", 1));
}

/// Speculative voting: FIDES_SPEC=1 drops the apply-watermark gate on round
/// openings (TFCommit; see ClusterConfig::speculate). Default off.
inline bool bench_speculate() {
  const char* v = std::getenv("FIDES_SPEC");
  return v != nullptr && std::string(v) != "0";
}

inline std::vector<std::uint64_t> bench_seeds() {
  const std::size_t n = env_size("FIDES_BENCH_SEEDS", 2);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(42 + i);
  return seeds;
}

inline void print_header(const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("txns/point=%zu, runs averaged=%zu, threads=%u, pipeline=%u\n",
              bench_txns(), bench_seeds().size(), bench_threads(), bench_pipeline());
  std::printf("==============================================================\n");
}

/// Applies the FIDES_NET knob: "sim" switches the cluster onto the
/// discrete-event simulated network (direct delivery otherwise).
inline void apply_network_env(ClusterConfig& cluster) {
  const char* v = std::getenv("FIDES_NET");
  if (v != nullptr && std::string(v) == "sim") {
    cluster.network.mode = sim::NetworkMode::kSimulated;
    cluster.network.sim.seed = env_size("FIDES_SIM_SEED", 1);
  }
}

inline workload::ExperimentResult run_point(workload::ExperimentConfig cfg) {
  cfg.total_txns = bench_txns();
  cfg.cluster.sign_data_path = false;  // §6 measures from end-transaction on
  cfg.cluster.num_threads = bench_threads();
  cfg.cluster.pipeline_depth = bench_pipeline();
  cfg.cluster.speculate = bench_speculate();
  apply_network_env(cfg.cluster);
  const auto seeds = bench_seeds();
  return workload::run_averaged(cfg, seeds);
}

// --- Pipeline depth sweep -----------------------------------------------------
//
// Mints a fixed stream of signed batches once (client transactions executed
// against a pristine cluster, blocks never run), then replays the identical
// stream on fresh clusters at pipeline depths 1, 2, and 4. Client keys are
// deterministic per id, so the replay clusters verify the same signatures.
// Reports measured throughput per depth and **exits non-zero** if any
// depth's decisions or ledger diverge from depth 1 — the depth-equivalence
// gate CI runs in Release mode.

struct DepthRun {
  std::vector<ledger::Decision> decisions;
  std::vector<crypto::Digest> log_heads;     // per server
  std::vector<crypto::Digest> merkle_roots;  // per server
  std::size_t committed_txns{0};
  double wall_us{0};

  bool same_ledger(const DepthRun& o) const {
    return decisions == o.decisions && log_heads == o.log_heads &&
           merkle_roots == o.merkle_roots;
  }
};

inline void pipeline_depth_section(std::uint32_t servers, std::size_t txns_per_block,
                                   std::size_t blocks) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.items_per_shard = 10000;
  cfg.max_batch_size = txns_per_block;
  cfg.sign_data_path = false;
  // The depth > 1 gain is tail work (decision apply, next-round assembly)
  // overlapping across rounds — visible only when every server has its own
  // thread, so this section never runs below n+1 executors.
  cfg.num_threads = std::max<std::uint32_t>(servers + 1, bench_threads());

  // Mint the batch stream.
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  {
    Cluster mint(cfg);
    Client& client = mint.make_client();
    workload::YcsbWorkload workload(
        {}, static_cast<std::uint64_t>(servers) * cfg.items_per_shard, cfg.seed);
    commit::BatchBuilder batcher(txns_per_block);
    for (std::size_t b = 0; b < blocks; ++b) {
      workload.begin_batch();
      for (std::size_t i = 0; i < txns_per_block; ++i) {
        batcher.enqueue(workload.run_transaction(client));
      }
    }
    while (!batcher.empty()) batches.push_back(batcher.next_batch());
  }

  std::printf("\nPipelined engine: %u servers, %zu blocks x %zu txns, %u threads\n",
              servers, batches.size(), txns_per_block, cfg.num_threads);
  std::printf("%-8s %-6s %-14s %-16s %-10s %s\n", "depth", "spec", "wall_ms",
              "throughput_tps", "speedup", "ledger");

  std::vector<DepthRun> runs;
  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      ClusterConfig run_cfg = cfg;
      run_cfg.pipeline_depth = depth;
      run_cfg.speculate = speculate;
      Cluster cluster(run_cfg);
      cluster.make_client();  // registers the deterministic client key
      DepthRun run;
      const PipelineResult result = cluster.run_blocks(batches);
      run.wall_us = result.wall_us;
      for (const RoundMetrics& m : result.rounds) {
        run.decisions.push_back(m.decision);
        if (m.decision == ledger::Decision::kCommit) run.committed_txns += m.txns_in_block;
      }
      for (std::uint32_t i = 0; i < servers; ++i) {
        const Server& s = cluster.server(ServerId{i});
        run.log_heads.push_back(s.log().head_hash());
        run.merkle_roots.push_back(s.shard().merkle_root());
      }
      runs.push_back(std::move(run));

      const DepthRun& base = runs.front();
      const DepthRun& cur = runs.back();
      const bool identical = cur.same_ledger(base);
      std::printf("%-8u %-6s %-14.2f %-16.0f %-10.2f %s\n", depth,
                  speculate ? "on" : "off", cur.wall_us / 1000.0,
                  cur.committed_txns / (cur.wall_us / 1e6),
                  cur.wall_us > 0 ? base.wall_us / cur.wall_us : 0.0,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        std::printf("ERROR: pipeline depth %u (spec %s) diverged from depth 1\n",
                    depth, speculate ? "on" : "off");
        std::exit(1);
      }
    }
  }

  // The same stream over SimNet, measured in deterministic *virtual* time:
  // at depth > 1, round k+1's opening legs overlap round k's decision/apply
  // legs on the simulated wire, so the virtual span shrinks — a
  // seed-reproducible measurement of protocol-level pipelining, independent
  // of host core count. Gated runs plateau at ~1.2x past depth 2 (the
  // vote-needs-previous-apply data dependency); speculative voting breaks
  // that cap, and the sweep *asserts* depth-4 speculation beats the gated
  // depth-1 baseline by >= 1.5x on the virtual clock.
  std::printf("%-8s %-6s %-14s %-16s %-10s %s\n", "depth", "spec", "virtual_ms",
              "virtual_tps", "speedup", "ledger (SimNet)");
  std::vector<DepthRun> sim_runs;
  double lockstep_d1_us = 0;
  double spec_d4_us = 0;
  for (const bool speculate : {false, true}) {
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      ClusterConfig run_cfg = cfg;
      run_cfg.pipeline_depth = depth;
      run_cfg.speculate = speculate;
      run_cfg.network.mode = sim::NetworkMode::kSimulated;
      run_cfg.network.sim.seed = env_size("FIDES_SIM_SEED", 1);
      Cluster cluster(run_cfg);
      cluster.make_client();
      DepthRun run;
      const PipelineResult result = cluster.run_blocks(batches);
      run.wall_us = cluster.simnet()->now_us();  // virtual span (fresh net starts at 0)
      for (const RoundMetrics& m : result.rounds) {
        run.decisions.push_back(m.decision);
        if (m.decision == ledger::Decision::kCommit) run.committed_txns += m.txns_in_block;
      }
      for (std::uint32_t i = 0; i < servers; ++i) {
        const Server& s = cluster.server(ServerId{i});
        run.log_heads.push_back(s.log().head_hash());
        run.merkle_roots.push_back(s.shard().merkle_root());
      }
      sim_runs.push_back(std::move(run));
      if (!speculate && depth == 1) lockstep_d1_us = run.wall_us;
      if (speculate && depth == 4) spec_d4_us = run.wall_us;

      const DepthRun& cur = sim_runs.back();
      // Gate against the *direct* depth-1 run too: the simulated schedule must
      // reproduce the exact same ledger as direct delivery at every depth.
      const bool identical =
          cur.same_ledger(sim_runs.front()) && cur.same_ledger(runs.front());
      std::printf("%-8u %-6s %-14.2f %-16.0f %-10.2f %s\n", depth,
                  speculate ? "on" : "off", cur.wall_us / 1000.0,
                  cur.committed_txns / (cur.wall_us / 1e6),
                  cur.wall_us > 0 ? sim_runs.front().wall_us / cur.wall_us : 0.0,
                  identical ? "identical" : "DIVERGED");
      if (!identical) {
        std::printf("ERROR: simulated pipeline depth %u (spec %s) diverged\n",
                    depth, speculate ? "on" : "off");
        std::exit(1);
      }
    }
  }
  const double spec_speedup = spec_d4_us > 0 ? lockstep_d1_us / spec_d4_us : 0.0;
  std::printf("speculative depth-4 virtual speedup over lock-step depth-1: %.2fx\n",
              spec_speedup);
  if (spec_speedup < 1.5) {
    std::printf("ERROR: speculation failed the 1.5x virtual-time bar\n");
    std::exit(1);
  }
}

}  // namespace fides::bench
