// Per-transaction write buffering (§4.2.1).
//
// "The write requests are buffered" — a correct server stages writes during
// execution and applies them to the datastore only after the transaction
// commits. The buffer also remembers the pre-image (old value + timestamps)
// so blind writes can be acknowledged with the information Table 1 requires
// (old_val populated only for blind writes).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/timestamp.hpp"

namespace fides::store {

struct BufferedWrite {
  ItemId item{};
  Bytes new_value;
};

class WriteBuffer {
 public:
  /// Stages a write; later writes to the same item within one transaction
  /// overwrite earlier ones (last-writer-wins inside a transaction).
  void stage(TxnId txn, ItemId item, Bytes new_value);

  /// All staged writes of a transaction (empty if none).
  std::vector<BufferedWrite> staged(TxnId txn) const;

  /// Removes and returns the staged writes (commit path).
  std::vector<BufferedWrite> take(TxnId txn);

  /// Drops a transaction's staged writes (abort path).
  void discard(TxnId txn);

  std::size_t pending_transactions() const { return buffers_.size(); }

 private:
  std::unordered_map<TxnId, std::vector<BufferedWrite>> buffers_;
};

}  // namespace fides::store
