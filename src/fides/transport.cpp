#include "fides/transport.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace fides {

std::string to_string(NodeId n) {
  return (n.kind == NodeId::Kind::kServer ? "S" : "C") + std::to_string(n.id);
}

void Transport::register_node(NodeId node, crypto::PublicKey key) {
  registry_[node] = std::move(key);
}

const crypto::PublicKey* Transport::key_of(NodeId node) const {
  const auto it = registry_.find(node);
  return it != registry_.end() ? &it->second : nullptr;
}

Bytes Transport::signing_preimage(const Envelope& env) {
  // Bind sender identity and type tag into the signature so an envelope
  // cannot be replayed as a different message kind or attributed elsewhere.
  Writer w;
  w.u8(static_cast<std::uint8_t>(env.sender.kind));
  w.u32(env.sender.id);
  w.str(env.type);
  w.bytes(env.payload);
  return std::move(w).take();
}

Envelope Transport::seal(const crypto::KeyPair& sender_key, NodeId sender,
                         std::string type, Bytes payload) {
  Envelope env;
  env.sender = sender;
  env.type = std::move(type);
  env.payload = std::move(payload);
  ++stats_.messages;
  stats_.bytes += env.payload.size();
  if (crypto_enabled()) {
    env.signature = sender_key.sign(signing_preimage(env));
    ++stats_.signatures_created;
  }
  return env;
}

void Transport::count_copy(const Envelope& env) {
  ++stats_.messages;
  stats_.bytes += env.payload.size();
}

bool Transport::open(const Envelope& env, std::string_view expected_type) {
  if (env.type != expected_type) {
    ++stats_.rejected;
    return false;
  }
  if (!crypto_enabled()) return true;
  const crypto::PublicKey* key = key_of(env.sender);
  if (key == nullptr) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.signatures_verified;
  if (!crypto::verify(*key, signing_preimage(env), env.signature)) {
    ++stats_.rejected;
    return false;
  }
  return true;
}

std::vector<unsigned char> Transport::open_batch(std::span<const Envelope* const> envelopes,
                                                 common::ThreadPool* pool) {
  std::vector<unsigned char> ok(envelopes.size(), 1);
  if (!crypto_enabled()) return ok;

  // Envelopes with an unknown sender are rejected outright, exactly as
  // open() would; the rest form the batch_verify input. Preimages must stay
  // alive until the aggregate check has consumed them.
  std::vector<std::size_t> idx;
  std::vector<Bytes> preimages;
  std::vector<crypto::BatchItem> items;
  idx.reserve(envelopes.size());
  preimages.reserve(envelopes.size());
  items.reserve(envelopes.size());
  for (std::size_t i = 0; i < envelopes.size(); ++i) {
    const Envelope& env = *envelopes[i];
    const crypto::PublicKey* key = key_of(env.sender);
    if (key == nullptr) {
      ++stats_.rejected;
      ok[i] = 0;
      continue;
    }
    ++stats_.signatures_verified;
    idx.push_back(i);
    preimages.push_back(signing_preimage(env));
    items.push_back(crypto::BatchItem{key, BytesView{}, &env.signature});
  }
  for (std::size_t j = 0; j < items.size(); ++j) {
    items[j].message = BytesView(preimages[j].data(), preimages[j].size());
  }

  // Fan sub-batches across the pool: each chunk is one RLC aggregate, so the
  // chunk size trades parallelism against amortization of the shared ladder.
  // Verdicts and Stats are identical regardless of the split.
  constexpr std::size_t kMinChunk = 4;
  std::size_t chunks = 1;
  if (pool != nullptr && pool->parallel() && items.size() >= 2 * kMinChunk) {
    chunks = std::min(pool->concurrency(), items.size() / kMinChunk);
  }
  const std::size_t per = (items.size() + chunks - 1) / std::max<std::size_t>(chunks, 1);
  auto verify_chunk = [&](std::size_t ci) {
    const std::size_t lo = ci * per;
    const std::size_t hi = std::min(lo + per, items.size());
    if (lo >= hi) return;
    const auto verdicts = crypto::batch_verify(
        std::span<const crypto::BatchItem>(items.data() + lo, hi - lo));
    for (std::size_t j = lo; j < hi; ++j) {
      if (verdicts[j - lo] == 0) {
        ++stats_.rejected;
        ok[idx[j]] = 0;
      }
    }
  };
  if (chunks > 1) {
    pool->parallel_for(chunks, verify_chunk);
  } else {
    verify_chunk(0);
  }
  return ok;
}

std::vector<unsigned char> Transport::open_all(std::span<const Envelope> envelopes,
                                               std::string_view expected_type,
                                               common::ThreadPool* pool) {
  std::vector<unsigned char> ok(envelopes.size(), 0);
  std::vector<const Envelope*> typed;
  std::vector<std::size_t> pos;
  typed.reserve(envelopes.size());
  pos.reserve(envelopes.size());
  for (std::size_t i = 0; i < envelopes.size(); ++i) {
    if (envelopes[i].type != expected_type) {
      ++stats_.rejected;
      continue;
    }
    typed.push_back(&envelopes[i]);
    pos.push_back(i);
  }
  const auto verdicts = open_batch(typed, pool);
  for (std::size_t j = 0; j < typed.size(); ++j) ok[pos[j]] = verdicts[j];
  return ok;
}

}  // namespace fides
