// Unit tests for blocks (Table 1), the tamper-proof log, and chain
// validation / correct-log selection (Lemmas 6 & 7).
#include <gtest/gtest.h>

#include "crypto/cosi.hpp"
#include "ledger/chain_validation.hpp"
#include "ledger/log.hpp"

namespace fides::ledger {
namespace {

std::vector<crypto::KeyPair> make_keys(std::size_t n) {
  std::vector<crypto::KeyPair> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back(crypto::KeyPair::deterministic(i));
  return keys;
}

std::vector<crypto::PublicKey> pks_of(const std::vector<crypto::KeyPair>& keys) {
  std::vector<crypto::PublicKey> pks;
  for (const auto& k : keys) pks.push_back(k.public_key());
  return pks;
}

txn::Transaction make_txn(std::uint64_t ts, ItemId item, std::string value) {
  txn::Transaction t;
  t.id = TxnId{0, ts};
  t.commit_ts = Timestamp{ts, 0};
  t.rw.writes.push_back(txn::WriteEntry{item, to_bytes(value), std::nullopt, {}, {}});
  return t;
}

/// Collectively signs a block with all `keys` and fills its cosign.
void cosign_block(Block& block, const std::vector<crypto::KeyPair>& keys) {
  block.signers.clear();
  for (std::uint32_t i = 0; i < keys.size(); ++i) block.signers.push_back(ServerId{i});
  const Bytes record = block.signing_bytes();
  std::vector<crypto::CosiCommitment> comms;
  std::vector<crypto::AffinePoint> vs;
  for (const auto& k : keys) {
    comms.push_back(crypto::cosi_commit(k, record, block.height));
    vs.push_back(comms.back().v);
  }
  const auto v = crypto::cosi_aggregate_commitments(vs);
  const auto ch = crypto::cosi_challenge(v, record);
  std::vector<crypto::U256> rs;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    rs.push_back(crypto::cosi_respond(keys[i], comms[i].secret, ch));
  }
  block.cosign = crypto::CosiSignature{v, crypto::cosi_aggregate_responses(rs)};
}

Block make_block(std::uint64_t height, const crypto::Digest& prev,
                 const std::vector<crypto::KeyPair>& keys) {
  Block b;
  b.height = height;
  b.prev_hash = prev;
  b.decision = Decision::kCommit;
  b.txns.push_back(make_txn(height + 1, height % 3, "v" + std::to_string(height)));
  b.set_root(ServerId{0}, crypto::sha256(to_bytes("root" + std::to_string(height))));
  cosign_block(b, keys);
  return b;
}

std::vector<Block> make_chain(std::size_t n, const std::vector<crypto::KeyPair>& keys) {
  std::vector<Block> chain;
  crypto::Digest prev = crypto::Digest::zero();
  for (std::size_t i = 0; i < n; ++i) {
    chain.push_back(make_block(i, prev, keys));
    prev = chain.back().digest();
  }
  return chain;
}

class LedgerTest : public ::testing::Test {
 protected:
  std::vector<crypto::KeyPair> keys = make_keys(3);
  std::vector<crypto::PublicKey> pks = pks_of(keys);
};

TEST_F(LedgerTest, BlockSerializationRoundTrip) {
  const Block b = make_block(0, crypto::Digest::zero(), keys);
  const auto back = Block::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
  EXPECT_EQ(back->digest(), b.digest());
}

TEST_F(LedgerTest, UnsignedBlockRoundTrip) {
  Block b;
  b.height = 7;
  b.decision = Decision::kAbort;
  const auto back = Block::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->cosign.has_value());
  EXPECT_EQ(*back, b);
}

TEST_F(LedgerTest, SigningBytesExcludeCosign) {
  Block b = make_block(0, crypto::Digest::zero(), keys);
  const Bytes with = b.signing_bytes();
  b.cosign.reset();
  EXPECT_EQ(b.signing_bytes(), with);
  EXPECT_NE(b.serialize(), with);  // full serialization differs
}

TEST_F(LedgerTest, DigestSensitiveToEveryField) {
  const Block base = make_block(0, crypto::Digest::zero(), keys);
  const auto d0 = base.digest();

  Block b = base;
  b.height = 1;
  EXPECT_NE(b.digest(), d0);

  b = base;
  b.decision = Decision::kAbort;
  EXPECT_NE(b.digest(), d0);

  b = base;
  b.txns[0].rw.writes[0].new_value = to_bytes("tampered");
  EXPECT_NE(b.digest(), d0);

  b = base;
  b.roots[0].root = crypto::sha256(to_bytes("other"));
  EXPECT_NE(b.digest(), d0);

  b = base;
  b.prev_hash = crypto::sha256(to_bytes("x"));
  EXPECT_NE(b.digest(), d0);

  b = base;
  b.signers.pop_back();
  EXPECT_NE(b.digest(), d0);
}

TEST_F(LedgerTest, RootAccessors) {
  Block b;
  b.set_root(ServerId{2}, crypto::sha256(to_bytes("b")));
  b.set_root(ServerId{0}, crypto::sha256(to_bytes("a")));
  ASSERT_NE(b.root_of(ServerId{0}), nullptr);
  EXPECT_EQ(b.root_of(ServerId{1}), nullptr);
  // Sorted by server id.
  EXPECT_EQ(b.roots[0].server, ServerId{0});
  EXPECT_EQ(b.roots[1].server, ServerId{2});
  // Overwrite keeps a single entry.
  b.set_root(ServerId{0}, crypto::sha256(to_bytes("a2")));
  EXPECT_EQ(b.roots.size(), 2u);
}

TEST_F(LedgerTest, LogAppendEnforcesChainDiscipline) {
  TamperProofLog log;
  Block b0 = make_block(0, crypto::Digest::zero(), keys);
  log.append(b0);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.head_hash(), b0.digest());

  Block wrong_height = make_block(5, log.head_hash(), keys);
  EXPECT_THROW(log.append(wrong_height), std::invalid_argument);

  Block wrong_prev = make_block(1, crypto::sha256(to_bytes("nope")), keys);
  EXPECT_THROW(log.append(wrong_prev), std::invalid_argument);

  Block ok = make_block(1, log.head_hash(), keys);
  log.append(ok);
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(LedgerTest, LatestBlockWithRoot) {
  TamperProofLog log;
  for (const auto& b : make_chain(4, keys)) log.append(b);
  const Block* found = log.latest_block_with_root(ServerId{0});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->height, 3u);
  EXPECT_EQ(log.latest_block_with_root(ServerId{9}), nullptr);
}

TEST_F(LedgerTest, ValidateChainAcceptsHonestLog) {
  const auto chain = make_chain(5, keys);
  const auto res = validate_chain(chain, pks, true);
  EXPECT_TRUE(res.ok) << (res.issues.empty() ? "" : res.issues[0].what);
}

TEST_F(LedgerTest, ValidateChainDetectsTamperedBlock) {
  auto chain = make_chain(5, keys);
  chain[2].txns[0].rw.writes[0].new_value = to_bytes("evil");
  const auto res = validate_chain(chain, pks, true);
  EXPECT_FALSE(res.ok);
  // The tampered block's cosign breaks, and the next block's prev-hash
  // pointer no longer matches.
  bool flagged_block2 = false;
  for (const auto& issue : res.issues) flagged_block2 |= issue.block_index == 2;
  EXPECT_TRUE(flagged_block2);
}

TEST_F(LedgerTest, ValidateChainDetectsReorder) {
  auto chain = make_chain(5, keys);
  std::swap(chain[1], chain[3]);
  EXPECT_FALSE(validate_chain(chain, pks, true).ok);
}

TEST_F(LedgerTest, ValidateChainDetectsMissingCosign) {
  auto chain = make_chain(3, keys);
  chain[1].cosign.reset();
  const auto res = validate_chain(chain, pks, true);
  EXPECT_FALSE(res.ok);
}

TEST_F(LedgerTest, ValidateChainDetectsBogusSignerSet) {
  auto chain = make_chain(2, keys);
  chain[1].signers = {ServerId{42}};  // unknown server
  EXPECT_FALSE(validate_chain(chain, pks, true).ok);
}

TEST_F(LedgerTest, ValidateChainWithoutCosignFor2pc) {
  auto chain = make_chain(3, keys);
  for (auto& b : chain) b.cosign.reset();
  // Clearing cosign changes each digest, so rebuild pointers.
  crypto::Digest prev = crypto::Digest::zero();
  for (auto& b : chain) {
    b.prev_hash = prev;
    prev = b.digest();
  }
  EXPECT_TRUE(validate_chain(chain, pks, false).ok);
}

TEST_F(LedgerTest, SelectCorrectLogPicksLongestValid) {
  const auto chain = make_chain(6, keys);
  std::vector<std::vector<Block>> logs(3, chain);
  logs[1].resize(4);                                      // Lemma 7: truncated tail
  logs[2][1].txns[0].commit_ts = Timestamp{999, 9};       // Lemma 6: tampered
  const auto sel = select_correct_log(logs, pks);
  ASSERT_TRUE(sel.chosen.has_value());
  EXPECT_EQ(*sel.chosen, 0u);
  EXPECT_EQ(sel.incomplete, (std::vector<std::size_t>{1}));
  EXPECT_EQ(sel.invalid, (std::vector<std::size_t>{2}));
}

TEST_F(LedgerTest, SelectCorrectLogAllInvalid) {
  auto chain = make_chain(3, keys);
  chain[0].decision = Decision::kAbort;  // breaks cosign everywhere
  const std::vector<std::vector<Block>> logs(3, chain);
  const auto sel = select_correct_log(logs, pks);
  EXPECT_FALSE(sel.chosen.has_value());
  EXPECT_EQ(sel.invalid.size(), 3u);
}

TEST_F(LedgerTest, LogMaliciousMutators) {
  TamperProofLog log;
  for (const auto& b : make_chain(5, keys)) log.append(b);

  log.reorder(1, 3);
  EXPECT_FALSE(validate_chain(log.blocks(), pks, true).ok);
  log.reorder(1, 3);  // restore
  EXPECT_TRUE(validate_chain(log.blocks(), pks, true).ok);

  log.truncate_tail(3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_TRUE(validate_chain(log.blocks(), pks, true).ok);  // prefix still valid

  // The blocks carry no reads, so targeting one is an error, not UB.
  EXPECT_THROW(log.tamper_read_value(0, 0, 0, to_bytes("evil")), std::out_of_range);
}

TEST_F(LedgerTest, TamperReadValueBreaksCosign) {
  TamperProofLog log;
  Block b = make_block(0, crypto::Digest::zero(), keys);
  b.txns[0].rw.reads.push_back(txn::ReadEntry{5, to_bytes("honest"), {}, {}});
  cosign_block(b, keys);  // re-sign after adding the read
  log.append(b);
  EXPECT_TRUE(validate_chain(log.blocks(), pks, true).ok);
  log.tamper_read_value(0, 0, 0, to_bytes("lie"));
  EXPECT_FALSE(validate_chain(log.blocks(), pks, true).ok);
}

}  // namespace
}  // namespace fides::ledger
