// Crash/recovery subsystem tests (ctest label: recovery).
//
// Four layers of coverage:
//   (i)   RoundLog — append/replay round-trips, chained-integrity refusal on
//         tampering, file-backed persistence across reopen.
//   (ii)  Direct-mode Cluster::crash_server / recover_server — a server
//         rebuilt from its durable round log between rounds is bit-identical
//         to one that never crashed, and a tampered log refuses to restore
//         (the vote-once / no-equivocation lock).
//   (iii) The crash-point matrix — for every reactor state transition ×
//         protocol (TFCommit, 2PC, checkpoint) × pipeline depth {1,2,4},
//         crash one server exactly at that transition over SimNet, recover
//         it mid-run, and assert the final ledgers (sizes, head hashes —
//         which cover the co-sign bits — and Merkle roots) are bit-identical
//         to an uncrashed run, with zero vote equivocations.
//   (iv)  The paper's headline contrast — a dead TFCommit coordinator is
//         routed around by the surviving cohorts (co-signed abort, signers =
//         survivors), while the same schedule under 2PC blocks until the
//         coordinator returns.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <set>
#include <cstdlib>

#include "ledger/round_log.hpp"
#include "sim/simnet.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

// --- RoundLog ------------------------------------------------------------------

ledger::RoundRecord vote_record(std::uint64_t epoch, const std::string& body) {
  ledger::RoundRecord rec;
  rec.type = ledger::RoundRecord::Type::kVote;
  rec.epoch = epoch;
  rec.msg_type = "tf_vote";
  rec.payload = to_bytes(body);
  return rec;
}

TEST(RoundLog, MemRoundTripAndIntegrity) {
  ledger::MemRoundLog log;
  log.append(vote_record(7, "vote-bytes"));
  ledger::RoundRecord dec;
  dec.type = ledger::RoundRecord::Type::kDecision;
  dec.epoch = 7;
  dec.msg_type = "tf_decision";
  dec.payload = to_bytes("block-bytes");
  log.append(dec);

  const auto replayed = log.replay();
  ASSERT_TRUE(replayed.has_value());
  ASSERT_EQ(replayed->size(), 2u);
  EXPECT_EQ((*replayed)[0], vote_record(7, "vote-bytes"));
  EXPECT_EQ((*replayed)[1], dec);

  // One flipped byte anywhere breaks the hash chain: replay refuses.
  log.tamper(0, 12);
  EXPECT_FALSE(log.replay().has_value());
}

TEST(RoundLog, FilePersistsAcrossReopenAndDetectsCorruption) {
  const std::string path =
      ::testing::TempDir() + "fides_roundlog_" + std::to_string(::getpid()) + ".rlog";
  std::remove(path.c_str());
  {
    ledger::FileRoundLog log(path);
    EXPECT_EQ(log.size(), 0u);
    log.append(vote_record(1, "a"));
    log.append(vote_record(2, "b"));
  }
  {
    // Reopen: the chain continues where the file left off.
    ledger::FileRoundLog log(path);
    EXPECT_EQ(log.size(), 2u);
    log.append(vote_record(3, "c"));
    const auto replayed = log.replay();
    ASSERT_TRUE(replayed.has_value());
    ASSERT_EQ(replayed->size(), 3u);
    EXPECT_EQ((*replayed)[2], vote_record(3, "c"));
  }
  // Flip one payload byte on disk: replay refuses.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  ledger::FileRoundLog log(path);
  EXPECT_FALSE(log.replay().has_value());
  std::remove(path.c_str());
}

// --- Shared drivers ------------------------------------------------------------

ClusterConfig recovery_config(Protocol protocol, std::uint32_t depth) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.items_per_shard = 24;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.max_batch_size = 8;
  cfg.protocol = protocol;
  cfg.pipeline_depth = depth;
  cfg.network.mode = sim::NetworkMode::kSimulated;
  cfg.network.sim.seed = 29;
  cfg.network.sim.link.min_delay_us = 10;
  cfg.network.sim.link.max_delay_us = 300;
  return cfg;
}

/// A deterministic multi-block stream minted on a throwaway cluster (client
/// keys are deterministic per id, so the signatures verify anywhere).
std::vector<std::vector<commit::SignedEndTxn>> mint_batches(const ClusterConfig& cfg,
                                                            std::size_t blocks) {
  Cluster mint(cfg);
  Client& client = mint.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(cfg.num_servers) * cfg.items_per_shard, 99);
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  for (std::size_t b = 0; b < blocks; ++b) {
    workload.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (std::size_t i = 0; i < 3; ++i) batch.push_back(workload.run_transaction(client));
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct LedgerFingerprint {
  std::vector<ledger::Decision> decisions;
  std::vector<std::size_t> log_sizes;
  std::vector<crypto::Digest> head_hashes;  // block digests cover the co-signs
  std::vector<crypto::Digest> merkle_roots;

  friend bool operator==(const LedgerFingerprint&, const LedgerFingerprint&) = default;
};

LedgerFingerprint fingerprint(Cluster& cluster, const PipelineResult& result) {
  LedgerFingerprint fp;
  for (const RoundMetrics& m : result.rounds) fp.decisions.push_back(m.decision);
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    fp.log_sizes.push_back(s.log().size());
    fp.head_hashes.push_back(s.log().head_hash());
    fp.merkle_roots.push_back(s.shard().merkle_root());
  }
  return fp;
}

/// Runs the batch stream, optionally crashing one server at a transition
/// (recovering it after `downtime_us` of virtual time), and fingerprints
/// the outcome. Every round must be equivocation-free.
LedgerFingerprint run_commit(ClusterConfig cfg,
                             const std::vector<std::vector<commit::SignedEndTxn>>& batches,
                             const char* what) {
  Cluster cluster(cfg);
  cluster.make_client();
  const PipelineResult result = cluster.run_blocks(batches);
  for (const RoundMetrics& m : result.rounds) {
    EXPECT_TRUE(m.vote_equivocators.empty()) << what << ": a server equivocated";
  }
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_FALSE(cluster.is_crashed(ServerId{i})) << what << ": S" << i << " still down";
  }
  return fingerprint(cluster, result);
}

// --- (iii) Crash-point matrix --------------------------------------------------

struct CrashPoint {
  const char* type;     ///< message type whose processing precedes the crash
  std::uint32_t server; ///< who dies (0 = the coordinator)
};

void run_matrix(Protocol protocol, const std::vector<CrashPoint>& points) {
  for (const std::uint32_t depth : {1u, 2u, 4u}) {
    const ClusterConfig cfg = recovery_config(protocol, depth);
    const auto batches = mint_batches(cfg, 3);
    const LedgerFingerprint base = run_commit(cfg, batches, "uncrashed");
    ASSERT_EQ(base.decisions.size(), 3u);
    EXPECT_EQ(base.decisions[0], ledger::Decision::kCommit);

    for (const CrashPoint& p : points) {
      ClusterConfig crashed = cfg;
      CrashFault cf;
      cf.server = p.server;
      cf.after_type = p.type;
      cf.after_count = 1;
      cf.downtime_us = 1500;
      crashed.crashes.push_back(cf);
      const std::string what = std::string(p.type) + "@S" + std::to_string(p.server) +
                               " depth=" + std::to_string(depth);
      EXPECT_TRUE(run_commit(crashed, batches, what.c_str()) == base)
          << "ledger diverged after crash at " << what;
    }
  }
}

TEST(CrashMatrix, TfCommitEveryTransition) {
  run_matrix(Protocol::kTfCommit, {
                                      {"tf_get_vote", 2},  // cohort dies after voting
                                      {"tf_vote", 0},      // coordinator dies collecting votes
                                      {"tf_challenge", 1}, // cohort dies after responding
                                      {"tf_response", 0},  // coordinator dies aggregating
                                      {"tf_decision", 2},  // cohort dies after applying
                                      {"tf_decision", 0},  // coordinator dies after applying
                                  });
}

TEST(CrashMatrix, TwoPhaseCommitEveryTransition) {
  run_matrix(Protocol::kTwoPhaseCommit, {
                                            {"2pc_prepare", 1},
                                            {"2pc_vote", 0},
                                            {"2pc_decision", 2},
                                            {"2pc_decision", 0},
                                        });
}

TEST(CrashMatrix, CheckpointEveryTransition) {
  const std::vector<CrashPoint> points = {
      {"cp_propose", 1},   // witness dies after committing
      {"cp_commit", 0},    // coordinator dies collecting commitments
      {"cp_challenge", 2}, // witness dies after responding
      {"cp_response", 0},  // coordinator dies aggregating
  };

  const ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
  const auto batches = mint_batches(cfg, 2);

  // Uncrashed reference: ledger after two rounds plus the formed checkpoint
  // (deterministic nonces: even the aggregate signature bits must match).
  auto run_cp = [&](std::vector<CrashFault> crashes, const char* what) {
    ClusterConfig c = cfg;
    c.crashes = std::move(crashes);
    Cluster cluster(c);
    cluster.make_client();
    const PipelineResult rounds = cluster.run_blocks(batches);
    const auto cp = cluster.create_checkpoint();
    EXPECT_TRUE(cp.has_value()) << what << ": checkpoint failed to form";
    for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
      EXPECT_FALSE(cluster.is_crashed(ServerId{i})) << what;
    }
    return std::pair(fingerprint(cluster, rounds), cp);
  };

  const auto [base_fp, base_cp] = run_cp({}, "uncrashed");
  ASSERT_TRUE(base_cp.has_value());

  for (const CrashPoint& p : points) {
    CrashFault cf;
    cf.server = p.server;
    cf.after_type = p.type;
    cf.after_count = 1;
    cf.downtime_us = 1500;
    const std::string what = std::string(p.type) + "@S" + std::to_string(p.server);
    const auto [fp, cp] = run_cp({cf}, what.c_str());
    EXPECT_TRUE(fp == base_fp) << "ledger diverged: " << what;
    ASSERT_TRUE(cp.has_value()) << what;
    EXPECT_EQ(cp->height, base_cp->height) << what;
    EXPECT_TRUE(cp->cosign == base_cp->cosign)
        << what << ": checkpoint co-sign bits diverged";
  }
}

// --- Speculative pipelining under crashes --------------------------------------

TEST(CrashMatrix, SpeculativeTfCommitEveryTransition) {
  // Same transition matrix with speculation on and the gated depth-1 ledger
  // as the reference: a crash in the middle of a speculative window —
  // buffered votes, pending overlays, in-flight re-votes — must recover to
  // the exact ledger the lock-step engine produces.
  const std::vector<CrashPoint> points = {
      {"tf_get_vote", 2},  // cohort dies after voting speculatively
      {"tf_vote", 0},      // coordinator dies on buffered votes
      {"tf_challenge", 1}, // cohort dies after responding
      {"tf_response", 0},  // coordinator dies aggregating
      {"tf_decision", 2},  // cohort dies after applying (pending stack live)
      {"tf_decision", 0},  // coordinator dies after applying
  };
  const ClusterConfig gated = recovery_config(Protocol::kTfCommit, 1);
  const auto batches = mint_batches(gated, 4);
  const LedgerFingerprint base = run_commit(gated, batches, "gated uncrashed");
  ASSERT_EQ(base.decisions.size(), 4u);

  for (const std::uint32_t depth : {2u, 4u, 8u}) {
    ClusterConfig spec = recovery_config(Protocol::kTfCommit, depth);
    spec.speculate = true;
    EXPECT_TRUE(run_commit(spec, batches, "speculative uncrashed") == base)
        << "speculative depth " << depth << " diverged before any crash";
    for (const CrashPoint& p : points) {
      ClusterConfig crashed = spec;
      CrashFault cf;
      cf.server = p.server;
      cf.after_type = p.type;
      cf.after_count = 1;
      cf.downtime_us = 1500;
      crashed.crashes.push_back(cf);
      const std::string what = std::string("spec ") + p.type + "@S" +
                               std::to_string(p.server) + " depth=" + std::to_string(depth);
      EXPECT_TRUE(run_commit(crashed, batches, what.c_str()) == base)
          << "ledger diverged after crash at " << what;
    }
  }
}

TEST(SpeculativeRecovery, NeverDoubleLogsAVotePerEpochAndBase) {
  // Abort-heavy cross-shard schedule (block 1 aborts on shard 1's veto, so
  // shard 0 mis-speculates block 2 and must re-vote) plus a crash while the
  // speculative window is live. The vote-once-per-(epoch, base) discipline
  // must hold in every durable round log — a re-vote is a *new* (epoch,
  // base) record, never a second record for an existing one.
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 4);
  cfg.speculate = true;
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  {
    Cluster mint(cfg);
    Client& client = mint.make_client();
    auto txn = [&](std::vector<ItemId> items, const std::string& tag) {
      ClientTxn t = client.begin();
      mint.client_begin(client, t.id(), items);
      for (const ItemId item : items) {
        client.read(t, item);
        client.write(t, item, to_bytes(tag + "-" + std::to_string(item)));
      }
      return client.end(std::move(t));
    };
    batches.push_back({txn({0, 1}, "x")});
    batches.push_back({txn({4, 1}, "y")});
    batches.push_back({txn({4}, "z")});
    batches.push_back({txn({2, 3}, "w")});
  }

  CrashFault cf;
  cf.server = 2;
  cf.after_type = "tf_get_vote";
  cf.after_count = 2;  // dies with several openings already speculated on
  cf.downtime_us = 1200;
  cfg.crashes.push_back(cf);

  Cluster cluster(cfg);
  cluster.make_client();
  const PipelineResult result = cluster.run_blocks(batches);
  ASSERT_EQ(result.rounds.size(), 4u);
  EXPECT_EQ(result.rounds[1].decision, ledger::Decision::kAbort);
  std::size_t revotes = 0;
  for (const RoundMetrics& m : result.rounds) {
    revotes += m.spec_revotes;
    EXPECT_TRUE(m.vote_equivocators.empty());
  }
  EXPECT_GT(revotes, 0u) << "schedule was meant to force a mis-speculation";

  bool saw_multiple_bases = false;
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const auto records = cluster.server(ServerId{i}).round_log().replay();
    ASSERT_TRUE(records.has_value()) << "S" << i << " round log failed integrity";
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    std::map<std::uint64_t, std::set<std::uint64_t>> bases_per_epoch;
    for (const ledger::RoundRecord& rec : *records) {
      if (rec.type != ledger::RoundRecord::Type::kVote) continue;
      EXPECT_TRUE(seen.emplace(rec.epoch, rec.base).second)
          << "S" << i << " double-logged a vote for epoch " << rec.epoch
          << " base " << rec.base;
      bases_per_epoch[rec.epoch].insert(rec.base);
    }
    for (const auto& [epoch, bases] : bases_per_epoch) {
      if (bases.size() > 1) saw_multiple_bases = true;
    }
  }
  EXPECT_TRUE(saw_multiple_bases)
      << "expected at least one re-vote under a distinct base somewhere";
}

// --- (ii) Direct-mode crash/recover API ---------------------------------------

TEST(DirectRecovery, ServerRebuildsFromRoundLogBetweenRounds) {
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
  cfg.network.mode = sim::NetworkMode::kDirect;
  const auto batches = mint_batches(cfg, 3);

  // Reference: never-crashed run of all three blocks.
  Cluster ref(cfg);
  ref.make_client();
  ref.run_blocks(batches);

  // Crash S2 after two blocks, recover it from its round log, run block 3.
  Cluster cluster(cfg);
  cluster.make_client();
  cluster.run_blocks({batches[0], batches[1]});
  const auto head_before = cluster.server(ServerId{2}).log().head_hash();
  cluster.crash_server(ServerId{2});
  EXPECT_TRUE(cluster.is_crashed(ServerId{2}));
  ASSERT_TRUE(cluster.recover_server(ServerId{2}));
  EXPECT_FALSE(cluster.is_crashed(ServerId{2}));
  EXPECT_TRUE(cluster.server(ServerId{2}).log().head_hash() == head_before)
      << "restore did not rebuild the ledger from the round log";
  cluster.run_blocks({batches[2]});

  for (std::uint32_t i = 0; i < cfg.num_servers; ++i) {
    const Server& a = ref.server(ServerId{i});
    const Server& b = cluster.server(ServerId{i});
    EXPECT_EQ(a.log().size(), b.log().size());
    EXPECT_TRUE(a.log().head_hash() == b.log().head_hash()) << "S" << i;
    EXPECT_TRUE(a.shard().merkle_root() == b.shard().merkle_root()) << "S" << i;
  }
}

TEST(DirectRecovery, RoundsRefuseToRunWithAServerDown) {
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
  cfg.network.mode = sim::NetworkMode::kDirect;
  const auto batches = mint_batches(cfg, 1);
  Cluster cluster(cfg);
  cluster.make_client();
  cluster.crash_server(ServerId{1});
  EXPECT_THROW(cluster.run_blocks(batches), std::logic_error);
  ASSERT_TRUE(cluster.recover_server(ServerId{1}));
  EXPECT_EQ(cluster.run_blocks(batches).rounds.size(), 1u);
}

TEST(DirectRecovery, TamperedRoundLogRefusesToRestore) {
  // The equivocation lock: a server that crashes after sending its vote
  // re-sends the recorded bytes on restore — and if those bytes were
  // altered, the chained integrity check refuses the whole restore rather
  // than let the server re-vote differently.
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
  cfg.network.mode = sim::NetworkMode::kDirect;
  const auto batches = mint_batches(cfg, 2);
  Cluster cluster(cfg);
  cluster.make_client();
  cluster.run_blocks(batches);

  auto* log = dynamic_cast<ledger::MemRoundLog*>(&cluster.server(ServerId{1}).round_log());
  ASSERT_NE(log, nullptr);
  ASSERT_GT(log->size(), 0u);
  cluster.crash_server(ServerId{1});
  log->tamper(0, 20);  // flip a byte inside the first recorded vote
  EXPECT_FALSE(cluster.recover_server(ServerId{1}));
  EXPECT_TRUE(cluster.is_crashed(ServerId{1}));  // it must not rejoin
}

TEST(DirectRecovery, FileBackedRoundLogsRestoreTheLedger) {
  const std::string dir = ::testing::TempDir() + "fides_rlogs_" + std::to_string(::getpid());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
  cfg.network.mode = sim::NetworkMode::kDirect;
  cfg.round_log_dir = dir;
  const auto batches = mint_batches(cfg, 2);

  Cluster cluster(cfg);
  cluster.make_client();
  cluster.run_blocks(batches);
  const auto head = cluster.server(ServerId{3}).log().head_hash();
  cluster.crash_server(ServerId{3});
  ASSERT_TRUE(cluster.recover_server(ServerId{3}));
  EXPECT_TRUE(cluster.server(ServerId{3}).log().head_hash() == head);
  ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
}

// --- (iv) Coordinator crash: 2PC blocks, TFCommit's cohorts make progress -----

TEST(CoordinatorCrash, TfCommitCohortsTerminateWhile2pcBlocks) {
  // Same crash schedule for both protocols: the coordinator dies right
  // after the first vote reaches it and stays down for a long time.
  const auto crash_plan = [] {
    CrashFault cf;
    cf.server = 0;
    cf.after_type = "";  // time-triggered
    cf.at_us = 150;
    cf.downtime_us = 60000;
    return cf;
  }();

  // TFCommit with the termination timer armed: the surviving cohorts drive
  // the round to a co-signed abort long before the coordinator returns —
  // the block's witness set is the survivors alone.
  {
    ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 1);
    cfg.crashes.push_back(crash_plan);
    cfg.termination_timeout_us = 2000;
    const auto batches = mint_batches(cfg, 1);
    Cluster cluster(cfg);
    cluster.make_client();
    const PipelineResult result = cluster.run_blocks(batches);
    ASSERT_EQ(result.rounds.size(), 1u);
    EXPECT_TRUE(result.rounds[0].terminated_by_cohorts)
        << "cohorts failed to terminate around the dead coordinator";
    EXPECT_EQ(result.rounds[0].decision, ledger::Decision::kAbort);
    // Every server — including the recovered coordinator — holds the
    // termination block, co-signed by the survivors {1, 2, 3} alone.
    for (std::uint32_t i = 0; i < cfg.num_servers; ++i) {
      const Server& s = cluster.server(ServerId{i});
      ASSERT_EQ(s.log().size(), 1u) << "S" << i;
      const ledger::Block& block = s.log().at(0);
      EXPECT_EQ(block.decision, ledger::Decision::kAbort);
      EXPECT_EQ(block.signers,
                (std::vector<ServerId>{ServerId{1}, ServerId{2}, ServerId{3}}));
      ASSERT_TRUE(block.cosign.has_value());
    }
  }

  // 2PC under the identical schedule has no cohort-driven path: the round
  // blocks until the coordinator recovers, then completes exactly as an
  // uncrashed run would (commit — nothing was lost, just time).
  {
    ClusterConfig cfg = recovery_config(Protocol::kTwoPhaseCommit, 1);
    const auto batches = mint_batches(cfg, 1);
    const LedgerFingerprint base = run_commit(cfg, batches, "2pc uncrashed");
    ASSERT_EQ(base.decisions[0], ledger::Decision::kCommit);

    ClusterConfig crashed = cfg;
    crashed.crashes.push_back(crash_plan);
    crashed.termination_timeout_us = 2000;  // armed but useless for 2PC
    Cluster cluster(crashed);
    cluster.make_client();
    const PipelineResult result = cluster.run_blocks(batches);
    ASSERT_EQ(result.rounds.size(), 1u);
    EXPECT_FALSE(result.rounds[0].terminated_by_cohorts);
    EXPECT_EQ(result.rounds[0].decision, ledger::Decision::kCommit);
    EXPECT_TRUE(fingerprint(cluster, result) == base);
    // Blocking is visible in virtual time: the round could not finish
    // before the coordinator's recovery at t = 60150us.
    EXPECT_GE(cluster.simnet()->now_us(), crash_plan.at_us + crash_plan.downtime_us);
  }
}

// --- Crash composed with a per-link partition ----------------------------------

TEST(CrashAndPartition, RecoveryWorksAcrossAHealingPartition) {
  // S2 is partitioned away while S1 crashes and recovers: the catch-up
  // must tolerate both faults at once, and the final ledgers still agree.
  ClusterConfig cfg = recovery_config(Protocol::kTfCommit, 2);
  sim::Partition p;
  p.island = {2};
  p.start_us = 0;
  p.heal_us = 2500;
  cfg.network.sim.partitions.push_back(p);
  // Per-link profile: the path into S1 is slow and lossy even before it
  // crashes — the override applies to that link only.
  sim::LinkOverride slow;
  slow.src = 0;
  slow.dst = 1;
  slow.faults.min_delay_us = 200;
  slow.faults.max_delay_us = 900;
  slow.faults.drop_prob = 0.4;
  cfg.network.sim.link_overrides.push_back(slow);
  CrashFault cf;
  cf.server = 1;
  cf.at_us = 800;
  cf.downtime_us = 2000;
  cfg.crashes.push_back(cf);

  const auto batches = mint_batches(cfg, 3);
  const LedgerFingerprint fp = run_commit(cfg, batches, "crash+partition");
  // All four logs identical (run_commit checked liveness + equivocation).
  for (std::size_t i = 1; i < fp.head_hashes.size(); ++i) {
    EXPECT_TRUE(fp.head_hashes[i] == fp.head_hashes[0]) << "S" << i;
    EXPECT_EQ(fp.log_sizes[i], fp.log_sizes[0]);
  }
  EXPECT_EQ(fp.log_sizes[0], 3u);
}

}  // namespace
}  // namespace fides
