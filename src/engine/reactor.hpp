// Protocol round reactors — the one definition of the commit/checkpoint
// choreography.
//
// Each reactor drives one round of its protocol as a message-consuming state
// machine: start() emits the opening broadcast, on_deliver() handles one
// arrived envelope (already authenticated by the dispatcher) and emits the
// follow-up sends. The same reactors run under the in-process scheduler
// (replacing the old lock-step driver in fides/cluster.cpp) and over SimNet
// (replacing the hand-written drivers in sim/sim_round.cpp) — there is no
// second copy of the phase logic anywhere.
//
// Thread-safety contract (what makes the concurrent in-process scheduler
// deterministic): all state a handler touches is either (a) owned by the
// destination node — server objects, coordinator inboxes — and the
// scheduler serializes deliveries per destination, or (b) a per-slot array
// indexed by the authenticated sender, written by exactly one handler.
// Aggregation fires when the last expected message arrives, regardless of
// arrival order, so outcomes do not depend on the interleaving.
#pragma once

#include <optional>

#include "engine/scheduler.hpp"
#include "fides/cluster.hpp"

namespace fides::engine {

/// Progress callbacks from a round reactor to its pipeline.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  /// `server` fully processed the round's decision message (log append +
  /// datastore apply attempted). This is the pipelining watermark: it gates
  /// delivery of the *next* round's opening message at that server, and —
  /// at the coordinator — admission of the next round.
  virtual void on_decision_processed(std::uint64_t epoch, std::uint32_t server) = 0;
};

/// Shared wiring of the coordinator/cohort reactors.
class RoundReactor {
 public:
  RoundReactor(Cluster& cluster, std::uint64_t epoch, RoundObserver* observer);
  virtual ~RoundReactor() = default;

  std::uint64_t epoch() const { return epoch_; }

  /// Emits the round's opening broadcast. Must run in the coordinator's
  /// serialized context (it reads the coordinator's log head).
  virtual void start(Outbox& out) = 0;

  /// Handles one delivered envelope. `authentic` is the transport.open()
  /// verdict, computed by the dispatcher — handlers must not re-open.
  virtual void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                          Outbox& out) = 0;

  /// Folds the per-slot timing state into metrics_ once the round is over
  /// (no handler may still be running). Subclasses add outcome fields.
  virtual void finalize();

  RoundMetrics& metrics() { return metrics_; }

 protected:
  Envelope seal_framed(const Server& sender, const char* type, BytesView payload) const;
  /// Seal-once / count-every-copy broadcast to servers [0, n).
  void broadcast(Outbox& out, const Envelope& env);

  Cluster* cluster_;
  Transport* transport_;
  std::uint32_t n_;
  ServerId coord_id_;
  NodeId coord_node_;
  std::uint64_t epoch_;
  RoundObserver* observer_;

  RoundMetrics metrics_;
  double coord_us_{0};                  ///< coordinator-side handler time (wall)
  std::vector<double> cohort_us_;       ///< per-cohort handler CPU time
  std::vector<double> cohort_mht_us_;   ///< per-cohort max single Merkle stint
};

/// One TFCommit round (Figure 7): get_vote -> votes -> challenge ->
/// responses -> decision -> log append + datastore update.
class TfCommitRound final : public RoundReactor {
 public:
  TfCommitRound(Cluster& cluster, std::uint64_t epoch,
                std::vector<commit::SignedEndTxn> batch, RoundObserver* observer);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void finalize() override;

 private:
  std::vector<commit::SignedEndTxn> batch_;
  std::vector<ServerId> cohort_ids_;
  commit::TfCommitCoordinator coordinator_;

  std::vector<commit::VoteMsg> votes_;
  std::vector<unsigned char> vote_in_;
  std::size_t votes_seen_{0};
  std::vector<commit::ChallengeMsg> challenges_;
  std::vector<commit::ResponseMsg> responses_;
  std::vector<unsigned char> resp_in_;
  std::size_t resps_seen_{0};
  std::optional<commit::TfCommitOutcome> outcome_;
};

/// One 2PC round (baseline, §6.1): prepare -> votes -> decision -> apply.
class TwoPhaseRound final : public RoundReactor {
 public:
  TwoPhaseRound(Cluster& cluster, std::uint64_t epoch,
                std::vector<commit::SignedEndTxn> batch, RoundObserver* observer);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void finalize() override;

 private:
  std::vector<commit::SignedEndTxn> batch_;
  std::vector<ServerId> cohort_ids_;
  commit::TwoPhaseCommitCoordinator coordinator_;

  std::vector<commit::PrepareVoteMsg> votes_;
  std::vector<unsigned char> vote_in_;
  std::size_t votes_seen_{0};
  std::optional<commit::TwoPhaseCommitOutcome> outcome_;
};

/// The checkpoint CoSi round (§3.3): propose -> commit -> challenge ->
/// response. Every server contributes only after verifying the proposal
/// against its own log; one refusal sinks the checkpoint.
class CheckpointRound final : public RoundReactor {
 public:
  CheckpointRound(Cluster& cluster, std::uint64_t epoch);

  void start(Outbox& out) override;
  void on_deliver(NodeId src, NodeId dst, const Envelope& env, bool authentic,
                  Outbox& out) override;
  void finalize() override;

  /// The formed-and-validated checkpoint, or nullopt (a server's log
  /// disagreed, or the aggregate co-sign failed validation).
  std::optional<ledger::Checkpoint> result() const;

 private:
  ledger::Checkpoint cp_;
  Bytes record_;
  std::vector<crypto::CosiCommitment> secrets_;
  std::vector<crypto::AffinePoint> commitments_;
  std::vector<unsigned char> agrees_;
  std::vector<unsigned char> commit_in_;
  std::size_t commits_seen_{0};
  std::vector<crypto::U256> responses_;
  std::vector<unsigned char> resp_in_;
  std::size_t resps_seen_{0};
  crypto::U256 challenge_;
  bool refused_{false};
  bool finalized_{false};
};

}  // namespace fides::engine
