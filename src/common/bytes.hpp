// Byte-buffer primitives shared by every module.
//
// `Bytes` is the canonical wire/storage representation used for message
// payloads, serialized blocks, hash inputs, and stored values. Helpers here
// are deliberately tiny; anything structured goes through serde.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fides {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes from a string's raw characters (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Interprets a byte span as text. Only for values known to be text.
std::string to_string(BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of byte spans into one buffer.
Bytes concat(std::initializer_list<BytesView> parts);

/// Constant-time-ish equality (length leak is fine; content compare is not
/// data-dependent in branch structure). Used for digest comparison.
bool equal(BytesView a, BytesView b);

}  // namespace fides
