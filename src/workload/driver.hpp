// Experiment driver shared by the figure-reproduction benchmarks.
//
// Runs the paper's measurement loop: generate client transactions, terminate
// them block by block through the configured commit protocol, and aggregate
// the two §6 metrics — commit latency (time from the end-transaction request
// to the decision) and throughput (committed transactions per second) —
// plus the Merkle-update time Figure 14 breaks out.
//
// Two load shapes:
//
//   * Closed loop (ArrivalProcess::kClosed, the default): each iteration
//     executes a window of pipeline_depth blocks' worth of transactions on
//     the data path, then hands the whole window's batches to the cluster in
//     one pipelined call — the paper's §6 measurement loop. Per-transaction
//     latency is its block's modeled latency.
//   * Open loop (kFixedRate / kPoisson, simulated network only): clients
//     are SimNet nodes submitting on the configured arrival schedule;
//     per-transaction latency is the virtual time from the client's submit
//     to the commit response arriving back, so percentiles capture queueing
//     delay. In direct mode the arrival/client knobs are ignored and the
//     run is bit-identical to the closed-loop driver.
//
// Either way the latencies feed a log-bucketed histogram, so results report
// p50/p99/p999 and max, not just means.
#pragma once

#include "common/histogram.hpp"
#include "workload/arrival.hpp"
#include "workload/ycsb.hpp"

namespace fides::workload {

struct ExperimentConfig {
  ClusterConfig cluster;
  WorkloadConfig workload;
  std::size_t total_txns{1000};
  std::size_t txns_per_block{100};

  /// Open-loop load shape; kClosed keeps the classic driver. Only honoured
  /// when cluster.network.mode == kSimulated (clients must be SimNet nodes).
  ArrivalConfig arrival;
  /// Client timeout/retry behaviour for open-loop runs.
  sim::ClientModel client_model;
};

struct ExperimentResult {
  std::size_t committed_txns{0};
  std::size_t aborted_txns{0};
  std::size_t blocks{0};

  /// Mean modeled commit latency per block, in milliseconds.
  double avg_latency_ms{0};
  /// Committed transactions per second of modeled time.
  double throughput_tps{0};
  /// Mean per-block Merkle update time (max across servers), in ms.
  double avg_mht_ms{0};

  /// Mean *measured* wall-clock latency per block, in milliseconds — what
  /// the round actually took in this process, with the thread pool doing
  /// per-server work concurrently. Compare against avg_latency_ms to
  /// validate the analytical model against real concurrency. At pipeline
  /// depth > 1 rounds overlap, so these per-round spans overlap too.
  double avg_measured_ms{0};
  /// Committed transactions per second of measured commit wall time (the
  /// pipelined engine's actual rate; the depth > 1 gain shows up here).
  double measured_throughput_tps{0};
  /// Threads the commit rounds ran on.
  std::size_t threads{1};
  /// Commit rounds in flight (ClusterConfig::pipeline_depth).
  std::size_t pipeline_depth{1};

  // --- Per-transaction latency distribution ----------------------------------
  //
  // Closed loop: each transaction records its block's modeled latency (so
  // the distribution reflects block-to-block variance). Open loop: each
  // transaction records its own submit→response virtual time. The histogram
  // merges exactly, so run_averaged pools the distribution across seeds.
  common::LogHistogram latency_hist;  ///< milliseconds
  double p50_ms{0};
  double p99_ms{0};
  double p999_ms{0};
  double max_ms{0};

  // --- Open-loop extras ------------------------------------------------------
  bool open_loop{false};
  double offered_tps{0};             ///< configured arrival rate
  double span_ms{0};                 ///< virtual time to the last response
  std::uint64_t client_sends{0};     ///< submit copies clients put on the wire
  std::uint64_t client_retries{0};   ///< timeout-driven re-sends
  std::uint64_t dup_responses{0};    ///< response copies discarded at clients

  double wall_seconds{0};  ///< harness wall time, for scheduling runs
  Transport::Stats net;
};

/// One full run (the paper averages 3 runs per data point; the benches call
/// this with three seeds and average).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Averages results over `seeds` runs, paper-style. Latency histograms are
/// merged (exactly), and the percentile fields are recomputed from the
/// pooled distribution.
ExperimentResult run_averaged(ExperimentConfig config,
                              std::span<const std::uint64_t> seeds);

}  // namespace fides::workload
