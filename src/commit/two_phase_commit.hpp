// Two-Phase Commit baseline (§6.1).
//
// The trusted-infrastructure counterpart TFCommit is measured against:
// identical block/log plumbing (blocks are produced sequentially, the log
// has no forks) but no Merkle roots, no collective signing, and one fewer
// round. Comparing the two isolates the overhead of trust-freedom, exactly
// as Figure 12 does.
#pragma once

#include <span>

#include "commit/messages.hpp"
#include "store/shard.hpp"

namespace fides::commit {

class TwoPhaseCommitCohort {
 public:
  TwoPhaseCommitCohort(ServerId id, store::Shard& shard) : id_(id), shard_(&shard) {}

  PrepareVoteMsg handle_prepare(const PrepareMsg& msg);

  txn::Vote last_vote() const { return last_vote_; }

 private:
  ServerId id_;
  store::Shard* shard_;
  txn::Vote last_vote_{txn::Vote::kAbort};
};

struct TwoPhaseCommitOutcome {
  Block block;
  Decision decision{Decision::kAbort};
};

class TwoPhaseCommitCoordinator {
 public:
  explicit TwoPhaseCommitCoordinator(std::vector<ServerId> cohorts)
      : cohorts_(std::move(cohorts)) {}

  PrepareMsg start(Block partial_block, std::vector<SignedEndTxn> requests);

  TwoPhaseCommitOutcome on_votes(std::span<const PrepareVoteMsg> votes);

 private:
  std::vector<ServerId> cohorts_;
  Block block_;
};

}  // namespace fides::commit
