// Dispatcher-side plumbing shared by every engine driver — the global commit
// pipeline (pipeline.cpp), the checkpoint dispatcher, and the group-commit
// engine (ordserv/group_engine.cpp): receiver-side deduplication and the
// crash-point hooks that turn a configured CrashFault into scheduler events.
#pragma once

#include <set>
#include <string>
#include <tuple>

#include "engine/scheduler.hpp"
#include "fides/cluster.hpp"

namespace fides::engine {

/// Receiver-side at-most-once filter over (sender, receiver, type, epoch):
/// the first copy of a logical message is processed, later copies (SimNet
/// duplicates, retransmissions that crossed their original) are dropped
/// before authentication — the idempotence a real node needs under
/// at-least-once delivery. A crash erases the receiver's filter state with
/// the rest of its memory (forget_dst); a recovered coordinator's restarted
/// round re-asks everyone, so its epochs are forgotten wholesale
/// (forget_epoch).
class Dedup {
 public:
  bool first(NodeId src, NodeId dst, const std::string& type, std::uint64_t epoch) {
    return seen_.emplace(src, dst, type, epoch).second;
  }

  void forget_dst(NodeId dst) {
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (std::get<1>(*it) == dst) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void forget_epoch(std::uint64_t epoch) {
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (std::get<3>(*it) == epoch) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  std::set<std::tuple<NodeId, NodeId, std::string, std::uint64_t>> seen_;
};

/// Transition-triggered crash points, shared by every dispatcher: after
/// `dst` finished processing a delivery of `type`, fell a configured crash
/// on it. Returns true if the node died.
inline bool poll_transition_crash(Cluster& cluster, Scheduler& sched, NodeId dst,
                                  const std::string& type) {
  if (!sched.supports_crashes() || dst.kind != NodeId::Kind::kServer) return false;
  const auto cf = cluster.poll_crash_point(dst.id, type);
  if (!cf.has_value()) return false;
  sched.crash_node(dst);
  sched.schedule_recover(dst, cf->downtime_us);
  return true;
}

/// Engine-side crash bookkeeping (the substrate side — dropping deliveries
/// — is the scheduler's). Arms the termination timer when the *global*
/// coordinator died; group rounds have no termination story yet, so the
/// group engine passes arm_termination = false.
inline void apply_crash(Cluster& cluster, Scheduler& sched, NodeId node,
                        bool arm_termination = true) {
  cluster.crash_server(ServerId{node.id});
  const double timeout = cluster.config().termination_timeout_us;
  if (arm_termination && node.id == cluster.coordinator_id().value && timeout > 0) {
    sched.schedule_failure_probe(node, timeout);
  }
}

}  // namespace fides::engine
