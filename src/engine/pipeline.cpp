#include "engine/pipeline.hpp"

#include <chrono>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>

#include "engine/reactor.hpp"

namespace fides::engine {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// Receiver-side at-most-once filter over (sender, receiver, type, epoch):
/// the first copy of a logical message is processed, later copies (SimNet
/// duplicates, retransmissions that crossed their original) are dropped
/// before authentication — the idempotence a real node needs under
/// at-least-once delivery. A crash erases the receiver's filter state with
/// the rest of its memory (forget_dst); a recovered coordinator's restarted
/// round re-asks everyone, so its epochs are forgotten wholesale
/// (forget_epoch).
class Dedup {
 public:
  bool first(NodeId src, NodeId dst, const std::string& type, std::uint64_t epoch) {
    return seen_.emplace(src, dst, type, epoch).second;
  }

  void forget_dst(NodeId dst) {
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (std::get<1>(*it) == dst) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void forget_epoch(std::uint64_t epoch) {
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (std::get<3>(*it) == epoch) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  std::set<std::tuple<NodeId, NodeId, std::string, std::uint64_t>> seen_;
};

/// Opening messages start a round at a cohort; they are the only messages
/// that can causally overtake the previous round's decision, so they are
/// the only ones the watermark gates.
bool opens_round(const std::string& type) {
  return type == "tf_get_vote" || type == "2pc_prepare";
}

/// Transition-triggered crash points, shared by the commit pipeline and the
/// checkpoint dispatcher: after `dst` finished processing a delivery of
/// `type`, fell a configured crash on it. Returns true if the node died.
bool poll_transition_crash(Cluster& cluster, Scheduler& sched, NodeId dst,
                           const std::string& type) {
  if (!sched.supports_crashes() || dst.kind != NodeId::Kind::kServer) return false;
  const auto cf = cluster.poll_crash_point(dst.id, type);
  if (!cf.has_value()) return false;
  sched.crash_node(dst);
  sched.schedule_recover(dst, cf->downtime_us);
  return true;
}

/// Engine-side crash bookkeeping (the substrate side — dropping deliveries
/// — is the scheduler's). Arms the termination timer when the coordinator
/// died.
void apply_crash(Cluster& cluster, Scheduler& sched, NodeId node) {
  cluster.crash_server(ServerId{node.id});
  const double timeout = cluster.config().termination_timeout_us;
  if (node.id == cluster.coordinator_id().value && timeout > 0) {
    sched.schedule_failure_probe(node, timeout);
  }
}

class CommitPipeline final : public Dispatcher, public RoundObserver {
 public:
  CommitPipeline(Cluster& cluster, Protocol protocol,
                 std::vector<std::vector<commit::SignedEndTxn>> batches,
                 Scheduler& sched)
      : cluster_(&cluster),
        sched_(&sched),
        n_(cluster.num_servers()),
        coord_(cluster.coordinator_id().value),
        depth_(std::max<std::uint32_t>(1, cluster.config().pipeline_depth)),
        base_height_(cluster.server(cluster.coordinator_id()).log().size()),
        watermark_(n_, 0),
        held_(n_) {
    rounds_.reserve(batches.size());
    for (auto& batch : batches) {
      const std::uint64_t epoch = cluster.epochs().reserve();
      RoundState rs;
      rs.epoch = epoch;
      if (protocol == Protocol::kTfCommit) {
        rs.reactor = std::make_unique<TfCommitRound>(cluster, epoch, std::move(batch), this);
      } else {
        rs.reactor = std::make_unique<TwoPhaseRound>(cluster, epoch, std::move(batch), this);
      }
      epoch_to_round_.emplace(epoch, rounds_.size());
      rounds_.push_back(std::move(rs));
    }
  }

  PipelineResult run() {
    const auto t0 = Clock::now();
    launch_ready();
    sched_->run(*this);

    PipelineResult result;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (completed_ != rounds_.size()) {
        throw std::logic_error("commit pipeline stalled: " +
                               std::to_string(rounds_.size() - completed_) +
                               " round(s) incomplete at quiescence");
      }
    }
    const double one_way = cluster_->config().network.one_way_latency_us;
    for (auto& rs : rounds_) {
      rs.reactor->finalize();
      RoundMetrics& m = rs.reactor->metrics();
      m.threads_used = sched_->concurrency();
      m.measured_latency_us =
          std::chrono::duration<double, std::micro>(rs.wall_end - rs.wall_start).count();
      // Direct mode: analytic network term (legs x one-way latency). Sim
      // mode: the virtual time the round's schedule actually took.
      const double net_term =
          rs.has_virtual_time ? rs.virtual_end_us - rs.virtual_start_us
                              : static_cast<double>(m.network_legs) * one_way;
      m.modeled_latency_us = m.coordinator_us + m.cohort_critical_us + net_term;
      result.rounds.push_back(std::move(m));
    }
    result.wall_us = since_us(t0);
    return result;
  }

  // --- Dispatcher -------------------------------------------------------------

  void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/false);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/true);
  }

  void on_control(const ControlEvent& ev, Outbox& out) override {
    switch (ev.kind) {
      case ControlEvent::Kind::kCrash:
        handle_crash(ev.node);
        break;
      case ControlEvent::Kind::kRecover:
        handle_recover(ev.node, out);
        break;
      case ControlEvent::Kind::kCoordinatorTimeout:
        // The probe raced recovery; only a still-dead coordinator triggers
        // cohort-driven termination.
        if (!cluster_->is_crashed(ServerId{ev.node.id})) break;
        for (RoundState& rs : incomplete_started_rounds()) {
          rs.reactor->begin_termination(out);
        }
        break;
    }
  }

  // --- RoundObserver ----------------------------------------------------------

  void on_decision_processed(std::uint64_t epoch, std::uint32_t server) override {
    std::vector<Held> flush;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const std::size_t k = epoch_to_round_.at(epoch);
      // Decisions are processed in round order at every server (round k+1's
      // vote is gated on round k's decision), so the watermark is a count.
      watermark_[server] = std::max<std::size_t>(watermark_[server], k + 1);
      auto& hq = held_[server];
      while (!hq.empty() && watermark_[server] >= hq.front().round) {
        flush.push_back(std::move(hq.front()));
        hq.pop_front();
      }
      RoundState& rs = rounds_[k];
      if (++rs.processed == n_) {
        rs.wall_end = Clock::now();
        if (const auto v = sched_->virtual_now_us()) rs.virtual_end_us = *v;
        ++completed_;
      }
    }
    launch_ready();
    // Flushed openings run here, on `server`'s serialized context (this
    // callback sits inside that server's decision handler), preserving the
    // apply-before-vote order the gate exists for.
    for (Held& h : flush) {
      RoundReactor* reactor = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        reactor = rounds_[h.round].reactor.get();
      }
      deliver(*reactor, h.src, h.dst, h.env, sched_->outbox());
    }
  }

 private:
  struct RoundState {
    std::unique_ptr<RoundReactor> reactor;
    std::uint64_t epoch{0};
    bool started{false};
    std::uint32_t processed{0};  ///< servers that handled the decision
    Clock::time_point wall_start;
    Clock::time_point wall_end;
    bool has_virtual_time{false};
    double virtual_start_us{0};
    double virtual_end_us{0};
  };
  struct Held {
    NodeId src;
    NodeId dst;
    Envelope env;
    std::size_t round{0};
  };

  void dispatch_impl(NodeId src, NodeId dst, const Envelope& env, Outbox& out,
                     bool replay) {
    const auto epoch = peek_epoch(env.payload);
    if (!epoch.has_value()) return;  // not an engine frame; unreachable for sealed traffic
    RoundReactor* reactor = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Replay deliveries are the recovery catch-up stream: deliberate
      // re-sends of tuples the filter has usually seen. Record them (so any
      // further normal copy is still deduplicated) but never drop them.
      const bool fresh = dedup_.first(src, dst, env.type, *epoch);
      if (!fresh && !replay) return;
      const auto it = epoch_to_round_.find(*epoch);
      if (it == epoch_to_round_.end()) return;  // stale epoch from another run
      const std::size_t k = it->second;
      if (opens_round(env.type) && dst.kind == NodeId::Kind::kServer &&
          watermark_[dst.id] < k) {
        held_[dst.id].push_back(Held{src, dst, env, k});
        return;
      }
      reactor = rounds_[k].reactor.get();
    }
    deliver(*reactor, src, dst, env, out);
  }

  void deliver(RoundReactor& reactor, NodeId src, NodeId dst, const Envelope& env,
               Outbox& out) {
    // A held opening can be flushed after its destination died (sim mode):
    // the node's volatile state — including anything queued at it — is
    // gone; the recovery replay re-supplies what still matters.
    if (dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id})) {
      return;
    }
    const bool authentic = cluster_->transport().open(env, env.type);
    reactor.on_deliver(src, dst, env, authentic, out);
    if (poll_transition_crash(*cluster_, *sched_, dst, env.type)) handle_crash(dst);
  }

  void handle_crash(NodeId node) {
    apply_crash(*cluster_, *sched_, node);
    std::lock_guard<std::mutex> lock(mutex_);
    if (node.kind == NodeId::Kind::kServer && node.id < n_) held_[node.id].clear();
  }

  void handle_recover(NodeId node, Outbox& out) {
    if (!cluster_->recover_server(ServerId{node.id})) {
      // The durable log failed its integrity check: the server must not
      // rejoin. Mark it dead on the substrate again (no recovery scheduled:
      // it stays dead); the run surfaces the stall as a pipeline error.
      sched_->crash_node(node);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dedup_.forget_dst(node);
      held_[node.id].clear();
      // The apply watermark is *recovered from the durable log*: blocks the
      // server re-ingested during restore are exactly the decisions it had
      // processed, so pipelined depth-K runs resume where the log says.
      const std::size_t durable = cluster_->server(ServerId{node.id}).log().size();
      if (durable > base_height_) {
        watermark_[node.id] =
            std::max<std::size_t>(watermark_[node.id], durable - base_height_);
      }
      if (node.id == coord_) {
        // A restarted round re-asks everything; let the re-asks through.
        for (const RoundState& rs : rounds_) {
          if (rs.started && rs.processed < n_) dedup_.forget_epoch(rs.epoch);
        }
      }
    }
    // Catch up only the rounds this server has not yet processed — its
    // watermark (recovered above) already covers everything durable, and
    // re-driving a processed round would double-count it at the observer.
    const std::size_t from = watermark_[node.id];
    for (std::size_t k = from; k < rounds_.size(); ++k) {
      RoundState& rs = rounds_[k];
      if (!rs.started || rs.processed >= n_) continue;
      rs.reactor->on_recover(node.id, out);
    }
    launch_ready();
  }

  /// Started-but-unfinished rounds in round order. Sim mode only (the event
  /// loop is single-threaded), so iterating without the lock is safe.
  std::vector<std::reference_wrapper<RoundState>> incomplete_started_rounds() {
    std::vector<std::reference_wrapper<RoundState>> out;
    for (RoundState& rs : rounds_) {
      if (rs.started && rs.processed < n_) out.emplace_back(rs);
    }
    return out;
  }

  /// Starts every admissible round. Starts execute on the coordinator's
  /// serialized context (posted to its queue): start() reads the
  /// coordinator's log head, which only its own decision handlers mutate.
  void launch_ready() {
    std::vector<std::size_t> starts;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (next_to_start_ < rounds_.size() && can_start_locked(next_to_start_)) {
        rounds_[next_to_start_].started = true;
        starts.push_back(next_to_start_++);
      }
    }
    const NodeId coord_node = NodeId::server(ServerId{coord_});
    for (const std::size_t k : starts) {
      sched_->post(coord_node, [this, k] {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          rounds_[k].wall_start = Clock::now();
          if (const auto v = sched_->virtual_now_us()) {
            rounds_[k].has_virtual_time = true;
            rounds_[k].virtual_start_us = *v;
          }
        }
        rounds_[k].reactor->start(sched_->outbox());
      });
    }
  }

  bool can_start_locked(std::size_t k) const {
    // A dead coordinator admits nothing; admission resumes with recovery.
    if (cluster_->is_crashed(ServerId{coord_})) return false;
    // Coordinator gate: its log head must already name round k's prev-hash.
    if (k > 0 && watermark_[coord_] < k) return false;
    // Depth gate: started-but-incomplete rounds stay under the limit.
    return k - completed_ < depth_;
  }

  Cluster* cluster_;
  Scheduler* sched_;
  std::uint32_t n_;
  std::uint32_t coord_;
  std::uint32_t depth_;
  std::size_t base_height_;  ///< ledger height when this pipeline began

  std::mutex mutex_;
  std::vector<RoundState> rounds_;
  std::unordered_map<std::uint64_t, std::size_t> epoch_to_round_;
  Dedup dedup_;
  std::vector<std::size_t> watermark_;  ///< per server: decisions processed
  std::vector<std::deque<Held>> held_;  ///< per server: gated openings
  std::size_t next_to_start_{0};
  std::size_t completed_{0};
};

/// Single-round dispatcher for the checkpoint CoSi round.
class CheckpointDispatch final : public Dispatcher {
 public:
  CheckpointDispatch(Cluster& cluster, CheckpointRound& round, Scheduler& sched)
      : cluster_(&cluster), round_(&round), sched_(&sched) {}

  void dispatch(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/false);
  }

  void dispatch_replay(NodeId src, NodeId dst, const Envelope& env, Outbox& out) override {
    dispatch_impl(src, dst, env, out, /*replay=*/true);
  }

  void on_control(const ControlEvent& ev, Outbox& out) override {
    switch (ev.kind) {
      case ControlEvent::Kind::kCrash:
        apply_crash(*cluster_, *sched_, ev.node);
        break;
      case ControlEvent::Kind::kRecover:
        if (!cluster_->recover_server(ServerId{ev.node.id})) {
          sched_->crash_node(ev.node);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          dedup_.forget_dst(ev.node);
          if (ev.node.id == cluster_->coordinator_id().value) {
            dedup_.forget_epoch(round_->epoch());
          }
        }
        round_->on_recover(ev.node.id, out);
        break;
      case ControlEvent::Kind::kCoordinatorTimeout:
        break;  // the checkpoint is an optimization: it simply waits
    }
  }

 private:
  void dispatch_impl(NodeId src, NodeId dst, const Envelope& env, Outbox& out,
                     bool replay) {
    const auto epoch = peek_epoch(env.payload);
    if (!epoch.has_value()) return;
    {
      // Concurrent in-process workers dispatch for different destinations;
      // the dedup set is the one piece of state they share.
      std::lock_guard<std::mutex> lock(mutex_);
      const bool fresh = dedup_.first(src, dst, env.type, *epoch);
      if (!fresh && !replay) return;
    }
    if (dst.kind == NodeId::Kind::kServer && cluster_->is_crashed(ServerId{dst.id})) {
      return;
    }
    const bool authentic = cluster_->transport().open(env, env.type);
    round_->on_deliver(src, dst, env, authentic, out);
    if (poll_transition_crash(*cluster_, *sched_, dst, env.type)) {
      apply_crash(*cluster_, *sched_, dst);
    }
  }

  Cluster* cluster_;
  CheckpointRound* round_;
  Scheduler* sched_;
  std::mutex mutex_;
  Dedup dedup_;
};

}  // namespace

PipelineResult run_commit_rounds(Cluster& cluster, Protocol protocol,
                                 std::vector<std::vector<commit::SignedEndTxn>> batches,
                                 Scheduler& sched) {
  if (batches.empty()) return {};
  CommitPipeline pipeline(cluster, protocol, std::move(batches), sched);
  return pipeline.run();
}

CheckpointOutcome run_checkpoint_round(Cluster& cluster, Scheduler& sched) {
  const auto t0 = Clock::now();
  const auto vstart = sched.virtual_now_us();

  CheckpointRound round(cluster, cluster.epochs().reserve());
  CheckpointDispatch dispatch(cluster, round, sched);
  sched.post(NodeId::server(cluster.coordinator_id()),
             [&] { round.start(sched.outbox()); });
  sched.run(dispatch);

  round.finalize();
  CheckpointOutcome outcome;
  outcome.checkpoint = round.result();
  outcome.metrics = round.metrics();
  outcome.metrics.threads_used = sched.concurrency();
  outcome.metrics.measured_latency_us = since_us(t0);
  const double net_term =
      vstart.has_value()
          ? sched.virtual_now_us().value_or(*vstart) - *vstart
          : static_cast<double>(outcome.metrics.network_legs) *
                cluster.config().network.one_way_latency_us;
  outcome.metrics.modeled_latency_us =
      outcome.metrics.coordinator_us + outcome.metrics.cohort_critical_us + net_term;
  if (outcome.checkpoint.has_value()) {
    outcome.metrics.decision = ledger::Decision::kCommit;
    outcome.metrics.cosign_valid = true;
  }
  return outcome;
}

}  // namespace fides::engine
