// Ablation: audit cost vs history length and datastore policy (§3.3).
//
// Fides shifts work from the commit path (no Byzantine replication) to the
// offline audit; this bench measures what that audit costs as the log grows,
// for history-only audits and for the exhaustive per-version datastore
// authentication of Lemma 2.
#include <chrono>
#include <cstdio>

#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "workload/ycsb.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::BenchReport report("ablation_audit");
  std::printf("=========================================================\n");
  std::printf("Ablation: audit cost vs log length (3 servers, batch 10)\n");
  std::printf("=========================================================\n");
  std::printf("%-8s %-20s %-22s %-18s\n", "blocks", "history_audit_ms",
              "exhaustive_audit_ms", "items_checked");

  for (const int blocks : {10, 25, 50, 100}) {
    ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.items_per_shard = 1000;
    cfg.versioning = store::VersioningMode::kMulti;
    cfg.sign_data_path = false;
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    workload::YcsbWorkload wl({}, 3000, 42);
    for (int b = 0; b < blocks; ++b) {
      commit::BatchBuilder builder(10);
      for (int i = 0; i < 10; ++i) builder.enqueue(wl.run_transaction(client));
      cluster.drain(builder);
    }

    const auto t0 = std::chrono::steady_clock::now();
    audit::Auditor history_auditor(cluster, {audit::DatastorePolicy::kNone});
    const auto history_report = history_auditor.run();
    const auto t1 = std::chrono::steady_clock::now();
    audit::Auditor full_auditor(cluster, {audit::DatastorePolicy::kExhaustive});
    const auto full_report = full_auditor.run();
    const auto t2 = std::chrono::steady_clock::now();

    if (!history_report.clean() || !full_report.clean()) {
      std::printf("UNEXPECTED VIOLATIONS\n%s", full_report.to_string().c_str());
      return 1;
    }
    std::printf("%-8zu %-20.2f %-22.2f %-18zu\n", history_report.blocks_audited,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                full_report.items_authenticated);

    bench::BenchPoint& p = report.point("blocks" + std::to_string(blocks));
    p.exact.set("blocks_audited", static_cast<double>(history_report.blocks_audited));
    p.exact.set("items_authenticated",
                static_cast<double>(full_report.items_authenticated));
    p.approx.set("history_audit_ms",
                 std::chrono::duration<double, std::milli>(t1 - t0).count());
    p.approx.set("exhaustive_audit_ms",
                 std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  bench::finish_report(report, argc, argv);
  return 0;
}
