#include "fides/cluster.hpp"

#include "engine/inproc_scheduler.hpp"
#include "engine/pipeline.hpp"
#include "ordserv/group_engine.hpp"
#include "sim/sim_round.hpp"
#include "sim/simnet.hpp"

namespace fides {

bool verify_touching_requests(Transport& transport, const Server& server,
                              std::span<const commit::SignedEndTxn> requests) {
  std::vector<const commit::SignedEndTxn*> touching;
  touching.reserve(requests.size());
  for (const auto& req : requests) {
    for (const ItemId item : req.request.txn.rw.touched_items()) {
      if (server.shard().contains(item)) {
        touching.push_back(&req);
        break;
      }
    }
  }
  if (!transport.batch_verify()) {
    for (const auto* req : touching) {
      const crypto::PublicKey* ck = transport.key_of(NodeId::client(req->client));
      ++transport.stats().signatures_verified;
      if (ck == nullptr || !req->verify(*ck)) return false;
    }
    return true;
  }
  // Batched path: one RLC aggregate over every touching request instead of a
  // Schnorr check per request. The counter is advanced exactly as the serial
  // loop would have — up to and including the first failure — so Stats stay
  // identical between the two paths.
  bool missing_key = false;
  std::vector<Bytes> messages;
  std::vector<crypto::BatchItem> items;
  messages.reserve(touching.size());
  items.reserve(touching.size());
  for (const auto* req : touching) {
    const crypto::PublicKey* ck = transport.key_of(NodeId::client(req->client));
    if (ck == nullptr) {
      missing_key = true;
      break;
    }
    messages.push_back(req->request.serialize());
    items.push_back(crypto::BatchItem{ck, BytesView{}, &req->signature});
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].message = BytesView(messages[i].data(), messages[i].size());
  }
  const auto verdicts = crypto::batch_verify(items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i] == 0) {
      transport.stats().signatures_verified += i + 1;
      return false;
    }
  }
  transport.stats().signatures_verified += items.size() + (missing_key ? 1 : 0);
  return !missing_key;
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<common::ThreadPool>(config_.num_threads)),
      crashed_(config_.num_servers, 0),
      saved_faults_(config_.num_servers) {
  if (config_.network.mode == sim::NetworkMode::kSimulated) {
    simnet_ = std::make_unique<sim::SimNet>(config_.network.sim);
  }
  // Durable round logs are owned here: a Server object dies with a crash,
  // its round log does not.
  round_logs_.resize(config_.num_servers);
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) {
    if (config_.round_log_dir.empty()) {
      round_logs_[i] = std::make_unique<ledger::MemRoundLog>();
    } else {
      round_logs_[i] = std::make_unique<ledger::FileRoundLog>(
          config_.round_log_dir + "/server-" + std::to_string(i) + ".rlog");
    }
  }
  // Server provisioning builds a full Merkle tree over every shard; with a
  // parallel pool the servers provision concurrently (and each server's tree
  // build fans out further — nested parallel_for is safe, the caller helps).
  servers_.resize(config_.num_servers);
  for_each_server([this](std::size_t i) {
    servers_[i] = std::make_unique<Server>(ServerId{static_cast<std::uint32_t>(i)},
                                           config_, pool_.get(), round_logs_[i].get());
  });
  transport_.set_batch_verify(config_.batch_verify);
  // Key registration mutates the shared transport registry: sequential.
  server_keys_.reserve(config_.num_servers);
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) {
    server_keys_.push_back(servers_[i]->public_key());
    transport_.register_node(NodeId::server(ServerId{i}), server_keys_.back());
  }
  // Crash/recover schedules: time triggers go straight onto the SimNet
  // clock; transition triggers arm a watch the engine polls per delivery.
  for (const CrashFault& cf : config_.crashes) {
    if (cf.server >= config_.num_servers) continue;
    if (!cf.after_type.empty()) {
      crash_watch_.push_back(CrashWatch{cf, 0, false});
    } else if (simnet_ != nullptr && cf.at_us >= 0) {
      const NodeId node = NodeId::server(ServerId{cf.server});
      simnet_->schedule_crash(node, cf.at_us);
      simnet_->schedule_recover(node, cf.at_us + cf.downtime_us);
    }
  }
}

Cluster::~Cluster() = default;

std::size_t Cluster::round_threads() const { return pool_->concurrency(); }

void Cluster::for_each_server(const std::function<void(std::size_t)>& fn) {
  pool_->parallel_for(config_.num_servers, fn);
}

Client& Cluster::make_client() {
  const ClientId id{static_cast<std::uint32_t>(clients_.size())};
  clients_.push_back(std::make_unique<Client>(id, *this));
  transport_.register_node(NodeId::client(id), clients_.back()->keypair().public_key());
  return *clients_.back();
}

ServerId Cluster::owner_of(ItemId item) const {
  return ServerId{store::shard_for_item(item, config_.num_servers).value};
}

// --- Crash / recovery ---------------------------------------------------------

void Cluster::crash_server(ServerId id) {
  if (crashed_[id.value] != 0) return;
  saved_faults_[id.value] = servers_[id.value]->faults();
  servers_[id.value].reset();  // volatile state is gone, not hidden
  crashed_[id.value] = 1;
}

bool Cluster::recover_server(ServerId id) {
  if (crashed_[id.value] == 0) return true;
  auto fresh = std::make_unique<Server>(id, config_, pool_.get(),
                                        round_logs_[id.value].get());
  if (!fresh->restore()) return false;  // tampered round log: refuse to rejoin
  fresh->faults() = saved_faults_[id.value];
  servers_[id.value] = std::move(fresh);
  crashed_[id.value] = 0;
  return true;
}

std::optional<ServerId> Cluster::backup_for(ServerId dead) const {
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) {
    if (i != dead.value && crashed_[i] == 0) return ServerId{i};
  }
  return std::nullopt;
}

std::optional<CrashFault> Cluster::poll_crash_point(std::uint32_t server,
                                                    const std::string& type) {
  for (CrashWatch& w : crash_watch_) {
    if (w.fired || w.fault.server != server || w.fault.after_type != type) continue;
    if (++w.seen >= w.fault.after_count) {
      w.fired = true;
      return w.fault;
    }
  }
  return std::nullopt;
}

// --- Data path ---------------------------------------------------------------

void Cluster::client_begin(Client& client, TxnId txn, std::span<const ItemId> items) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  for (const ItemId item : items) {
    Server& server = *servers_[owner_of(item).value];
    Writer w;
    w.u32(txn.client);
    w.u64(txn.seq);
    Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()),
                                   "begin_txn", std::move(w).take());
    if (transport_.open(env, "begin_txn")) {
      server.record_client_message(env);
      server.handle_begin(client.id(), txn);
    }
  }
  transport_.set_crypto_enabled(true);
}

store::ReadResult Cluster::client_read(Client& client, TxnId txn, ItemId item) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  Server& server = *servers_[owner_of(item).value];

  Writer w;
  w.u32(txn.client);
  w.u64(txn.seq);
  w.u64(item);
  Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()), "read",
                                 std::move(w).take());
  store::ReadResult result;
  if (transport_.open(env, "read")) {
    server.record_client_message(env);
    result = server.handle_read(client.id(), txn, item);
    // Response travels back signed by the server.
    Writer resp;
    resp.u64(result.id);
    resp.bytes(result.value);
    resp.timestamp(result.rts);
    resp.timestamp(result.wts);
    Envelope renv = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                    "read_resp", std::move(resp).take());
    transport_.open(renv, "read_resp");
  }
  transport_.set_crypto_enabled(true);
  return result;
}

WriteAck Cluster::client_write(Client& client, TxnId txn, ItemId item, Bytes value) {
  transport_.set_crypto_enabled(config_.sign_data_path);
  Server& server = *servers_[owner_of(item).value];

  Writer w;
  w.u32(txn.client);
  w.u64(txn.seq);
  w.u64(item);
  w.bytes(value);
  Envelope env = transport_.seal(client.keypair(), NodeId::client(client.id()), "write",
                                 std::move(w).take());
  WriteAck ack;
  if (transport_.open(env, "write")) {
    server.record_client_message(env);
    ack = server.handle_write(client.id(), txn, item, std::move(value));
    Writer resp;
    resp.u64(ack.id);
    resp.bytes(ack.old_value);
    resp.timestamp(ack.rts);
    resp.timestamp(ack.wts);
    Envelope renv = transport_.seal(server.keypair(), NodeId::server(server.id()),
                                    "write_ack", std::move(resp).take());
    transport_.open(renv, "write_ack");
  }
  transport_.set_crypto_enabled(true);
  return ack;
}

// --- Commit rounds through the engine ----------------------------------------

template <typename Fn>
auto Cluster::with_scheduler(Fn&& body) {
  if (simnet_ != nullptr) {
    sim::SimNetScheduler sched(*simnet_);
    return body(static_cast<engine::Scheduler&>(sched));
  }
  for (std::uint32_t i = 0; i < config_.num_servers; ++i) {
    if (crashed_[i] != 0) {
      throw std::logic_error("direct-mode round with server S" + std::to_string(i) +
                             " down: recover_server it first (mid-round "
                             "crash/recovery runs over SimNet)");
    }
  }
  engine::InProcScheduler sched(*pool_);
  return body(static_cast<engine::Scheduler&>(sched));
}

PipelineResult Cluster::run_blocks(std::vector<std::vector<commit::SignedEndTxn>> batches) {
  return with_scheduler([&](engine::Scheduler& sched) {
    return engine::run_commit_rounds(*this, config_.protocol, std::move(batches), sched);
  });
}

OpenLoopOutcome Cluster::run_open_loop(
    std::vector<std::vector<commit::SignedEndTxn>> batches,
    std::vector<OpenLoopTxn> txns, const sim::ClientModel& model) {
  if (simnet_ == nullptr) {
    throw std::logic_error(
        "open-loop runs require network.mode=simulated (clients are SimNet nodes)");
  }
  sim::SimNetScheduler sched(*simnet_);
  return engine::run_open_loop_rounds(*this, config_.protocol, std::move(batches),
                                      std::move(txns), model, *simnet_, sched);
}

RoundMetrics Cluster::run_tfcommit_block(std::vector<commit::SignedEndTxn> batch) {
  return with_scheduler([&](engine::Scheduler& sched) {
           std::vector<std::vector<commit::SignedEndTxn>> batches;
           batches.push_back(std::move(batch));
           return engine::run_commit_rounds(*this, Protocol::kTfCommit,
                                            std::move(batches), sched);
         })
      .rounds.at(0);
}

RoundMetrics Cluster::run_2pc_block(std::vector<commit::SignedEndTxn> batch) {
  return with_scheduler([&](engine::Scheduler& sched) {
           std::vector<std::vector<commit::SignedEndTxn>> batches;
           batches.push_back(std::move(batch));
           return engine::run_commit_rounds(*this, Protocol::kTwoPhaseCommit,
                                            std::move(batches), sched);
         })
      .rounds.at(0);
}

RoundMetrics Cluster::run_block(std::vector<commit::SignedEndTxn> batch) {
  return config_.protocol == Protocol::kTfCommit ? run_tfcommit_block(std::move(batch))
                                                 : run_2pc_block(std::move(batch));
}

std::vector<RoundMetrics> Cluster::drain(commit::BatchBuilder& builder) {
  // The builder's batch selection depends only on its queue, so popping
  // everything up front yields the same batch sequence as popping one per
  // round — and hands the whole stream to the pipeline at once.
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  while (!builder.empty()) {
    batches.push_back(builder.next_batch());
  }
  return run_blocks(std::move(batches)).rounds;
}

ordserv::GroupRunResult Cluster::run_group_blocks(
    ordserv::Sequencer& sequencer,
    std::vector<std::vector<commit::SignedEndTxn>> batches) {
  return with_scheduler([&](engine::Scheduler& sched) {
    return ordserv::run_group_rounds(*this, sequencer, std::move(batches), sched);
  });
}

CheckpointOutcome Cluster::run_checkpoint_round() {
  return with_scheduler(
      [&](engine::Scheduler& sched) { return engine::run_checkpoint_round(*this, sched); });
}

std::optional<ledger::Checkpoint> Cluster::create_checkpoint() {
  return run_checkpoint_round().checkpoint;
}

}  // namespace fides
