// Operations walkthrough: checkpointing (§3.3) and recovery (§4.2.1).
//
// A long-lived deployment: the cluster commits history, collectively signs
// a checkpoint (so audits need not start from genesis), then a server's
// datastore is corrupted, the audit pinpoints the version, and the operator
// rolls the server back to the last sanitized version and resumes.
#include <cstdio>

#include "audit/auditor.hpp"
#include "fides/cluster.hpp"

namespace {

using namespace fides;

commit::SignedEndTxn rw_txn(Cluster& cluster, Client& client, ItemId item,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), std::vector<ItemId>{item});
  client.read(txn, item);
  client.write(txn, item, to_bytes(tag));
  return client.end(std::move(txn));
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_servers = 3;
  config.items_per_shard = 64;
  config.versioning = store::VersioningMode::kMulti;
  Cluster cluster(config);
  Client& client = cluster.make_client();

  // Phase 1: normal operation.
  for (int i = 0; i < 4; ++i) {
    cluster.run_block({rw_txn(cluster, client, static_cast<ItemId>(i),
                              "epoch1-" + std::to_string(i))});
  }
  std::printf("committed %zu blocks of history\n",
              cluster.server(ServerId{0}).log().size());

  // Phase 2: checkpoint. Every server verifies the summary against its own
  // log before contributing its CoSi share.
  const auto checkpoint = cluster.create_checkpoint();
  if (!checkpoint) {
    std::printf("checkpoint failed — divergent logs?\n");
    return 1;
  }
  std::printf("checkpoint at height %llu collectively signed (valid: %s)\n",
              static_cast<unsigned long long>(checkpoint->height),
              ledger::validate_checkpoint(*checkpoint, cluster.server_keys())
                  ? "yes" : "no");

  // Phase 3: more history after the checkpoint; suffix validation only needs
  // the checkpoint, not genesis.
  cluster.run_block({rw_txn(cluster, client, 10, "epoch2-good")});
  Server& victim = cluster.server(cluster.owner_of(10));
  const Timestamp sane_version = victim.log().blocks().back().txns[0].commit_ts;

  const auto suffix_check = ledger::validate_chain_from(
      *checkpoint, cluster.server(ServerId{1}).log().blocks(), cluster.server_keys());
  std::printf("suffix validation from checkpoint: %s\n",
              suffix_check.ok ? "clean" : "BROKEN");

  // Phase 4: a server corrupts its datastore; the audit pinpoints it.
  victim.faults().corrupt_after_commit_item = 10;
  cluster.run_block({rw_txn(cluster, client, 10, "epoch2-corrupted-era")});
  victim.faults().corrupt_after_commit_item.reset();

  audit::Auditor auditor(cluster);
  const auto report = auditor.run();
  const auto findings = report.of_kind(audit::ViolationKind::kDatastoreCorruption);
  if (findings.empty()) {
    std::printf("corruption escaped the audit!\n");
    return 1;
  }
  std::printf("audit found corruption on %s at block %zu (version %s)\n",
              to_string(*findings[0].server).c_str(), *findings[0].block,
              to_string(*findings[0].version).c_str());

  // Phase 5: recovery — roll the server back to the last sanitized version.
  const std::size_t dropped = victim.shard().reset_to_version(sane_version);
  std::printf("rolled %s back to %s, discarding %zu corrupted version(s)\n",
              to_string(victim.id()).c_str(), to_string(sane_version).c_str(),
              dropped);
  std::printf("item 10 after recovery: \"%s\"\n",
              to_string(victim.shard().peek(10).value).c_str());

  // Phase 6: the application resumes from the sanitized state.
  const auto metrics = cluster.run_block({rw_txn(cluster, client, 11, "epoch3")});
  std::printf("post-recovery block: %s\n",
              metrics.decision == ledger::Decision::kCommit ? "COMMIT" : "ABORT");
  return 0;
}
