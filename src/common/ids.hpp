// Strong identifier types used across Fides.
//
// Servers, clients, shards, and data items are identified by small integer
// ids wrapped in distinct types so they cannot be mixed up at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace fides {

/// CRTP-free tagged integer id. Distinct Tag => distinct type.
template <typename Tag, typename Rep = std::uint32_t>
struct TaggedId {
  Rep value{0};

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep v) : value(v) {}

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;
};

struct ServerTag {};
struct ClientTag {};
struct ShardTag {};

using ServerId = TaggedId<ServerTag>;
using ClientId = TaggedId<ClientTag>;
using ShardId = TaggedId<ShardTag>;

/// Data items carry a global 64-bit identifier; the shard owning an item is
/// derived by the cluster's placement function.
using ItemId = std::uint64_t;

/// Transaction identifier assigned by the issuing client at Begin
/// Transaction: unique per (client, per-client sequence number).
struct TxnId {
  std::uint32_t client{0};
  std::uint64_t seq{0};

  friend constexpr auto operator<=>(const TxnId&, const TxnId&) = default;
};

inline std::string to_string(TxnId t) {
  return "T" + std::to_string(t.client) + "." + std::to_string(t.seq);
}

inline std::string to_string(ServerId s) { return "S" + std::to_string(s.value); }
inline std::string to_string(ClientId c) { return "C" + std::to_string(c.value); }
inline std::string to_string(ShardId s) { return "shard" + std::to_string(s.value); }

}  // namespace fides

namespace std {
template <typename Tag, typename Rep>
struct hash<fides::TaggedId<Tag, Rep>> {
  size_t operator()(fides::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

template <>
struct hash<fides::TxnId> {
  size_t operator()(const fides::TxnId& t) const noexcept {
    return std::hash<std::uint64_t>{}(t.seq * 0x9E3779B97F4A7C15ULL + t.client);
  }
};
}  // namespace std
