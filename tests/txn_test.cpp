// Unit tests for the transaction model, RW-set builder, and OCC validation.
#include <gtest/gtest.h>

#include "txn/occ.hpp"
#include "txn/rw_set.hpp"

namespace fides::txn {
namespace {

store::Shard make_shard() {
  return store::Shard(ShardId{0}, {0, 1, 2, 3}, to_bytes("init"),
                      store::VersioningMode::kSingle);
}

Transaction make_txn(const Timestamp& ts) {
  Transaction t;
  t.id = TxnId{1, ts.logical};
  t.commit_ts = ts;
  return t;
}

TEST(RwSet, FindHelpers) {
  RwSet set;
  set.reads.push_back(ReadEntry{1, to_bytes("a"), {}, {}});
  set.writes.push_back(WriteEntry{2, to_bytes("b"), std::nullopt, {}, {}});
  EXPECT_NE(set.find_read(1), nullptr);
  EXPECT_EQ(set.find_read(2), nullptr);
  EXPECT_NE(set.find_write(2), nullptr);
  EXPECT_EQ(set.find_write(1), nullptr);
}

TEST(RwSet, TouchedItemsDeduplicated) {
  RwSet set;
  set.reads.push_back(ReadEntry{3, {}, {}, {}});
  set.writes.push_back(WriteEntry{3, {}, std::nullopt, {}, {}});
  set.writes.push_back(WriteEntry{1, {}, std::nullopt, {}, {}});
  EXPECT_EQ(set.touched_items(), (std::vector<ItemId>{1, 3}));
}

TEST(RwSet, EncodeDecodeRoundTrip) {
  RwSet set;
  set.reads.push_back(ReadEntry{7, to_bytes("val"), Timestamp{1, 2}, Timestamp{3, 4}});
  set.writes.push_back(
      WriteEntry{9, to_bytes("new"), to_bytes("old"), Timestamp{5, 6}, Timestamp{7, 8}});
  set.writes.push_back(WriteEntry{11, to_bytes("n2"), std::nullopt, {}, {}});
  Writer w;
  set.encode(w);
  Reader r(w.data());
  EXPECT_EQ(RwSet::decode(r), set);
}

TEST(Transaction, EncodeDecodeRoundTrip) {
  Transaction t = make_txn(Timestamp{10, 3});
  t.rw.reads.push_back(ReadEntry{1, to_bytes("x"), {}, {}});
  Writer w;
  t.encode(w);
  Reader r(w.data());
  EXPECT_EQ(Transaction::decode(r), t);
}

TEST(Transaction, NonConflictingDetection) {
  Transaction a = make_txn(Timestamp{1, 0});
  a.rw.reads.push_back(ReadEntry{1, {}, {}, {}});
  Transaction b = make_txn(Timestamp{2, 0});
  b.rw.writes.push_back(WriteEntry{2, {}, std::nullopt, {}, {}});
  EXPECT_TRUE(non_conflicting(a, b));
  b.rw.writes.push_back(WriteEntry{1, {}, std::nullopt, {}, {}});
  EXPECT_FALSE(non_conflicting(a, b));
}

TEST(RwSetBuilder, ReadThenWriteIsNotBlind) {
  RwSetBuilder builder;
  builder.record_read(5, to_bytes("seen"), Timestamp{1, 0}, Timestamp{2, 0});
  builder.record_write(5, to_bytes("new"), to_bytes("seen"), Timestamp{1, 0},
                       Timestamp{2, 0});
  const RwSet set = std::move(builder).build();
  ASSERT_EQ(set.writes.size(), 1u);
  EXPECT_FALSE(set.writes[0].blind());
  EXPECT_FALSE(set.writes[0].old_value.has_value());
}

TEST(RwSetBuilder, BlindWriteCarriesOldValue) {
  RwSetBuilder builder;
  builder.record_write(5, to_bytes("new"), to_bytes("previous"), Timestamp{1, 0},
                       Timestamp{2, 0});
  const RwSet set = std::move(builder).build();
  ASSERT_EQ(set.writes.size(), 1u);
  EXPECT_TRUE(set.writes[0].blind());
  EXPECT_EQ(to_string(*set.writes[0].old_value), "previous");
}

TEST(RwSetBuilder, RepeatedWriteKeepsFirstAccessMetadata) {
  RwSetBuilder builder;
  builder.record_write(5, to_bytes("w1"), to_bytes("old"), Timestamp{1, 0},
                       Timestamp{2, 0});
  builder.record_write(5, to_bytes("w2"), to_bytes("ignored"), Timestamp{9, 9},
                       Timestamp{9, 9});
  const RwSet set = std::move(builder).build();
  ASSERT_EQ(set.writes.size(), 1u);
  EXPECT_EQ(to_string(set.writes[0].new_value), "w2");
  EXPECT_EQ(to_string(*set.writes[0].old_value), "old");
  EXPECT_EQ(set.writes[0].rts, (Timestamp{1, 0}));
}

// --- OCC validation ------------------------------------------------------------

TEST(Occ, FreshTransactionCommits) {
  store::Shard shard = make_shard();
  Transaction t = make_txn(Timestamp{5, 0});
  t.rw.reads.push_back(ReadEntry{0, to_bytes("init"), {}, {}});
  t.rw.writes.push_back(WriteEntry{1, to_bytes("w"), to_bytes("init"), {}, {}});
  const auto result = validate_occ(shard, t);
  EXPECT_TRUE(result.ok()) << result.reason;
}

TEST(Occ, StaleReadAborts) {
  store::Shard shard = make_shard();
  shard.apply_write(0, to_bytes("newer"), Timestamp{3, 0});
  Transaction t = make_txn(Timestamp{5, 0});
  // The read observed the initial version (wts zero) but the item moved on.
  t.rw.reads.push_back(ReadEntry{0, to_bytes("init"), {}, kTimestampZero});
  EXPECT_FALSE(validate_occ(shard, t).ok());
}

TEST(Occ, RwConflictAborts) {
  store::Shard shard = make_shard();
  shard.apply_write(0, to_bytes("v"), Timestamp{9, 0});
  Transaction t = make_txn(Timestamp{5, 0});  // commits *before* the write it read
  t.rw.reads.push_back(ReadEntry{0, to_bytes("v"), {}, Timestamp{9, 0}});
  const auto result = validate_occ(shard, t);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.reason.find("RW-conflict"), std::string::npos);
}

TEST(Occ, WwConflictAborts) {
  store::Shard shard = make_shard();
  shard.apply_write(1, to_bytes("v"), Timestamp{9, 0});
  Transaction t = make_txn(Timestamp{5, 0});
  t.rw.writes.push_back(WriteEntry{1, to_bytes("w"), to_bytes("v"), {}, Timestamp{9, 0}});
  const auto result = validate_occ(shard, t);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.reason.find("WW-conflict"), std::string::npos);
}

TEST(Occ, WrConflictAborts) {
  store::Shard shard = make_shard();
  shard.update_read_ts(1, Timestamp{9, 0});
  Transaction t = make_txn(Timestamp{5, 0});
  t.rw.writes.push_back(WriteEntry{1, to_bytes("w"), to_bytes("init"), {}, {}});
  const auto result = validate_occ(shard, t);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.reason.find("WR-conflict"), std::string::npos);
}

TEST(Occ, StaleNonBlindWriteAborts) {
  store::Shard shard = make_shard();
  shard.apply_write(1, to_bytes("v2"), Timestamp{3, 0});
  Transaction t = make_txn(Timestamp{5, 0});
  // Non-blind write based on the initial version, but the item advanced.
  t.rw.writes.push_back(WriteEntry{1, to_bytes("w"), std::nullopt, {}, kTimestampZero});
  t.rw.reads.push_back(ReadEntry{1, to_bytes("init"), {}, kTimestampZero});
  EXPECT_FALSE(validate_occ(shard, t).ok());
}

TEST(Occ, ForeignItemsIgnored) {
  store::Shard shard = make_shard();  // owns items 0..3
  Transaction t = make_txn(Timestamp{5, 0});
  t.rw.reads.push_back(ReadEntry{100, to_bytes("elsewhere"), {}, Timestamp{99, 0}});
  EXPECT_TRUE(validate_occ(shard, t).ok());
}

TEST(Occ, ApplyCommittedInstallsWritesAndTimestamps) {
  store::Shard shard = make_shard();
  Transaction t = make_txn(Timestamp{5, 0});
  t.rw.reads.push_back(ReadEntry{0, to_bytes("init"), {}, {}});
  t.rw.writes.push_back(WriteEntry{1, to_bytes("w"), to_bytes("init"), {}, {}});
  apply_committed(shard, t);
  EXPECT_EQ(to_string(shard.peek(1).value), "w");
  EXPECT_EQ(shard.peek(1).wts, t.commit_ts);
  EXPECT_EQ(shard.peek(1).rts, t.commit_ts);
  EXPECT_EQ(shard.peek(0).rts, t.commit_ts);  // read timestamp advanced
  EXPECT_TRUE(shard.peek(0).wts.is_zero());   // reads do not write
}

TEST(Occ, SequentialTimestampedTransactionsAllCommit) {
  store::Shard shard = make_shard();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Transaction t = make_txn(Timestamp{i, 0});
    const store::ItemRecord& cur = shard.peek(0);
    t.rw.reads.push_back(ReadEntry{0, cur.value, cur.rts, cur.wts});
    t.rw.writes.push_back(
        WriteEntry{0, to_bytes("v" + std::to_string(i)), std::nullopt, cur.rts, cur.wts});
    const auto result = validate_occ(shard, t);
    ASSERT_TRUE(result.ok()) << "txn " << i << ": " << result.reason;
    apply_committed(shard, t);
  }
  EXPECT_EQ(to_string(shard.peek(0).value), "v10");
}

}  // namespace
}  // namespace fides::txn
