// Tests for the §4.6 scaling path: server groups, the OrdServ sequencer,
// and group-commit rounds.
#include <gtest/gtest.h>

#include "ordserv/group_commit.hpp"

namespace fides::ordserv {
namespace {

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.num_servers = 5;
  cfg.items_per_shard = 20;
  cfg.versioning = store::VersioningMode::kSingle;
  return cfg;
}

commit::SignedEndTxn rw_txn(Cluster& /*cluster*/, Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

txn::Transaction touching(std::vector<ItemId> items) {
  txn::Transaction t;
  for (const ItemId i : items) {
    t.rw.writes.push_back(txn::WriteEntry{i, to_bytes("v"), std::nullopt, {}, {}});
  }
  return t;
}

TEST(ServerGroup, GroupForPicksInvolvedServers) {
  // 5 servers; items 0 and 6 live on servers 0 and 1.
  const ServerGroup g = group_for({touching({0, 6})}, 5);
  EXPECT_EQ(g.members, (std::vector<ServerId>{ServerId{0}, ServerId{1}}));
  EXPECT_EQ(g.coordinator, ServerId{0});
  EXPECT_TRUE(g.contains(ServerId{1}));
  EXPECT_FALSE(g.contains(ServerId{2}));
}

TEST(ServerGroup, OverlapDetection) {
  const ServerGroup a = group_for({touching({0})}, 5);   // server 0
  const ServerGroup b = group_for({touching({1})}, 5);   // server 1
  const ServerGroup c = group_for({touching({0, 1})}, 5);  // servers 0,1
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Sequencer, AssignsHeightsAndChains) {
  Sequencer seq;
  ledger::Block b1, b2;
  b1.txns.push_back(touching({0}));
  b2.txns.push_back(touching({1}));
  EXPECT_EQ(seq.submit(b1, group_for(b1.txns, 5)), 0u);
  EXPECT_EQ(seq.submit(b2, group_for(b2.txns, 5)), 1u);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.stream()[1].block.prev_hash, seq.stream()[0].block.digest());
  EXPECT_TRUE(seq.stream()[0].block.prev_hash.is_zero());
}

TEST(Sequencer, TracksDependencies) {
  Sequencer seq;
  ledger::Block b1, b2, b3;
  b1.txns.push_back(touching({0}));
  b2.txns.push_back(touching({1}));     // independent of b1
  b3.txns.push_back(touching({0, 1}));  // depends on both
  seq.submit(b1, group_for(b1.txns, 5));
  seq.submit(b2, group_for(b2.txns, 5));
  seq.submit(b3, group_for(b3.txns, 5));
  EXPECT_TRUE(seq.stream()[0].depends_on.empty());
  EXPECT_TRUE(seq.stream()[1].depends_on.empty());
  EXPECT_EQ(seq.stream()[2].depends_on, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Sequencer, FetchNewDeliversOnce) {
  Sequencer seq;
  ledger::Block b;
  b.txns.push_back(touching({0}));
  seq.submit(b, group_for(b.txns, 5));
  EXPECT_EQ(seq.fetch_new(ServerId{0}).size(), 1u);
  EXPECT_TRUE(seq.fetch_new(ServerId{0}).empty());
  EXPECT_EQ(seq.fetch_new(ServerId{1}).size(), 1u);
}

TEST(GroupCommit, RoundCommitsWithinGroupOnly) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Items 0 and 6 involve servers 0 and 1 only.
  const auto result = runner.run_group_block({rw_txn(cluster, client, {0, 6}, "a")});
  EXPECT_EQ(result.decision, ledger::Decision::kCommit);
  EXPECT_TRUE(result.cosign_valid);
  EXPECT_EQ(result.group_size, 2u);
  EXPECT_EQ(result.group.members,
            (std::vector<ServerId>{ServerId{0}, ServerId{1}}));

  // The block reached every server's stream, and the write applied.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(runner.log_of(ServerId{i}).size(), 1u);
  }
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "a-0");
}

TEST(GroupCommit, StreamValidates) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});
  runner.run_group_block({rw_txn(cluster, client, {0, 1}, "c")});

  const auto& stream = runner.log_of(ServerId{4});
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_FALSE(validate_stream(stream, cluster.server_keys()).has_value());
  // Dependency metadata: block 2 depends on blocks 0 and 1.
  EXPECT_EQ(stream[2].depends_on, (std::vector<std::uint64_t>{0, 1}));
}

TEST(GroupCommit, StreamDetectsTampering) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});

  auto stream = runner.log_of(ServerId{0});
  stream[0].block.txns[0].rw.writes[0].new_value = to_bytes("evil");
  const auto bad = validate_stream(stream, cluster.server_keys());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 0u);
}

TEST(GroupCommit, StreamDetectsReorder) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  runner.run_group_block({rw_txn(cluster, client, {1}, "b")});

  auto stream = runner.log_of(ServerId{0});
  std::swap(stream[0], stream[1]);
  EXPECT_TRUE(validate_stream(stream, cluster.server_keys()).has_value());
}

TEST(GroupCommit, DisjointGroupsProgressIndependently) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Server pairs (0) and (1): Gi ∩ Gj = ∅ — any order is fine, FIFO used.
  const auto r1 = runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  const auto r2 = runner.run_group_block({rw_txn(cluster, client, {1}, "b")});
  EXPECT_EQ(r1.decision, ledger::Decision::kCommit);
  EXPECT_EQ(r2.decision, ledger::Decision::kCommit);
  EXPECT_FALSE(r1.group.overlaps(r2.group));
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "a-0");
  EXPECT_EQ(to_string(cluster.server(ServerId{1}).shard().peek(1).value), "b-1");
}

TEST(GroupCommit, DependentGroupsKeepOrder) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Two sequential writes to the same item through different group rounds:
  // the second must see the first (no lost update).
  auto t1 = rw_txn(cluster, client, {0}, "first");
  ASSERT_EQ(runner.run_group_block({t1}).decision, ledger::Decision::kCommit);
  auto t2 = rw_txn(cluster, client, {0}, "second");
  ASSERT_EQ(runner.run_group_block({t2}).decision, ledger::Decision::kCommit);
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "second-0");
  const auto& stream = runner.log_of(ServerId{0});
  EXPECT_EQ(stream[1].depends_on, (std::vector<std::uint64_t>{0}));
}

TEST(GroupCommit, EmptyBatchRefusedAtSubmission) {
  // Regression: group_for used to fabricate a {S0} group for an empty txn
  // list, letting an empty batch commit an empty co-signed block through a
  // group no transaction ever touched.
  Cluster cluster(config());
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  const auto result = runner.run_group_block({});
  EXPECT_EQ(result.fault, "empty batch refused at submission");
  EXPECT_EQ(result.decision, ledger::Decision::kAbort);
  EXPECT_TRUE(result.group.members.empty());
  EXPECT_EQ(seq.size(), 0u);
  EXPECT_EQ(seq.epochs().issued(), 0u);  // no epoch burned on a refused batch
}

TEST(GroupCommit, MalformedChallengeFanOutRefusedNotIndexed) {
  // Regression: a coordinator emitting a challenge fan-out that matches
  // neither the broadcast shape (1) nor the cohort count drove
  // challenges[slot] out of bounds for the last cohort. The round must be
  // refused instead — and must never reach OrdServ.
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  // Items {0, 6, 12} → servers {0, 1, 2}: a 3-member group, so N-1 = 2
  // challenges match neither 1 nor N.
  cluster.server(ServerId{0}).faults().coordinator.drop_last_challenge = true;
  const auto result =
      runner.run_group_block({rw_txn(cluster, client, {0, 6, 12}, "a")});
  EXPECT_EQ(result.fault,
            "coordinator challenge fan-out mismatch (2 messages for 3 cohorts)");
  EXPECT_FALSE(result.cosign_valid);
  EXPECT_EQ(seq.size(), 0u);
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_TRUE(runner.log_of(ServerId{i}).empty());
  }
}

TEST(GroupCommit, DeliveryRefusesForgedSequencedBlock) {
  // Regression: deliver_all used to apply whatever OrdServ broadcast without
  // checking the inner co-sign, so a compromised sequencer could inject an
  // unsigned "committed" block straight into every shard.
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});

  // Forge a block (no co-sign at all) and submit it to the sequencer
  // directly, bypassing the group round.
  ledger::Block forged;
  forged.decision = ledger::Decision::kCommit;
  forged.txns.push_back(touching({0}));
  forged.txns[0].rw.writes[0].new_value = to_bytes("evil");
  seq.submit(forged, group_for(forged.txns, cluster.num_servers()));
  runner.deliver_pending();

  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const auto& refusal = runner.refusal_of(ServerId{i});
    ASSERT_TRUE(refusal.has_value()) << "S" << i;
    EXPECT_EQ(refusal->height, 1u);
    EXPECT_EQ(refusal->reason, "missing group co-sign");
    EXPECT_EQ(runner.log_of(ServerId{i}).size(), 1u);  // halted before the forgery
  }
  // The forged write never touched the shard.
  EXPECT_EQ(to_string(cluster.server(ServerId{0}).shard().peek(0).value), "a-0");
}

TEST(GroupCommit, ValidatorRecomputesUnderReportedDependencies) {
  // Regression: validate_stream used to trust the sequencer's depends_on
  // metadata; a lying OrdServ could hide a cross-group dependency and
  // re-order dependent blocks undetected. Dependencies are recomputed from
  // the co-signed block contents.
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);
  runner.run_group_block({rw_txn(cluster, client, {0}, "a")});
  auto t2 = rw_txn(cluster, client, {0}, "b");  // same item: depends on block 0
  runner.run_group_block({t2});

  auto stream = runner.log_of(ServerId{0});
  ASSERT_EQ(stream.size(), 2u);
  ASSERT_EQ(stream[1].depends_on, (std::vector<std::uint64_t>{0}));
  stream[1].depends_on.clear();  // OrdServ under-reports the dependency
  const auto bad = validate_stream(stream, cluster.server_keys());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 1u);

  // Per-entry check() names the hidden dependency.
  StreamValidator v;
  EXPECT_FALSE(v.check(stream[0], cluster.server_keys()).has_value());
  const auto reason = v.check(stream[1], cluster.server_keys());
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, "under-reported dependency on height 0");
}

TEST(GroupCommit, ByzantineGroupMemberBlocksSigning) {
  Cluster cluster(config());
  Client& client = cluster.make_client();
  Sequencer seq;
  GroupCommitRunner runner(cluster, seq);

  cluster.server(ServerId{1}).faults().cohort.corrupt_sch_response = true;
  // Items 0 and 6 -> servers 0 and 1; member 1 sabotages the co-sign.
  const auto result = runner.run_group_block({rw_txn(cluster, client, {0, 6}, "a")});
  EXPECT_FALSE(result.cosign_valid);
  EXPECT_EQ(seq.size(), 0u);  // never published
}

}  // namespace
}  // namespace fides::ordserv
