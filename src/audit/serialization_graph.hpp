// Serialization-graph analysis (Lemma 3).
//
// "This is equivalent to verifying that no cycle exists in the Serialization
// Graph of the transactions being audited." We build the conflict graph of
// the committed transactions in log order (RW, WR, WW edges from the earlier
// to the later committed transaction), check the graph is acyclic, and check
// every edge is consistent with the commit-timestamp order.
#pragma once

#include <span>
#include <vector>

#include "ledger/block.hpp"

namespace fides::audit {

/// Position of one transaction in the adopted log.
struct TxnRef {
  std::size_t block{0};
  std::size_t index{0};  ///< within block.txns

  friend constexpr auto operator<=>(const TxnRef&, const TxnRef&) = default;
};

enum class ConflictKind : std::uint8_t { kReadWrite, kWriteRead, kWriteWrite };

struct ConflictEdge {
  TxnRef from;
  TxnRef to;
  ItemId item{};
  ConflictKind kind{};
};

class SerializationGraph {
 public:
  /// Builds the graph from committed blocks in log order.
  static SerializationGraph build(std::span<const ledger::Block> log);

  const std::vector<TxnRef>& nodes() const { return nodes_; }
  const std::vector<ConflictEdge>& edges() const { return edges_; }

  /// True iff a conflict cycle exists (serializability violated).
  bool has_cycle() const;

  /// Edges whose endpoints' commit timestamps contradict the edge direction
  /// — the three Lemma-3 conflict rules expressed over the graph.
  std::vector<ConflictEdge> timestamp_order_violations(
      std::span<const ledger::Block> log) const;

 private:
  std::vector<TxnRef> nodes_;
  std::vector<ConflictEdge> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;  // node index -> edge targets
};

}  // namespace fides::audit
