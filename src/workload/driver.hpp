// Experiment driver shared by the figure-reproduction benchmarks.
//
// Runs the paper's measurement loop: generate client transactions, terminate
// them block by block through the configured commit protocol, and aggregate
// the two §6 metrics — commit latency (time from the end-transaction request
// to the decision) and throughput (committed transactions per second) —
// plus the Merkle-update time Figure 14 breaks out.
//
// The driver feeds the engine continuously: each iteration executes a
// window of pipeline_depth blocks' worth of transactions on the data path,
// then hands the whole window's batches to the cluster in one pipelined
// call, so at depth > 1 the engine always has the next block ready to admit.
// At depth 1 the window is a single block and the loop is the paper's
// classic one-block-at-a-time measurement.
#pragma once

#include "workload/ycsb.hpp"

namespace fides::workload {

struct ExperimentConfig {
  ClusterConfig cluster;
  WorkloadConfig workload;
  std::size_t total_txns{1000};
  std::size_t txns_per_block{100};
};

struct ExperimentResult {
  std::size_t committed_txns{0};
  std::size_t aborted_txns{0};
  std::size_t blocks{0};

  /// Mean modeled commit latency per block, in milliseconds.
  double avg_latency_ms{0};
  /// Committed transactions per second of modeled time.
  double throughput_tps{0};
  /// Mean per-block Merkle update time (max across servers), in ms.
  double avg_mht_ms{0};

  /// Mean *measured* wall-clock latency per block, in milliseconds — what
  /// the round actually took in this process, with the thread pool doing
  /// per-server work concurrently. Compare against avg_latency_ms to
  /// validate the analytical model against real concurrency. At pipeline
  /// depth > 1 rounds overlap, so these per-round spans overlap too.
  double avg_measured_ms{0};
  /// Committed transactions per second of measured commit wall time (the
  /// pipelined engine's actual rate; the depth > 1 gain shows up here).
  double measured_throughput_tps{0};
  /// Threads the commit rounds ran on.
  std::size_t threads{1};
  /// Commit rounds in flight (ClusterConfig::pipeline_depth).
  std::size_t pipeline_depth{1};

  double wall_seconds{0};  ///< harness wall time, for scheduling runs
  Transport::Stats net;
};

/// One full run (the paper averages 3 runs per data point; the benches call
/// this with three seeds and average).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Averages results over `seeds` runs, paper-style.
ExperimentResult run_averaged(ExperimentConfig config,
                              std::span<const std::uint64_t> seeds);

}  // namespace fides::workload
