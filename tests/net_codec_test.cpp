// Wire-frame codec: roundtrips for every frame kind, the FrameReader's
// incremental reassembly, and the trust-boundary guarantee — any truncation
// or corruption of bytes arriving off a socket raises DecodeError (or
// parses as garbage), never crashes. Also covers engine::unframe_payload's
// short-frame check, the in-process edge of the same boundary.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "engine/scheduler.hpp"

namespace fides::net {
namespace {

Envelope make_signed_envelope() {
  const auto key = crypto::KeyPair::deterministic(0x5EB0'0000ULL);
  Envelope env;
  env.sender = NodeId::server(ServerId{0});
  env.type = "vote";
  env.payload = Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9};
  env.signature = key.sign(env.payload);
  return env;
}

/// Strips the u32 length prefix off full wire bytes.
BytesView payload_of(const Bytes& wire) {
  return BytesView(wire).subspan(4);
}

TEST(NetCodec, HelloRoundtrips) {
  const Bytes wire = encode_hello(NodeId::server(ServerId{3}));
  const Frame f = decode_frame(payload_of(wire));
  EXPECT_EQ(f.kind, FrameKind::kHello);
  EXPECT_EQ(f.hello_node, NodeId::server(ServerId{3}));
}

TEST(NetCodec, EnvelopeRoundtrips) {
  const Envelope env = make_signed_envelope();
  const Bytes wire = encode_envelope(NodeId::server(ServerId{0}),
                                     NodeId::client(ClientId{2}), true, env);
  const Frame f = decode_frame(payload_of(wire));
  EXPECT_EQ(f.kind, FrameKind::kEnvelope);
  EXPECT_EQ(f.src, NodeId::server(ServerId{0}));
  EXPECT_EQ(f.dst, NodeId::client(ClientId{2}));
  EXPECT_TRUE(f.replay);
  EXPECT_EQ(f.envelope.sender, env.sender);
  EXPECT_EQ(f.envelope.type, env.type);
  EXPECT_EQ(f.envelope.payload, env.payload);
  // The signature survives byte-exactly: its serialized form is canonical.
  EXPECT_EQ(f.envelope.signature.serialize(), env.signature.serialize());
}

TEST(NetCodec, AppliedShutdownAndDigestRoundtrip) {
  {
    const Frame f = decode_frame(payload_of(encode_applied(4, 77)));
    EXPECT_EQ(f.kind, FrameKind::kApplied);
    EXPECT_EQ(f.server, 4u);
    EXPECT_EQ(f.epoch, 77u);
  }
  {
    const Frame f = decode_frame(payload_of(encode_shutdown()));
    EXPECT_EQ(f.kind, FrameKind::kShutdown);
  }
  {
    const Frame f = decode_frame(payload_of(encode_digest_query(2)));
    EXPECT_EQ(f.kind, FrameKind::kDigestQuery);
    EXPECT_EQ(f.server, 2u);
  }
  {
    PeerDigest d;
    d.server = 3;
    d.log_height = 12;
    for (std::size_t i = 0; i < d.log_head.bytes.size(); ++i) {
      d.log_head.bytes[i] = static_cast<std::uint8_t>(i);
      d.shard_root.bytes[i] = static_cast<std::uint8_t>(255 - i);
    }
    const Frame f = decode_frame(payload_of(encode_digest_reply(d)));
    EXPECT_EQ(f.kind, FrameKind::kDigestReply);
    EXPECT_EQ(f.digest.server, 3u);
    EXPECT_EQ(f.digest.log_height, 12u);
    EXPECT_EQ(f.digest.log_head.bytes, d.log_head.bytes);
    EXPECT_EQ(f.digest.shard_root.bytes, d.shard_root.bytes);
  }
}

TEST(NetCodec, RejectsUnknownKindAndTrailingGarbage) {
  EXPECT_THROW(decode_frame(Bytes{0}), DecodeError);    // kind 0 unused
  EXPECT_THROW(decode_frame(Bytes{99}), DecodeError);   // kind out of range
  EXPECT_THROW(decode_frame(Bytes{}), DecodeError);     // empty payload

  Bytes wire = encode_shutdown();
  wire.push_back(0xAB);  // trailing garbage after a complete frame body
  EXPECT_THROW(decode_frame(payload_of(wire)), DecodeError);
}

TEST(NetCodec, EveryTruncationOfEveryKindThrowsNotCrashes) {
  const Envelope env = make_signed_envelope();
  const std::vector<Bytes> wires = {
      encode_hello(NodeId::client(ClientId{1})),
      encode_envelope(NodeId::server(ServerId{1}), NodeId::server(ServerId{0}), false, env),
      encode_applied(1, 5),
      encode_digest_query(1),
      encode_digest_reply(PeerDigest{2, 9, {}, {}}),
  };
  for (const Bytes& wire : wires) {
    const BytesView payload = payload_of(wire);
    // Every strict prefix of the payload is a truncated frame.
    for (std::size_t len = 0; len < payload.size(); ++len) {
      EXPECT_THROW(decode_frame(payload.first(len)), DecodeError)
          << "prefix of length " << len << " of a " << payload.size()
          << "-byte payload decoded";
    }
    // The full payload decodes.
    EXPECT_NO_THROW(decode_frame(payload));
  }
}

TEST(NetCodec, RandomCorruptionNeverCrashes) {
  // Fuzz the boundary: flip random bytes of a valid envelope frame payload.
  // Any outcome except a crash is acceptable — most flips throw DecodeError,
  // a flip inside the opaque payload bytes decodes to a (differently
  // garbled) envelope that the signature check upstairs rejects.
  const Envelope env = make_signed_envelope();
  const Bytes wire =
      encode_envelope(NodeId::server(ServerId{1}), NodeId::server(ServerId{0}), false, env);
  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutated(wire.begin() + 4, wire.end());
    const std::size_t at = rng.uniform(mutated.size());
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      (void)decode_frame(mutated);
    } catch (const DecodeError&) {
      // expected for most mutations
    }
  }
}

TEST(NetCodec, FrameReaderReassemblesAcrossArbitrarySplits) {
  const Envelope env = make_signed_envelope();
  Bytes stream;
  std::vector<Bytes> expected;
  for (int i = 0; i < 5; ++i) {
    Bytes wire = encode_applied(static_cast<std::uint32_t>(i), 100 + i);
    expected.emplace_back(wire.begin() + 4, wire.end());
    stream.insert(stream.end(), wire.begin(), wire.end());
    Bytes ewire = encode_envelope(NodeId::server(ServerId{0}),
                                  NodeId::server(ServerId{1}), false, env);
    expected.emplace_back(ewire.begin() + 4, ewire.end());
    stream.insert(stream.end(), ewire.begin(), ewire.end());
  }

  // Feed the stream in every chunk size from 1 byte to the whole thing.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                  stream.size()}) {
    FrameReader reader;
    std::vector<Bytes> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      reader.feed(BytesView(stream).subspan(off, n));
      while (auto frame = reader.next()) got.push_back(std::move(*frame));
    }
    EXPECT_EQ(got, expected) << "chunk size " << chunk;
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(NetCodec, FrameReaderRejectsOversizedAnnouncement) {
  // A length prefix above the cap is a protocol violation, not an alloc.
  FrameReader reader(/*max_frame=*/64);
  const Bytes huge_prefix = {0xFF, 0xFF, 0xFF, 0x7F};
  reader.feed(huge_prefix);
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(NetCodec, UnframePayloadThrowsOnShortFrame) {
  // Regression: a sub-8-byte engine payload used to take subspan(8) on a
  // shorter span — UB. It must throw like every other malformed input.
  const Bytes seven = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(engine::unframe_payload(seven), DecodeError);
  EXPECT_THROW(engine::unframe_payload(Bytes{}), DecodeError);
  Bytes nine = {0, 0, 0, 0, 0, 0, 0, 0, 42};
  const BytesView rest = engine::unframe_payload(nine);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], 42);
}

}  // namespace
}  // namespace fides::net
