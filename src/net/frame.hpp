// Wire frames for the socket scheduler.
//
// Everything crossing a socket is one length-delimited frame: a u32
// little-endian byte count followed by that many payload bytes. The payload
// begins with a one-byte frame kind; the rest is the kind's canonical serde
// encoding (common/serde.hpp — the same writer/reader pair that defines
// block and envelope bytes, so an Envelope has exactly one representation
// on disk, in a signature preimage, and on the wire).
//
// Trust model: envelope *contents* are authenticated end-to-end (the sender
// signature crosses the wire inside the frame and the receiving dispatcher
// verifies it), but the framing itself — kinds, node ids, the replay flag,
// applied/digest control frames — is not. A malformed or malicious frame
// must therefore never crash the process: every decode path throws
// DecodeError on truncation, oversizing, or an out-of-range discriminant,
// and the connection loop drops the frame (or the connection) instead of
// dying. That boundary is what the truncation fuzz test exercises.
#pragma once

#include <cstdint>
#include <optional>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "fides/transport.hpp"

namespace fides::net {

/// Hard ceiling on a single frame (64 MiB). A length prefix above this is
/// treated as a protocol violation (DecodeError), not an allocation request:
/// a hostile peer must not be able to make the receiver reserve gigabytes.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

enum class FrameKind : std::uint8_t {
  kHello = 1,        ///< first frame on every connection: who is dialing
  kEnvelope = 2,     ///< routed engine traffic (signed Envelope + src/dst/replay)
  kApplied = 3,      ///< hosted server finished processing a round's decision
  kShutdown = 4,     ///< coordinator: the run is over, exit cleanly
  kDigestQuery = 5,  ///< coordinator asks for the peer's committed-state digest
  kDigestReply = 6,  ///< log height + head hash + shard Merkle root
};

/// A peer's committed state, compared bit-for-bit against the coordinator's
/// other runs of the same batch (the cross-scheduler identity gate).
struct PeerDigest {
  std::uint32_t server{0};
  std::uint64_t log_height{0};
  crypto::Digest log_head;
  crypto::Digest shard_root;
};

/// Decoded frame. `kind` says which members are meaningful.
struct Frame {
  FrameKind kind{FrameKind::kHello};
  NodeId hello_node;       ///< kHello: the node the dialing process hosts
  NodeId src;              ///< kEnvelope
  NodeId dst;              ///< kEnvelope
  bool replay{false};      ///< kEnvelope: recovery catch-up stream flag
  Envelope envelope;       ///< kEnvelope
  std::uint32_t server{0}; ///< kApplied / kDigestQuery (queried server)
  std::uint64_t epoch{0};  ///< kApplied
  PeerDigest digest;       ///< kDigestReply
};

// --- Encoding (always produces the full wire bytes, length prefix included) --
//
// fides-lint: allow-file(serde-pairing) -- decode_frame is the single
// tagged-union decoder pairing every per-kind encode_* above; there is
// deliberately no encode_frame or per-kind decode_*.

Bytes encode_hello(NodeId node);
Bytes encode_envelope(NodeId src, NodeId dst, bool replay, const Envelope& env);
Bytes encode_applied(std::uint32_t server, std::uint64_t epoch);
Bytes encode_shutdown();
Bytes encode_digest_query(std::uint32_t server);
Bytes encode_digest_reply(const PeerDigest& digest);

/// Decodes one frame payload (the bytes *after* the length prefix). Throws
/// DecodeError on any malformation: unknown kind, truncation, trailing
/// garbage, an unparseable signature.
Frame decode_frame(BytesView payload);

/// Incremental frame extractor over a byte stream. feed() appends whatever
/// the socket produced; next() yields complete frame payloads in order.
/// Throws DecodeError when the stream announces a frame larger than
/// `max_frame` — the caller should drop the connection, since the stream
/// can no longer be re-synchronized.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes) : max_frame_(max_frame) {}

  void feed(BytesView data);

  /// The next complete frame payload, or nullopt if more bytes are needed.
  std::optional<Bytes> next();

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_{0};
  std::size_t max_frame_;
};

}  // namespace fides::net
