#include "ordserv/group.hpp"

#include <algorithm>

#include "commit/tfcommit.hpp"

namespace fides::ordserv {

bool ServerGroup::contains(ServerId s) const {
  return std::binary_search(members.begin(), members.end(), s);
}

bool ServerGroup::overlaps(const ServerGroup& other) const {
  return std::any_of(members.begin(), members.end(),
                     [&](ServerId s) { return other.contains(s); });
}

ServerGroup group_for(const std::vector<txn::Transaction>& txns,
                      std::uint32_t num_servers) {
  ledger::Block probe;
  probe.txns = txns;
  ServerGroup g;
  g.members = commit::involved_servers(probe, num_servers);
  // An empty batch (or one touching no shard) has no group: fabricating a
  // {S0} group here would let a zero-transaction block get "committed" under
  // server 0's lone co-sign. Callers must reject such batches at submission.
  if (!g.members.empty()) g.coordinator = g.members.front();
  return g;
}

}  // namespace fides::ordserv
