// Data items and their authenticated representation.
//
// Per the system model (§3.1), every data item has a unique identifier, a
// value, a read timestamp rts and a write timestamp wts — the timestamps of
// the last committed transaction that read / wrote the item.
#pragma once

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/timestamp.hpp"
#include "crypto/sha256.hpp"

namespace fides::store {

/// Current state of one data item in a shard.
struct ItemRecord {
  Bytes value;
  Timestamp rts;  ///< last committed reader
  Timestamp wts;  ///< last committed writer
};

/// One committed version of an item (multi-versioned datastores, §4.2.1).
struct ItemVersion {
  Timestamp wts;  ///< commit timestamp of the writing transaction
  Bytes value;
};

/// What the execution layer returns for a read (§4.2.1): the value plus the
/// timestamps the client must echo back in its end-transaction request.
struct ReadResult {
  ItemId id{};
  Bytes value;
  Timestamp rts;
  Timestamp wts;
};

/// Merkle-leaf digest of an item: h(id ‖ value). Timestamps are
/// intentionally excluded — the auditor recomputes this digest from the
/// values recorded in the log (Lemma 2), which carries timestamps
/// separately in the read/write sets.
crypto::Digest item_leaf_digest(ItemId id, BytesView value);

}  // namespace fides::store
