// OrdServ under concurrency: epoch reservation and stream submission racing
// from many threads.
//
// The sequencer is the epoch authority for every commit round (group-commit
// CoSi nonce domains, engine round tags), so its guarantees are load-bearing
// across threads: epochs must be unique and gap-free under any interleaving,
// and concurrent submissions must still produce one consistent hash chain
// with dependency metadata pointing strictly backwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "ordserv/group_commit.hpp"
#include "ordserv/group_engine.hpp"
#include "ordserv/sequencer.hpp"

namespace fides::ordserv {
namespace {

TEST(EpochCounter, ConcurrentReservationsAreUniqueAndGapFree) {
  EpochCounter epochs;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;

  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) got[t].push_back(epochs.reserve());
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::uint64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1) << "epoch stream has a gap or duplicate";
  }
  EXPECT_EQ(epochs.issued(), kThreads * kPerThread);

  // Per-thread reservations are monotone (each thread sees time move forward).
  for (const auto& v : got) {
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
}

ledger::Block block_touching(ItemId item, const std::string& tag) {
  ledger::Block b;
  txn::Transaction t;
  t.id = TxnId{0, item};
  t.rw.writes.push_back({item, to_bytes(tag), {}, {}, {}});
  b.txns.push_back(std::move(t));
  b.decision = ledger::Decision::kCommit;
  return b;
}

TEST(Sequencer, ConcurrentSubmissionsFormOneConsistentChain) {
  Sequencer seq;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 50;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Every thread repeatedly touches its own item plus a shared one, so
        // cross-thread dependencies are guaranteed to exist.
        const ItemId item = (i % 2 == 0) ? ItemId{1000 + t} : ItemId{42};
        ServerGroup group;
        group.members = {ServerId{static_cast<std::uint32_t>(t)}};
        group.coordinator = group.members[0];
        seq.submit(block_touching(item, "t" + std::to_string(t)), group);
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(seq.size(), kThreads * kPerThread);
  crypto::Digest expected_prev = crypto::Digest{};
  for (std::size_t h = 0; h < seq.stream().size(); ++h) {
    const SequencedBlock& entry = seq.stream()[h];
    EXPECT_EQ(entry.block.height, h);
    EXPECT_TRUE(entry.block.prev_hash == expected_prev) << "chain broken at " << h;
    for (const std::uint64_t dep : entry.depends_on) {
      EXPECT_LT(dep, h) << "dependency points forward at " << h;
    }
    expected_prev = entry.block.digest();
  }
}

TEST(Sequencer, ConcurrentFetchersEachSeeTheWholeStreamOnce) {
  Sequencer seq;
  constexpr std::size_t kBlocks = 120;
  constexpr std::uint32_t kServers = 5;

  std::vector<std::vector<const SequencedBlock*>> seen(kServers);
  std::vector<std::thread> threads;
  // One producer races per-server consumers that poll fetch_new.
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < kBlocks; ++i) {
      ServerGroup group;
      group.members = {ServerId{0}};
      group.coordinator = ServerId{0};
      seq.submit(block_touching(ItemId{i}, "b"), group);
    }
  });
  for (std::uint32_t s = 0; s < kServers; ++s) {
    threads.emplace_back([&, s] {
      while (seen[s].size() < kBlocks) {
        for (const SequencedBlock* entry : seq.fetch_new(ServerId{s})) {
          seen[s].push_back(entry);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::uint32_t s = 0; s < kServers; ++s) {
    ASSERT_EQ(seen[s].size(), kBlocks) << "server " << s;
    for (std::size_t h = 0; h < kBlocks; ++h) {
      EXPECT_EQ(seen[s][h]->block.height, h) << "server " << s << " out of order";
    }
  }
}

TEST(GroupCommit, RunnersSharingASequencerNeverReuseACosiRound) {
  // Two clusters (two independent "deployments" of the same group protocol)
  // publishing through one OrdServ must draw distinct epochs — reusing a
  // CoSi round id across concurrent groups would reuse nonce domains.
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 16;
  Cluster cluster_a(cfg);
  Cluster cluster_b(cfg);
  Client& client_a = cluster_a.make_client();
  Client& client_b = cluster_b.make_client();

  Sequencer seq;
  GroupCommitRunner runner_a(cluster_a, seq);
  GroupCommitRunner runner_b(cluster_b, seq);

  auto txn_on = [](Cluster& cluster, Client& client, ItemId item) {
    ClientTxn txn = client.begin();
    cluster.client_begin(client, txn.id(), std::vector<ItemId>{item});
    client.read(txn, item);
    client.write(txn, item, to_bytes("v"));
    return client.end(std::move(txn));
  };

  const std::uint64_t before = seq.epochs().issued();
  ASSERT_EQ(runner_a.run_group_block({txn_on(cluster_a, client_a, 0)}).decision,
            ledger::Decision::kCommit);
  ASSERT_EQ(runner_b.run_group_block({txn_on(cluster_b, client_b, 1)}).decision,
            ledger::Decision::kCommit);
  ASSERT_EQ(runner_a.run_group_block({txn_on(cluster_a, client_a, 2)}).decision,
            ledger::Decision::kCommit);
  // Three rounds, three distinct epochs — regardless of which runner ran.
  EXPECT_EQ(seq.epochs().issued(), before + 3);
}

TEST(GroupEngine, RacingGroupCoordinatorsKeepEpochAndStreamDiscipline) {
  // Many group rounds in flight on a multi-threaded scheduler: disjoint
  // groups race their coordinators concurrently, overlapping groups bridge
  // them. Epochs must stay unique and gap-free, the stream must respect
  // dependency order, and the result must be bit-identical to the
  // single-threaded lock-step runner.
  ClusterConfig cfg;
  cfg.num_servers = 6;
  cfg.items_per_shard = 32;
  cfg.versioning = store::VersioningMode::kSingle;

  // Minted once; replayed on fresh clusters (deterministic client keys).
  Cluster mint(cfg);
  Client& client = mint.make_client();
  auto rw = [&](std::vector<ItemId> items, const std::string& tag) {
    ClientTxn txn = client.begin();
    for (const ItemId item : items) {
      client.read(txn, item);
      client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
    }
    return client.end(std::move(txn));
  };
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  for (std::uint32_t i = 0; i < 24; ++i) {
    const std::uint32_t g = i % 3;  // groups {0,1}, {2,3}, {4,5} (item = server)
    if (i % 8 == 7) {
      // A bridging batch across two of the disjoint groups.
      batches.push_back({rw({ItemId{g * 2}, ItemId{(g * 2 + 2) % 6}},
                            "x" + std::to_string(i))});
    } else {
      batches.push_back({rw({ItemId{g * 2}, ItemId{g * 2 + 1}},
                            "t" + std::to_string(i))});
    }
  }

  // Reference: sequential lock-step runner.
  Cluster ref(cfg);
  ref.make_client();
  Sequencer ref_seq;
  GroupCommitRunner runner(ref, ref_seq);
  for (const auto& batch : batches) runner.run_group_block(batch);

  // Engine on 8 worker threads, deep pipeline, speculation on — maximum
  // coordinator concurrency.
  ClusterConfig ecfg = cfg;
  ecfg.num_threads = 8;
  ecfg.pipeline_depth = 8;
  ecfg.speculate = true;
  Cluster cluster(ecfg);
  cluster.make_client();
  Sequencer seq;
  const GroupRunResult result = cluster.run_group_blocks(seq, batches);

  // Epoch discipline: one epoch per admissible round, no reuse, no gaps.
  EXPECT_EQ(seq.epochs().issued(), batches.size());

  // Bit-identity with the lock-step runner.
  ASSERT_EQ(seq.size(), ref_seq.size());
  for (std::size_t h = 0; h < seq.size(); ++h) {
    EXPECT_EQ(seq.stream()[h].block.serialize(), ref_seq.stream()[h].block.serialize())
        << "height " << h;
    EXPECT_EQ(seq.stream()[h].depends_on, ref_seq.stream()[h].depends_on);
  }

  // Dependency-order oracle over the engine's stream.
  std::unordered_map<ItemId, std::uint64_t> last_touch;
  for (const SequencedBlock& e : seq.stream()) {
    for (const auto& t : e.block.txns) {
      for (const ItemId item : t.rw.touched_items()) {
        const auto it = last_touch.find(item);
        if (it != last_touch.end()) {
          EXPECT_NE(std::find(e.depends_on.begin(), e.depends_on.end(), it->second),
                    e.depends_on.end())
              << "height " << e.block.height << " hides a dependency";
        }
        last_touch[item] = e.block.height;
      }
    }
  }

  // Delivery applied the whole stream at every server, refusal-free.
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_FALSE(result.delivery_refusals[i].has_value());
    EXPECT_EQ(cluster.server(ServerId{i}).log().size(), seq.size());
  }
}

}  // namespace
}  // namespace fides::ordserv
