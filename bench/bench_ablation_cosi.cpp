// Ablation: Collective Signing vs naive per-server signatures (§2.2).
//
// CoSi's pitch is constant-size, constant-cost verification: one aggregate
// check replaces n Schnorr verifications. This bench quantifies that, plus
// the per-phase costs the TFCommit rounds pay (commitment, response,
// aggregation) across witness counts matching the Figure 14 sweep.
#include <benchmark/benchmark.h>

#include "ablation_json.hpp"
#include "crypto/cosi.hpp"

namespace {

using namespace fides;
using namespace fides::crypto;

struct Party {
  std::vector<KeyPair> keys;
  std::vector<PublicKey> pks;

  explicit Party(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(KeyPair::deterministic(i));
      pks.push_back(keys.back().public_key());
    }
  }

  CosiSignature sign(BytesView record) const {
    std::vector<AffinePoint> vs;
    std::vector<CosiCommitment> comms;
    for (const auto& k : keys) {
      comms.push_back(cosi_commit(k, record, 1));
      vs.push_back(comms.back().v);
    }
    const auto v = cosi_aggregate_commitments(vs);
    const auto ch = cosi_challenge(v, record);
    std::vector<U256> rs;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      rs.push_back(cosi_respond(keys[i], comms[i].secret, ch));
    }
    return CosiSignature{v, cosi_aggregate_responses(rs)};
  }
};

const Bytes kRecord = to_bytes("a block worth of transactions....");

void BM_CosiVerifyAggregate(benchmark::State& state) {
  const Party party(static_cast<std::size_t>(state.range(0)));
  const CosiSignature sig = party.sign(kRecord);
  for (auto _ : state) benchmark::DoNotOptimize(cosi_verify(kRecord, sig, party.pks));
}
BENCHMARK(BM_CosiVerifyAggregate)->Arg(3)->Arg(5)->Arg(7)->Arg(9)->Arg(16);

void BM_NaiveVerifyNSignatures(benchmark::State& state) {
  // The strawman TFCommit replaces: every server signs the block, every
  // verifier checks n signatures.
  const Party party(static_cast<std::size_t>(state.range(0)));
  std::vector<Signature> sigs;
  for (const auto& k : party.keys) sigs.push_back(k.sign(kRecord));
  for (auto _ : state) {
    bool ok = true;
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      ok &= verify(party.pks[i], kRecord, sigs[i]);
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_NaiveVerifyNSignatures)->Arg(3)->Arg(5)->Arg(7)->Arg(9)->Arg(16);

void BM_CosiWitnessCommit(benchmark::State& state) {
  const Party party(1);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosi_commit(party.keys[0], kRecord, ++round));
  }
}
BENCHMARK(BM_CosiWitnessCommit);

void BM_CosiWitnessRespond(benchmark::State& state) {
  const Party party(1);
  const auto comm = cosi_commit(party.keys[0], kRecord, 1);
  const auto ch = cosi_challenge(comm.v, kRecord);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosi_respond(party.keys[0], comm.secret, ch));
  }
}
BENCHMARK(BM_CosiWitnessRespond);

void BM_SchnorrSign(benchmark::State& state) {
  const Party party(1);
  for (auto _ : state) benchmark::DoNotOptimize(party.keys[0].sign(kRecord));
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const Party party(1);
  const Signature sig = party.keys[0].sign(kRecord);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(party.pks[0], kRecord, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_Sha256Block(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Block)->Arg(64)->Arg(1024)->Arg(65536);

}  // namespace

FIDES_ABLATION_MAIN()
