// Cluster configuration.
//
// Defaults mirror the paper's evaluation setup (§6): 5 servers, one shard of
// 10000 items per server, 100 transactions per block, a single-datacenter
// network, YCSB-like transactions of 5 operations each.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/sim_config.hpp"
#include "store/shard.hpp"

namespace fides {

/// One scheduled crash/recover cycle of a server (simulated mode). A crash
/// discards every volatile structure on the node — shard, ledger, cohort
/// round state, queued deliveries — leaving only the durable RoundLog;
/// recovery rebuilds the server from that log and rejoins mid-round. Two
/// trigger styles:
///
///   * virtual-time (`at_us` >= 0): the node dies when the SimNet clock
///     reaches at_us — how the fuzzer composes crashes with delay/loss/
///     partition schedules.
///   * transition (`after_type` non-empty): the node dies immediately after
///     it finishes processing its `after_count`-th delivery of that message
///     type — how the crash-point matrix pins a crash to an exact reactor
///     state transition.
///
/// Every crash recovers after `downtime_us` of virtual time; permanent
/// failure (membership change) is out of scope — see ROADMAP.
struct CrashFault {
  std::uint32_t server{0};
  double at_us{-1.0};
  std::string after_type;
  std::uint32_t after_count{1};
  double downtime_us{2000.0};
};

enum class Protocol : std::uint8_t {
  kTwoPhaseCommit,  ///< trusted baseline (§6.1)
  kTfCommit,        ///< the paper's contribution
};

/// Network model for the in-process transport. Two modes:
///
///   * kDirect (default): delivery is a direct function call, exactly the
///     original engine. Each message leg contributes a fixed one-way
///     latency to the analytically computed critical path (the paper's
///     servers sit in one AWS datacenter, US-West-2, m5.xlarge). The `sim`
///     knobs are ignored in this mode.
///   * kSimulated: commit-round and checkpoint traffic is routed through a
///     seeded discrete-event network (sim::SimNet) with per-link delay
///     distributions, drop/retransmit, duplication, reorder, and
///     partition/heal faults. Same seed => byte-identical event trace.
struct NetworkModel {
  double one_way_latency_us{100.0};
  sim::NetworkMode mode{sim::NetworkMode::kDirect};
  sim::SimNetConfig sim;
};

struct ClusterConfig {
  std::uint32_t num_servers{5};
  std::uint32_t items_per_shard{10000};
  store::VersioningMode versioning{store::VersioningMode::kSingle};
  std::size_t max_batch_size{100};
  Protocol protocol{Protocol::kTfCommit};
  NetworkModel network;
  std::uint64_t seed{42};
  Bytes initial_value{'0'};

  /// Worker threads for intra-round parallelism: per-cohort phase work
  /// (votes, responses, decision application), batched signature
  /// verification, and Merkle tree builds all fan out across this many
  /// threads. 1 = strictly sequential (bit-identical to the original
  /// single-threaded driver); 0 = one thread per hardware core. Parallel
  /// and sequential runs of the same batch produce identical decisions,
  /// blocks, and ledger state — only wall-clock time changes.
  std::uint32_t num_threads{1};

  /// Commit rounds in flight in the engine pipeline. 1 = lock-step, one
  /// block at a time (bit-identical to the pre-pipelining engine). K > 1
  /// admits block k+1 into its vote phase while block k's decision/apply
  /// tail is still draining at slower servers. Ledger append order stays
  /// sequential and the committed ledger is identical at every depth: a
  /// cohort never votes on block k+1 before applying block k (the engine
  /// gates the opening message on the per-server apply watermark), because
  /// its hypothetical Merkle root must build on the applied state. That
  /// data dependency caps effective overlap at ~2 rounds regardless of K —
  /// unless `speculate` lifts it.
  std::uint32_t pipeline_depth{1};

  /// Speculative voting (TFCommit only): drops the apply watermark gate on
  /// round openings. Round k+1 opens as soon as the depth window allows —
  /// before round k has even decided — with a projected height and no
  /// prev-hash; each cohort computes OCC validation and its hypothetical
  /// Merkle root on top of the *pending* update set of its in-flight
  /// rounds (predicting each block's fate from its own vote), and tags the
  /// vote with the assumed base. The coordinator validates every
  /// assumption against the real decisions before counting a vote: a
  /// mis-speculated vote is discarded and the cohort deterministically
  /// re-votes once the truth reaches it, so the committed ledger stays
  /// bit-identical to a non-speculative run at every depth, thread count,
  /// and scheduler. The win: the vote exchange of round k+1 overlaps the
  /// challenge/response and decision legs of round k, breaking the
  /// ~2-round effective overlap cap (depth >= 4 shows real pipelining on
  /// the SimNet virtual clock). 2PC ignores this knob.
  bool speculate{false};

  /// Sign/verify every message envelope (the system-model requirement,
  /// §3.1). Commit-protocol messages are always signed; this toggle lets
  /// benchmarks skip signatures on the *data path* (begin/read/write), whose
  /// cost is not part of commit latency — the paper measures from the
  /// end-transaction request onward.
  bool sign_data_path{true};

  /// Batched signature verification (FIDES_BATCH_VERIFY). When set, sites
  /// that open many envelopes at once — the coordinator's per-phase vote and
  /// response inbox (in-process scheduler drains), and each cohort's check of
  /// the client requests inside a get-vote — verify them through one
  /// random-linear-combination aggregate (crypto::batch_verify) instead of
  /// one Schnorr check per signature, falling back to individual verifies to
  /// attribute bad batches. Decisions, ledgers, and Merkle roots are
  /// bit-identical with the knob on or off; only wall-clock time changes.
  bool batch_verify{false};

  // --- Crash/recovery -------------------------------------------------------

  /// Scheduled crash/recover cycles (simulated mode; see CrashFault). In
  /// direct mode use Cluster::crash_server / recover_server between rounds.
  std::vector<CrashFault> crashes;

  /// TFCommit cooperative termination: when the *coordinator* has been down
  /// for this much virtual time with a round still in flight, the lowest-id
  /// surviving cohort drives the round to a co-signed abort — the paper's
  /// headline contrast with 2PC, which blocks until the coordinator
  /// recovers. 0 disables termination (rounds wait for recovery, preserving
  /// bit-identity with an uncrashed run).
  double termination_timeout_us{0.0};

  /// Directory for file-backed per-server round logs ("<dir>/server-<id>.
  /// rlog"). Empty = in-memory logs (still durable across a simulated
  /// server crash: the Cluster owns them, the Server objects do not).
  std::string round_log_dir;
};

}  // namespace fides
