// Open-loop SimNet clients: timeout/retry determinism under lossy seeded
// schedules, trace-hash reproducibility, and the direct-mode guard (client
// knobs must not perturb direct-mode results at all).
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simnet.hpp"
#include "workload/driver.hpp"

namespace fides {
namespace {

workload::ExperimentConfig lossy_open_loop_config() {
  workload::ExperimentConfig cfg;
  cfg.cluster.num_servers = 4;
  cfg.cluster.items_per_shard = 1000;
  cfg.cluster.max_batch_size = 10;
  cfg.txns_per_block = 10;
  cfg.total_txns = 60;
  cfg.cluster.sign_data_path = false;
  cfg.cluster.network.mode = sim::NetworkMode::kSimulated;
  cfg.cluster.network.sim.seed = 77;
  cfg.cluster.network.sim.link.min_delay_us = 20.0;
  cfg.cluster.network.sim.link.max_delay_us = 400.0;
  cfg.cluster.network.sim.link.drop_prob = 0.05;
  cfg.cluster.network.sim.link.dup_prob = 0.02;
  cfg.cluster.network.sim.link.reorder_prob = 0.2;
  cfg.arrival.process = workload::ArrivalProcess::kPoisson;
  cfg.arrival.rate_tps = 3000.0;
  cfg.arrival.num_clients = 3;
  return cfg;
}

TEST(OpenLoop, DeterministicUnderDropAndReorder) {
  const workload::ExperimentConfig cfg = lossy_open_loop_config();
  const workload::ExperimentResult a = workload::run_experiment(cfg);
  const workload::ExperimentResult b = workload::run_experiment(cfg);

  EXPECT_TRUE(a.open_loop);
  // Everything the bench JSON gates exactly must reproduce bit-for-bit.
  EXPECT_EQ(a.committed_txns, b.committed_txns);
  EXPECT_EQ(a.aborted_txns, b.aborted_txns);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.span_ms, b.span_ms);
  EXPECT_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_EQ(a.client_sends, b.client_sends);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.dup_responses, b.dup_responses);
  EXPECT_EQ(a.net.messages, b.net.messages);
  EXPECT_EQ(a.net.bytes, b.net.bytes);
  EXPECT_TRUE(a.latency_hist == b.latency_hist);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.p999_ms, b.p999_ms);
  EXPECT_EQ(a.max_ms, b.max_ms);
}

TEST(OpenLoop, EveryTransactionGetsAResponseDespiteHeavyLoss) {
  workload::ExperimentConfig cfg = lossy_open_loop_config();
  cfg.cluster.network.sim.link.drop_prob = 0.3;
  cfg.client_model.retry_timeout_us = 2000.0;
  cfg.client_model.max_retries = 8;
  const workload::ExperimentResult r = workload::run_experiment(cfg);

  // SimNet delivery is reliable-eventual (final attempt is never dropped),
  // so every submit reaches the coordinator and every decision flows back:
  // each transaction records exactly one latency sample.
  EXPECT_EQ(r.latency_hist.count(), cfg.total_txns);
  EXPECT_EQ(r.committed_txns + r.aborted_txns, cfg.total_txns);
  // Aggressive timeouts against a lossy slow network must actually retry.
  EXPECT_GT(r.client_retries, 0u);
  EXPECT_GT(r.client_sends, static_cast<std::uint64_t>(cfg.total_txns));
  // Percentiles are populated and ordered.
  EXPECT_GT(r.p50_ms, 0.0);
  EXPECT_LE(r.p50_ms, r.p99_ms);
  EXPECT_LE(r.p99_ms, r.p999_ms);
  EXPECT_LE(r.p999_ms, r.max_ms);
}

// Drives run_open_loop directly (the driver hides its Cluster) so the SimNet
// trace hash itself can be compared: two same-seed runs must replay the
// identical event schedule, client timers and retries included.
sim::SimNet* manual_open_loop(Cluster& cluster, std::uint32_t num_clients,
                              std::size_t total_txns, std::size_t per_block,
                              OpenLoopOutcome* out) {
  std::vector<Client*> clients;
  for (std::uint32_t i = 0; i < num_clients; ++i) clients.push_back(&cluster.make_client());
  workload::YcsbWorkload wl({},
                            static_cast<std::uint64_t>(cluster.config().num_servers) *
                                cluster.config().items_per_shard,
                            cluster.config().seed);
  workload::ArrivalConfig arrival;
  arrival.process = workload::ArrivalProcess::kFixedRate;
  arrival.rate_tps = 5000.0;
  const std::vector<double> arrivals = workload::arrival_times_us(arrival, total_txns);

  commit::BatchBuilder batcher(per_block);
  std::vector<OpenLoopTxn> txns(total_txns);
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> index_of;
  for (std::size_t i = 0; i < total_txns; ++i) {
    if (i % per_block == 0) wl.begin_batch();
    Client& c = *clients[i % num_clients];
    commit::SignedEndTxn req = wl.run_transaction(c);
    index_of[{req.request.txn.id.client, req.request.txn.id.seq}] = i;
    txns[i] = OpenLoopTxn{c.id().value, arrivals[i], 0};
    batcher.enqueue(std::move(req));
  }
  std::vector<std::vector<commit::SignedEndTxn>> batches;
  while (!batcher.empty()) batches.push_back(batcher.next_batch());
  for (std::size_t k = 0; k < batches.size(); ++k) {
    for (const commit::SignedEndTxn& req : batches[k]) {
      txns.at(index_of.at({req.request.txn.id.client, req.request.txn.id.seq})).round = k;
    }
  }
  *out = cluster.run_open_loop(std::move(batches), std::move(txns), sim::ClientModel{});
  return cluster.simnet();
}

TEST(OpenLoop, TraceHashAndLatenciesReproduceAcrossRuns) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 500;
  cfg.max_batch_size = 8;
  cfg.sign_data_path = false;
  cfg.network.mode = sim::NetworkMode::kSimulated;
  cfg.network.sim.seed = 5;
  cfg.network.sim.link.drop_prob = 0.1;
  cfg.network.sim.link.reorder_prob = 0.3;

  Cluster c1(cfg), c2(cfg);
  OpenLoopOutcome o1, o2;
  const sim::SimNet* n1 = manual_open_loop(c1, 2, 40, 8, &o1);
  const sim::SimNet* n2 = manual_open_loop(c2, 2, 40, 8, &o2);

  EXPECT_EQ(n1->trace_hash(), n2->trace_hash());
  EXPECT_EQ(o1.latency_us, o2.latency_us);
  EXPECT_EQ(o1.client_sends, o2.client_sends);
  EXPECT_EQ(o1.client_retries, o2.client_retries);
  EXPECT_EQ(o1.span_us, o2.span_us);

  // A different network seed must yield a different schedule (the hash is
  // not a constant).
  ClusterConfig other = cfg;
  other.network.sim.seed = 6;
  Cluster c3(other);
  OpenLoopOutcome o3;
  const sim::SimNet* n3 = manual_open_loop(c3, 2, 40, 8, &o3);
  EXPECT_NE(n1->trace_hash(), n3->trace_hash());
}

TEST(OpenLoop, DirectModeIgnoresClientModelKnobs) {
  // network.mode=direct must produce bit-identical results whatever the
  // arrival/client knobs say — the open-loop machinery must not even
  // engage.
  workload::ExperimentConfig base;
  base.cluster.num_servers = 3;
  base.cluster.items_per_shard = 500;
  base.cluster.max_batch_size = 10;
  base.txns_per_block = 10;
  base.total_txns = 50;
  base.cluster.sign_data_path = false;

  workload::ExperimentConfig knobs = base;
  knobs.arrival.process = workload::ArrivalProcess::kPoisson;
  knobs.arrival.rate_tps = 123.0;
  knobs.arrival.num_clients = 9;
  knobs.client_model.retry_timeout_us = 1.0;
  knobs.client_model.max_retries = 99;

  const workload::ExperimentResult a = workload::run_experiment(base);
  const workload::ExperimentResult b = workload::run_experiment(knobs);

  EXPECT_FALSE(a.open_loop);
  EXPECT_FALSE(b.open_loop);
  // Compare the deterministic outputs; modeled latency folds in measured
  // compute time, so timing fields jitter run-to-run even in direct mode.
  EXPECT_EQ(a.committed_txns, b.committed_txns);
  EXPECT_EQ(a.aborted_txns, b.aborted_txns);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.net.messages, b.net.messages);
  EXPECT_EQ(a.net.bytes, b.net.bytes);
  EXPECT_EQ(a.net.signatures_created, b.net.signatures_created);
  EXPECT_EQ(a.latency_hist.count(), b.latency_hist.count());
  // The open-loop client machinery must not have engaged at all.
  EXPECT_EQ(b.client_sends, 0u);
  EXPECT_EQ(b.client_retries, 0u);
  EXPECT_EQ(b.span_ms, 0.0);
}

TEST(OpenLoop, RequiresSimulatedNetwork) {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 100;
  Cluster cluster(cfg);  // direct mode
  EXPECT_THROW(cluster.run_open_loop({}, {}, sim::ClientModel{}), std::logic_error);
}

}  // namespace
}  // namespace fides
