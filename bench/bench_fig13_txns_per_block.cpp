// Figure 13 — varying transactions per block (§6.2).
//
// Sweep: 5 servers, 10000 items/shard, 2..120 transactions per block.
// Paper result: per-transaction commit latency drops ~2.6x and throughput
// rises ~2.5x once >= 80 transactions are batched per block.
//
// Ends with the pipelined-engine section: the same batch stream replayed at
// pipeline depths 1/2/4, reporting measured throughput per depth and
// hard-failing on any ledger divergence (see bench_common.hpp).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fides;
  bench::print_header(
      "Figure 13: transactions per block, 5 servers",
      "latency/txn falls ~2.6x, throughput rises ~2.5x by batch >= 80");

  bench::BenchReport report("fig13_txns_per_block");
  bench::stamp_config(report);

  std::printf("%-12s %-16s %-16s %-14s %-14s %-10s %-12s %-10s\n", "txns/block",
              "latency_ms(txn)", "measured_ms(txn)", "throughput_tps",
              "measured_tps", "p99_ms", "blocks", "aborted");

  for (const std::size_t batch : {2, 20, 40, 60, 80, 100, 120}) {
    workload::ExperimentConfig cfg;
    cfg.cluster.num_servers = 5;
    cfg.cluster.items_per_shard = 10000;
    cfg.cluster.max_batch_size = batch;
    cfg.txns_per_block = batch;
    const auto r = bench::run_point(cfg);
    // Per-transaction commit latency: the block's latency divided across
    // the batch (every transaction in the block terminates together).
    const double per_txn_ms =
        r.blocks > 0 ? r.avg_latency_ms / static_cast<double>(batch) : 0;
    const double per_txn_measured_ms =
        r.blocks > 0 ? r.avg_measured_ms / static_cast<double>(batch) : 0;
    std::printf("%-12zu %-16.3f %-16.3f %-14.0f %-14.0f %-10.3f %-12zu %-10zu\n",
                batch, per_txn_ms, per_txn_measured_ms, r.throughput_tps,
                r.measured_throughput_tps, r.p99_ms, r.blocks, r.aborted_txns);
    bench::add_experiment_point(report, "batch" + std::to_string(batch), r);
  }

  bench::pipeline_depth_section(/*servers=*/4, /*txns_per_block=*/25,
                                /*blocks=*/std::max<std::size_t>(8, bench::bench_txns() / 25),
                                &report);
  bench::finish_report(report, argc, argv);
  return 0;
}
