#include "commit/tf3commit.hpp"

#include <algorithm>

namespace fides::commit {

Bytes PreDecisionMsg::serialize() const {
  Writer w;
  w.bytes(block.serialize());
  return std::move(w).take();
}

std::optional<PreDecisionMsg> PreDecisionMsg::deserialize(BytesView b) {
  try {
    Reader r(b);
    const Bytes raw = r.bytes();
    r.expect_done();
    const auto block = Block::deserialize(raw);
    if (!block) return std::nullopt;
    return PreDecisionMsg{*block};
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

PreDecisionAck Tf3CommitCohort::handle_pre_decision(const PreDecisionMsg& msg) {
  // Persisting is what makes the decision recoverable; a real server writes
  // this to stable storage before acking. Full validation happens in the
  // challenge phase (or, after a crash, implicitly: divergent pre-decisions
  // make recovery abort, and a forged block still cannot gather a co-sign).
  persisted_ = msg.block;
  return PreDecisionAck{ServerId{}, true};
}

RecoveryOutcome recover_round(std::span<Tf3CommitCohort* const> cohorts,
                              std::span<const ServerId> ids,
                              std::span<const crypto::PublicKey> keys,
                              std::span<const crypto::KeyPair* const> keypairs,
                              std::uint64_t recovery_round_id) {
  RecoveryOutcome out;

  // Poll survivors for persisted pre-decisions; they must all agree.
  const Block* chosen = nullptr;
  for (Tf3CommitCohort* cohort : cohorts) {
    const auto& persisted = cohort->persisted_pre_decision();
    if (!persisted) continue;
    if (chosen == nullptr) {
      chosen = &*persisted;
    } else if (!(chosen->digest() == persisted->digest())) {
      // Divergent pre-decisions: the failed coordinator equivocated. No
      // consistent decision is recoverable; the round aborts (nothing was
      // applied anywhere — application requires a co-signed decision).
      for (Tf3CommitCohort* c : cohorts) c->finish_round();
      return out;
    }
  }
  if (chosen == nullptr) {
    // No cohort saw the pre-decision: the 3PC abort rule — the coordinator
    // cannot have decided commit for anyone, so abort is safe.
    for (Tf3CommitCohort* c : cohorts) c->finish_round();
    return out;
  }

  // Complete the persisted decision: a fresh CoSi round over the same block,
  // co-signed by the survivors (the crashed coordinator necessarily drops
  // out of the witness set).
  Block block = *chosen;
  block.signers.assign(ids.begin(), ids.end());
  std::sort(block.signers.begin(), block.signers.end());
  const Bytes record = block.signing_bytes();

  std::vector<crypto::CosiCommitment> secrets;
  std::vector<crypto::AffinePoint> commitments;
  for (const crypto::KeyPair* kp : keypairs) {
    secrets.push_back(crypto::cosi_commit(*kp, record, recovery_round_id));
    commitments.push_back(secrets.back().v);
  }
  const crypto::AffinePoint v = crypto::cosi_aggregate_commitments(commitments);
  const crypto::U256 challenge = crypto::cosi_challenge(v, record);
  std::vector<crypto::U256> responses;
  for (std::size_t i = 0; i < keypairs.size(); ++i) {
    responses.push_back(crypto::cosi_respond(*keypairs[i], secrets[i].secret, challenge));
  }
  block.cosign =
      crypto::CosiSignature{v, crypto::cosi_aggregate_responses(responses)};

  out.recovered_decision = true;
  out.outcome.block = block;
  out.outcome.decision = block.decision;
  out.outcome.cosign_valid =
      crypto::cosi_verify(record, *block.cosign,
                          std::vector<crypto::PublicKey>(keys.begin(), keys.end()));
  for (Tf3CommitCohort* c : cohorts) c->finish_round();
  return out;
}

}  // namespace fides::commit
