// Hex encoding/decoding for digests, keys, and log dumps.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace fides {

/// Lower-case hex encoding of a byte span.
std::string hex_encode(BytesView data);

/// Decodes a hex string; returns nullopt on odd length or non-hex chars.
std::optional<Bytes> hex_decode(std::string_view hex);

}  // namespace fides
