// SimNet + schedule-fuzz harness tests.
//
// Three layers: (i) SimNet mechanics — deterministic ordering, loss with
// retransmission, duplication, partition hold/heal, trace hashing; (ii) the
// sim round drivers — an honest simulated round must produce bit-identical
// decisions/ledger state to direct mode, and direct mode must be untouched
// by sim knobs; (iii) the fuzz harness — same-seed determinism and a seed
// sweep of full scenarios (env knobs: FIDES_SIM_SEED to pin one schedule,
// FIDES_SIM_SEEDS to widen the sweep).
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/schedule_fuzz.hpp"
#include "sim/sim_round.hpp"
#include "sim/simnet.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

Envelope plain_envelope(const std::string& type, const std::string& body) {
  Envelope env;
  env.sender = NodeId::server(ServerId{0});
  env.type = type;
  env.payload = to_bytes(body);
  return env;
}

TEST(SimNet, DeliversInVirtualTimeOrderDeterministically) {
  sim::SimNetConfig cfg;
  cfg.seed = 7;
  cfg.link.min_delay_us = 10;
  cfg.link.max_delay_us = 500;  // wide window => reordering
  auto run_once = [&] {
    sim::SimNet net(cfg);
    for (int i = 0; i < 20; ++i) {
      net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
               plain_envelope("m", "msg-" + std::to_string(i)));
    }
    std::vector<std::string> order;
    net.run([&](NodeId, NodeId, const Envelope& env, bool) {
      order.push_back(to_string(BytesView(env.payload)));
    });
    return std::pair(order, net.trace_hash());
  };
  const auto [order1, hash1] = run_once();
  const auto [order2, hash2] = run_once();
  EXPECT_EQ(order1, order2);
  EXPECT_TRUE(hash1 == hash2);
  // The wide delay window must actually reorder something.
  std::vector<std::string> sent_order;
  for (int i = 0; i < 20; ++i) sent_order.push_back("msg-" + std::to_string(i));
  EXPECT_NE(order1, sent_order);

  sim::SimNetConfig other = cfg;
  other.seed = 8;
  sim::SimNet net(other);
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
           plain_envelope("m", "msg-0"));
  net.run([](NodeId, NodeId, const Envelope&, bool) {});
  EXPECT_FALSE(net.trace_hash() == hash1);  // different seed, different trace
}

TEST(SimNet, DropRetransmitsUntilDelivered) {
  sim::SimNetConfig cfg;
  cfg.seed = 3;
  cfg.link.drop_prob = 0.9;  // heavy but transient loss
  cfg.max_attempts = 16;
  sim::SimNet net(cfg);
  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
             plain_envelope("m", std::to_string(i)));
  }
  std::size_t delivered = 0;
  net.run([&](NodeId, NodeId, const Envelope&, bool) { ++delivered; });
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));  // nothing lost forever
  EXPECT_GT(net.stats().dropped, 0u);
}

TEST(SimNet, DuplicatesDeliverExtraCopies) {
  sim::SimNetConfig cfg;
  cfg.seed = 5;
  cfg.link.dup_prob = 1.0;
  sim::SimNet net(cfg);
  for (int i = 0; i < 10; ++i) {
    net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
             plain_envelope("m", std::to_string(i)));
  }
  std::size_t delivered = 0;
  net.run([&](NodeId, NodeId, const Envelope&, bool) { ++delivered; });
  EXPECT_EQ(delivered, 20u);
  EXPECT_EQ(net.stats().duplicated, 10u);
}

TEST(SimNet, PartitionHoldsTrafficUntilHeal) {
  sim::SimNetConfig cfg;
  cfg.seed = 11;
  cfg.link.min_delay_us = 10;
  cfg.link.max_delay_us = 20;
  sim::Partition p;
  p.island = {0};
  p.start_us = 0;
  p.heal_us = 5000;
  cfg.partitions.push_back(p);
  sim::SimNet net(cfg);
  // Crossing the partition: held until heal. Within one side: unaffected.
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
           plain_envelope("m", "cross"));
  net.send(NodeId::server(ServerId{1}), NodeId::server(ServerId{2}),
           plain_envelope("m", "inside"));
  std::vector<std::pair<std::string, double>> deliveries;
  net.run([&](NodeId, NodeId, const Envelope& env, bool) {
    deliveries.emplace_back(to_string(BytesView(env.payload)), net.now_us());
  });
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, "inside");
  EXPECT_LT(deliveries[0].second, 100.0);
  EXPECT_EQ(deliveries[1].first, "cross");
  EXPECT_GE(deliveries[1].second, 5000.0);
  EXPECT_EQ(net.stats().held, 1u);
}

TEST(SimNet, ChainedPartitionWindowsHoldUntilTheLastHeal) {
  // Three back-to-back windows isolating S0, deliberately listed out of
  // chronological order: a send at t=0 must be held until the *final* heal
  // (t=300), not released when the first-scanned window heals.
  sim::SimNetConfig cfg;
  cfg.seed = 4;
  cfg.link.min_delay_us = 1;
  cfg.link.max_delay_us = 2;
  cfg.partitions.push_back({{0}, 200.0, 300.0});
  cfg.partitions.push_back({{0}, 100.0, 200.0});
  cfg.partitions.push_back({{0}, 0.0, 100.0});
  sim::SimNet net(cfg);
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
           plain_envelope("m", "x"));
  double delivered_at = -1;
  net.run([&](NodeId, NodeId, const Envelope&, bool) { delivered_at = net.now_us(); });
  EXPECT_GE(delivered_at, 300.0);
}

TEST(SimNet, PerLinkOverridesApplyToThatLinkOnly) {
  // One directed link (0 -> 1) is degraded far beyond the global profile;
  // the reverse direction and every other link keep the fast global model.
  sim::SimNetConfig cfg;
  cfg.seed = 21;
  cfg.link.min_delay_us = 1;
  cfg.link.max_delay_us = 5;
  sim::LinkOverride slow;
  slow.src = 0;
  slow.dst = 1;
  slow.faults.min_delay_us = 10000;
  slow.faults.max_delay_us = 10001;
  cfg.link_overrides.push_back(slow);

  sim::SimNet net(cfg);
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{1}),
           plain_envelope("m", "slow"));
  net.send(NodeId::server(ServerId{1}), NodeId::server(ServerId{0}),
           plain_envelope("m", "fast-reverse"));
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{2}),
           plain_envelope("m", "fast-other"));
  std::vector<std::pair<std::string, double>> deliveries;
  net.run([&](NodeId, NodeId, const Envelope& env, bool) {
    deliveries.emplace_back(to_string(BytesView(env.payload)), net.now_us());
  });
  ASSERT_EQ(deliveries.size(), 3u);
  for (const auto& [what, at] : deliveries) {
    if (what == "slow") {
      EXPECT_GE(at, 10000.0);
    } else {
      EXPECT_LT(at, 100.0) << what;
    }
  }
}

TEST(SimNet, CrashDropsDeliveriesUntilRecovery) {
  sim::SimNetConfig cfg;
  cfg.seed = 13;
  cfg.link.min_delay_us = 10;
  cfg.link.max_delay_us = 20;
  sim::SimNet net(cfg);
  const NodeId a = NodeId::server(ServerId{0});
  const NodeId b = NodeId::server(ServerId{1});
  net.schedule_crash(b, 100);
  net.schedule_recover(b, 1000);
  net.send(a, b, plain_envelope("m", "before"));  // lands ~t=15: delivered
  std::vector<std::string> got;
  std::vector<std::string> control;
  net.run(
      [&](NodeId, NodeId, const Envelope& env, bool) {
        got.push_back(to_string(BytesView(env.payload)));
      },
      [&](const engine::ControlEvent& ev) {
        control.push_back(ev.kind == engine::ControlEvent::Kind::kCrash ? "crash"
                                                                        : "recover");
        if (control.back() == "crash") {
          // Lands ~15us into the outage: the addressee is dead — lost.
          net.send(a, b, plain_envelope("m", "during"));
        } else {
          net.send(a, b, plain_envelope("m", "after"));
        }
      });
  EXPECT_EQ(got, (std::vector<std::string>{"before", "after"}));
  EXPECT_EQ(control, (std::vector<std::string>{"crash", "recover"}));
  EXPECT_EQ(net.stats().lost_down, 1u);
  EXPECT_FALSE(net.is_down(b));
}

TEST(SimNet, SequencedSendsDeliverInOrderAndFlagReplay) {
  sim::SimNetConfig cfg;
  cfg.seed = 3;
  cfg.link.min_delay_us = 1;
  cfg.link.max_delay_us = 2000;  // wild reorder for normal sends
  sim::SimNet net(cfg);
  const NodeId a = NodeId::server(ServerId{0});
  const NodeId b = NodeId::server(ServerId{1});
  for (int i = 0; i < 8; ++i) {
    net.send_sequenced(a, b, plain_envelope("m", "seq-" + std::to_string(i)));
  }
  std::vector<std::string> order;
  net.run([&](NodeId, NodeId, const Envelope& env, bool replay) {
    EXPECT_TRUE(replay);
    order.push_back(to_string(BytesView(env.payload)));
  });
  std::vector<std::string> expected;
  for (int i = 0; i < 8; ++i) expected.push_back("seq-" + std::to_string(i));
  EXPECT_EQ(order, expected);  // FIFO despite the chaotic normal-link profile
}

TEST(SimNet, SelfDeliveryIsIdealAndUnfaulted) {
  sim::SimNetConfig cfg;
  cfg.seed = 2;
  cfg.link.drop_prob = 1.0;  // would loop a real link to max_attempts
  cfg.link.dup_prob = 1.0;
  sim::SimNet net(cfg);
  net.send(NodeId::server(ServerId{0}), NodeId::server(ServerId{0}),
           plain_envelope("m", "self"));
  std::size_t delivered = 0;
  net.run([&](NodeId, NodeId, const Envelope&, bool) { ++delivered; });
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_EQ(net.stats().duplicated, 0u);
}

// --- Sim rounds vs the direct engine ------------------------------------------

ClusterConfig round_config() {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.items_per_shard = 32;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.max_batch_size = 8;
  return cfg;
}

struct RunResult {
  std::vector<ledger::Decision> decisions;
  std::vector<crypto::Digest> head_hashes;
  std::vector<crypto::Digest> merkle_roots;
  std::vector<std::size_t> log_sizes;
  bool checkpoint_formed{false};
  std::uint64_t checkpoint_height{0};
  /// The aggregate signature bits themselves: nonces are deterministic, so
  /// even these must match between direct and simulated runs.
  std::optional<crypto::CosiSignature> checkpoint_cosign;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_workload(ClusterConfig cfg, std::size_t rounds, std::size_t txns) {
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  workload::YcsbWorkload workload(
      {}, static_cast<std::uint64_t>(cfg.num_servers) * cfg.items_per_shard, cfg.seed);
  RunResult result;
  for (std::size_t r = 0; r < rounds; ++r) {
    workload.begin_batch();
    std::vector<commit::SignedEndTxn> batch;
    for (std::size_t i = 0; i < txns; ++i) batch.push_back(workload.run_transaction(client));
    result.decisions.push_back(cluster.run_block(std::move(batch)).decision);
  }
  const auto cp = cluster.create_checkpoint();
  result.checkpoint_formed = cp.has_value();
  if (cp) {
    result.checkpoint_height = cp->height;
    result.checkpoint_cosign = cp->cosign;
  }
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    result.head_hashes.push_back(s.log().head_hash());
    result.merkle_roots.push_back(s.shard().merkle_root());
    result.log_sizes.push_back(s.log().size());
  }
  return result;
}

TEST(SimRound, HonestSimulatedRunMatchesDirectModeBitForBit) {
  // The schedule must not change the outcome: decisions, blocks, co-signs
  // (deterministic nonces), checkpoint — all identical to direct delivery,
  // even under loss, duplication, and heavy reorder.
  const RunResult direct = run_workload(round_config(), 3, 4);
  for (const std::uint64_t sim_seed : {1ULL, 99ULL}) {
    ClusterConfig cfg = round_config();
    cfg.network.mode = sim::NetworkMode::kSimulated;
    cfg.network.sim.seed = sim_seed;
    cfg.network.sim.link.drop_prob = 0.2;
    cfg.network.sim.link.dup_prob = 0.2;
    cfg.network.sim.link.min_delay_us = 10;
    cfg.network.sim.link.max_delay_us = 800;
    const RunResult simulated = run_workload(cfg, 3, 4);
    EXPECT_TRUE(simulated == direct) << "sim seed " << sim_seed;
  }
}

TEST(SimRound, TwoPhaseCommitSimulatedMatchesDirect) {
  ClusterConfig base = round_config();
  base.protocol = Protocol::kTwoPhaseCommit;
  const RunResult direct = run_workload(base, 2, 4);
  ClusterConfig cfg = base;
  cfg.network.mode = sim::NetworkMode::kSimulated;
  cfg.network.sim.seed = 17;
  cfg.network.sim.link.drop_prob = 0.15;
  cfg.network.sim.link.max_delay_us = 600;
  const RunResult simulated = run_workload(cfg, 2, 4);
  EXPECT_TRUE(simulated == direct);
}

TEST(SimRound, DirectModeIgnoresSimKnobs) {
  // Guard for "direct delivery stays bit-identical": with mode == kDirect,
  // arbitrary sim parameters must change nothing.
  const RunResult baseline = run_workload(round_config(), 2, 4);
  ClusterConfig cfg = round_config();
  cfg.network.sim.seed = 12345;
  cfg.network.sim.link.drop_prob = 0.9;
  cfg.network.sim.partitions.push_back({{0, 1}, 0.0, 1e9});
  const RunResult knobbed = run_workload(cfg, 2, 4);
  EXPECT_TRUE(knobbed == baseline);
  Cluster direct(round_config());
  EXPECT_EQ(direct.simnet(), nullptr);
}

TEST(SimRound, ByzantineAttributionSurvivesHostileSchedules) {
  // Lemma 4 under network chaos: the corrupt cosigner is attributed
  // identically no matter the schedule.
  for (const std::uint64_t sim_seed : {1ULL, 2ULL, 3ULL}) {
    ClusterConfig cfg = round_config();
    cfg.network.mode = sim::NetworkMode::kSimulated;
    cfg.network.sim.seed = sim_seed;
    cfg.network.sim.link.drop_prob = 0.3;
    cfg.network.sim.link.dup_prob = 0.3;
    cfg.network.sim.link.max_delay_us = 1000;
    Cluster cluster(cfg);
    Client& client = cluster.make_client();
    cluster.server(ServerId{2}).faults().cohort.corrupt_sch_response = true;
    ClientTxn txn = client.begin();
    cluster.client_begin(client, txn.id(), std::vector<ItemId>{0, 1});
    client.read(txn, 0);
    client.write(txn, 0, to_bytes("x"));
    const auto metrics = cluster.run_block({client.end(std::move(txn))});
    EXPECT_FALSE(metrics.cosign_valid);
    ASSERT_EQ(metrics.faulty_cosigners.size(), 1u) << "sim seed " << sim_seed;
    EXPECT_EQ(metrics.faulty_cosigners[0], ServerId{2});
  }
}

// --- Schedule fuzzing ----------------------------------------------------------

TEST(ScheduleFuzz, SameSeedReproducesByteIdenticalRuns) {
  for (const std::uint64_t seed : {1ULL, 17ULL, 1234ULL}) {
    const sim::FuzzOutcome a = sim::run_schedule(seed);
    const sim::FuzzOutcome b = sim::run_schedule(seed);
    EXPECT_TRUE(a.trace_hash == b.trace_hash) << "seed " << seed;
    EXPECT_TRUE(a.result_hash == b.result_hash) << "seed " << seed;
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.scenario, b.scenario);
  }
}

TEST(ScheduleFuzz, DistinctSeedsExploreDistinctSchedules) {
  const sim::FuzzOutcome a = sim::run_schedule(100);
  const sim::FuzzOutcome b = sim::run_schedule(101);
  EXPECT_FALSE(a.trace_hash == b.trace_hash);
}

TEST(ScheduleFuzz, SeedSweepHoldsAllInvariants) {
  // FIDES_SIM_SEED pins one schedule (reproduction workflow); FIDES_SIM_SEEDS
  // widens the sweep. The heavy sweep lives in the fides_simfuzz runner.
  std::uint64_t base = 1;
  std::size_t count = 32;
  if (const char* pin = std::getenv("FIDES_SIM_SEED")) {
    base = std::strtoull(pin, nullptr, 10);
    count = 1;
  } else if (const char* env = std::getenv("FIDES_SIM_SEEDS")) {
    count = std::strtoull(env, nullptr, 10);
  }
  std::size_t byzantine = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const sim::FuzzOutcome outcome = sim::run_schedule(seed);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << " [" << outcome.scenario
                            << "]: " << outcome.failure
                            << "\n  trace=" << outcome.trace_hash.hex();
    byzantine += outcome.byzantine ? 1 : 0;
  }
  if (count >= 32) {
    EXPECT_GT(byzantine, 0u);  // the menu is actually being sampled
  }
}

}  // namespace
}  // namespace fides
