// Tests for the paper's "orthogonal" features implemented as extensions:
// multi-version recovery (§4.2.1), log checkpointing (§3.3), and wire-format
// round-trips for every commit-protocol message.
#include <gtest/gtest.h>

#include "audit/auditor.hpp"
#include "ledger/checkpoint.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 16;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.sign_data_path = false;
  return cfg;
}

commit::SignedEndTxn rw_txn(Cluster& cluster, Client& client, std::vector<ItemId> items,
                            const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

// --- Recovery (§4.2.1) --------------------------------------------------------

TEST(Recovery, VersionChainTruncateAfter) {
  store::VersionChain chain(to_bytes("v0"));
  chain.append(Timestamp{10, 0}, to_bytes("v10"));
  chain.append(Timestamp{20, 0}, to_bytes("v20"));
  chain.append(Timestamp{30, 0}, to_bytes("v30"));
  EXPECT_EQ(chain.truncate_after(Timestamp{15, 0}), 2u);
  EXPECT_EQ(to_string(chain.latest().value), "v10");
  // Initial version survives even a truncate-to-before-everything.
  EXPECT_EQ(chain.truncate_after(kTimestampZero), 1u);
  EXPECT_EQ(to_string(chain.latest().value), "v0");
}

TEST(Recovery, ShardResetRestoresStateAndRoot) {
  store::Shard shard(ShardId{0}, {0, 1, 2, 3}, to_bytes("init"),
                     store::VersioningMode::kMulti);
  shard.apply_write(0, to_bytes("a1"), Timestamp{1, 0});
  shard.apply_write(1, to_bytes("b1"), Timestamp{1, 0});
  const auto root_v1 = shard.merkle_root();

  shard.apply_write(0, to_bytes("a2"), Timestamp{2, 0});
  shard.apply_write(2, to_bytes("c2"), Timestamp{3, 0});
  ASSERT_NE(shard.merkle_root(), root_v1);

  const std::size_t dropped = shard.reset_to_version(Timestamp{1, 0});
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(shard.merkle_root(), root_v1);
  EXPECT_EQ(to_string(shard.peek(0).value), "a1");
  EXPECT_EQ(to_string(shard.peek(2).value), "init");
  EXPECT_EQ(shard.peek(0).wts, (Timestamp{1, 0}));
}

TEST(Recovery, ResetRequiresMultiVersion) {
  store::Shard shard(ShardId{0}, {0}, to_bytes("x"), store::VersioningMode::kSingle);
  EXPECT_THROW(shard.reset_to_version(Timestamp{1, 0}), std::logic_error);
}

TEST(Recovery, CorruptionThenResetThenCleanAudit) {
  // The full §4.2.1 recovery story: corruption detected at a version, the
  // server resets to the last sanitized version, and can serve correct
  // state again (the old corrupted versions are gone).
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  cluster.run_block({rw_txn(cluster, client, {0}, "good")});
  Server& victim = cluster.server(cluster.owner_of(0));
  const Timestamp good_ts = victim.log().at(0).txns[0].commit_ts;

  victim.faults().corrupt_after_commit_item = 0;
  cluster.run_block({rw_txn(cluster, client, {0}, "bad-era")});
  audit::Auditor auditor(cluster);
  ASSERT_TRUE(auditor.run().has(audit::ViolationKind::kDatastoreCorruption));

  // Operator response: stop the fault, roll back to the sanitized version.
  victim.faults().corrupt_after_commit_item.reset();
  victim.shard().reset_to_version(good_ts);
  EXPECT_EQ(to_string(victim.shard().peek(0).value), "good-0");
}

// --- Checkpointing (§3.3) -------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster = std::make_unique<Cluster>(small_config());
    client = &cluster->make_client();
    for (int i = 0; i < 4; ++i) {
      cluster->run_block({rw_txn(*cluster, *client, {static_cast<ItemId>(i)},
                                 "b" + std::to_string(i))});
    }
  }
  std::unique_ptr<Cluster> cluster;
  Client* client{};
};

TEST_F(CheckpointTest, CreateAndValidate) {
  const auto cp = cluster->create_checkpoint();
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->height, 4u);
  EXPECT_EQ(cp->head_hash, cluster->server(ServerId{0}).log().head_hash());
  EXPECT_TRUE(ledger::validate_checkpoint(*cp, cluster->server_keys()));
  EXPECT_FALSE(cp->roots.empty());
}

TEST_F(CheckpointTest, SerializationRoundTrip) {
  const auto cp = cluster->create_checkpoint();
  ASSERT_TRUE(cp.has_value());
  const auto back = ledger::Checkpoint::deserialize(cp->serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, *cp);
  EXPECT_TRUE(ledger::validate_checkpoint(*back, cluster->server_keys()));
}

TEST_F(CheckpointTest, TamperedCheckpointRejected) {
  auto cp = cluster->create_checkpoint();
  ASSERT_TRUE(cp.has_value());
  cp->height = 2;  // claim a shorter prefix than was signed
  EXPECT_FALSE(ledger::validate_checkpoint(*cp, cluster->server_keys()));
}

TEST_F(CheckpointTest, DivergentServerBlocksCheckpoint) {
  cluster->server(ServerId{1}).log().truncate_tail(2);
  EXPECT_FALSE(cluster->create_checkpoint().has_value());
}

TEST_F(CheckpointTest, ValidateChainFromCheckpoint) {
  const auto cp = cluster->create_checkpoint();
  ASSERT_TRUE(cp.has_value());

  // Extend the log past the checkpoint.
  cluster->run_block({rw_txn(*cluster, *client, {9}, "after")});
  const auto& log = cluster->server(ServerId{2}).log().blocks();
  EXPECT_TRUE(ledger::validate_chain_from(*cp, log, cluster->server_keys()).ok);

  // A tampered suffix block is caught without touching the prefix.
  auto tampered = log;
  tampered[4].decision = ledger::Decision::kAbort;
  const auto res = ledger::validate_chain_from(*cp, tampered, cluster->server_keys());
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.issues.empty());
  EXPECT_EQ(res.issues[0].block_index, 4u);
}

TEST_F(CheckpointTest, SuffixMustChainFromCheckpointHead) {
  const auto cp = cluster->create_checkpoint();
  ASSERT_TRUE(cp.has_value());
  cluster->run_block({rw_txn(*cluster, *client, {9}, "after")});
  auto log = cluster->server(ServerId{0}).log().blocks();
  log[4].prev_hash = crypto::sha256(to_bytes("severed"));
  EXPECT_FALSE(ledger::validate_chain_from(*cp, log, cluster->server_keys()).ok);
}

// --- Wire-format round-trips for the protocol messages ----------------------------

class MessageRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster = std::make_unique<Cluster>(small_config());
    client = &cluster->make_client();
    request = rw_txn(*cluster, *client, {0, 1}, "msg");
  }
  std::unique_ptr<Cluster> cluster;
  Client* client{};
  commit::SignedEndTxn request;
};

TEST_F(MessageRoundTrip, EndTxnRequestAndSignature) {
  const auto back = commit::EndTxnRequest::deserialize(request.request.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->txn, request.request.txn);
  EXPECT_TRUE(request.verify(client->keypair().public_key()));
  // A tweaked request no longer verifies under the client's signature.
  commit::SignedEndTxn forged = request;
  forged.request.txn.commit_ts.logical += 1;
  EXPECT_FALSE(forged.verify(client->keypair().public_key()));
}

TEST_F(MessageRoundTrip, GetVoteMsg) {
  commit::GetVoteMsg msg;
  msg.partial_block.txns.push_back(request.request.txn);
  msg.partial_block.signers = {ServerId{0}, ServerId{1}, ServerId{2}};
  msg.requests = {request};
  msg.round = 7;
  const auto back = commit::GetVoteMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->partial_block, msg.partial_block);
  EXPECT_EQ(back->round, 7u);
  ASSERT_EQ(back->requests.size(), 1u);
  EXPECT_TRUE(back->requests[0].verify(client->keypair().public_key()));
}

TEST_F(MessageRoundTrip, VoteMsgWithAndWithoutRoot) {
  commit::VoteMsg vote;
  vote.cohort = ServerId{2};
  vote.sch_commitment =
      crypto::Curve::instance().to_affine(crypto::Curve::instance().mul_g(crypto::U256(5)));
  vote.involved = true;
  vote.vote = txn::Vote::kCommit;
  vote.root = crypto::sha256(to_bytes("root"));
  auto back = commit::VoteMsg::deserialize(vote.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cohort, ServerId{2});
  EXPECT_TRUE(back->root.has_value());
  EXPECT_EQ(*back->root, *vote.root);

  vote.root.reset();
  vote.vote = txn::Vote::kAbort;
  vote.abort_reason = "stale read";
  back = commit::VoteMsg::deserialize(vote.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->root.has_value());
  EXPECT_EQ(back->abort_reason, "stale read");
}

TEST_F(MessageRoundTrip, ChallengeResponseDecision) {
  const auto& curve = crypto::Curve::instance();
  commit::ChallengeMsg ch;
  ch.challenge = crypto::U256(12345);
  ch.aggregate_commitment = curve.to_affine(curve.mul_g(crypto::U256(9)));
  ch.block.txns.push_back(request.request.txn);
  ch.block.signers = {ServerId{0}};
  const auto ch2 = commit::ChallengeMsg::deserialize(ch.serialize());
  ASSERT_TRUE(ch2.has_value());
  EXPECT_EQ(ch2->challenge, ch.challenge);
  EXPECT_EQ(ch2->block, ch.block);

  commit::ResponseMsg resp;
  resp.cohort = ServerId{1};
  resp.refused = true;
  resp.refusal_reason = "challenge mismatch";
  const auto resp2 = commit::ResponseMsg::deserialize(resp.serialize());
  ASSERT_TRUE(resp2.has_value());
  EXPECT_TRUE(resp2->refused);
  EXPECT_EQ(resp2->refusal_reason, "challenge mismatch");

  commit::DecisionMsg dec;
  dec.final_block = ch.block;
  const auto dec2 = commit::DecisionMsg::deserialize(dec.serialize());
  ASSERT_TRUE(dec2.has_value());
  EXPECT_EQ(dec2->final_block, ch.block);
}

TEST_F(MessageRoundTrip, TwoPhaseCommitMessages) {
  commit::PrepareMsg prep;
  prep.partial_block.txns.push_back(request.request.txn);
  prep.requests = {request};
  const auto prep2 = commit::PrepareMsg::deserialize(prep.serialize());
  ASSERT_TRUE(prep2.has_value());
  EXPECT_EQ(prep2->partial_block, prep.partial_block);

  commit::PrepareVoteMsg vote;
  vote.cohort = ServerId{2};
  vote.involved = true;
  vote.vote = txn::Vote::kAbort;
  vote.abort_reason = "WW-conflict";
  const auto vote2 = commit::PrepareVoteMsg::deserialize(vote.serialize());
  ASSERT_TRUE(vote2.has_value());
  EXPECT_EQ(vote2->abort_reason, "WW-conflict");

  commit::CommitDecisionMsg dec;
  dec.final_block = prep.partial_block;
  const auto dec2 = commit::CommitDecisionMsg::deserialize(dec.serialize());
  ASSERT_TRUE(dec2.has_value());
  EXPECT_EQ(dec2->final_block, prep.partial_block);
}

TEST_F(MessageRoundTrip, GarbageRejectedEverywhere) {
  const Bytes junk = to_bytes("definitely not a protocol message");
  EXPECT_FALSE(commit::GetVoteMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::VoteMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::ChallengeMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::ResponseMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::DecisionMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::PrepareMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::PrepareVoteMsg::deserialize(junk).has_value());
  EXPECT_FALSE(commit::CommitDecisionMsg::deserialize(junk).has_value());
  EXPECT_FALSE(ledger::Checkpoint::deserialize(junk).has_value());
  EXPECT_FALSE(commit::EndTxnRequest::deserialize(junk).has_value());
}

}  // namespace
}  // namespace fides
