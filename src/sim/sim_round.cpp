#include "sim/sim_round.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <tuple>

#include "common/cpu_time.hpp"
#include "crypto/cosi.hpp"
#include "sim/simnet.hpp"

namespace fides::sim {

namespace {

using Clock = std::chrono::steady_clock;

double since_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// Receiver-side at-most-once filter: the first copy of a (sender,
/// receiver, type) message in a round is processed, later copies (SimNet
/// duplicates) are ignored.
class Dedup {
 public:
  bool first(NodeId src, NodeId dst, const std::string& type) {
    return seen_.emplace(src, dst, type).second;
  }

 private:
  std::set<std::tuple<NodeId, NodeId, std::string>> seen_;
};

NodeId server_node(std::uint32_t i) { return NodeId::server(ServerId{i}); }

/// Broadcasts one sealed envelope to servers [0, n): the sender signs once
/// (counted by seal) and each further recipient is one more wire copy.
void broadcast(Cluster& cluster, SimNet& net, NodeId src, const Envelope& env,
               std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i > 0) cluster.transport().count_copy(env);
    net.send(src, server_node(i), env);
  }
}

}  // namespace

RoundMetrics run_tfcommit_block_sim(Cluster& cluster,
                                    std::vector<commit::SignedEndTxn> batch,
                                    SimNet& net) {
  RoundMetrics metrics;
  metrics.txns_in_block = batch.size();
  metrics.threads_used = 1;  // the event loop is single-threaded by design
  const auto round_start = Clock::now();
  const double net_start_us = net.now_us();
  commit::order_batch(batch);

  const std::uint32_t n = cluster.num_servers();
  Transport& transport = cluster.transport();
  Server& coord_server = cluster.server(cluster.coordinator_id());
  const NodeId coord_node = NodeId::server(cluster.coordinator_id());

  std::vector<ServerId> cohort_ids;
  for (std::uint32_t i = 0; i < n; ++i) cohort_ids.push_back(ServerId{i});
  commit::TfCommitCoordinator coordinator(cohort_ids, cluster.server_keys());

  // Phase 1 <GetVote, SchAnnouncement> — assembled up front; everything
  // after this reacts to deliveries.
  auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord_server.log().size(), coord_server.log().head_hash(), commit::batch_txns(batch),
      cohort_ids);
  commit::GetVoteMsg get_vote = coordinator.start(std::move(partial), batch);
  const Envelope get_vote_env = transport.seal(coord_server.keypair(), coord_node,
                                               "tf_get_vote", get_vote.serialize());
  double coord_us = since_us(t0);

  // Round state, owned by the driver but logically located at the nodes:
  // slot i belongs to server i (or, for vote/response inboxes, to the
  // coordinator's view of cohort i).
  std::vector<commit::VoteMsg> votes(n);
  std::vector<unsigned char> vote_in(n, 0);
  std::size_t votes_seen = 0;
  std::vector<commit::ChallengeMsg> challenges;
  std::vector<commit::ResponseMsg> responses(n);
  std::vector<unsigned char> resp_in(n, 0);
  std::size_t resps_seen = 0;
  std::optional<commit::TfCommitOutcome> outcome;
  std::vector<double> cohort_us(n, 0);
  Dedup seen;

  broadcast(cluster, net, coord_node, get_vote_env, n);

  net.run([&](NodeId src, NodeId dst, const Envelope& env) {
    if (!seen.first(src, dst, env.type)) return;  // duplicate copy

    if (env.type == "tf_get_vote") {
      // Phase 2 <Vote, SchCommitment> at cohort dst.
      Server& server = cluster.server(ServerId{dst.id});
      const double tc = common::thread_cpu_time_us();
      commit::VoteMsg vote;
      if (transport.open(env, "tf_get_vote")) {
        if (const auto msg = commit::GetVoteMsg::deserialize(env.payload)) {
          commit::CohortFaults faults = server.faults().cohort;
          if (!verify_touching_requests(transport, server, msg->requests)) {
            faults.always_vote_abort = true;  // refuse forged requests
          }
          vote = server.tf_cohort().handle_get_vote(*msg, faults);
          server.add_mht_time_us(server.tf_cohort().last_root_compute_us());
          metrics.mht_us =
              std::max(metrics.mht_us, server.tf_cohort().last_root_compute_us());
        }
      }
      Envelope vote_env = transport.seal(server.keypair(), NodeId::server(server.id()),
                                         "tf_vote", vote.serialize());
      cohort_us[dst.id] += common::thread_cpu_time_us() - tc;
      net.send(NodeId::server(server.id()), coord_node, std::move(vote_env));

    } else if (env.type == "tf_vote") {
      // Phase 3 <null, SchChallenge> at the coordinator, once the last vote
      // is in. Votes land in cohort order regardless of arrival order.
      const auto t = Clock::now();
      const bool authentic = transport.open(env, "tf_vote");
      if (src.id < n && !vote_in[src.id]) {
        // An unauthenticated or malformed vote is never ingested; the slot
        // is conservatively filled with an involved abort so the round
        // still terminates — with a deny. (Unreachable for honestly sealed
        // traffic: SimNet never corrupts payloads.)
        commit::VoteMsg vote;
        vote.cohort = ServerId{src.id};
        vote.involved = true;
        vote.abort_reason = "vote envelope failed authentication";
        if (authentic) {
          if (const auto msg = commit::VoteMsg::deserialize(env.payload)) vote = *msg;
        }
        votes[src.id] = std::move(vote);
        vote_in[src.id] = 1;
        ++votes_seen;
      }
      if (votes_seen == n && challenges.empty()) {
        challenges = coordinator.on_votes(votes, coord_server.faults().coordinator);
        // Honest coordinators broadcast one challenge; an equivocating one
        // signs a divergent envelope per cohort.
        std::vector<Envelope> challenge_envs;
        for (const auto& ch : challenges) {
          challenge_envs.push_back(transport.seal(coord_server.keypair(), coord_node,
                                                  "tf_challenge", ch.serialize()));
        }
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::size_t slot = challenges.size() == 1 ? 0 : i;
          if (challenges.size() == 1 && i > 0) transport.count_copy(challenge_envs[0]);
          net.send(coord_node, server_node(i), challenge_envs[slot]);
        }
      }
      coord_us += since_us(t);

    } else if (env.type == "tf_challenge") {
      // Phase 4 <null, SchResponse> at cohort dst.
      Server& server = cluster.server(ServerId{dst.id});
      const double tc = common::thread_cpu_time_us();
      commit::ResponseMsg resp;
      resp.cohort = server.id();
      if (transport.open(env, "tf_challenge")) {
        if (const auto msg = commit::ChallengeMsg::deserialize(env.payload)) {
          resp = server.tf_cohort().handle_challenge(*msg, server.faults().cohort);
        } else {
          resp.refused = true;
          resp.refusal_reason = "malformed challenge payload";
        }
      } else {
        resp.refused = true;
        resp.refusal_reason = "challenge envelope failed authentication";
      }
      Envelope resp_env = transport.seal(server.keypair(), NodeId::server(server.id()),
                                         "tf_response", resp.serialize());
      cohort_us[dst.id] += common::thread_cpu_time_us() - tc;
      net.send(NodeId::server(server.id()), coord_node, std::move(resp_env));

    } else if (env.type == "tf_response") {
      // Phase 5 <Decision, null> at the coordinator, once all responses are
      // in: aggregate the co-sign and broadcast the finalized block.
      const auto t = Clock::now();
      const bool authentic = transport.open(env, "tf_response");
      if (src.id < n && !resp_in[src.id]) {
        commit::ResponseMsg resp;
        resp.cohort = ServerId{src.id};
        resp.refused = true;
        resp.refusal_reason = "response envelope failed authentication";
        if (authentic) {
          if (const auto msg = commit::ResponseMsg::deserialize(env.payload)) resp = *msg;
        }
        responses[src.id] = std::move(resp);
        resp_in[src.id] = 1;
        ++resps_seen;
      }
      if (resps_seen == n && !outcome.has_value()) {
        outcome = coordinator.on_responses(responses);
        const commit::DecisionMsg decision{outcome->block};
        const Envelope decision_env = transport.seal(
            coord_server.keypair(), coord_node, "tf_decision", decision.serialize());
        broadcast(cluster, net, coord_node, decision_env, n);
      }
      coord_us += since_us(t);

    } else if (env.type == "tf_decision") {
      // Log append + datastore update at server dst (steps 6-7). The apply
      // step rebuilds Merkle leaves — fold it into mht_us like the direct
      // driver does.
      Server& server = cluster.server(ServerId{dst.id});
      const double tc = common::thread_cpu_time_us();
      const double mht_before = server.mht_time_us();
      if (transport.open(env, "tf_decision")) {
        if (const auto msg = commit::DecisionMsg::deserialize(env.payload)) {
          server.handle_decision(*msg, cluster.server_keys());
        }
      }
      metrics.mht_us = std::max(metrics.mht_us, server.mht_time_us() - mht_before);
      cohort_us[dst.id] += common::thread_cpu_time_us() - tc;
    }
  });

  metrics.coordinator_us = coord_us;
  metrics.cohort_critical_us = *std::max_element(cohort_us.begin(), cohort_us.end());
  if (outcome.has_value()) {
    metrics.decision = outcome->decision;
    metrics.cosign_valid = outcome->cosign_valid;
    metrics.faulty_cosigners = outcome->faulty_cosigners;
    metrics.refusals = outcome->refusals;
  }
  metrics.network_legs = 6;
  // In simulated mode the network term of the critical path is not modeled
  // analytically — it is the virtual time the schedule actually took.
  metrics.modeled_latency_us =
      metrics.coordinator_us + metrics.cohort_critical_us + (net.now_us() - net_start_us);
  metrics.measured_latency_us = since_us(round_start);
  return metrics;
}

RoundMetrics run_2pc_block_sim(Cluster& cluster,
                               std::vector<commit::SignedEndTxn> batch, SimNet& net) {
  RoundMetrics metrics;
  metrics.txns_in_block = batch.size();
  metrics.threads_used = 1;
  const auto round_start = Clock::now();
  const double net_start_us = net.now_us();
  commit::order_batch(batch);

  const std::uint32_t n = cluster.num_servers();
  Transport& transport = cluster.transport();
  Server& coord_server = cluster.server(cluster.coordinator_id());
  const NodeId coord_node = NodeId::server(cluster.coordinator_id());

  std::vector<ServerId> cohort_ids;
  for (std::uint32_t i = 0; i < n; ++i) cohort_ids.push_back(ServerId{i});
  commit::TwoPhaseCommitCoordinator coordinator(cohort_ids);

  auto t0 = Clock::now();
  commit::Block partial = commit::TfCommitCoordinator::make_partial_block(
      coord_server.log().size(), coord_server.log().head_hash(), commit::batch_txns(batch),
      cohort_ids);
  commit::PrepareMsg prepare = coordinator.start(std::move(partial), batch);
  const Envelope prepare_env = transport.seal(coord_server.keypair(), coord_node,
                                              "2pc_prepare", prepare.serialize());
  double coord_us = since_us(t0);

  std::vector<commit::PrepareVoteMsg> votes(n);
  std::vector<unsigned char> vote_in(n, 0);
  std::size_t votes_seen = 0;
  std::optional<commit::TwoPhaseCommitOutcome> outcome;
  std::vector<double> cohort_us(n, 0);
  Dedup seen;

  broadcast(cluster, net, coord_node, prepare_env, n);

  net.run([&](NodeId src, NodeId dst, const Envelope& env) {
    if (!seen.first(src, dst, env.type)) return;

    if (env.type == "2pc_prepare") {
      Server& server = cluster.server(ServerId{dst.id});
      const double tc = common::thread_cpu_time_us();
      commit::PrepareVoteMsg vote;
      if (transport.open(env, "2pc_prepare")) {
        if (const auto msg = commit::PrepareMsg::deserialize(env.payload)) {
          const bool requests_ok =
              verify_touching_requests(transport, server, msg->requests);
          vote = server.tpc_cohort().handle_prepare(*msg);
          if (!requests_ok) {
            vote.vote = txn::Vote::kAbort;
            vote.abort_reason = "client request signature invalid";
          }
        }
      }
      Envelope vote_env = transport.seal(server.keypair(), NodeId::server(server.id()),
                                         "2pc_vote", vote.serialize());
      cohort_us[dst.id] += common::thread_cpu_time_us() - tc;
      net.send(NodeId::server(server.id()), coord_node, std::move(vote_env));

    } else if (env.type == "2pc_vote") {
      const auto t = Clock::now();
      const bool authentic = transport.open(env, "2pc_vote");
      if (src.id < n && !vote_in[src.id]) {
        commit::PrepareVoteMsg vote;
        vote.cohort = ServerId{src.id};
        vote.involved = true;
        vote.abort_reason = "vote envelope failed authentication";
        if (authentic) {
          if (const auto msg = commit::PrepareVoteMsg::deserialize(env.payload)) {
            vote = *msg;
          }
        }
        votes[src.id] = std::move(vote);
        vote_in[src.id] = 1;
        ++votes_seen;
      }
      if (votes_seen == n && !outcome.has_value()) {
        outcome = coordinator.on_votes(votes);
        const commit::CommitDecisionMsg decision{outcome->block};
        const Envelope decision_env = transport.seal(
            coord_server.keypair(), coord_node, "2pc_decision", decision.serialize());
        broadcast(cluster, net, coord_node, decision_env, n);
      }
      coord_us += since_us(t);

    } else if (env.type == "2pc_decision") {
      Server& server = cluster.server(ServerId{dst.id});
      const double tc = common::thread_cpu_time_us();
      if (transport.open(env, "2pc_decision")) {
        if (const auto msg = commit::CommitDecisionMsg::deserialize(env.payload)) {
          server.handle_decision_2pc(*msg);
        }
      }
      cohort_us[dst.id] += common::thread_cpu_time_us() - tc;
    }
  });

  metrics.coordinator_us = coord_us;
  metrics.cohort_critical_us = *std::max_element(cohort_us.begin(), cohort_us.end());
  if (outcome.has_value()) metrics.decision = outcome->decision;
  metrics.network_legs = 4;
  metrics.modeled_latency_us =
      metrics.coordinator_us + metrics.cohort_critical_us + (net.now_us() - net_start_us);
  metrics.measured_latency_us = since_us(round_start);
  return metrics;
}

std::optional<ledger::Checkpoint> create_checkpoint_sim(Cluster& cluster, SimNet& net) {
  const std::uint32_t n = cluster.num_servers();
  Transport& transport = cluster.transport();
  Server& coord_server = cluster.server(cluster.coordinator_id());
  const NodeId coord_node = NodeId::server(cluster.coordinator_id());

  std::vector<ServerId> signers;
  for (std::uint32_t i = 0; i < n; ++i) signers.push_back(ServerId{i});
  ledger::Checkpoint cp = ledger::make_checkpoint(coord_server.log().blocks(), signers);
  const Bytes record = cp.signing_bytes();

  // CoSi round over SimNet: propose -> commit -> challenge -> response.
  // Each server contributes only after verifying the proposal against its
  // own log; one refusal sinks the checkpoint (same contract as direct
  // mode). The per-witness nonce secrets live in `secrets`, slot i written
  // and read only by server i's handlers.
  std::vector<crypto::CosiCommitment> secrets(n);
  std::vector<crypto::AffinePoint> commitments(n);
  std::vector<unsigned char> agrees(n, 0);
  std::vector<unsigned char> commit_in(n, 0);
  std::size_t commits_seen = 0;
  std::vector<crypto::U256> responses(n);
  std::vector<unsigned char> resp_in(n, 0);
  std::size_t resps_seen = 0;
  crypto::U256 challenge;
  bool refused = false;
  bool finalized = false;
  Dedup seen;

  const Envelope propose_env = transport.seal(coord_server.keypair(), coord_node,
                                              "cp_propose", cp.serialize());
  broadcast(cluster, net, coord_node, propose_env, n);

  net.run([&](NodeId src, NodeId dst, const Envelope& env) {
    if (!seen.first(src, dst, env.type)) return;

    if (env.type == "cp_propose") {
      Server& server = cluster.server(ServerId{dst.id});
      Writer w;
      w.u32(dst.id);
      bool agree = false;
      if (transport.open(env, "cp_propose")) {
        if (const auto prop = ledger::Checkpoint::deserialize(env.payload)) {
          agree = server.log().size() == prop->height &&
                  server.log().head_hash() == prop->head_hash;
          if (agree) {
            secrets[dst.id] =
                crypto::cosi_commit(server.keypair(), prop->signing_bytes(),
                                    ledger::checkpoint_cosi_round(prop->height));
          }
        }
      }
      w.boolean(agree);
      if (agree) w.bytes(secrets[dst.id].v.serialize());
      Envelope commit_env = transport.seal(server.keypair(), NodeId::server(server.id()),
                                           "cp_commit", std::move(w).take());
      net.send(NodeId::server(server.id()), coord_node, std::move(commit_env));

    } else if (env.type == "cp_commit") {
      // The authenticated sender — not the payload — names the slot; an
      // unauthenticated or mislabelled commit counts as a refusal.
      const bool authentic = transport.open(env, "cp_commit");
      if (src.id < n && !commit_in[src.id]) {
        commit_in[src.id] = 1;
        ++commits_seen;
        if (authentic) {
          Reader r(env.payload);
          const std::uint32_t i = r.u32();
          const bool agree = r.boolean();
          if (i == src.id && agree) {
            if (const auto pt = crypto::AffinePoint::deserialize(r.bytes())) {
              agrees[src.id] = 1;
              commitments[src.id] = *pt;
            }
          }
        }
      }
      if (commits_seen == n) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (!agrees[j]) refused = true;
        }
        if (!refused) {
          const crypto::AffinePoint v = crypto::cosi_aggregate_commitments(commitments);
          challenge = crypto::cosi_challenge(v, record);
          cp.cosign = crypto::CosiSignature{v, crypto::U256{}};  // r filled later
          Writer w;
          const auto cb = challenge.to_bytes_be();
          w.raw(BytesView(cb.data(), cb.size()));
          const Envelope challenge_env = transport.seal(
              coord_server.keypair(), coord_node, "cp_challenge", std::move(w).take());
          broadcast(cluster, net, coord_node, challenge_env, n);
        }
      }

    } else if (env.type == "cp_challenge") {
      Server& server = cluster.server(ServerId{dst.id});
      if (!transport.open(env, "cp_challenge")) return;
      Reader r(env.payload);
      const crypto::U256 c = crypto::U256::from_bytes_be(r.raw(32));
      Writer w;
      w.u32(dst.id);
      const auto rb = crypto::cosi_respond(server.keypair(), secrets[dst.id].secret, c)
                          .to_bytes_be();
      w.raw(BytesView(rb.data(), rb.size()));
      Envelope resp_env = transport.seal(server.keypair(), NodeId::server(server.id()),
                                         "cp_response", std::move(w).take());
      net.send(NodeId::server(server.id()), coord_node, std::move(resp_env));

    } else if (env.type == "cp_response") {
      const bool authentic = transport.open(env, "cp_response");
      if (src.id < n && !resp_in[src.id]) {
        resp_in[src.id] = 1;
        ++resps_seen;
        if (authentic) {
          Reader r(env.payload);
          const std::uint32_t i = r.u32();
          const crypto::U256 ri = crypto::U256::from_bytes_be(r.raw(32));
          // Unauthenticated => the share stays zero and the aggregate
          // co-sign fails validation, sinking the checkpoint.
          if (i == src.id) responses[src.id] = ri;
        }
      }
      if (resps_seen == n && !finalized) {
        finalized = true;
        cp.cosign->r = crypto::cosi_aggregate_responses(responses);
      }
    }
  });

  if (refused || !finalized || !cp.cosign.has_value()) return std::nullopt;
  if (!ledger::validate_checkpoint(cp, cluster.server_keys())) return std::nullopt;
  return cp;
}

}  // namespace fides::sim
