// Integration tests for the Fides system layer: transport, server, client,
// cluster rounds, fault injection at the execution/datastore layers.
#include <gtest/gtest.h>

#include <set>

#include "fides/cluster.hpp"
#include "workload/ycsb.hpp"

namespace fides {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.items_per_shard = 32;
  cfg.versioning = store::VersioningMode::kMulti;
  cfg.max_batch_size = 8;
  return cfg;
}

commit::SignedEndTxn simple_txn(Cluster& cluster, Client& client,
                                std::vector<ItemId> items, const std::string& tag) {
  ClientTxn txn = client.begin();
  cluster.client_begin(client, txn.id(), items);
  for (const ItemId item : items) {
    client.read(txn, item);
    client.write(txn, item, to_bytes(tag + "-" + std::to_string(item)));
  }
  return client.end(std::move(txn));
}

TEST(Transport, NodeIdHashMixesKindIntoEveryWord) {
  const std::hash<NodeId> h;
  // Deterministic and kind-sensitive: a server and a client with the same
  // numeric id must not collide.
  EXPECT_EQ(h(NodeId::server(ServerId{5})), h(NodeId::server(ServerId{5})));
  EXPECT_NE(h(NodeId::server(ServerId{5})), h(NodeId::client(ClientId{5})));
  // The old hash shifted the kind by 32 inside size_t — UB and a guaranteed
  // collision where size_t is 32-bit. The mix must fold the kind into the
  // low 32 bits so even a truncated result separates kinds.
  for (std::uint32_t id : {0u, 1u, 7u, 1000u}) {
    EXPECT_NE(static_cast<std::uint32_t>(h(NodeId::server(ServerId{id}))),
              static_cast<std::uint32_t>(h(NodeId::client(ClientId{id}))))
        << "id " << id;
  }
  // No collisions across a realistic address space.
  std::set<std::size_t> hashes;
  for (std::uint32_t id = 0; id < 1000; ++id) {
    hashes.insert(h(NodeId::server(ServerId{id})));
    hashes.insert(h(NodeId::client(ClientId{id})));
  }
  EXPECT_EQ(hashes.size(), 2000u);
}

TEST(Transport, SealOpenRoundTrip) {
  Transport t;
  const auto kp = crypto::KeyPair::deterministic(1);
  t.register_node(NodeId::server(ServerId{0}), kp.public_key());
  Envelope env = t.seal(kp, NodeId::server(ServerId{0}), "msg", to_bytes("hello"));
  EXPECT_TRUE(t.open(env, "msg"));
  EXPECT_EQ(t.stats().messages, 1u);
  EXPECT_EQ(t.stats().signatures_verified, 1u);
}

TEST(Transport, RejectsTamperedPayload) {
  Transport t;
  const auto kp = crypto::KeyPair::deterministic(1);
  t.register_node(NodeId::server(ServerId{0}), kp.public_key());
  Envelope env = t.seal(kp, NodeId::server(ServerId{0}), "msg", to_bytes("hello"));
  env.payload[0] ^= 1;
  EXPECT_FALSE(t.open(env, "msg"));
  EXPECT_EQ(t.stats().rejected, 1u);
}

TEST(Transport, RejectsWrongTypeAndUnknownSender) {
  Transport t;
  const auto kp = crypto::KeyPair::deterministic(1);
  t.register_node(NodeId::server(ServerId{0}), kp.public_key());
  Envelope env = t.seal(kp, NodeId::server(ServerId{0}), "msg", to_bytes("x"));
  EXPECT_FALSE(t.open(env, "other"));  // type tag mismatch
  Envelope forged = env;
  forged.sender = NodeId::server(ServerId{7});  // not registered
  EXPECT_FALSE(t.open(forged, "msg"));
}

TEST(Transport, RejectsSenderSpoofing) {
  // A registered node must not be able to pass off its envelope as another
  // registered node's — the sender id is bound into the signature.
  Transport t;
  const auto kp0 = crypto::KeyPair::deterministic(1);
  const auto kp1 = crypto::KeyPair::deterministic(2);
  t.register_node(NodeId::server(ServerId{0}), kp0.public_key());
  t.register_node(NodeId::server(ServerId{1}), kp1.public_key());
  Envelope env = t.seal(kp0, NodeId::server(ServerId{0}), "msg", to_bytes("x"));
  env.sender = NodeId::server(ServerId{1});
  EXPECT_FALSE(t.open(env, "msg"));
}

TEST(Transport, CryptoDisabledStillCounts) {
  Transport t;
  const auto kp = crypto::KeyPair::deterministic(1);
  t.set_crypto_enabled(false);
  Envelope env = t.seal(kp, NodeId::server(ServerId{0}), "msg", to_bytes("x"));
  EXPECT_TRUE(t.open(env, "msg"));
  EXPECT_EQ(t.stats().messages, 1u);
  EXPECT_EQ(t.stats().signatures_created, 0u);
}

TEST(Cluster, TfCommitRoundCommitsAndReplicatesLog) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  const auto metrics =
      cluster.run_block({simple_txn(cluster, client, {0, 1, 2}, "a")});
  EXPECT_EQ(metrics.decision, ledger::Decision::kCommit);
  EXPECT_TRUE(metrics.cosign_valid);

  // Every server appended the same block; datastores agree with the writes.
  const auto head = cluster.server(ServerId{0}).log().head_hash();
  for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(ServerId{i});
    EXPECT_EQ(s.log().size(), 1u);
    EXPECT_EQ(s.log().head_hash(), head);
  }
  EXPECT_EQ(to_string(cluster.server(cluster.owner_of(0)).shard().peek(0).value),
            "a-0");
}

TEST(Cluster, ClientVerifiesCosignOnDecision) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  cluster.run_block({simple_txn(cluster, client, {0}, "a")});
  const ledger::Block& block = cluster.server(ServerId{0}).log().at(0);
  EXPECT_TRUE(client.accept_decision(block, cluster.server_keys()));

  ledger::Block tampered = block;
  tampered.decision = ledger::Decision::kAbort;
  EXPECT_FALSE(client.accept_decision(tampered, cluster.server_keys()));
}

TEST(Cluster, SequentialBlocksChain) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  for (int i = 0; i < 3; ++i) {
    const auto metrics = cluster.run_block(
        {simple_txn(cluster, client, {static_cast<ItemId>(i)}, "t" + std::to_string(i))});
    EXPECT_EQ(metrics.decision, ledger::Decision::kCommit);
  }
  const auto& log = cluster.server(ServerId{1}).log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.at(1).prev_hash, log.at(0).digest());
  EXPECT_EQ(log.at(2).prev_hash, log.at(1).digest());
}

TEST(Cluster, ConflictingSecondTransactionAborts) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  // Both transactions executed (read) before either commits: the second is
  // stale by the time its block runs.
  auto t1 = simple_txn(cluster, client, {5}, "x");
  auto t2 = simple_txn(cluster, client, {5}, "y");
  EXPECT_EQ(cluster.run_block({t1}).decision, ledger::Decision::kCommit);
  EXPECT_EQ(cluster.run_block({t2}).decision, ledger::Decision::kAbort);
  // The abort block is still logged and co-signed.
  const auto& log = cluster.server(ServerId{0}).log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.at(1).committed());
  EXPECT_TRUE(log.at(1).cosign.has_value());
}

TEST(Cluster, TwoPhaseCommitRoundWorks) {
  ClusterConfig cfg = small_config();
  cfg.protocol = Protocol::kTwoPhaseCommit;
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  const auto metrics = cluster.run_block({simple_txn(cluster, client, {0, 1}, "a")});
  EXPECT_EQ(metrics.decision, ledger::Decision::kCommit);
  const auto& log = cluster.server(ServerId{2}).log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log.at(0).cosign.has_value());
}

TEST(Cluster, MetricsPopulated) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  const auto metrics = cluster.run_block({simple_txn(cluster, client, {0, 1}, "a")});
  EXPECT_GT(metrics.coordinator_us, 0.0);
  EXPECT_GT(metrics.cohort_critical_us, 0.0);
  EXPECT_EQ(metrics.network_legs, 6u);
  EXPECT_GT(metrics.modeled_latency_us,
            6 * cluster.config().network.one_way_latency_us);
  EXPECT_EQ(metrics.txns_in_block, 1u);
  EXPECT_GT(cluster.transport().stats().messages, 0u);
}

TEST(Cluster, ServerKeepsClientMessageLog) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  simple_txn(cluster, client, {0}, "a");
  // Item 0 lives on server 0: begin + read + write recorded.
  EXPECT_GE(cluster.server(ServerId{0}).client_message_log().size(), 3u);
}

TEST(Server, ReadFaultStaleValue) {
  ClusterConfig cfg = small_config();
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  // Commit an honest write first so there is a previous version.
  cluster.run_block({simple_txn(cluster, client, {0}, "v1")});
  cluster.run_block({simple_txn(cluster, client, {0}, "v2")});

  Server& owner = cluster.server(cluster.owner_of(0));
  owner.faults().read_fault = ReadFault::kStaleValue;
  const auto result = owner.handle_read(client.id(), TxnId{0, 99}, 0);
  EXPECT_NE(to_string(result.value), "v2-0");           // not the current value
  EXPECT_EQ(result.wts, owner.shard().peek(0).wts);     // timestamps up to date
}

TEST(Server, ReadFaultGarbageValueScopedToItem) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  Server& owner = cluster.server(cluster.owner_of(0));
  owner.faults().read_fault = ReadFault::kGarbageValue;
  owner.faults().read_fault_item = 0;
  EXPECT_EQ(to_string(owner.handle_read(client.id(), TxnId{0, 1}, 0).value), "garbage");
  // Another item on the same shard is served honestly.
  const ItemId other = cluster.num_servers() + 0;  // next item on shard 0
  EXPECT_EQ(to_string(owner.handle_read(client.id(), TxnId{0, 1}, other).value), "0");
}

TEST(Server, SkipWriteFaultLeavesStaleDatastoreButHonestRoot) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  Server& owner = cluster.server(cluster.owner_of(0));
  owner.faults().skip_write_item = 0;

  cluster.run_block({simple_txn(cluster, client, {0}, "new")});
  // The block committed with a root reflecting the write...
  EXPECT_EQ(owner.log().size(), 1u);
  EXPECT_TRUE(owner.log().at(0).committed());
  // ...but the live value silently kept its old content.
  EXPECT_EQ(to_string(owner.shard().peek(0).value), "0");
}

TEST(Server, AuditItemProofAuthenticatesHonestState) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  cluster.run_block({simple_txn(cluster, client, {0}, "x")});
  Server& owner = cluster.server(cluster.owner_of(0));
  const ledger::Block& block = owner.log().at(0);
  const Timestamp version = block.txns[0].commit_ts;
  const AuditItemProof proof = owner.audit_item(0, version);
  EXPECT_EQ(to_string(proof.value), "x-0");
  EXPECT_TRUE(merkle::verify_vo(store::item_leaf_digest(0, proof.value), proof.vo,
                                *block.root_of(owner.id())));
}

TEST(Server, RejectsDecisionWithInvalidCosign) {
  Cluster cluster(small_config());
  Client& client = cluster.make_client();
  cluster.run_block({simple_txn(cluster, client, {0}, "x")});
  Server& server = cluster.server(ServerId{1});

  ledger::Block forged = server.log().at(0);
  forged.height = 1;
  forged.prev_hash = server.log().head_hash();
  forged.txns[0].rw.writes[0].new_value = to_bytes("evil");
  // Old cosign no longer matches the altered contents.
  EXPECT_FALSE(server.handle_decision(commit::DecisionMsg{forged},
                                      cluster.server_keys()));
  EXPECT_EQ(server.log().size(), 1u);  // nothing appended
}

TEST(Workload, GeneratesDistinctItemsAndCommits) {
  ClusterConfig cfg = small_config();
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  workload::YcsbWorkload wl({}, cfg.num_servers * cfg.items_per_shard, 42);

  const auto items = wl.pick_items();
  EXPECT_EQ(items.size(), 5u);
  EXPECT_EQ(std::set<ItemId>(items.begin(), items.end()).size(), 5u);

  const auto req = wl.run_transaction(client);
  EXPECT_EQ(req.request.txn.rw.reads.size(), 5u);
  EXPECT_EQ(req.request.txn.rw.writes.size(), 5u);
  const auto metrics = cluster.run_block({req});
  EXPECT_EQ(metrics.decision, ledger::Decision::kCommit);
}

TEST(Workload, ReadOnlyFractionRespected) {
  ClusterConfig cfg = small_config();
  Cluster cluster(cfg);
  Client& client = cluster.make_client();
  workload::WorkloadConfig wcfg;
  wcfg.read_only_fraction = 1.0;  // never write
  workload::YcsbWorkload wl(wcfg, cfg.num_servers * cfg.items_per_shard, 42);
  const auto req = wl.run_transaction(client);
  EXPECT_EQ(req.request.txn.rw.reads.size(), 5u);
  EXPECT_TRUE(req.request.txn.rw.writes.empty());
}

}  // namespace
}  // namespace fides
