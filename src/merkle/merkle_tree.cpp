#include "merkle/merkle_tree.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace fides::merkle {

namespace {
std::size_t next_pow2(std::size_t n) {
  // Beyond SIZE_MAX/2 + 1 the doubling below wraps to 0 and loops forever —
  // and the node array needs 2*capacity slots, so the largest usable
  // capacity is one power of two lower still (SIZE_MAX/4 + 1): anything
  // above would wrap 2*cap_ to 0 and hand out an empty node array.
  constexpr std::size_t kMax = (std::numeric_limits<std::size_t>::max() / 4) + 1;
  if (n > kMax) throw std::length_error("MerkleTree: leaf count overflows capacity");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Domain-separated root of the zero-leaf tree. Without it, an empty tree's
/// root would be the raw zero digest — the same bytes a one-leaf tree whose
/// leaf happens to be Digest::zero() exposes (build_interior never hashes
/// anything at cap_ == 1, so the leaf IS the root).
const Digest& empty_tree_root() {
  static const Digest root = crypto::sha256(to_bytes("fides-merkle-empty-tree"));
  return root;
}
}  // namespace

MerkleTree::MerkleTree(std::size_t leaf_count, DeferInterior) : leaf_count_(leaf_count) {
  cap_ = next_pow2(std::max<std::size_t>(leaf_count, 1));
  depth_ = 0;
  for (std::size_t c = cap_; c > 1; c >>= 1) ++depth_;
  nodes_.assign(2 * cap_, Digest::zero());
  if (leaf_count_ == 0) nodes_[1] = empty_tree_root();
}

MerkleTree::MerkleTree(std::size_t leaf_count) : MerkleTree(leaf_count, DeferInterior{}) {
  // Interior nodes over all-zero leaves still need consistent hashes.
  build_interior(nullptr);
}

MerkleTree::MerkleTree(std::span<const Digest> leaves, common::ThreadPool* pool)
    : MerkleTree(leaves.size(), DeferInterior{}) {
  for (std::size_t i = 0; i < leaves.size(); ++i) nodes_[node_index(i)] = leaves[i];
  build_interior(pool);
}

void MerkleTree::build_interior(common::ThreadPool* pool) {
  // Below this width a level's hash work is too small to amortize fan-out.
  constexpr std::size_t kParallelLevelWidth = 512;
  for (std::size_t width = cap_ / 2; width >= 1; width >>= 1) {
    // Level nodes are [width, 2*width); children live one level down.
    if (pool != nullptr && pool->parallel() && width >= kParallelLevelWidth) {
      const std::size_t chunks = std::min(width, pool->concurrency() * 4);
      const std::size_t per_chunk = (width + chunks - 1) / chunks;
      pool->parallel_for(chunks, [this, width, per_chunk](std::size_t c) {
        const std::size_t begin = width + c * per_chunk;
        const std::size_t end = std::min(begin + per_chunk, 2 * width);
        for (std::size_t k = begin; k < end; ++k) {
          nodes_[k] = crypto::sha256_pair(nodes_[2 * k], nodes_[2 * k + 1]);
        }
      });
    } else {
      for (std::size_t k = width; k < 2 * width; ++k) {
        nodes_[k] = crypto::sha256_pair(nodes_[2 * k], nodes_[2 * k + 1]);
      }
    }
  }
}

const Digest& MerkleTree::leaf(std::size_t i) const {
  if (i >= leaf_count_) throw std::out_of_range("MerkleTree::leaf");
  return nodes_[cap_ + i];
}

Digest MerkleTree::root() const { return nodes_[1]; }

std::size_t MerkleTree::set_leaf(std::size_t i, const Digest& d) {
  if (i >= leaf_count_) throw std::out_of_range("MerkleTree::set_leaf");
  std::size_t k = node_index(i);
  nodes_[k] = d;
  std::size_t rehashed = 0;
  for (k >>= 1; k >= 1; k >>= 1) {
    nodes_[k] = crypto::sha256_pair(nodes_[2 * k], nodes_[2 * k + 1]);
    ++rehashed;
  }
  return rehashed;
}

Digest MerkleTree::root_after(
    std::span<const std::pair<std::size_t, Digest>> updates) const {
  // Overlay: node index -> hypothetical digest. Seed with the updated
  // leaves, then fold upward level by level; untouched nodes read through
  // to the real tree.
  std::unordered_map<std::size_t, Digest> overlay;
  overlay.reserve(updates.size() * (depth_ + 1));
  std::vector<std::size_t> frontier;
  frontier.reserve(updates.size());
  for (const auto& [leaf_idx, digest] : updates) {
    if (leaf_idx >= leaf_count_) throw std::out_of_range("MerkleTree::root_after");
    const std::size_t k = node_index(leaf_idx);
    if (overlay.emplace(k, digest).second) {
      frontier.push_back(k);
    } else {
      overlay[k] = digest;  // later update to same leaf wins
    }
  }

  auto read = [&](std::size_t k) -> const Digest& {
    const auto it = overlay.find(k);
    return it != overlay.end() ? it->second : nodes_[k];
  };

  while (!(frontier.size() == 1 && frontier[0] == 1)) {
    std::vector<std::size_t> parents;
    parents.reserve(frontier.size());
    for (const std::size_t k : frontier) {
      const std::size_t parent = k >> 1;
      if (parent == 0) continue;
      if (overlay.count(parent)) continue;  // already scheduled this round
      overlay[parent] = crypto::sha256_pair(read(2 * parent), read(2 * parent + 1));
      parents.push_back(parent);
    }
    if (parents.empty()) break;
    frontier = std::move(parents);
  }
  return read(1);
}

Digest MerkleTree::root_after_chain(
    std::span<const std::span<const std::pair<std::size_t, Digest>>> batches) const {
  // Later batches overwrite earlier ones per leaf — exactly what applying
  // the batches in order to a real tree would produce, since a leaf digest
  // depends only on its final value.
  std::unordered_map<std::size_t, std::size_t> slot_of;  // leaf -> merged slot
  std::vector<std::pair<std::size_t, Digest>> merged;
  for (const auto& batch : batches) {
    for (const auto& [leaf, digest] : batch) {
      const auto [it, fresh] = slot_of.emplace(leaf, merged.size());
      if (fresh) {
        merged.emplace_back(leaf, digest);
      } else {
        merged[it->second].second = digest;
      }
    }
  }
  return root_after(merged);
}

std::vector<Digest> MerkleTree::sibling_path(std::size_t i) const {
  if (i >= leaf_count_) throw std::out_of_range("MerkleTree::sibling_path");
  std::vector<Digest> path;
  path.reserve(depth_);
  for (std::size_t k = node_index(i); k > 1; k >>= 1) {
    path.push_back(nodes_[k ^ 1]);
  }
  return path;
}

}  // namespace fides::merkle
