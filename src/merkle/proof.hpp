// Verification Objects (§2.3) — Merkle membership proofs.
//
// A VO for data item `a` is the sibling digests along the path from h(a) to
// the root. The auditor recomputes the root from the claimed value and the
// VO and compares it with the root stored (collectively signed) in the log;
// a mismatch proves datastore corruption at that server/version (Lemma 2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serde.hpp"
#include "merkle/merkle_tree.hpp"

namespace fides::merkle {

struct VerificationObject {
  std::uint64_t leaf_index{0};
  std::vector<Digest> siblings;  ///< bottom-up sibling digests

  friend bool operator==(const VerificationObject&, const VerificationObject&) = default;

  Bytes serialize() const;
  static std::optional<VerificationObject> deserialize(BytesView b);
};

/// Produces the VO for leaf i of `tree`.
VerificationObject make_vo(const MerkleTree& tree, std::size_t i);

/// Folds `leaf_digest` up through vo.siblings and returns the implied root.
Digest fold_vo(const Digest& leaf_digest, const VerificationObject& vo);

/// True iff `leaf_digest` at vo.leaf_index hashes up to `expected_root`.
bool verify_vo(const Digest& leaf_digest, const VerificationObject& vo,
               const Digest& expected_root);

}  // namespace fides::merkle
