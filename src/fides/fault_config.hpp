// Byzantine behaviour injection (§3.2 failure model, §5 failure examples).
//
// A Fides server "can behave arbitrarily": this struct enumerates, layer by
// layer, the concrete deviations the paper analyses, each mapping to a lemma
// or scenario the auditor must catch. All flags default to honest.
#pragma once

#include <optional>

#include "commit/tfcommit.hpp"

namespace fides {

/// How a malicious execution layer corrupts read responses (Scenario 1).
enum class ReadFault : std::uint8_t {
  kNone,
  /// Return the previous version's value with up-to-date timestamps — the
  /// paper's Figure 10 example (stale $1000 instead of $900).
  kStaleValue,
  /// Return arbitrary garbage.
  kGarbageValue,
};

struct FaultConfig {
  // --- Execution layer (Lemma 1) -------------------------------------------
  ReadFault read_fault{ReadFault::kNone};
  /// Restrict the read fault to one item (nullopt = every read).
  std::optional<ItemId> read_fault_item;

  // --- Datastore layer (Lemma 2, Scenario 3) -------------------------------
  /// Skip applying committed writes for this item (datastore silently keeps
  /// the old value while the signed Merkle root reflects the new one).
  std::optional<ItemId> skip_write_item;
  /// After commit, corrupt the stored value of this item to garbage.
  std::optional<ItemId> corrupt_after_commit_item;

  // --- Commit layer (Lemmas 4 & 5, Scenario 2) ------------------------------
  commit::CohortFaults cohort;
  commit::CoordinatorFaults coordinator;

  // --- Log layer (Lemmas 6 & 7) ---------------------------------------------
  // Log tampering is applied after the fact via TamperProofLog's malicious
  // mutators (tamper_block / reorder / truncate_tail), driven by tests and
  // examples rather than per-round flags.

  bool execution_faulty() const { return read_fault != ReadFault::kNone; }
  bool datastore_faulty() const {
    return skip_write_item.has_value() || corrupt_after_commit_item.has_value();
  }
};

}  // namespace fides
