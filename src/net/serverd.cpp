#include "net/serverd.hpp"

#include <sys/stat.h>

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "engine/pipeline.hpp"
#include "net/socket_scheduler.hpp"

namespace fides::net {

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc{} && ptr == last && first != last;
}

/// The previous incarnation's durable log, if any, has bytes in it; a file
/// freshly created by Cluster construction is empty.
bool durable_log_nonempty(const std::string& dir, std::uint32_t self) {
  if (dir.empty()) return false;
  struct stat st{};
  const std::string path = dir + "/server-" + std::to_string(self) + ".rlog";
  return ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
}

}  // namespace

std::optional<ServerdOptions> parse_serverd_args(int argc, char** argv,
                                                 std::string* error) {
  ServerdOptions o;
  bool have_self = false;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take_u64 = [&](std::uint64_t* out) -> bool {
      const char* v = need_value(i);
      if (v == nullptr || !parse_u64(v, out)) {
        *error = "flag " + arg + " needs an unsigned integer value";
        return false;
      }
      ++i;
      return true;
    };
    std::uint64_t u = 0;
    if (arg == "--self") {
      if (!take_u64(&u)) return std::nullopt;
      o.self = static_cast<std::uint32_t>(u);
      have_self = true;
    } else if (arg == "--servers") {
      if (!take_u64(&u)) return std::nullopt;
      o.num_servers = static_cast<std::uint32_t>(u);
    } else if (arg == "--rounds") {
      if (!take_u64(&u)) return std::nullopt;
      o.rounds = u;
    } else if (arg == "--clients") {
      if (!take_u64(&u)) return std::nullopt;
      o.clients = u;
    } else if (arg == "--items") {
      if (!take_u64(&u)) return std::nullopt;
      o.items = static_cast<std::uint32_t>(u);
    } else if (arg == "--batch") {
      if (!take_u64(&u)) return std::nullopt;
      o.max_batch = static_cast<std::uint32_t>(u);
    } else if (arg == "--no-data-sigs") {
      o.sign_data_path = false;
    } else if (arg == "--pipeline") {
      if (!take_u64(&u)) return std::nullopt;
      o.pipeline = static_cast<std::uint32_t>(u);
    } else if (arg == "--threads") {
      if (!take_u64(&u)) return std::nullopt;
      o.threads = static_cast<std::uint32_t>(u);
    } else if (arg == "--seed") {
      if (!take_u64(&u)) return std::nullopt;
      o.seed = u;
    } else if (arg == "--spec") {
      o.speculate = true;
    } else if (arg == "--batch-verify") {
      o.batch_verify = true;
    } else if (arg == "--protocol") {
      const char* v = need_value(i);
      if (v == nullptr) {
        *error = "--protocol needs tfcommit or 2pc";
        return std::nullopt;
      }
      const std::string p = v;
      if (p == "tfcommit") {
        o.protocol = Protocol::kTfCommit;
      } else if (p == "2pc") {
        o.protocol = Protocol::kTwoPhaseCommit;
      } else {
        *error = "--protocol must be tfcommit or 2pc, got " + p;
        return std::nullopt;
      }
      ++i;
    } else if (arg == "--log-dir") {
      const char* v = need_value(i);
      if (v == nullptr) {
        *error = "--log-dir needs a directory";
        return std::nullopt;
      }
      o.log_dir = v;
      ++i;
    } else if (arg == "--crash-after") {
      // type:count — die right after the count-th processed delivery of
      // that message type.
      const char* v = need_value(i);
      if (v == nullptr) {
        *error = "--crash-after needs <message-type>:<count>";
        return std::nullopt;
      }
      const std::string spec = v;
      const auto colon = spec.rfind(':');
      std::uint64_t count = 0;
      if (colon == std::string::npos || colon == 0 ||
          !parse_u64(spec.substr(colon + 1), &count) || count == 0) {
        *error = "--crash-after wants <message-type>:<count>, got " + spec;
        return std::nullopt;
      }
      o.crash_after_type = spec.substr(0, colon);
      o.crash_after_count = static_cast<std::uint32_t>(count);
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      *error = "unknown flag " + arg;
      return std::nullopt;
    } else {
      o.addrs.push_back(arg);  // positional: addrs[i] for server i, in order
    }
  }
  if (!have_self || o.self == 0) {
    *error = "--self must name a non-coordinator server (1..servers-1)";
    return std::nullopt;
  }
  if (o.self >= o.num_servers) {
    *error = "--self out of range for --servers";
    return std::nullopt;
  }
  if (o.addrs.size() != o.num_servers) {
    *error = "expected exactly one positional address per server (" +
             std::to_string(o.num_servers) + "), got " +
             std::to_string(o.addrs.size());
    return std::nullopt;
  }
  if (o.rounds == 0) {
    *error = "--rounds must be positive";
    return std::nullopt;
  }
  if (o.log_dir.empty()) {
    *error = "--log-dir is required (shared durable round-log directory)";
    return std::nullopt;
  }
  return o;
}

int run_serverd(const ServerdOptions& options) {
  std::fprintf(stderr, "[fides_serverd %u] starting: %u servers, %zu rounds, protocol %s%s\n",
               options.self, options.num_servers, options.rounds,
               options.protocol == Protocol::kTfCommit ? "tfcommit" : "2pc",
               options.crash_after_type.empty() ? "" : ", crash point armed");
  // The previous incarnation's log (if any) must be known *before* the
  // cluster constructs: rejoining means crash+recover of our own replica.
  const bool rejoin = durable_log_nonempty(options.log_dir, options.self);

  ClusterConfig config;
  config.num_servers = options.num_servers;
  config.items_per_shard = options.items;
  config.max_batch_size = options.max_batch;
  config.sign_data_path = options.sign_data_path;
  config.protocol = options.protocol;
  config.pipeline_depth = options.pipeline;
  config.speculate = options.speculate;
  config.batch_verify = options.batch_verify;
  config.num_threads = options.threads;
  config.seed = options.seed;
  config.round_log_dir = options.log_dir;
  if (!options.crash_after_type.empty()) {
    CrashFault fault;
    fault.server = options.self;
    fault.after_type = options.crash_after_type;
    fault.after_count = options.crash_after_count;
    config.crashes.push_back(fault);
  }

  try {
    Cluster cluster(config);
    for (std::size_t c = 0; c < options.clients; ++c) cluster.make_client();
    if (rejoin) {
      std::fprintf(stderr, "[fides_serverd %u] durable log found; rejoining from it\n",
                   options.self);
      cluster.crash_server(ServerId{options.self});
      if (!cluster.recover_server(ServerId{options.self})) {
        std::fprintf(stderr,
                     "[fides_serverd %u] durable log failed its integrity check; refusing to rejoin\n",
                     options.self);
        return 3;
      }
    }
    SocketOptions sopts;
    sopts.addrs = options.addrs;
    sopts.self = options.self;
    sopts.die_on_crash = true;
    SocketScheduler sched(cluster, sopts);
    engine::serve_commit_rounds(cluster, options.protocol, options.rounds, sched);
    if (!sched.shutdown_received()) {
      std::fprintf(stderr, "[fides_serverd %u] exiting without shutdown frame\n",
                   options.self);
      return 4;
    }
    std::fprintf(stderr, "[fides_serverd %u] clean shutdown (log height %zu)\n",
                 options.self,
                 cluster.server(ServerId{options.self}).log().size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fides_serverd %u] fatal: %s\n", options.self, e.what());
    return 2;
  }
}

}  // namespace fides::net
